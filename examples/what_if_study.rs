//! Iterative what-if analysis (the paper's §1 motivation: "adjust load
//! levels, re-solve, inspect impacts").
//!
//! Sweeps the load at one bus of IEEE 30 through a range conversationally
//! and tabulates the optimal cost the agent reports at each step —
//! demonstrating context preservation across a multi-step study.
//!
//! ```text
//! cargo run --release --example what_if_study
//! ```

use gridmind_core::{GridMind, ModelProfile};

fn main() {
    let mut gm = GridMind::new(ModelProfile::by_name("GPT-o4 Mini").unwrap());

    println!("=== What-if study: load at bus 7 of IEEE 30 ===\n");
    let reply = gm.ask("solve case30");
    let base_cost = gm
        .session
        .fresh_acopf()
        .map(|s| s.objective_cost)
        .expect("base solve succeeded");
    println!("Base case solved: {:.2} $/h\n", base_cost);
    let _ = reply;

    println!("{:>10} {:>14} {:>12}", "load MW", "cost $/h", "Δ vs base");
    for load in [25.0, 30.0, 40.0, 55.0, 70.0] {
        let request = format!("set the load at bus 7 to {load} MW");
        let reply = gm.ask(&request);
        assert!(reply.steps[0].completed, "{}", reply.text);
        let sol = gm.session.fresh_acopf().expect("re-solve succeeded");
        println!(
            "{:>10.1} {:>14.2} {:>11.2}",
            load,
            sol.objective_cost,
            sol.objective_cost - base_cost
        );
    }

    println!(
        "\nApplied modifications (the session diff log):\n  {}",
        gm.session.diff_descriptions().join("\n  ")
    );
    println!(
        "\nTotal conversation: {} turns, {:.1}s virtual latency",
        gm.metrics().len(),
        gm.metrics().iter().map(|m| m.elapsed_s).sum::<f64>()
    );
}
