//! Iterative what-if analysis (the paper's §1 motivation: "adjust load
//! levels, re-solve, inspect impacts") — batched.
//!
//! The original version of this example mutated one bus and re-solved
//! in a conversational loop, paying full validation, YBus assembly, and
//! symbolic analysis for every step. The batched engine answers the
//! same question in one utterance: the agent plans a `batch_study` tool
//! call, `gm_powerflow::run_batch` amortizes the fixed costs across the
//! whole scenario set, and the reply is a single narrated table.
//!
//! ```text
//! cargo run --release --example what_if_study
//! ```

use std::time::Instant;

use gm_network::{cases, CaseId};
use gm_powerflow::{run_batch, solve, PfOptions, ScenarioSet};
use gridmind_core::{GridMind, ModelProfile};

fn main() -> Result<(), String> {
    let profile =
        ModelProfile::by_name("GPT-o4 Mini").ok_or("model profile table is missing GPT-o4 Mini")?;
    let mut gm = GridMind::new(profile);

    // One conversational turn instead of a mutate/re-solve loop: the
    // planner classifies the sweep intent, issues a single batch_study
    // call, and narrates every operating point at once.
    println!("=== What-if study: system load of IEEE 30 ===\n");
    let request = "on case30, sweep the load from 90% to 110% in 8 steps";
    println!("You: {request}\n");
    let reply = gm.ask(request);
    println!("{}\n", reply.text);

    // Follow-up in the same session: a 24-hour daily profile, still one
    // batched run (24 scenarios, warm-started along the load curve).
    let request = "how does it look across the day?";
    println!("You: {request}\n");
    let reply = gm.ask(request);
    println!("{}\n", reply.text);

    // The engine-level view of what the tool just did: the batch path
    // against the naive one-solve-at-a-time loop the old example ran.
    let net = cases::load(CaseId::Ieee118);
    let opts = PfOptions::default();
    let set = ScenarioSet::load_sweep(0.90, 1.10, 96);
    let nets = set
        .materialize(&net)
        .map_err(|e| format!("materializing scenarios: {e}"))?;

    let t0 = Instant::now();
    let mut naive_converged = 0usize;
    for net_k in &nets {
        if solve(net_k, &opts).is_ok() {
            naive_converged += 1;
        }
    }
    let naive_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let report = run_batch(&net, &opts, &set).map_err(|e| format!("batch run: {e}"))?;
    let batch_s = t0.elapsed().as_secs_f64();
    let batch_converged = report.outcomes.iter().filter(|o| o.report.is_ok()).count();

    println!(
        "=== Engine view: case118, {} scenarios ===",
        report.scenarios
    );
    println!("  naive loop  {naive_s:>8.4}s  ({naive_converged} converged)");
    println!(
        "  run_batch   {batch_s:>8.4}s  ({batch_converged} converged, {} warm starts, {} flat restarts)",
        report.warm_hits, report.flat_restarts
    );
    println!("  speedup     {:>7.2}x", naive_s / batch_s.max(1e-12));
    Ok(())
}
