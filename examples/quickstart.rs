//! Quickstart: the paper's Fig. 7 scenario.
//!
//! Ask GridMind to solve the IEEE 118-bus case conversationally, then ask
//! a follow-up what-if question. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gridmind_core::{GridMind, ModelProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = ModelProfile::by_name("GPT-5").ok_or("unknown model profile")?;
    println!("=== GridMind quickstart ({} backend) ===\n", profile.name);
    let mut gm = GridMind::new(profile);

    for request in ["solve 118", "Increase the load for bus 10 to 50MW"] {
        println!("You: {request}\n");
        let reply = gm.ask(request);
        println!("{}\n", reply.text);
        println!(
            "  [virtual latency {:.1}s | {} tokens | {} tool call(s)]\n",
            reply.elapsed_s,
            reply.tokens.total(),
            reply
                .responses
                .iter()
                .map(|r| r.tool_calls.len())
                .sum::<usize>(),
        );
    }

    // The audit trail: every number above traces to a validated tool call.
    println!("=== Instrumentation bench ===");
    for m in gm.metrics() {
        println!(
            "  {} | {} | {:.1}s | {} tokens | {} tool call(s) | validation findings: {}",
            m.agent,
            m.model,
            m.elapsed_s,
            m.tokens.total(),
            m.tool_calls,
            m.validation_findings
        );
    }
    Ok(())
}
