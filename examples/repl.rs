//! Interactive conversational CLI (paper §3.1, Appendix D.1).
//!
//! ```text
//! cargo run --release --example repl [model-name]
//! ```
//!
//! `model-name` is one of the paper's backends (default "GPT-5"):
//! GPT-5, GPT-5 Mini, GPT-5 Nano, GPT-o3, GPT-o4 Mini, Claude 4 Sonnet.

use gridmind_core::{repl::run_repl, GridMind, ModelProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "GPT-5".to_string());
    let profile = match ModelProfile::by_name(&name) {
        Some(p) => p,
        None => {
            eprintln!("unknown model {name:?}; falling back to GPT-5");
            ModelProfile::by_name("GPT-5").ok_or("built-in GPT-5 profile missing")?
        }
    };
    let mut gm = GridMind::new(profile);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut output = stdout.lock();
    match run_repl(&mut gm, &mut input, &mut output) {
        Ok(n) => eprintln!("\nsession ended after {n} request(s)"),
        Err(e) => eprintln!("i/o error: {e}"),
    }
    Ok(())
}
