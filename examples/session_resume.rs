//! Session persistence and resumption (paper §3.4: "Session persistence
//! serializes baseline, diffs, artifacts, contingency cache, and rankings
//! for seamless resumption").
//!
//! Runs a study, serializes the session to a JSON file, "restarts", and
//! continues the analysis from the restored state — the restored solver
//! artifacts stay fresh, so nothing is recomputed until a new
//! modification stales them.
//!
//! ```text
//! cargo run --release --example session_resume
//! ```

use gridmind_core::{GridMind, ModelProfile, SessionContext};

fn main() {
    let path = std::env::temp_dir().join("gridmind_session.json");

    // ---- Day 1: run a study and persist the session.
    {
        let mut gm = GridMind::new(ModelProfile::by_name("GPT-o3").unwrap());
        gm.ask("solve case30");
        gm.ask("set the load at bus 7 to 45 MW");
        gm.ask("run the contingency analysis");
        let blob = gm.session.save();
        std::fs::write(&path, serde_json::to_string_pretty(&blob).unwrap())
            .expect("persist session");
        println!(
            "Persisted session to {} ({} bytes): case {:?}, {} modification(s), \
             ACOPF fresh: {}, contingency fresh: {}.",
            path.display(),
            std::fs::metadata(&path).unwrap().len(),
            gm.session.active_case().unwrap(),
            gm.session.diff_count(),
            gm.session.fresh_acopf().is_some(),
            gm.session.fresh_contingency().is_some(),
        );
    }

    // ---- Day 2: restore and continue.
    let text = std::fs::read_to_string(&path).expect("read session");
    let blob: serde_json::Value = serde_json::from_str(&text).expect("parse session");
    let session = SessionContext::restore(&blob).expect("restore session");
    println!(
        "\nRestored: case {:?}, diffs {:?}",
        session.active_case().unwrap(),
        session.diff_descriptions(),
    );
    let sol = session
        .fresh_acopf()
        .expect("restored ACOPF artifact is still fresh");
    let rep = session
        .fresh_contingency()
        .expect("restored contingency artifact is still fresh");
    println!(
        "Still fresh without recomputation: ACOPF cost {:.2} $/h; N-1 report with {} \
         contingencies, top critical: {:?}.",
        sol.objective_cost,
        rep.n_contingencies,
        rep.top_labels(3),
    );

    // Continue the what-if study on the restored state.
    session
        .apply(gm_network::Modification::SetBusLoad {
            bus_id: 7,
            p_mw: 60.0,
            q_mvar: None,
        })
        .expect("continue modifying");
    println!(
        "\nApplied a new modification; artifacts correctly go stale: ACOPF fresh = {}, \
         contingency fresh = {}.",
        session.fresh_acopf().is_some(),
        session.fresh_contingency().is_some(),
    );
    let net = session.current_network().unwrap();
    let new_sol = gm_acopf::solve_acopf(&net, &gm_acopf::AcopfOptions::default()).unwrap();
    println!(
        "Re-solved on the restored+modified network: {:.2} $/h (was {:.2} $/h).",
        new_sol.objective_cost, sol.objective_cost
    );
    let _ = std::fs::remove_file(&path);
}
