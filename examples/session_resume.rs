//! Session persistence and resumption (paper §3.4: "Session persistence
//! serializes baseline, diffs, artifacts, contingency cache, and rankings
//! for seamless resumption").
//!
//! Runs a study, serializes the session to a JSON file, "restarts", and
//! continues the analysis from the restored state — the restored solver
//! artifacts stay fresh, so nothing is recomputed until a new
//! modification stales them.
//!
//! ```text
//! cargo run --release --example session_resume
//! ```

use gridmind_core::{GridMind, ModelProfile, SessionContext};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::temp_dir().join("gridmind_session.json");

    // ---- Day 1: run a study and persist the session.
    {
        let profile = ModelProfile::by_name("GPT-o3").ok_or("unknown model profile")?;
        let mut gm = GridMind::new(profile);
        gm.ask("solve case30");
        gm.ask("set the load at bus 7 to 45 MW");
        gm.ask("run the contingency analysis");
        let blob = gm.session.save();
        std::fs::write(&path, serde_json::to_string_pretty(&blob)?)?;
        let case = gm
            .session
            .active_case()
            .ok_or("no active case after study")?;
        println!(
            "Persisted session to {} ({} bytes): case {case:?}, {} modification(s), \
             ACOPF fresh: {}, contingency fresh: {}.",
            path.display(),
            std::fs::metadata(&path)?.len(),
            gm.session.diff_count(),
            gm.session.fresh_acopf().is_some(),
            gm.session.fresh_contingency().is_some(),
        );
    }

    // ---- Day 2: restore and continue.
    let text = std::fs::read_to_string(&path)?;
    let blob: serde_json::Value = serde_json::from_str(&text)?;
    let session = SessionContext::restore(&blob)?;
    println!(
        "\nRestored: case {:?}, diffs {:?}",
        session
            .active_case()
            .ok_or("restored session has no case")?,
        session.diff_descriptions(),
    );
    let sol = session
        .fresh_acopf()
        .ok_or("restored ACOPF artifact went stale")?;
    let rep = session
        .fresh_contingency()
        .ok_or("restored contingency artifact went stale")?;
    println!(
        "Still fresh without recomputation: ACOPF cost {:.2} $/h; N-1 report with {} \
         contingencies, top critical: {:?}.",
        sol.objective_cost,
        rep.n_contingencies,
        rep.top_labels(3),
    );

    // Continue the what-if study on the restored state.
    session.apply(gm_network::Modification::SetBusLoad {
        bus_id: 7,
        p_mw: 60.0,
        q_mvar: None,
    })?;
    println!(
        "\nApplied a new modification; artifacts correctly go stale: ACOPF fresh = {}, \
         contingency fresh = {}.",
        session.fresh_acopf().is_some(),
        session.fresh_contingency().is_some(),
    );
    let net = session.current_network()?;
    let new_sol = gm_acopf::solve_acopf(&net, &gm_acopf::AcopfOptions::default())?;
    println!(
        "Re-solved on the restored+modified network: {:.2} $/h (was {:.2} $/h).",
        new_sol.objective_cost, sol.objective_cost
    );
    std::fs::remove_file(&path)?;
    Ok(())
}
