//! Economic vs security-constrained operation (paper Appendix B.4).
//!
//! Solves case118 twice — the plain economic ACOPF and the preventive
//! SCOPF with LODF-screened post-contingency limits — then runs the full
//! AC N-1 sweep against both dispatches and tabulates what the security
//! premium buys.
//!
//! ```text
//! cargo run --release --example scopf_comparison
//! ```

use gm_acopf::{solve_acopf, solve_scopf, AcopfOptions, AcopfSolution, ScopfOptions};
use gm_contingency::{run_n1, CaOptions};
use gm_network::{cases, CaseId, Network};

fn apply_dispatch(net: &Network, sol: &AcopfSolution) -> Network {
    let mut out = net.clone();
    for (gi, g) in out.gens.iter_mut().enumerate() {
        g.p_mw = sol.gen_dispatch_mw[gi];
        g.vm_setpoint_pu = sol.bus_vm_pu[g.bus];
    }
    out
}

fn main() {
    let net = cases::load(CaseId::Ieee118);
    println!(
        "=== Economic vs security-constrained operation, {} ===\n",
        net.name
    );

    let economic = solve_acopf(&net, &AcopfOptions::default()).expect("economic ACOPF");
    let scopf = solve_scopf(&net, &ScopfOptions::default()).expect("SCOPF");

    println!(
        "Screened security constraints: {}",
        scopf.n_security_constraints
    );
    println!();
    println!(
        "{:<28} {:>14} {:>14}",
        "", "economic", "security-constrained"
    );
    println!(
        "{:<28} {:>14.2} {:>14.2}",
        "dispatch cost ($/h)", economic.objective_cost, scopf.solution.objective_cost
    );
    println!(
        "{:<28} {:>14.2} {:>14.2}",
        "losses (MW)", economic.losses_mw, scopf.solution.losses_mw
    );
    println!(
        "{:<28} {:>14.1} {:>14.1}",
        "max base loading (%)",
        economic.max_thermal_loading_pct,
        scopf.solution.max_thermal_loading_pct
    );

    let opts = CaOptions::default();
    let eco_rep = run_n1(&apply_dispatch(&net, &economic), &opts, None).expect("N-1 (economic)");
    let sec_rep = run_n1(&apply_dispatch(&net, &scopf.solution), &opts, None).expect("N-1 (SCOPF)");
    // Both dispatches ride binding base-case limits (the ACOPF binds at
    // exactly 100 %), so the interesting metric is the *severity profile*
    // of post-contingency overloads, not the saturating >100 % count.
    let profile = |rep: &gm_contingency::ContingencyReport, t: f64| {
        rep.outcomes
            .iter()
            .filter(|o| o.max_loading_pct > t)
            .count()
    };
    for t in [105.0, 110.0, 120.0, 140.0] {
        println!(
            "{:<28} {:>14} {:>14}",
            format!("N-1 outages > {t:.0}% loading"),
            profile(&eco_rep, t),
            profile(&sec_rep, t)
        );
    }
    println!(
        "{:<28} {:>14.1} {:>14.1}",
        "worst N-1 loading (%)", eco_rep.max_overload_pct.0, sec_rep.max_overload_pct.0
    );
    println!();
    println!(
        "Security premium: {:+.2} $/h ({:.3}% of the economic cost) buys {} fewer \
         severe (>120%) overload outages and cuts the worst case from {:.0}% to {:.0}%.",
        scopf.security_premium,
        100.0 * scopf.security_premium / economic.objective_cost,
        profile(&eco_rep, 120.0).saturating_sub(profile(&sec_rep, 120.0)),
        eco_rep.max_overload_pct.0,
        sec_rep.max_overload_pct.0,
    );
}
