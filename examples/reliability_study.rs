//! Cross-domain reliability study (the paper's Figs. 8–9): solve the
//! ACOPF, run the full N-1 contingency analysis with shared context, and
//! drill into the most critical element.
//!
//! ```text
//! cargo run --release --example reliability_study
//! ```

use gridmind_core::{GridMind, ModelProfile};

fn main() {
    let mut gm = GridMind::new(ModelProfile::by_name("Claude 4 Sonnet").unwrap());

    // The compound request of Fig. 9: one utterance, two agents, one
    // shared session.
    let request =
        "Solve IEEE 118 case, then run contingency analysis and identify critical elements for reinforcement";
    println!("You: {request}\n");
    let reply = gm.ask(request);
    println!("{}\n", reply.text);

    // Drill into the top-ranked element through the CA agent.
    let top = gm
        .session
        .fresh_contingency()
        .expect("analysis cached in the shared session")
        .ranking
        .first()
        .map(|r| r.label.clone())
        .expect("non-empty ranking");
    let follow_up = format!("analyze the outage of {top} specifically");
    println!("You: {follow_up}\n");
    let reply = gm.ask(&follow_up);
    println!("{}\n", reply.text);

    // Show the cross-agent workflow the coordinator executed.
    println!("=== Workflow steps ===");
    for m in gm.metrics() {
        println!(
            "  {:<28} {:>6.1}s  {:>6} tokens  {} tool call(s)",
            m.agent,
            m.elapsed_s,
            m.tokens.total(),
            m.tool_calls
        );
    }
    println!(
        "\nContingency cache: {} entries (hits/misses {:?})",
        gm.session.cache.len(),
        gm.session.cache.stats()
    );
}
