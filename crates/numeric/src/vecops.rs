//! BLAS-1 style vector helpers on `f64` and [`Complex`] slices.
//!
//! Mismatch norms, dot products, and axpy updates are the innermost loops of
//! Newton iterations and interior-point steps; keeping them in one audited
//! place avoids subtly different convergence checks across solvers.

use crate::complex::Complex;

/// Infinity norm `max |xᵢ|`. Returns 0 for an empty slice.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, v| m.max(v.abs()))
}

/// Euclidean norm.
pub fn norm2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// 1-norm `Σ|xᵢ|`.
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Dot product.
///
/// # Panics
/// Panics if lengths differ.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// `y ← y + alpha·x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Element-wise subtraction `x - y` into a new vector.
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Index and value of the entry with the largest magnitude; `None` if empty.
pub fn argmax_abs(x: &[f64]) -> Option<(usize, f64)> {
    x.iter()
        .enumerate()
        .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
        .map(|(i, &v)| (i, v))
}

/// Infinity norm of a complex vector (max phasor magnitude).
pub fn cnorm_inf(x: &[Complex]) -> f64 {
    x.iter().fold(0.0f64, |m, z| m.max(z.abs()))
}

/// Hermitian dot product `Σ xᵢ · conj(yᵢ)`.
pub fn cdot(x: &[Complex], y: &[Complex]) -> Complex {
    assert_eq!(x.len(), y.len(), "cdot length mismatch");
    x.iter().zip(y).map(|(a, b)| *a * b.conj()).sum()
}

/// Linear interpolation `a + t·(b - a)` over slices (used by continuation /
/// Iwamoto-style damped updates).
pub fn lerp(a: &[f64], b: &[f64], t: f64) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "lerp length mismatch");
    a.iter().zip(b).map(|(x, y)| x + t * (y - x)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms() {
        let x = [3.0, -4.0];
        assert_eq!(norm_inf(&x), 4.0);
        assert!((norm2(&x) - 5.0).abs() < 1e-15);
        assert_eq!(norm1(&x), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn dot_and_axpy() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [4.0, 5.0, 6.0];
        assert_eq!(dot(&x, &y), 32.0);
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [6.0, 9.0, 12.0]);
    }

    #[test]
    fn argmax_abs_finds_peak() {
        assert_eq!(argmax_abs(&[1.0, -9.0, 3.0]), Some((1, -9.0)));
        assert_eq!(argmax_abs(&[]), None);
    }

    #[test]
    fn complex_helpers() {
        let x = [Complex::new(3.0, 4.0), Complex::ONE];
        assert_eq!(cnorm_inf(&x), 5.0);
        let d = cdot(&x, &x);
        assert!((d.re - 26.0).abs() < 1e-15);
        assert!(d.im.abs() < 1e-15);
    }

    #[test]
    fn lerp_endpoints() {
        let a = [0.0, 1.0];
        let b = [2.0, 3.0];
        assert_eq!(lerp(&a, &b, 0.0), a.to_vec());
        assert_eq!(lerp(&a, &b, 1.0), b.to_vec());
        assert_eq!(lerp(&a, &b, 0.5), vec![1.0, 2.0]);
    }

    #[test]
    fn sub_elementwise() {
        assert_eq!(sub(&[3.0, 2.0], &[1.0, 5.0]), vec![2.0, -3.0]);
    }
}
