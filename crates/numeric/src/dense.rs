//! Column-major dense matrix.
//!
//! Dense storage is used where problems are small and dense by nature: the
//! reduced KKT systems of the interior-point ACOPF on small cases, unit
//! tests cross-checking the sparse kernels, and the fast-decoupled B' / B''
//! factor setup. Storage is column-major so that column operations (the hot
//! loop of LU factorization) are contiguous.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense `rows × cols` matrix of `f64` in column-major layout.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct DMat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DMat {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DMat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major slice of slices (test-friendly).
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut m = DMat::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged row {i}");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Builds a matrix by evaluating `f(i, j)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = DMat::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of column `j` as a contiguous slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutable view of column `j` as a contiguous slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Raw column-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix-vector product `y = A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_vec");
        let mut y = vec![0.0; self.rows];
        for (j, &xj) in x.iter().enumerate() {
            if xj == 0.0 {
                continue;
            }
            let col = self.col(j);
            for (yi, &aij) in y.iter_mut().zip(col) {
                *yi += aij * xj;
            }
        }
        y
    }

    /// Transposed matrix-vector product `y = Aᵀ·x`.
    pub fn mul_vec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "dimension mismatch in mul_vec_t");
        (0..self.cols)
            .map(|j| self.col(j).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Matrix-matrix product `C = A·B`.
    pub fn mul_mat(&self, b: &DMat) -> DMat {
        assert_eq!(self.cols, b.rows, "dimension mismatch in mul_mat");
        let mut c = DMat::zeros(self.rows, b.cols);
        for j in 0..b.cols {
            let bcol = b.col(j);
            let ccol = c.col_mut(j);
            for (k, &bkj) in bcol.iter().enumerate() {
                if bkj == 0.0 {
                    continue;
                }
                let acol = self.col(k);
                for (ci, &aik) in ccol.iter_mut().zip(acol) {
                    *ci += aik * bkj;
                }
            }
        }
        c
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> DMat {
        DMat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Adds `k · I` to a square matrix in place (diagonal regularization).
    pub fn add_diag(&mut self, k: f64) {
        assert_eq!(self.rows, self.cols, "add_diag requires a square matrix");
        for i in 0..self.rows {
            self[(i, i)] += k;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (∞-norm over entries).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }
}

impl Index<(usize, usize)> for DMat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[j * self.rows + i]
    }
}

impl IndexMut<(usize, usize)> for DMat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[j * self.rows + i]
    }
}

impl fmt::Debug for DMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DMat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>12.5} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = DMat::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = DMat::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 0)], 0.0);
    }

    #[test]
    fn from_rows_and_index() {
        let m = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.col(0), &[1.0, 3.0]);
    }

    #[test]
    fn mat_vec_product() {
        let m = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
        assert_eq!(m.mul_vec_t(&[1.0, 1.0]), vec![4.0, 6.0]);
    }

    #[test]
    fn mat_mat_product_against_identity() {
        let m = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let p = m.mul_mat(&DMat::identity(2));
        assert_eq!(p, m);
    }

    #[test]
    fn transpose_involution() {
        let m = DMat::from_rows(&[&[1.0, 2.0, 5.0], &[3.0, 4.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn norms() {
        let m = DMat::from_rows(&[&[3.0, 0.0], &[0.0, -4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-15);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn add_diag_regularizes() {
        let mut m = DMat::zeros(2, 2);
        m.add_diag(0.5);
        assert_eq!(m[(0, 0)], 0.5);
        assert_eq!(m[(1, 1)], 0.5);
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mul_vec_shape_checked() {
        DMat::zeros(2, 2).mul_vec(&[1.0]);
    }
}
