//! Dense LU factorization with partial pivoting.
//!
//! `PA = LU` with row pivoting; used directly for small systems (reduced
//! KKT solves on the smallest cases, baselines and cross-checks for the
//! sparse LU) and as the reference implementation the sparse factorization
//! is property-tested against.

use crate::dense::DMat;

/// Error produced when a matrix is singular to working precision.
#[derive(Debug, Clone, PartialEq)]
pub struct SingularMatrix {
    /// Column at which no acceptable pivot was found.
    pub column: usize,
    /// Magnitude of the best available pivot.
    pub pivot: f64,
}

impl std::fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is numerically singular at column {} (pivot {:.3e})",
            self.column, self.pivot
        )
    }
}

impl std::error::Error for SingularMatrix {}

/// A dense LU factorization `PA = LU`.
///
/// `L` (unit lower) and `U` (upper) are stored packed in a single matrix;
/// `perm[i]` records the row of `A` that became row `i` of the factored
/// matrix.
#[derive(Clone, Debug)]
pub struct DenseLu {
    lu: DMat,
    perm: Vec<usize>,
    sign: f64,
}

impl DenseLu {
    /// Factors a square matrix. Returns [`SingularMatrix`] when a pivot
    /// smaller than `1e-13 · max|A|` is encountered.
    pub fn factor(a: &DMat) -> Result<Self, SingularMatrix> {
        assert_eq!(a.rows(), a.cols(), "LU requires a square matrix");
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let tol = 1e-13 * a.max_abs().max(1.0);

        for k in 0..n {
            // Find the pivot row: largest magnitude entry in column k at or
            // below the diagonal.
            let mut p = k;
            let mut pmax = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax <= tol {
                return Err(SingularMatrix {
                    column: k,
                    pivot: pmax,
                });
            }
            if p != k {
                perm.swap(p, k);
                sign = -sign;
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m == 0.0 {
                    continue;
                }
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    if ukj != 0.0 {
                        lu[(i, j)] -= m * ukj;
                    }
                }
            }
        }
        Ok(DenseLu { lu, perm, sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b`, overwriting nothing; returns `x`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "rhs length mismatch");
        // Apply the permutation, then forward/backward substitute.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for k in 0..n {
            let xk = x[k];
            if xk != 0.0 {
                for i in (k + 1)..n {
                    x[i] -= self.lu[(i, k)] * xk;
                }
            }
        }
        for k in (0..n).rev() {
            x[k] /= self.lu[(k, k)];
            let xk = x[k];
            if xk != 0.0 {
                for i in 0..k {
                    x[i] -= self.lu[(i, k)] * xk;
                }
            }
        }
        x
    }

    /// Solves for multiple right-hand sides given as matrix columns.
    pub fn solve_mat(&self, b: &DMat) -> DMat {
        assert_eq!(b.rows(), self.dim(), "rhs rows mismatch");
        let mut out = DMat::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col = self.solve(b.col(j));
            out.col_mut(j).copy_from_slice(&col);
        }
        out
    }

    /// Determinant of the original matrix (product of pivots × permutation
    /// sign).
    pub fn det(&self) -> f64 {
        let n = self.dim();
        (0..n).fold(self.sign, |acc, k| acc * self.lu[(k, k)])
    }

    /// One step of iterative refinement for `A·x = b`: returns an improved
    /// solution given the original matrix `a` and a candidate `x`.
    pub fn refine(&self, a: &DMat, b: &[f64], x: &[f64]) -> Vec<f64> {
        let ax = a.mul_vec(x);
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
        let dx = self.solve(&r);
        x.iter().zip(&dx).map(|(xi, di)| xi + di).collect()
    }

    /// Crude reciprocal condition estimate: `min|pivot| / max|pivot|`.
    /// Good enough to flag near-singular Jacobians in diagnostics.
    pub fn rcond_estimate(&self) -> f64 {
        let n = self.dim();
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for k in 0..n {
            let p = self.lu[(k, k)].abs();
            lo = lo.min(p);
            hi = hi.max(p);
        }
        if hi == 0.0 {
            0.0
        } else {
            lo / hi
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_vec_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() <= tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn solve_identity() {
        let lu = DenseLu::factor(&DMat::identity(4)).unwrap();
        let b = [1.0, -2.0, 3.0, 0.5];
        assert_vec_close(&lu.solve(&b), &b, 0.0);
        assert_eq!(lu.det(), 1.0);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3
        let a = DMat::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let lu = DenseLu::factor(&a).unwrap();
        assert_vec_close(&lu.solve(&[5.0, 10.0]), &[1.0, 3.0], 1e-12);
        assert!((lu.det() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = DMat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = DenseLu::factor(&a).unwrap();
        assert_vec_close(&lu.solve(&[2.0, 3.0]), &[3.0, 2.0], 1e-14);
        assert!((lu.det() + 1.0).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_detected() {
        let a = DMat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let err = DenseLu::factor(&a).unwrap_err();
        assert_eq!(err.column, 1);
    }

    #[test]
    fn residual_small_on_random_system() {
        // Deterministic pseudo-random fill.
        let n = 25;
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) - 0.5
        };
        let mut a = DMat::from_fn(n, n, |_, _| next());
        a.add_diag(5.0); // diagonally dominant => well conditioned
        let xtrue: Vec<f64> = (0..n).map(|i| (i as f64) / 7.0 - 1.0).collect();
        let b = a.mul_vec(&xtrue);
        let lu = DenseLu::factor(&a).unwrap();
        let x = lu.solve(&b);
        assert_vec_close(&x, &xtrue, 1e-10);
        let xr = lu.refine(&a, &b, &x);
        assert_vec_close(&xr, &xtrue, 1e-11);
        assert!(lu.rcond_estimate() > 1e-4);
    }

    #[test]
    fn solve_mat_multiple_rhs() {
        let a = DMat::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let lu = DenseLu::factor(&a).unwrap();
        let x = lu.solve_mat(&DMat::identity(2));
        // A · A⁻¹ = I
        let prod = a.mul_mat(&x);
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-14);
            }
        }
    }
}
