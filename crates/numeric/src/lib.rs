//! # gm-numeric
//!
//! Dense numerical kernels for GridMind-RS: complex arithmetic, dense
//! matrices, LU factorization, and vector utilities.
//!
//! The power system substrates (Ybus assembly, Newton–Raphson power flow,
//! the interior-point ACOPF) all bottom out in these primitives. The crate
//! deliberately has no external linear-algebra dependencies: every kernel a
//! downstream solver needs is implemented and tested here.
//!
//! ## Modules
//!
//! - [`complex`] — a `Copy` complex number type ([`Complex`]) with the full
//!   arithmetic surface (polar construction, conjugate, magnitude, division).
//! - [`dense`] — a column-major dense matrix ([`DMat`]) with slicing,
//!   matrix-vector and matrix-matrix products.
//! - [`lu`] — partial-pivoting dense LU factorization ([`lu::DenseLu`]) with
//!   forward/backward solves and determinant/condition estimates.
//! - [`vecops`] — BLAS-1 style helpers (norms, dot products, axpy) on `f64`
//!   and [`Complex`] slices.
//!
//! ```
//! use gm_numeric::Complex;
//!
//! // A voltage phasor rotated by 30 degrees keeps its magnitude.
//! let v = Complex::from_polar(1.05, 0.0_f64);
//! let rot = Complex::from_polar(1.0, 30.0_f64.to_radians());
//! assert!(((v * rot).abs() - 1.05).abs() < 1e-12);
//! ```
// Solver crates are panic-free outside tests: every fallible path
// returns a typed error. Enforced by clippy here and by the regex
// pass of `gm-audit lint-src` (with its allowlist) in CI.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
// Numeric kernels iterate several parallel arrays by index; the
// index-based loops are the clearer form here.
#![allow(clippy::needless_range_loop)]

pub mod complex;
pub mod dense;
pub mod lu;
pub mod vecops;

pub use complex::Complex;
pub use dense::DMat;
pub use lu::DenseLu;
