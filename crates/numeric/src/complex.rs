//! A minimal, `Copy` complex number type.
//!
//! Power system analysis is complex arithmetic end to end: bus admittance
//! matrices, branch flows, and voltage phasors are all `C^n` objects. This
//! module provides the single complex type used across the workspace.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number `re + j·im`.
///
/// Uses the electrical-engineering convention `j` for the imaginary unit in
/// its `Display` output.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + j0`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + j0`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + j1`.
    pub const J: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates (magnitude, angle in
    /// radians). This is the natural constructor for voltage phasors
    /// `V = |V|·e^{jθ}`.
    #[inline]
    pub fn from_polar(mag: f64, ang: f64) -> Self {
        Complex {
            re: mag * ang.cos(),
            im: mag * ang.sin(),
        }
    }

    /// Magnitude `|z| = sqrt(re² + im²)`, computed with `hypot` for
    /// robustness against overflow.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `re² + im²` (avoids the square root when comparing
    /// magnitudes, e.g. in apparent-power limit checks).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (angle) in radians in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate `re - j·im`.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Multiplicative inverse `1/z`. Returns non-finite components when `z`
    /// is zero, mirroring IEEE float semantics.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        Complex::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+j{}", self.re, self.im)
        } else {
            write!(f, "{}-j{}", self.re, -self.im)
        }
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w computed as z·w⁻¹
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.inv()
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        self.scale(1.0 / rhs)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn construction_and_accessors() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.re, 3.0);
        assert_eq!(z.im, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - std::f64::consts::FRAC_PI_3).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.5, -2.5);
        let b = Complex::new(-0.25, 4.0);
        assert!(close(a + b - b, a, 1e-12));
        assert!(close(a * b / b, a, 1e-12));
        assert!(close(a * a.inv(), Complex::ONE, 1e-12));
        assert!(close(-(-a), a, 0.0));
    }

    #[test]
    fn conjugate_properties() {
        let a = Complex::new(2.0, 3.0);
        let b = Complex::new(-1.0, 0.5);
        assert!(close((a * b).conj(), a.conj() * b.conj(), 1e-12));
        assert_eq!((a * a.conj()).im, 0.0);
        assert!((a * a.conj()).re - a.norm_sqr() == 0.0);
    }

    #[test]
    fn division_by_real_matches_scale() {
        let a = Complex::new(4.0, -6.0);
        assert!(close(a / 2.0, Complex::new(2.0, -3.0), 1e-15));
        assert!(close(2.0 * a, a * 2.0, 0.0));
    }

    #[test]
    fn exp_of_imaginary_is_unit_circle() {
        let z = Complex::new(0.0, std::f64::consts::PI).exp();
        assert!(close(z, Complex::new(-1.0, 0.0), 1e-12));
    }

    #[test]
    fn sqrt_squares_back() {
        let z = Complex::new(-3.0, 4.0);
        let r = z.sqrt();
        assert!(close(r * r, z, 1e-12));
    }

    #[test]
    fn sum_over_iterator() {
        let total: Complex = (0..4).map(|k| Complex::new(k as f64, 1.0)).sum();
        assert_eq!(total, Complex::new(6.0, 4.0));
    }

    #[test]
    fn display_formats_j_notation() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+j2");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-j2");
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex::new(1.0, 1.0);
        z += Complex::ONE;
        z -= Complex::J;
        z *= Complex::new(2.0, 0.0);
        z /= Complex::new(2.0, 0.0);
        assert!(close(z, Complex::new(2.0, 0.0), 1e-12));
    }
}
