//! # gm-faults
//!
//! Deterministic fault injection for the GridMind solver and serve
//! layers. The production code asks [`inject`] at well-known *sites*
//! ("pf.base", "acopf.ipm", "cache.get", "serve.queue", …) whether a
//! fault should fire for this hit; with no injector installed the call
//! is a strict no-op returning `None`, so the harness costs nothing and
//! changes nothing in normal operation.
//!
//! Faults are **deterministic**: a [`FaultInjector`] is driven either by
//! an explicit script (fire kind K at site S for hits `skip..skip+fires`)
//! or by a seeded SplitMix64 stream keyed on `(seed, site, hit index)` —
//! never by wall-clock time or OS randomness. Two runs with the same
//! seed and the same sequence of site hits inject the same faults.
//!
//! Following `gm_telemetry::Registry`, an injector becomes active on a
//! thread via [`FaultInjector::install`], which pushes it on a
//! thread-local stack until the returned guard drops. Worker pools
//! re-install a shared injector inside each worker so solver-layer sites
//! observe it. Every fired fault is mirrored to the installed telemetry
//! collector as a `faults.injected.<site>` counter.
//!
//! The supported fault vocabulary is the failure catalogue of the
//! recovery ladder (see DESIGN.md "Fault model"): Newton divergence,
//! sparse-LU singularity, IPM barrier stalls, solver-cache misses and
//! poisoned entries, queue saturation, and deadline storms.

#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Arc;

/// What kind of failure an injection site should simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The Newton power-flow iteration exhausts its budget.
    NewtonDiverge,
    /// The sparse LU factorization reports a singular matrix.
    LuSingular,
    /// The interior-point barrier loop stalls without converging.
    IpmStall,
    /// A solver-cache lookup behaves as a miss (entry invisible).
    CacheMiss,
    /// A solver-cache entry is poisoned: it must be discarded and the
    /// result recomputed (the detection path under test).
    CachePoison,
    /// The admission queue reports saturation (a synthetic `Busy`).
    QueueSaturate,
    /// A request deadline is treated as already expired.
    DeadlineStorm,
}

impl FaultKind {
    /// Stable lowercase name used in counters and reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::NewtonDiverge => "newton_diverge",
            FaultKind::LuSingular => "lu_singular",
            FaultKind::IpmStall => "ipm_stall",
            FaultKind::CacheMiss => "cache_miss",
            FaultKind::CachePoison => "cache_poison",
            FaultKind::QueueSaturate => "queue_saturate",
            FaultKind::DeadlineStorm => "deadline_storm",
        }
    }
}

/// One scripted rule: at `site`, let `skip` hits pass, then fire `kind`
/// for the next `fires` hits (use `u64::MAX` for "forever").
#[derive(Clone, Debug)]
pub struct FaultRule {
    /// Exact site name the rule applies to.
    pub site: String,
    /// Fault to fire inside the window.
    pub kind: FaultKind,
    /// Hits at this site that pass through before the window opens.
    pub skip: u64,
    /// Width of the firing window in hits.
    pub fires: u64,
}

impl FaultRule {
    /// Convenience constructor.
    pub fn new(site: &str, kind: FaultKind, skip: u64, fires: u64) -> FaultRule {
        FaultRule {
            site: site.to_string(),
            kind,
            skip,
            fires,
        }
    }
}

struct Seeded {
    seed: u64,
    /// Firing probability in thousandths (0 disables, 1000 always fires).
    per_mille: u32,
}

struct Inner {
    rules: Vec<FaultRule>,
    seeded: Option<Seeded>,
    /// Per-site hit counts (every consult increments, fired or not).
    hits: Mutex<BTreeMap<String, u64>>,
    /// Per-`site/kind` fired counts.
    injected: Mutex<BTreeMap<String, u64>>,
}

/// A deterministic fault source, cheap to clone and share across
/// threads (workers clone and [`install`](FaultInjector::install) it).
#[derive(Clone)]
pub struct FaultInjector {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FaultInjector({} rules, seeded: {}, {} injected)",
            self.inner.rules.len(),
            self.inner.seeded.is_some(),
            self.injected_total()
        )
    }
}

thread_local! {
    static STACK: RefCell<Vec<FaultInjector>> = const { RefCell::new(Vec::new()) };
}

/// Pops the injector installed by [`FaultInjector::install`] on drop.
pub struct InstallGuard {
    _private: (),
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// SplitMix64: the standard 64-bit mixing finalizer, used to derive a
/// deterministic per-hit decision stream from `(seed, site, hit)`.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string (site names → stable 64-bit tags).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The fault kind a seeded (unscripted) injector fires at a site. Sites
/// with two plausible failure modes alternate on a decision-stream bit.
/// Unknown sites never fire in seeded mode.
fn seeded_kind(site: &str, z: u64) -> Option<FaultKind> {
    match site {
        "pf.base" => Some(if z & (1 << 32) == 0 {
            FaultKind::NewtonDiverge
        } else {
            FaultKind::LuSingular
        }),
        "acopf.ipm" => Some(FaultKind::IpmStall),
        // Pattern-reuse refactorization: a fired fault forces the
        // symbolic cache down its full re-analysis fallback, which must
        // stay invisible to answers (caught below the recovery ladder).
        "sparse.refactor" => Some(FaultKind::LuSingular),
        "cache.get" => Some(if z & (1 << 32) == 0 {
            FaultKind::CacheMiss
        } else {
            FaultKind::CachePoison
        }),
        "serve.queue" => Some(FaultKind::QueueSaturate),
        _ if site.starts_with("serve.deadline") => Some(FaultKind::DeadlineStorm),
        _ => None,
    }
}

impl FaultInjector {
    /// An injector that never fires — the explicit "harness present but
    /// disabled" configuration (the no-op property tests use it).
    pub fn disabled() -> FaultInjector {
        FaultInjector::scripted(Vec::new())
    }

    /// A scripted injector: deterministic per-site hit windows.
    pub fn scripted(rules: Vec<FaultRule>) -> FaultInjector {
        FaultInjector {
            inner: Arc::new(Inner {
                rules,
                seeded: None,
                hits: Mutex::new(BTreeMap::new()),
                injected: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// A seeded chaos injector: every known site fires with probability
    /// `per_mille`/1000 per hit, decided by SplitMix64 over
    /// `(seed, site, hit index)` — reproducible, wall-clock free.
    pub fn chaos(seed: u64, per_mille: u32) -> FaultInjector {
        FaultInjector {
            inner: Arc::new(Inner {
                rules: Vec::new(),
                seeded: Some(Seeded {
                    seed,
                    per_mille: per_mille.min(1000),
                }),
                hits: Mutex::new(BTreeMap::new()),
                injected: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Installs this injector as the innermost fault source on the
    /// current thread until the guard drops.
    pub fn install(&self) -> InstallGuard {
        STACK.with(|s| {
            s.borrow_mut().push(self.clone());
        });
        InstallGuard { _private: () }
    }

    /// Consults the injector directly (no thread-local indirection):
    /// counts the hit at `site` and returns the fault to fire, if any.
    pub fn fire(&self, site: &str) -> Option<FaultKind> {
        let hit = {
            let mut h = self.inner.hits.lock();
            let c = h.entry(site.to_string()).or_insert(0);
            let cur = *c;
            *c += 1;
            cur
        };
        for r in &self.inner.rules {
            if r.site == site && hit >= r.skip && hit - r.skip < r.fires {
                return Some(self.record(site, r.kind));
            }
        }
        if let Some(s) = &self.inner.seeded {
            if s.per_mille > 0 {
                let z = splitmix64(
                    s.seed ^ fnv1a(site.as_bytes()) ^ hit.wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                if z % 1000 < u64::from(s.per_mille) {
                    if let Some(kind) = seeded_kind(site, z) {
                        return Some(self.record(site, kind));
                    }
                }
            }
        }
        None
    }

    fn record(&self, site: &str, kind: FaultKind) -> FaultKind {
        *self
            .inner
            .injected
            .lock()
            .entry(format!("{site}/{}", kind.name()))
            .or_insert(0) += 1;
        gm_telemetry::counter_add(&format!("faults.injected.{site}"), 1);
        gm_telemetry::flight_event("fault.fired", format!("site={site} kind={}", kind.name()));
        kind
    }

    /// Total faults fired so far.
    pub fn injected_total(&self) -> u64 {
        self.inner.injected.lock().values().sum()
    }

    /// Fired counts keyed `site/kind`.
    pub fn injected_counts(&self) -> BTreeMap<String, u64> {
        self.inner.injected.lock().clone()
    }

    /// Total hits observed at `site` (fired or not).
    pub fn hits_at(&self, site: &str) -> u64 {
        self.inner.hits.lock().get(site).copied().unwrap_or(0)
    }
}

/// Asks the innermost installed injector whether a fault fires at
/// `site`. **Strict no-op** (`None`, no counting, no allocation) when no
/// injector is installed on this thread.
pub fn inject(site: &str) -> Option<FaultKind> {
    STACK
        .with(|s| {
            let stack = s.borrow();
            stack.last().cloned()
        })
        .and_then(|inj| inj.fire(site))
}

/// True when a fault injector is installed on this thread.
pub fn active() -> bool {
    STACK.with(|s| !s.borrow().is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uninstalled_inject_is_none() {
        assert_eq!(inject("pf.base"), None);
        assert!(!active());
    }

    #[test]
    fn disabled_injector_never_fires() {
        let inj = FaultInjector::disabled();
        let _g = inj.install();
        assert!(active());
        for _ in 0..100 {
            assert_eq!(inject("pf.base"), None);
            assert_eq!(inject("serve.queue"), None);
        }
        assert_eq!(inj.injected_total(), 0);
        assert_eq!(inj.hits_at("pf.base"), 100);
    }

    #[test]
    fn scripted_window_fires_exactly() {
        let inj = FaultInjector::scripted(vec![FaultRule::new(
            "pf.base",
            FaultKind::NewtonDiverge,
            2,
            3,
        )]);
        let _g = inj.install();
        let fired: Vec<bool> = (0..8).map(|_| inject("pf.base").is_some()).collect();
        assert_eq!(
            fired,
            vec![false, false, true, true, true, false, false, false]
        );
        assert_eq!(inj.injected_total(), 3);
        assert_eq!(
            inj.injected_counts().get("pf.base/newton_diverge"),
            Some(&3)
        );
        // A scripted rule for one site leaves other sites silent.
        assert_eq!(inject("acopf.ipm"), None);
    }

    #[test]
    fn seeded_stream_is_reproducible_and_seed_sensitive() {
        let trace = |seed: u64| -> Vec<Option<FaultKind>> {
            let inj = FaultInjector::chaos(seed, 300);
            let _g = inj.install();
            (0..64).map(|_| inject("pf.base")).collect()
        };
        assert_eq!(trace(7), trace(7), "same seed, same fault sequence");
        assert_ne!(trace(7), trace(8), "different seeds diverge");
        assert!(
            trace(7).iter().any(|f| f.is_some()),
            "30% rate over 64 hits should fire"
        );
        assert!(
            trace(7).iter().any(|f| f.is_none()),
            "…but not on every hit"
        );
    }

    #[test]
    fn seeded_unknown_site_never_fires() {
        let inj = FaultInjector::chaos(1, 1000);
        let _g = inj.install();
        for _ in 0..10 {
            assert_eq!(inject("made.up.site"), None);
        }
    }

    #[test]
    fn install_nests_and_unwinds() {
        let outer = FaultInjector::scripted(vec![FaultRule::new(
            "s",
            FaultKind::QueueSaturate,
            0,
            u64::MAX,
        )]);
        let inner = FaultInjector::disabled();
        let _g1 = outer.install();
        assert_eq!(inject("s"), Some(FaultKind::QueueSaturate));
        {
            let _g2 = inner.install();
            assert_eq!(inject("s"), None, "innermost injector shadows");
        }
        assert_eq!(inject("s"), Some(FaultKind::QueueSaturate));
    }

    #[test]
    fn fired_faults_count_into_telemetry() {
        let reg = gm_telemetry::Registry::new();
        let _t = reg.install();
        let inj = FaultInjector::scripted(vec![FaultRule::new(
            "cache.get",
            FaultKind::CachePoison,
            0,
            2,
        )]);
        let _g = inj.install();
        for _ in 0..5 {
            let _ = inject("cache.get");
        }
        assert_eq!(reg.counter_value("faults.injected.cache.get"), 2);
    }

    #[test]
    fn direct_fire_shares_state_with_clones() {
        let inj = FaultInjector::scripted(vec![FaultRule::new(
            "serve.queue",
            FaultKind::QueueSaturate,
            0,
            2,
        )]);
        let clone = inj.clone();
        assert!(clone.fire("serve.queue").is_some());
        assert!(inj.fire("serve.queue").is_some());
        assert!(clone.fire("serve.queue").is_none(), "window exhausted");
        assert_eq!(inj.hits_at("serve.queue"), 3);
    }
}
