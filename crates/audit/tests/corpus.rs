//! Golden corpus for the gm-audit v2 engine.
//!
//! Each `tests/corpus/<name>.rs` fixture is scanned with every pattern
//! rule enabled and the findings are compared line-for-line against
//! `tests/corpus/<name>.expected` (lines of `<line> <rule>`, sorted).
//! The lock fixtures run the lock-discipline analysis instead and pin
//! its findings, order edges, and cycle verdicts.
//!
//! The fixtures encode the engine's contract: real sites fire, code in
//! strings/comments never fires, exemptions (test items, exact-zero
//! float compares, tolerance compares) hold. When a rule legitimately
//! changes, regenerate the snapshot by hand and justify the diff in the
//! commit.

use std::fs;
use std::path::{Path, PathBuf};

use gm_audit::locks::analyze_lock_sources;
use gm_audit::rules::RuleSet;
use gm_audit::source::scan_file_ruleset;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn all_rules() -> RuleSet {
    RuleSet {
        panics: true,
        casts: true,
        println: true,
        swallowed: true,
        float_eq: true,
        nan_cmp: true,
        skip_test_fns: true,
    }
}

fn scan_fixture(name: &str) -> String {
    let path = corpus_dir().join(format!("{name}.rs"));
    let text =
        fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let mut hits = scan_file_ruleset(&text, &all_rules());
    hits.sort();
    let mut out = String::new();
    for (line, rule, _excerpt) in hits {
        out.push_str(&format!("{line} {rule}\n"));
    }
    out
}

fn assert_snapshot(name: &str) {
    let actual = scan_fixture(name);
    let path = corpus_dir().join(format!("{name}.expected"));
    let expected =
        fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "corpus snapshot mismatch for {name}.rs\n--- actual ---\n{actual}"
    );
}

#[test]
fn panics_snapshot() {
    assert_snapshot("panics");
}

#[test]
fn casts_snapshot() {
    assert_snapshot("casts");
}

#[test]
fn println_snapshot() {
    assert_snapshot("println");
}

#[test]
fn swallowed_snapshot() {
    assert_snapshot("swallowed");
}

#[test]
fn float_eq_snapshot() {
    assert_snapshot("float_eq");
}

#[test]
fn lexer_torture_is_silent() {
    // The torture fixture must produce zero findings AND zero parse
    // errors — scan_file_ruleset reports lex errors as parse-error hits,
    // so an empty snapshot covers both.
    assert_eq!(scan_fixture("lexer_torture"), "", "lexer torture fired");
}

fn lock_fixture(name: &str) -> gm_audit::locks::LockReport {
    let path = corpus_dir().join(format!("{name}.rs"));
    let text =
        fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    analyze_lock_sources(&[(format!("{name}.rs"), text)])
}

#[test]
fn lock_cycle_fixture_is_caught() {
    let rep = lock_fixture("locks_cycle");
    assert!(!rep.is_clean());
    // The AB/BA shape: exactly one cycle over the two ledger locks.
    assert_eq!(rep.cycles.len(), 1, "{:?}", rep.cycles);
    let cycle = &rep.cycles[0];
    assert!(cycle.contains(&"Dispatch.plan".to_string()), "{cycle:?}");
    assert!(cycle.contains(&"Ledger.entries".to_string()), "{cycle:?}");
    // The original serve_one shape: engine mutex held across ask.
    assert_eq!(rep.findings.len(), 1, "{:?}", rep.findings);
    assert_eq!(rep.findings[0].rule, "lock-across-entry");
    assert!(rep.findings[0].excerpt.contains("Slot.engine"));
    assert!(rep.findings[0].excerpt.contains("serve_one_original"));
}

#[test]
fn lock_clean_fixture_passes() {
    let rep = lock_fixture("locks_clean");
    assert!(
        rep.is_clean(),
        "findings={:?} cycles={:?}",
        rep.findings,
        rep.cycles
    );
    // The consistent order still shows up as (one direction of) edges.
    assert!(rep
        .edges
        .iter()
        .all(|e| e.held == "Dispatch.plan" && e.acquired == "Ledger.entries"));
    assert!(!rep.edges.is_empty());
}

#[test]
fn real_tree_lock_graph_is_clean() {
    // The shipped serve/core tree must stay deadlock-ordered with no
    // guard spanning an engine entry — the same gate CI enforces.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let rep = gm_audit::locks::lint_locks(&root).expect("scan serve+core");
    assert!(
        rep.is_clean(),
        "findings={:?} cycles={:?}",
        rep.findings,
        rep.cycles
    );
    // Sanity: the known locks are present (a broken scanner reporting
    // zero locks would be vacuously "clean").
    let ids: Vec<&str> = rep.locks.iter().map(|l| l.id.as_str()).collect();
    for expected in [
        "BoundedQueue.inner",
        "SessionRegistry.slots",
        "SessionSlot.engine",
        "SessionContext.inner",
        "SolverCache.inner",
    ] {
        assert!(ids.contains(&expected), "missing lock {expected}: {ids:?}");
    }
}
