//! Corpus: panic-site detection, including the string/comment false
//! positives that the regex scanner could not avoid by construction.
//!
//! This doc comment mentions panic!("not a finding") and x.unwrap()
//! without triggering anything: comments are trivia to the lexer.

fn real_sites(v: Option<u32>, r: Result<u32, String>) -> u32 {
    let a = v.unwrap(); // finding: no-panic
    let b = r.expect("solver state must exist"); // finding: no-panic
    if a + b == 0 {
        panic!("impossible dispatch"); // finding: no-panic
    }
    match a {
        0 => unreachable!(), // finding: no-panic
        1 => todo!(),        // finding: no-panic
        _ => a + b,
    }
}

fn strings_are_not_code() -> &'static str {
    // The classic regex false positive: panic! inside a string literal.
    let msg = "call panic!(\"boom\") or x.unwrap() if the grid collapses";
    let raw = r#"even raw strings with panic!("boom") stay inert"#;
    let with_slashes = "https://example.com/unwrap()"; // and // inside strings
    let tail = msg.len() + raw.len() + with_slashes.len();
    assert!(tail > 0); // assert! is allowed: it documents an invariant
    msg
}

#[test]
fn test_fns_are_exempt() {
    let v: Option<u32> = Some(3);
    assert_eq!(v.unwrap(), 3); // exempt: #[test] item
}

#[cfg(test)]
mod tests {
    #[test]
    fn nested_test_items_are_exempt() {
        let r: Result<u32, ()> = Ok(1);
        r.expect("fine inside cfg(test)");
        panic!("also fine here");
    }
}
