//! Corpus: println discipline for library crates.

fn prints(v: u32) {
    println!("dispatch = {v}"); // finding: no-println
    eprintln!("warn: {v}"); // finding: no-println
}

fn strings_and_logs_are_fine(v: u32) -> String {
    let doc = "call println!(\"x\") to print"; // no finding: string
    let msg = format!("dispatch = {v}"); // no finding: not a print
    log_line(&msg); // no finding
    doc.to_string()
}
