//! Corpus: truncating-cast detection with expression-scoped evidence.

fn truncating(theta: f64, scale: f32) -> (usize, i32, u8) {
    let a = theta as usize; // finding: float ident evidence
    let b = (theta.sqrt() * 10.0) as i32; // finding: float method + literal
    let c = (scale * 2.0) as u8; // finding: f32 evidence
    (a, b, c)
}

fn integral_casts_are_fine(n: usize, m: u64) -> (u32, i64, usize) {
    let a = n as u32; // no finding: no float evidence
    let b = m as i64; // no finding
    let c = (n + 7) as usize; // no finding
    (a, b, c)
}

fn boundaries_scope_the_evidence(x: f64, n: usize) -> (f64, u32) {
    // The float on the left of the `;` boundary must not leak into the
    // next statement's cast.
    let y = x * 2.0;
    let k = n as u32; // no finding: `y` is not evidence, `x` is out of scope
    (y, k)
}
