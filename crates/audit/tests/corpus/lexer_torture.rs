//! Corpus: lexer stress — every construct here must produce ZERO
//! findings and zero parse errors. A regex scanner fails several.

fn raw_strings() -> usize {
    let a = r"plain raw with \ backslash";
    let b = r#"hash-guarded with "quotes" and panic!("x")"#;
    let c = r##"doubly guarded "# with println!("y") inside"##;
    a.len() + b.len() + c.len()
}

fn byte_and_c_strings() -> usize {
    let a = b"bytes with \" escape";
    let b = br#"raw bytes with x.unwrap()"#;
    let c = c"c string";
    a.len() + b.len() + c.to_bytes().len()
}

/* Block comments can nest in Rust:
   /* inner block with panic!("never seen") */
   still inside the outer comment: x.unwrap()
*/
fn after_nested_comment() -> u32 {
    7
}

fn lifetimes_vs_chars<'a>(s: &'a str) -> (char, char, usize) {
    let q = '\'';
    let n = '\n';
    let lt: &'static str = "static";
    (q, n, s.len() + lt.len())
}

struct Pair(f64, u64);

fn tuple_indices(p: Pair, nested: ((u8, u8), u8)) -> f64 {
    // `p.0` and `nested.0.1` must lex as tuple indices, not floats —
    // otherwise `p.0 as u64` below would count float evidence.
    let x = nested.0 .1;
    let y = nested.0.0;
    (p.1 + u64::from(x) + u64::from(y)) as f64
}

fn radix_integers() -> u64 {
    let hex = 0xFF_u64;
    let oct = 0o77;
    let bin = 0b1010_1010;
    let plain = 1_000_000;
    hex + oct + bin + plain
}
