//! Corpus: error-swallowing shapes.

fn swallows(tx: Sender<u32>, r: Result<u32, String>) {
    let _ = tx.send(5); // finding: dropped Result from a call
    save_state().ok(); // finding: statement-final .ok()
    match r {
        Ok(v) => consume(v),
        Err(_) => {} // finding: silently dropped error arm
    }
}

fn counted_handling_is_fine(tx: Sender<u32>) {
    if tx.send(5).is_err() {
        record_drop(); // no finding: the error is observed
    }
    let _flag = true; // no finding: `let _name` binds, not discards
    let _ = 5; // no finding: no call in the discarded expression
    match probe() {
        Ok(v) => consume(v),
        Err(e) => log(e), // no finding: the error is used
    }
}
