//! Corpus: lock-discipline patterns that must NOT be flagged — the
//! checkout pattern gm-serve ships now, explicit drop before entry,
//! and a globally consistent acquisition order.

struct Slot {
    engine: Mutex<Option<Engine>>,
}

struct Dispatch {
    plan: Mutex<Plan>,
}

struct Ledger {
    entries: Mutex<Vec<Entry>>,
}

fn serve_one_checkout(slot: &Slot, query: &str) -> String {
    // Take the engine OUT of the mutex, solve unlocked, put it back.
    let mut gm = slot.engine.lock().take().unwrap_or_else(make_engine);
    let reply = gm.ask(query);
    *slot.engine.lock() = Some(gm);
    reply
}

fn drop_before_entry(slot: &Slot, gm: &mut Engine) -> String {
    let mut g = slot.engine.lock();
    g.touch();
    drop(g);
    gm.ask("post-release query")
}

fn consistent_commit(d: &Dispatch, l: &Ledger) {
    let p = d.plan.lock();
    let e = l.entries.lock(); // Dispatch.plan -> Ledger.entries
    e.apply(p);
}

fn consistent_audit(d: &Dispatch, l: &Ledger) {
    let p = d.plan.lock();
    let e = l.entries.lock(); // same direction: acyclic
    e.check(p);
}
