//! Corpus: lock-discipline violations — an AB/BA deadlock cycle and the
//! guard-held-across-engine-entry shape that gm-serve originally
//! shipped (engine mutex held for the whole `ask`, serializing every
//! session behind one solver run).

struct Dispatch {
    plan: Mutex<Plan>,
}

struct Ledger {
    entries: Mutex<Vec<Entry>>,
}

struct Slot {
    engine: Mutex<Option<Engine>>,
}

fn commit(d: &Dispatch, l: &Ledger) {
    let p = d.plan.lock();
    let e = l.entries.lock(); // edge: Dispatch.plan -> Ledger.entries
    e.apply(p);
}

fn replay(d: &Dispatch, l: &Ledger) {
    let e = l.entries.lock();
    let p = d.plan.lock(); // edge: Ledger.entries -> Dispatch.plan — CYCLE
    p.restore(e);
}

fn serve_one_original(slot: &Slot, query: &str) -> String {
    // The pre-checkout gm-serve shape: the slot's engine mutex stays
    // locked while the engine solves. Flagged: lock-across-entry.
    let mut engine = slot.engine.lock();
    let gm = engine.as_mut().expect("engine populated");
    gm.ask(query)
}
