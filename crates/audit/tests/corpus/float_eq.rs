//! Corpus: float comparison and NaN-unaware ordering.

fn float_comparisons(a: f64, b: f64, tol: f64) -> bool {
    if a == b {
        // finding: float-eq (exact equality on measured values)
        return true;
    }
    let close = (a - b).abs() < tol; // no finding: tolerance compare
    let zero_skip = a == 0.0; // no finding: exact-zero sparsity idiom
    let zero_skip2 = 0.0 != b; // no finding: exact-zero, either side
    let drift = a * 1.5 != b; // finding: float-eq
    close || zero_skip || zero_skip2 || drift
}

fn nan_unaware_sort(xs: &mut Vec<f64>) {
    xs.sort_by(|p, q| p.partial_cmp(q).unwrap()); // finding: nan-partial-cmp
    xs.sort_by(|p, q| p.total_cmp(q)); // no finding: NaN-total ordering
}

fn integer_equality_is_fine(n: usize, m: usize) -> bool {
    n == m // no finding: no float evidence
}
