//! Integration tests for gm-audit: the source-lint self-test (the
//! shipped tree must be clean and the allowlist exact) and the
//! model-lint rules exercised through the re-exported `GridLint`.

use std::path::PathBuf;

use gm_audit::source::ALLOWLIST_PATH;
use gm_audit::{lint_sources, GridLint, Severity};
use gm_network::{cases, Branch, Bus, BusKind, CaseId, GenCost, Generator, Load, Network};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

// ---------------------------------------------------------------- lint-src

#[test]
fn shipped_tree_is_lint_clean() {
    let rep = lint_sources(&repo_root()).expect("scan succeeds");
    assert!(
        rep.findings.is_empty(),
        "source-lint violations:\n{}",
        rep.findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        rep.allowlist_errors.is_empty(),
        "allowlist errors: {:?}",
        rep.allowlist_errors
    );
    assert!(rep.files_scanned > 20, "scanned {}", rep.files_scanned);
}

#[test]
fn allowlist_matches_grandfathered_sites_exactly() {
    // Every allowlist grant must be consumed by exactly that many real
    // sites: the sum of grandfathered counts equals the sum of the
    // grants in the file, entry by entry.
    let root = repo_root();
    let rep = lint_sources(&root).expect("scan succeeds");
    let text = std::fs::read_to_string(root.join(ALLOWLIST_PATH)).expect("allowlist readable");
    let mut granted = std::collections::BTreeMap::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        // `<path> <rule> <count>`, or legacy `<path> <count>` = no-panic.
        let (path, rule, count) = match parts.as_slice() {
            [path, rule, count] => (*path, *rule, *count),
            [path, count] => (*path, "no-panic", *count),
            other => panic!("malformed allowlist line: {other:?}"),
        };
        let count: usize = count.parse().expect("numeric count");
        granted.insert((path.to_string(), rule.to_string()), count);
    }
    assert_eq!(
        rep.grandfathered, granted,
        "grandfathered sites and allowlist grants must match exactly"
    );
}

#[test]
fn every_paper_case_passes_lint_case() {
    for id in [
        CaseId::Ieee14,
        CaseId::Ieee30,
        CaseId::Ieee57,
        CaseId::Ieee118,
        CaseId::Ieee300,
    ] {
        let net = cases::load(id);
        let errors: Vec<_> = GridLint::default()
            .audit(&net)
            .into_iter()
            .filter(|f| f.severity == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{id:?}: {errors:?}");
    }
}

// --------------------------------------------------------------- lint-case

fn two_bus() -> Network {
    let mut net = Network::new("audit-two-bus");
    let mut slack = Bus::pq(1, 138.0);
    slack.kind = BusKind::Slack;
    net.buses.push(slack);
    net.buses.push(Bus::pq(2, 138.0));
    net.branches
        .push(Branch::line(0, 1, 0.01, 0.1, 0.02, 100.0));
    net.loads.push(Load {
        bus: 1,
        p_mw: 50.0,
        q_mvar: 10.0,
        in_service: true,
    });
    net.gens.push(Generator {
        bus: 0,
        p_mw: 50.0,
        q_mvar: 0.0,
        vm_setpoint_pu: 1.0,
        p_min_mw: 0.0,
        p_max_mw: 200.0,
        q_min_mvar: -100.0,
        q_max_mvar: 100.0,
        in_service: true,
        cost: GenCost {
            c2: 0.01,
            c1: 20.0,
            c0: 0.0,
        },
    });
    net
}

fn codes(net: &Network) -> Vec<String> {
    GridLint::default()
        .audit(net)
        .into_iter()
        .map(|f| f.code)
        .collect()
}

#[test]
fn islanded_bus_detected() {
    let mut net = two_bus();
    net.branches[0].in_service = false;
    assert!(codes(&net).contains(&"GM-ISLAND".to_string()));
}

#[test]
fn dual_slack_detected() {
    let mut net = two_bus();
    net.buses[1].kind = BusKind::Slack;
    assert!(codes(&net).contains(&"GM-SLACK-MULTI".to_string()));
}

#[test]
fn inverted_gen_limits_detected() {
    let mut net = two_bus();
    net.gens[0].p_min_mw = 300.0; // > p_max = 200
    assert!(codes(&net).contains(&"GM-GEN-LIMITS".to_string()));
}

#[test]
fn inverted_voltage_limits_detected() {
    let mut net = two_bus();
    net.buses[1].vmin_pu = 1.2; // > vmax
    assert!(codes(&net).contains(&"GM-VOLT-LIMITS".to_string()));
}

#[test]
fn zero_impedance_branch_detected() {
    let mut net = two_bus();
    net.branches[0].x_pu = 0.0;
    assert!(codes(&net).contains(&"GM-DEGENERATE-X".to_string()));
}

#[test]
fn findings_are_structured_and_errors_sort_first() {
    let mut net = two_bus();
    net.branches[0].x_pu = 0.0; // error
    net.buses[1].vm_pu = 1.5; // warning (outside limits at start)
    let findings = GridLint::default().audit(&net);
    assert!(findings.len() >= 2);
    assert_eq!(findings[0].severity, Severity::Error);
    let f = &findings[0];
    assert!(!f.code.is_empty() && !f.entity.is_empty() && !f.message.is_empty());
    // Severity never increases down the list.
    for w in findings.windows(2) {
        assert!(w[0].severity >= w[1].severity);
    }
}
