//! `gm-audit` CLI: workspace static analysis.
//!
//! ```text
//! cargo run -p gm-audit -- lint-src [--json PATH]    # source invariants
//! cargo run -p gm-audit -- lock-graph [--json PATH]  # lock discipline
//! cargo run -p gm-audit -- lint-case <case>          # model invariants
//! ```
//!
//! Exits nonzero when any violation (or, for `lint-case`, any
//! error-severity finding) is present — suitable as a CI gate.
//! `--json` additionally writes the findings as a machine-readable
//! artifact (hand-rolled serialization: this crate stays
//! zero-dependency).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use gm_audit::locks::lint_locks;
use gm_audit::{lint_sources, GridLint, Severity, SourceFinding};

fn repo_root() -> PathBuf {
    // crates/audit → repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: gm-audit <lint-src [--json PATH] | lock-graph [--json PATH] | lint-case CASE>"
    );
    ExitCode::from(2)
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_findings(findings: &[SourceFinding]) -> String {
    let items: Vec<String> = findings
        .iter()
        .map(|f| {
            format!(
                "{{\"file\":{},\"line\":{},\"rule\":{},\"excerpt\":{}}}",
                json_str(&f.file),
                f.line,
                json_str(f.rule),
                json_str(&f.excerpt)
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

fn write_json(path: &str, body: &str) -> ExitCode {
    match std::fs::write(path, body) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            ExitCode::from(2)
        }
    }
}

fn lint_src(json: Option<&str>) -> ExitCode {
    let root = repo_root();
    let mut rep = match lint_sources(&root) {
        Ok(rep) => rep,
        Err(e) => {
            eprintln!("lint-src: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    match gm_audit::xref::lint_telemetry_xref(&root) {
        Ok(mut xref) => rep.findings.append(&mut xref),
        Err(e) => {
            eprintln!("lint-src: telemetry xref failed: {e}");
            return ExitCode::from(2);
        }
    }
    for f in &rep.findings {
        println!("{f}");
    }
    for e in &rep.allowlist_errors {
        println!("allowlist: {e}");
    }
    if let Some(path) = json {
        let body = format!(
            "{{\"findings\":{},\"allowlist_errors\":{},\"files_scanned\":{},\"grandfathered\":{}}}\n",
            json_findings(&rep.findings),
            format_args!(
                "[{}]",
                rep.allowlist_errors
                    .iter()
                    .map(|e| json_str(e))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            rep.files_scanned,
            rep.grandfathered.values().sum::<usize>(),
        );
        let code = write_json(path, &body);
        if code != ExitCode::SUCCESS {
            return code;
        }
    }
    let grandfathered: usize = rep.grandfathered.values().sum();
    if rep.is_clean() {
        println!(
            "lint-src clean: {} files scanned, {} grandfathered site(s)",
            rep.files_scanned, grandfathered
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "lint-src: {} violation(s), {} allowlist error(s)",
            rep.findings.len(),
            rep.allowlist_errors.len()
        );
        ExitCode::FAILURE
    }
}

fn lock_graph(json: Option<&str>) -> ExitCode {
    let root = repo_root();
    let rep = match lint_locks(&root) {
        Ok(rep) => rep,
        Err(e) => {
            eprintln!("lock-graph: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    println!(
        "lock-graph: {} lock(s), {} order edge(s), {} function(s) analyzed",
        rep.locks.len(),
        rep.edges.len(),
        rep.functions_analyzed
    );
    for l in &rep.locks {
        println!("  lock {} ({}) at {}:{}", l.id, l.kind, l.file, l.line);
    }
    for e in &rep.edges {
        println!("  order {} -> {} at {}", e.held, e.acquired, e.site);
    }
    for f in &rep.findings {
        println!("{f}");
    }
    for c in &rep.cycles {
        println!("  CYCLE: {}", c.join(" -> "));
    }
    if let Some(path) = json {
        let locks: Vec<String> = rep
            .locks
            .iter()
            .map(|l| {
                format!(
                    "{{\"id\":{},\"kind\":{},\"file\":{},\"line\":{}}}",
                    json_str(&l.id),
                    json_str(l.kind),
                    json_str(&l.file),
                    l.line
                )
            })
            .collect();
        let edges: Vec<String> = rep
            .edges
            .iter()
            .map(|e| {
                format!(
                    "{{\"held\":{},\"acquired\":{},\"site\":{}}}",
                    json_str(&e.held),
                    json_str(&e.acquired),
                    json_str(&e.site)
                )
            })
            .collect();
        let cycles: Vec<String> = rep
            .cycles
            .iter()
            .map(|c| {
                format!(
                    "[{}]",
                    c.iter().map(|s| json_str(s)).collect::<Vec<_>>().join(",")
                )
            })
            .collect();
        let body = format!(
            "{{\"locks\":[{}],\"edges\":[{}],\"cycles\":[{}],\"findings\":{}}}\n",
            locks.join(","),
            edges.join(","),
            cycles.join(","),
            json_findings(&rep.findings),
        );
        let code = write_json(path, &body);
        if code != ExitCode::SUCCESS {
            return code;
        }
    }
    if rep.is_clean() {
        println!("lock-graph clean: order acyclic, no guard spans an engine entry");
        ExitCode::SUCCESS
    } else {
        println!(
            "lock-graph: {} finding(s), {} cycle(s)",
            rep.findings.len(),
            rep.cycles.len()
        );
        ExitCode::FAILURE
    }
}

fn lint_case(name: &str) -> ExitCode {
    let (net, conf) = match gm_network::cases::load_case(name) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("lint-case: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "auditing {} ({} buses, {} branches; matched with confidence {conf:.2})",
        net.name,
        net.n_bus(),
        net.branches.len()
    );
    let findings = GridLint::default().audit(&net);
    for f in &findings {
        println!("{f}");
    }
    let errors = findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .count();
    if errors == 0 {
        println!("lint-case clean: {} finding(s), no errors", findings.len());
        ExitCode::SUCCESS
    } else {
        println!("lint-case: {errors} error(s)");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_arg = |idx: usize| -> Option<&str> {
        match args.get(idx).map(String::as_str) {
            Some("--json") => args.get(idx + 1).map(String::as_str),
            _ => None,
        }
    };
    match args.first().map(String::as_str) {
        Some("lint-src") => {
            if args.len() > 1 && json_arg(1).is_none() {
                return usage();
            }
            lint_src(json_arg(1))
        }
        Some("lock-graph") => {
            if args.len() > 1 && json_arg(1).is_none() {
                return usage();
            }
            lock_graph(json_arg(1))
        }
        Some("lint-case") => match args.get(1) {
            Some(case) => lint_case(case),
            None => usage(),
        },
        _ => usage(),
    }
}
