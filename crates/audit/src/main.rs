//! `gm-audit` CLI: workspace static analysis.
//!
//! ```text
//! cargo run -p gm-audit -- lint-src            # source invariants
//! cargo run -p gm-audit -- lint-case <case>    # model invariants
//! ```
//!
//! Exits nonzero when any violation (or, for `lint-case`, any
//! error-severity finding) is present — suitable as a CI gate.

use std::path::PathBuf;
use std::process::ExitCode;

use gm_audit::{lint_sources, GridLint, Severity};

fn repo_root() -> PathBuf {
    // crates/audit → repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn usage() -> ExitCode {
    eprintln!("usage: gm-audit <lint-src | lint-case CASE>");
    ExitCode::from(2)
}

fn lint_src() -> ExitCode {
    let root = repo_root();
    let rep = match lint_sources(&root) {
        Ok(rep) => rep,
        Err(e) => {
            eprintln!("lint-src: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for f in &rep.findings {
        println!("{f}");
    }
    for e in &rep.allowlist_errors {
        println!("allowlist: {e}");
    }
    let grandfathered: usize = rep.grandfathered.values().sum();
    if rep.is_clean() {
        println!(
            "lint-src clean: {} files scanned, {} grandfathered site(s)",
            rep.files_scanned, grandfathered
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "lint-src: {} violation(s), {} allowlist error(s)",
            rep.findings.len(),
            rep.allowlist_errors.len()
        );
        ExitCode::FAILURE
    }
}

fn lint_case(name: &str) -> ExitCode {
    let (net, conf) = match gm_network::cases::load_case(name) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("lint-case: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "auditing {} ({} buses, {} branches; matched with confidence {conf:.2})",
        net.name,
        net.n_bus(),
        net.branches.len()
    );
    let findings = GridLint::default().audit(&net);
    for f in &findings {
        println!("{f}");
    }
    let errors = findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .count();
    if errors == 0 {
        println!("lint-case clean: {} finding(s), no errors", findings.len());
        ExitCode::SUCCESS
    } else {
        println!("lint-case: {errors} error(s)");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint-src") => lint_src(),
        Some("lint-case") => match args.get(1) {
            Some(case) => lint_case(case),
            None => usage(),
        },
        _ => usage(),
    }
}
