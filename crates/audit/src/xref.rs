//! Telemetry cross-reference lint.
//!
//! The telemetry layer is stringly typed: instrumentation *registers*
//! counters and histograms by name (`counter_add("pf.newton.solves", 1)`,
//! `reg.add(..)`, `reg.record(..)`), while the export layer and tests
//! *demand* names (`REQUIRED_SOLVER_METRICS` behind `gm-trace --check`,
//! `counter_value("..")` assertions, `sum_prefix("..")` aggregations).
//! Nothing ties the two sides together at compile time, so a renamed
//! metric silently turns a CI gate into a tautology. This lint rebuilds
//! both sides from the token tree and fails on drift:
//!
//! * every demanded metric name must be registered somewhere — as an
//!   exact literal, or under a dynamic `format!("prefix.{..}")` family
//!   (known families: `nlu.intent.`, `faults.injected.`, `session.`);
//! * every `sum_prefix("p.")` demand must match at least one registered
//!   name or dynamic family;
//! * `REQUIRED_SOLVER_METRICS` must not contain duplicates.
//!
//! Registration is collected from non-test code only; demands made from
//! test code may additionally be satisfied by names registered in test
//! code (a test that wires its own registry is fine), but production
//! demands and the required-metrics list must be backed by production
//! instrumentation. Literal collection inside a registration call is
//! deliberately greedy (every string literal in the argument list
//! counts, which handles `counter_add(match k { .. => "route.acopf" })`);
//! over-collection can only weaken the lint, never fail it spuriously.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::Path;

use crate::lex::TokKind;
use crate::source::SourceFinding;
use crate::tree::{parse, scan_items, TokenTree};

/// Functions whose string-literal arguments register a metric name.
/// `add`/`record`/`record_quantile`/`flight_record` count as method
/// calls only; the rest are the free-function mirrors.
const REGISTER_FNS: &[&str] = &[
    "counter_add",
    "histogram_record",
    "quantile_record",
    "flight_event",
    "add",
    "record",
    "record_quantile",
    "flight_record",
];

/// Free-function registration entry points (always collected, no
/// receiver required).
const FREE_REGISTER_FNS: &[&str] = &[
    "counter_add",
    "histogram_record",
    "quantile_record",
    "flight_event",
];

/// Functions whose first string-literal argument demands an exact name.
const DEMAND_FNS: &[&str] = &["counter_value", "quantile_value"];

/// Keys a `[kind]` section in `slo.toml` may carry — must stay in sync
/// with `gm_telemetry::SLO_KEYS` (asserted by the umbrella crate's
/// `tests/slo_gate.rs`, which sees both crates).
pub const SLO_TOML_KEYS: &[&str] = &["p50_ms", "p99_ms", "max_ms"];

/// Functions whose first string-literal argument demands a name family.
const PREFIX_DEMAND_FNS: &[&str] = &["sum_prefix"];

#[derive(Debug, Default)]
struct Side {
    names: BTreeSet<String>,
    prefixes: BTreeSet<String>,
}

#[derive(Debug)]
struct Demand {
    name: String,
    prefix: bool,
    in_test: bool,
    file: String,
    line: usize,
}

/// Cross-references telemetry registrations against demands over
/// `(path, text)` pairs. Separated from the directory walker so the
/// golden corpus can feed fixtures.
pub fn xref_sources(files: &[(String, String)]) -> Vec<SourceFinding> {
    xref_sources_with_slo(files, None)
}

/// [`xref_sources`] plus an optional committed SLO spec as a
/// `(path, text)` pair: every `[kind]` section demands the exact
/// `serve.latency.<kind>.total_s` sketch the gate will read, and an
/// unknown target key is a finding — renaming either side (the metric
/// in instrumentation, or the kind/key in `slo.toml`) un-gates CI and
/// must not pass the lint.
pub fn xref_sources_with_slo(
    files: &[(String, String)],
    slo: Option<(&str, &str)>,
) -> Vec<SourceFinding> {
    let mut prod = Side::default();
    let mut test = Side::default();
    let mut demands: Vec<Demand> = Vec::new();
    let mut required: Vec<(String, String, usize)> = Vec::new();

    for (path, text) in files {
        let (trees, _) = parse(text);
        let file_is_test = path.contains("/tests/");
        scan(
            &trees,
            path,
            file_is_test,
            &mut prod,
            &mut test,
            &mut demands,
            &mut required,
        );
    }

    let mut findings = Vec::new();

    if let Some((slo_path, slo_text)) = slo {
        scan_slo_spec(slo_path, slo_text, &mut demands, &mut findings);
    }

    // Duplicate required entries: the gate would double-count one
    // metric and the author almost certainly meant a different name.
    let mut seen = BTreeSet::new();
    for (name, file, line) in &required {
        if !seen.insert(name.clone()) {
            findings.push(SourceFinding {
                file: file.clone(),
                line: *line,
                rule: "telemetry-xref",
                excerpt: format!("duplicate required metric {name:?}"),
            });
        }
    }
    for (name, file, line) in &required {
        // A required entry ending in `.` is a prefix family (the
        // `REQUIRED_SERVE_METRICS` convention): some instrumentation
        // site must be able to produce a name under it.
        let ok = if name.ends_with('.') {
            prefix_registered(&prod, name)
        } else {
            registered(&prod, name)
        };
        if !ok {
            findings.push(SourceFinding {
                file: file.clone(),
                line: *line,
                rule: "telemetry-xref",
                excerpt: format!(
                    "required metric {name:?} is never registered by any instrumentation site"
                ),
            });
        }
    }
    for d in &demands {
        let sides: &[&Side] = if d.in_test { &[&prod, &test] } else { &[&prod] };
        let ok = if d.prefix {
            sides.iter().any(|s| prefix_registered(s, &d.name))
        } else {
            sides.iter().any(|s| registered(s, &d.name))
        };
        if !ok {
            let what = if d.prefix { "prefix" } else { "metric" };
            findings.push(SourceFinding {
                file: d.file.clone(),
                line: d.line,
                rule: "telemetry-xref",
                excerpt: format!(
                    "{what} {:?} is read but never registered — renamed or dead metric",
                    d.name
                ),
            });
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, &a.excerpt).cmp(&(&b.file, b.line, &b.excerpt)));
    findings.dedup_by(|a, b| (&a.file, a.line, &a.excerpt) == (&b.file, b.line, &b.excerpt));
    findings
}

/// Walks the whole workspace: every `crates/*/src` tree plus crate-level
/// and workspace-level `tests/` directories.
pub fn lint_telemetry_xref(repo_root: &Path) -> io::Result<Vec<SourceFinding>> {
    let mut files = Vec::new();
    let crates_dir = repo_root.join("crates");
    let mut roots: Vec<std::path::PathBuf> = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let path = entry?.path();
        if path.join("src").is_dir() {
            roots.push(path.join("src"));
        }
        if path.join("tests").is_dir() {
            roots.push(path.join("tests"));
        }
    }
    if repo_root.join("tests").is_dir() {
        roots.push(repo_root.join("tests"));
    }
    roots.sort();
    for root in roots {
        let mut paths = Vec::new();
        collect_rs(&root, &mut paths)?;
        for path in paths {
            let rel = path
                .strip_prefix(repo_root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            files.push((rel, fs::read_to_string(&path)?));
        }
    }
    let slo_path = repo_root.join("slo.toml");
    let slo_text = if slo_path.is_file() {
        Some(fs::read_to_string(&slo_path)?)
    } else {
        None
    };
    Ok(xref_sources_with_slo(
        &files,
        slo_text.as_deref().map(|t| ("slo.toml", t)),
    ))
}

/// Collects demands from the committed `slo.toml`: each `[kind]`
/// section will make `gm-trace slo` read the exact
/// `serve.latency.<kind>.total_s` sketch, so that name must be
/// producible by production instrumentation. Target keys outside
/// [`SLO_TOML_KEYS`] are findings (the gate's own parser would reject
/// them, but the lint catches the typo before a CI run does).
fn scan_slo_spec(
    path: &str,
    text: &str,
    demands: &mut Vec<Demand>,
    findings: &mut Vec<SourceFinding>,
) {
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(section) = line.strip_prefix('[') {
            let kind = section.strip_suffix(']').unwrap_or(section).trim();
            if kind.is_empty() {
                continue; // malformed header: the spec parser rejects it
            }
            demands.push(Demand {
                name: format!("serve.latency.{kind}.total_s"),
                prefix: false,
                in_test: false,
                file: path.to_string(),
                line: lineno + 1,
            });
        } else if let Some((key, _)) = line.split_once('=') {
            let key = key.trim();
            if !SLO_TOML_KEYS.contains(&key) {
                findings.push(SourceFinding {
                    file: path.to_string(),
                    line: lineno + 1,
                    rule: "telemetry-xref",
                    excerpt: format!(
                        "unknown slo.toml key {key:?} (expected one of {})",
                        SLO_TOML_KEYS.join(", ")
                    ),
                });
            }
        }
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
    Ok(())
}

fn registered(side: &Side, name: &str) -> bool {
    side.names.contains(name) || side.prefixes.iter().any(|p| name.starts_with(p.as_str()))
}

/// A `sum_prefix("p.")` demand is satisfied by any registered name in
/// the family, or by a dynamic family that can produce such names.
fn prefix_registered(side: &Side, prefix: &str) -> bool {
    side.names.iter().any(|n| n.starts_with(prefix))
        || side
            .prefixes
            .iter()
            .any(|p| p.starts_with(prefix) || prefix.starts_with(p.as_str()))
}

#[allow(clippy::too_many_arguments)]
fn scan(
    trees: &[TokenTree],
    file: &str,
    in_test: bool,
    prod: &mut Side,
    test: &mut Side,
    demands: &mut Vec<Demand>,
    required: &mut Vec<(String, String, usize)>,
) {
    // Mark spans of #[cfg(test)] / #[test]-marked items as test code.
    let mut test_mask = vec![in_test; trees.len()];
    for item in scan_items(trees) {
        if item.is_cfg_test() || item.has_test_marker() {
            for m in test_mask.iter_mut().take(item.span.1).skip(item.span.0) {
                *m = true;
            }
        }
    }

    for i in 0..trees.len() {
        let is_test = test_mask[i];
        // Required-metrics lists: the next bracket group holds the list.
        if trees[i].leaf().is_some_and(|t| {
            t.is_ident("REQUIRED_SOLVER_METRICS") || t.is_ident("REQUIRED_SERVE_METRICS")
        }) {
            // Skip the `&[&str]` type annotation: the value list is the
            // first bracket group that actually holds string literals.
            for tree in trees.iter().take(trees.len().min(i + 10)).skip(i + 1) {
                if let Some(g) = tree.group() {
                    if g.delim == '[' {
                        let lits: Vec<&crate::lex::Token> = g
                            .trees
                            .iter()
                            .filter_map(|t| t.leaf().filter(|tok| tok.kind == TokKind::StrLit))
                            .collect();
                        if !lits.is_empty() {
                            for tok in lits {
                                required.push((tok.text.clone(), file.to_string(), tok.line));
                            }
                            break;
                        }
                    }
                }
            }
        }
        if let (Some(tok), Some(g)) = (trees[i].leaf(), trees.get(i + 1).and_then(TokenTree::group))
        {
            if tok.kind == TokKind::Ident && g.delim == '(' {
                let name = tok.text.as_str();
                // Method-only names (`add`, `record`, ...) only count as
                // metric calls behind a receiver (`reg.add(..)`), never
                // as bare fns; the free-function mirrors always count.
                let is_method = i > 0 && trees[i - 1].is_punct('.');
                let is_free_register = FREE_REGISTER_FNS.contains(&name);
                if REGISTER_FNS.contains(&name) && (is_method || is_free_register) {
                    let side = if is_test { &mut *test } else { &mut *prod };
                    collect_literals(&g.trees, side);
                }
                // The telemetry crate's own unit tests exercise registry
                // *machinery* with synthetic names (including deliberate
                // absent-prefix reads) — they are not instrumentation
                // demands.
                let machinery_test = is_test && file.starts_with("crates/telemetry/");
                if !machinery_test
                    && (DEMAND_FNS.contains(&name) || PREFIX_DEMAND_FNS.contains(&name))
                {
                    if let Some(lit) = first_str_lit(&g.trees) {
                        demands.push(Demand {
                            name: lit.text.clone(),
                            prefix: PREFIX_DEMAND_FNS.contains(&name),
                            in_test: is_test,
                            file: file.to_string(),
                            line: lit.line,
                        });
                    }
                }
            }
        }
        if let TokenTree::Group(g) = &trees[i] {
            scan(&g.trees, file, is_test, prod, test, demands, required);
        }
    }
}

/// Every string literal inside a registration call's arguments. A
/// literal with a `{` hole comes from `format!` and registers its
/// static prefix as a dynamic family.
fn collect_literals(trees: &[TokenTree], side: &mut Side) {
    for t in trees {
        match t {
            TokenTree::Leaf(tok) if tok.kind == TokKind::StrLit => match tok.text.split_once('{') {
                Some((prefix, _)) if !prefix.is_empty() => {
                    side.prefixes.insert(prefix.to_string());
                }
                Some(_) => {}
                None => {
                    side.names.insert(tok.text.clone());
                }
            },
            TokenTree::Group(g) => collect_literals(&g.trees, side),
            _ => {}
        }
    }
}

fn first_str_lit(trees: &[TokenTree]) -> Option<&crate::lex::Token> {
    trees
        .iter()
        .find_map(|t| t.leaf().filter(|tok| tok.kind == TokKind::StrLit))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xref(files: &[(&str, &str)]) -> Vec<SourceFinding> {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        xref_sources(&owned)
    }

    #[test]
    fn registered_and_demanded_is_clean() {
        let f = xref(&[(
            "crates/x/src/lib.rs",
            r#"
            fn instrument() { counter_add("pf.solves", 1); }
            pub const REQUIRED_SOLVER_METRICS: &[&str] = &["pf.solves"];
            "#,
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn required_but_never_registered_fails() {
        let f = xref(&[(
            "crates/x/src/lib.rs",
            r#"pub const REQUIRED_SOLVER_METRICS: &[&str] = &["pf.ghost"];"#,
        )]);
        assert_eq!(f.len(), 1);
        assert!(f[0].excerpt.contains("pf.ghost"));
    }

    #[test]
    fn duplicate_required_entries_fail() {
        let f = xref(&[(
            "crates/x/src/lib.rs",
            r#"
            fn i() { counter_add("a.b", 1); }
            pub const REQUIRED_SOLVER_METRICS: &[&str] = &["a.b", "a.b"];
            "#,
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].excerpt.contains("duplicate"));
    }

    #[test]
    fn dynamic_prefix_satisfies_family_demands() {
        let f = xref(&[(
            "crates/x/src/lib.rs",
            r#"
            fn i(site: &str) { counter_add(&format!("faults.injected.{site}"), 1); }
            fn read(reg: &Registry) -> u64 { reg.counter_value("faults.injected.cache.get") }
            "#,
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unregistered_read_fails() {
        let f = xref(&[(
            "crates/x/src/lib.rs",
            r#"fn read(reg: &Registry) -> u64 { reg.counter_value("serve.typo") }"#,
        )]);
        assert_eq!(f.len(), 1);
        assert!(f[0].excerpt.contains("serve.typo"));
    }

    #[test]
    fn sum_prefix_must_match_a_family() {
        let clean = xref(&[(
            "crates/x/src/lib.rs",
            r#"
            fn i() { counter_add("recovery.dc", 1); }
            fn read(reg: &Registry) -> u64 { reg.sum_prefix("recovery.") }
            "#,
        )]);
        assert!(clean.is_empty(), "{clean:?}");
        let dirty = xref(&[(
            "crates/x/src/lib.rs",
            r#"fn read(reg: &Registry) -> u64 { reg.sum_prefix("recovry.") }"#,
        )]);
        assert_eq!(dirty.len(), 1);
    }

    #[test]
    fn match_arm_literals_register() {
        let f = xref(&[(
            "crates/x/src/lib.rs",
            r#"
            fn i(k: Kind) {
                counter_add(match k { Kind::A => "route.a", Kind::B => "route.b" }, 1);
            }
            fn read(reg: &Registry) -> u64 { reg.counter_value("route.b") }
            "#,
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_registration_satisfies_test_demand_only() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() {
                    counter_add("only.in.test", 1);
                    assert_eq!(reg.counter_value("only.in.test"), 1);
                }
            }
            fn prod_read(reg: &Registry) -> u64 { reg.counter_value("only.in.test") }
        "#;
        let f = xref(&[("crates/x/src/lib.rs", src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].excerpt.contains("only.in.test"));
    }

    #[test]
    fn integration_test_files_count_as_test_code() {
        let f = xref(&[
            (
                "crates/x/src/lib.rs",
                r#"fn i() { counter_add("pf.solves", 1); }"#,
            ),
            (
                "crates/x/tests/e2e.rs",
                r#"
                fn t() {
                    counter_add("scratch.metric", 1);
                    assert_eq!(reg.counter_value("scratch.metric"), 1);
                    assert_eq!(reg.counter_value("pf.solves"), 1);
                }
                "#,
            ),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn csmat_add_without_literals_is_ignored() {
        let f = xref(&[(
            "crates/x/src/lib.rs",
            r#"fn sum(m: &CsMat) -> CsMat { m.add(m) }"#,
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn quantile_and_flight_registrations_are_collected() {
        let f = xref(&[(
            "crates/x/src/lib.rs",
            r#"
            fn i(kind: &str) {
                reg.record_quantile(&format!("serve.latency.{kind}.queue_wait_s"), 0.1);
                quantile_record("serve.latency.pf.total_s", 0.2);
                gm_telemetry::flight_event("cache.hit", "kind=pf");
            }
            fn read(reg: &Registry) -> Option<f64> {
                reg.quantile_value("serve.latency.pf.total_s", 0.99)
            }
            "#,
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unregistered_quantile_read_fails() {
        let f = xref(&[(
            "crates/x/src/lib.rs",
            r#"fn read(reg: &Registry) -> Option<f64> { reg.quantile_value("serve.latency.typo_s", 0.5) }"#,
        )]);
        assert_eq!(f.len(), 1);
        assert!(f[0].excerpt.contains("serve.latency.typo_s"));
    }

    #[test]
    fn serve_required_prefix_family_must_be_producible() {
        let clean = xref(&[(
            "crates/x/src/lib.rs",
            r#"
            fn i(kind: &str) { quantile_record(&format!("serve.latency.{kind}.total_s"), 0.1); }
            pub const REQUIRED_SERVE_METRICS: &[&str] = &["serve.latency."];
            "#,
        )]);
        assert!(clean.is_empty(), "{clean:?}");
        let dirty = xref(&[(
            "crates/x/src/lib.rs",
            r#"pub const REQUIRED_SERVE_METRICS: &[&str] = &["serve.latency."];"#,
        )]);
        assert_eq!(dirty.len(), 1, "{dirty:?}");
        assert!(dirty[0].excerpt.contains("serve.latency."));
    }

    fn xref_slo(files: &[(&str, &str)], slo: &str) -> Vec<SourceFinding> {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        xref_sources_with_slo(&owned, Some(("slo.toml", slo)))
    }

    #[test]
    fn slo_kind_demands_the_exact_total_sketch() {
        let inst = (
            "crates/x/src/lib.rs",
            r#"fn i() { quantile_record(match k { K::Pf => "serve.latency.pf.total_s" }, 0.1); }"#,
        );
        let clean = xref_slo(&[inst], "[pf]\np99_ms = 100.0\n");
        assert!(clean.is_empty(), "{clean:?}");

        // A kind in slo.toml with no instrumentation able to produce its
        // sketch would gate CI on a metric that can never exist.
        let dirty = xref_slo(&[inst], "[contingency]\np99_ms = 100.0\n");
        assert_eq!(dirty.len(), 1, "{dirty:?}");
        assert!(dirty[0]
            .excerpt
            .contains("serve.latency.contingency.total_s"));
        assert_eq!(dirty[0].file, "slo.toml");
    }

    #[test]
    fn slo_dynamic_family_also_satisfies_kind_demands() {
        let f = xref_slo(
            &[(
                "crates/x/src/lib.rs",
                r#"fn i(kind: &str) { quantile_record(&format!("serve.latency.{kind}.total_s"), 0.1); }"#,
            )],
            "[pf]\np50_ms = 10.0\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unknown_slo_key_is_a_finding() {
        let f = xref_slo(
            &[(
                "crates/x/src/lib.rs",
                r#"fn i(kind: &str) { quantile_record(&format!("serve.latency.{kind}.total_s"), 0.1); }"#,
            )],
            "[pf]\np95_ms = 10.0\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].excerpt.contains("p95_ms"));
        assert_eq!(f[0].line, 2);
    }
}
