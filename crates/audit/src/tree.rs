//! Token trees and item structure on top of [`crate::lex`].
//!
//! A [`TokenTree`] is either a leaf token or a delimiter group
//! (`(…)`, `[…]`, `{…}`) containing a nested stream. On top of the
//! raw tree, [`scan_items`] recognizes the item structure the lints
//! care about — outer attributes (`#[…]`), `fn` items with their body
//! groups, `impl`/`mod` containers, and `struct` field lists — without
//! attempting to be a full Rust parser. Recognition is *positional*
//! (attribute runs bind to the next item-starting keyword), which is
//! exactly the rule Rust itself uses, so `#[cfg(test)]` exemptions are
//! attribute-accurate instead of regex-approximate, and work at any
//! nesting depth — including inside macro invocation bodies such as
//! `proptest! { #[test] fn … }`.

use crate::lex::{lex, LexError, TokKind, Token};

/// One node of the token tree.
#[derive(Clone, Debug)]
pub enum TokenTree {
    /// A non-delimiter token.
    Leaf(Token),
    /// A delimited group and its contents.
    Group(Group),
}

/// A delimited token group.
#[derive(Clone, Debug)]
pub struct Group {
    /// The opening delimiter: `(`, `[`, or `{`.
    pub delim: char,
    /// 1-based line of the opening delimiter.
    pub line: usize,
    /// The nested stream.
    pub trees: Vec<TokenTree>,
}

impl TokenTree {
    /// The 1-based source line this node starts on.
    pub fn line(&self) -> usize {
        match self {
            TokenTree::Leaf(t) => t.line,
            TokenTree::Group(g) => g.line,
        }
    }

    /// Leaf accessor.
    pub fn leaf(&self) -> Option<&Token> {
        match self {
            TokenTree::Leaf(t) => Some(t),
            TokenTree::Group(_) => None,
        }
    }

    /// Group accessor.
    pub fn group(&self) -> Option<&Group> {
        match self {
            TokenTree::Group(g) => Some(g),
            TokenTree::Leaf(_) => None,
        }
    }

    /// True for an identifier leaf with this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.leaf().is_some_and(|t| t.is_ident(s))
    }

    /// True for a punctuation leaf with this character.
    pub fn is_punct(&self, c: char) -> bool {
        self.leaf().is_some_and(|t| t.is_punct(c))
    }
}

/// Lexes and parses `src` into a top-level token stream. Unbalanced
/// delimiters are reported as [`LexError`]s; parsing recovers by
/// closing groups at end of input so the lints still run.
pub fn parse(src: &str) -> (Vec<TokenTree>, Vec<LexError>) {
    let (tokens, mut errors) = lex(src);
    let mut stack: Vec<Group> = Vec::new();
    let mut top: Vec<TokenTree> = Vec::new();
    for tok in tokens {
        match tok.kind {
            TokKind::Open => stack.push(Group {
                delim: tok.text.chars().next().unwrap_or('('),
                line: tok.line,
                trees: Vec::new(),
            }),
            TokKind::Close => {
                if let Some(g) = stack.pop() {
                    let closed = TokenTree::Group(g);
                    match stack.last_mut() {
                        Some(parent) => parent.trees.push(closed),
                        None => top.push(closed),
                    }
                } else {
                    errors.push(LexError {
                        line: tok.line,
                        message: format!("unbalanced closing `{}`", tok.text),
                    });
                }
            }
            _ => {
                let leaf = TokenTree::Leaf(tok);
                match stack.last_mut() {
                    Some(parent) => parent.trees.push(leaf),
                    None => top.push(leaf),
                }
            }
        }
    }
    while let Some(g) = stack.pop() {
        errors.push(LexError {
            line: g.line,
            message: format!("unclosed `{}`", g.delim),
        });
        let closed = TokenTree::Group(g);
        match stack.last_mut() {
            Some(parent) => parent.trees.push(closed),
            None => top.push(closed),
        }
    }
    (top, errors)
}

/// An outer attribute (`#[…]`), kept as its raw token stream.
#[derive(Clone, Debug)]
pub struct Attr {
    /// The attribute's bracket-group contents.
    pub trees: Vec<TokenTree>,
    /// 1-based line of the `#`.
    pub line: usize,
}

impl Attr {
    /// The attribute's leading path identifier (`test`, `cfg`,
    /// `should_panic`, `allow`, …).
    pub fn path(&self) -> Option<&str> {
        self.trees.first()?.leaf().map(|t| t.text.as_str())
    }

    /// True when `ident` appears anywhere inside the attribute's token
    /// stream (any nesting depth) — `test` inside `#[cfg(test)]` or
    /// `#[cfg(all(test, feature = "x"))]`.
    pub fn contains_ident(&self, ident: &str) -> bool {
        fn walk(trees: &[TokenTree], ident: &str) -> bool {
            trees.iter().any(|t| match t {
                TokenTree::Leaf(tok) => tok.is_ident(ident),
                TokenTree::Group(g) => walk(&g.trees, ident),
            })
        }
        walk(&self.trees, ident)
    }

    /// True for `#[cfg(test)]` and any `cfg` attribute that mentions
    /// `test` (e.g. `#[cfg(all(test, …))]`).
    pub fn is_cfg_test(&self) -> bool {
        self.path() == Some("cfg") && self.contains_ident("test")
    }

    /// True for `#[test]` and `#[should_panic…]` (also the namespaced
    /// spellings `#[tokio::test]`-style, judged by the final path
    /// segment).
    pub fn is_test_marker(&self) -> bool {
        match self.path() {
            Some("test") | Some("should_panic") => true,
            _ => {
                // `#[foo::test]`: last ident before the bracket group /
                // end is `test`.
                let mut last = None;
                for t in &self.trees {
                    match t {
                        TokenTree::Leaf(tok) if tok.kind == TokKind::Ident => {
                            last = Some(tok.text.as_str());
                        }
                        TokenTree::Leaf(tok) if tok.is_punct(':') => {}
                        _ => break,
                    }
                }
                last == Some("test")
            }
        }
    }
}

/// One recognized item in a token stream.
#[derive(Clone, Debug)]
pub struct Item<'a> {
    /// Outer attributes bound to this item.
    pub attrs: Vec<Attr>,
    /// Item keyword: `fn`, `mod`, `impl`, `struct`, `enum`, `trait`,
    /// `type`, `const`, `static`, `macro-call` (an `ident!{…}`
    /// invocation), or `other` for token runs the scanner does not
    /// model.
    pub kind: &'static str,
    /// The item's name (`fn NAME`, `mod NAME`, `struct NAME`; for
    /// `impl`, the self-type's final path segment; empty when absent).
    pub name: String,
    /// For `impl Trait for Type`, the trait's final path segment.
    pub trait_name: String,
    /// 1-based line of the item keyword.
    pub line: usize,
    /// The item's brace-group body, when it has one (`fn`, `mod`,
    /// `impl`, `struct`, macro call with `{…}`).
    pub body: Option<&'a Group>,
    /// Header tokens between the keyword and the body/semicolon
    /// (signature for `fn`, generics + self type for `impl`).
    pub header: Vec<&'a TokenTree>,
    /// Half-open index range `[start, end)` this item occupies in the
    /// scanned stream, **including** its attributes and modifiers — the
    /// range a lint walker must skip to exempt the item.
    pub span: (usize, usize),
}

impl Item<'_> {
    /// True when any attribute marks this item test-only.
    pub fn is_cfg_test(&self) -> bool {
        self.attrs.iter().any(Attr::is_cfg_test)
    }

    /// True when any attribute is `#[test]`/`#[should_panic]`.
    pub fn has_test_marker(&self) -> bool {
        self.attrs.iter().any(Attr::is_test_marker)
    }
}

const ITEM_KEYWORDS: &[&str] = &[
    "fn", "mod", "impl", "struct", "enum", "trait", "type", "const", "static", "union", "use",
];

/// Keywords that may prefix an item declaration before its defining
/// keyword (`pub(crate) unsafe async fn …`).
const MODIFIER_KEYWORDS: &[&str] = &["pub", "unsafe", "async", "const", "extern", "default"];

/// Scans one token stream (a file top level, a `mod`/`impl` body, or a
/// macro invocation body) into recognized items. Tokens not belonging
/// to any recognized item (expression statements inside `fn` bodies
/// never reach this — callers scan item containers only) are skipped.
pub fn scan_items(trees: &[TokenTree]) -> Vec<Item<'_>> {
    let mut items = Vec::new();
    let mut attrs: Vec<Attr> = Vec::new();
    let mut pending_start: Option<usize> = None;
    let mut i = 0usize;
    while i < trees.len() {
        // Outer attribute: `#` `[…]`. Inner attributes (`#![…]`) are
        // consumed and ignored — they never bind to a following item.
        if trees[i].is_punct('#') {
            let mut j = i + 1;
            let inner = trees.get(j).is_some_and(|t| t.is_punct('!'));
            if inner {
                j += 1;
            }
            if let Some(TokenTree::Group(g)) = trees.get(j) {
                if g.delim == '[' {
                    if !inner {
                        pending_start.get_or_insert(i);
                        attrs.push(Attr {
                            trees: g.trees.clone(),
                            line: trees[i].line(),
                        });
                    }
                    i = j + 1;
                    continue;
                }
            }
            i += 1;
            continue;
        }

        let Some(tok) = trees[i].leaf() else {
            // A bare group at item position (e.g. a macro body brace):
            // nothing to bind attributes to.
            attrs.clear();
            pending_start = None;
            i += 1;
            continue;
        };

        if tok.kind == TokKind::Ident && MODIFIER_KEYWORDS.contains(&tok.text.as_str()) {
            // `const` is both a modifier (`const fn`) and an item kind
            // (`const X: …`). Treat it as a modifier only when an item
            // keyword follows eventually; the lookahead below settles it.
            if tok.text == "const" {
                let next_is_item = trees.get(i + 1).and_then(|t| t.leaf()).is_some_and(|t| {
                    t.kind == TokKind::Ident
                        && (t.text == "fn" || t.text == "unsafe" || t.text == "extern")
                });
                if !next_is_item {
                    // `const NAME: …` — fall through to item handling.
                    let start = pending_start.take().unwrap_or(i);
                    let (mut item, next) = take_item(trees, i, "const", std::mem::take(&mut attrs));
                    item.span = (start, next);
                    items.push(item);
                    i = next;
                    continue;
                }
            }
            // Modifier: keep attributes pending, advance. `pub(crate)`
            // carries a paren group.
            pending_start.get_or_insert(i);
            i += 1;
            if let Some(TokenTree::Group(g)) = trees.get(i) {
                if g.delim == '(' {
                    i += 1;
                }
            }
            // `extern "C"` carries a string literal.
            if let Some(t) = trees.get(i).and_then(|t| t.leaf()) {
                if t.kind == TokKind::StrLit {
                    i += 1;
                }
            }
            continue;
        }

        if tok.kind == TokKind::Ident && ITEM_KEYWORDS.contains(&tok.text.as_str()) {
            let kw: &'static str = ITEM_KEYWORDS
                .iter()
                .find(|k| **k == tok.text)
                .copied()
                .unwrap_or("other");
            let start = pending_start.take().unwrap_or(i);
            let (mut item, next) = take_item(trees, i, kw, std::mem::take(&mut attrs));
            item.span = (start, next);
            items.push(item);
            i = next;
            continue;
        }

        // Macro invocation at item position: `ident` `!` `{…}` (or
        // `(…)`/`[…]` followed by `;`). Its body may contain items
        // (`proptest! { #[test] fn … }`), which callers recurse into.
        if tok.kind == TokKind::Ident && trees.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            let name = tok.text.clone();
            let line = tok.line;
            let mut j = i + 2;
            // Optional macro name for `macro_rules! name {…}`.
            if trees
                .get(j)
                .and_then(|t| t.leaf())
                .is_some_and(|t| t.kind == TokKind::Ident)
            {
                j += 1;
            }
            let body = trees.get(j).and_then(|t| t.group());
            let end = if body.is_some() { j + 1 } else { j };
            items.push(Item {
                attrs: std::mem::take(&mut attrs),
                kind: "macro-call",
                name,
                trait_name: String::new(),
                line,
                body,
                header: Vec::new(),
                span: (pending_start.take().unwrap_or(i), end),
            });
            i = end;
            continue;
        }

        // Anything else: skip one token; pending attributes stay bound
        // to whatever item eventually follows (doc-comment runs are
        // already trivia).
        i += 1;
    }
    items
}

/// Consumes one item starting at the keyword at `trees[i]`. Returns the
/// item and the index just past it.
fn take_item<'a>(
    trees: &'a [TokenTree],
    i: usize,
    kind: &'static str,
    attrs: Vec<Attr>,
) -> (Item<'a>, usize) {
    let line = trees[i].line();
    let mut j = i + 1;
    let mut header: Vec<&TokenTree> = Vec::new();
    let mut body: Option<&Group> = None;
    let mut depth_angle = 0i32;
    while let Some(t) = trees.get(j) {
        match t {
            TokenTree::Group(g) if g.delim == '{' && depth_angle == 0 => {
                body = Some(g);
                j += 1;
                break;
            }
            // `;` ends a braceless item at any angle depth: generic
            // headers never carry a top-level `;` (array lengths live
            // inside bracket groups), but a `<` comparison in a `const`
            // initializer could otherwise leave phantom depth behind.
            TokenTree::Leaf(tok) if tok.is_punct(';') => {
                j += 1;
                break;
            }
            TokenTree::Leaf(tok) if tok.is_punct('<') => {
                depth_angle += 1;
                header.push(t);
            }
            TokenTree::Leaf(tok) if tok.is_punct('>') => {
                depth_angle = (depth_angle - 1).max(0);
                header.push(t);
            }
            // `=` ends a `type X = …;` / `const X: T = …;` header; keep
            // consuming to the semicolon but stop collecting header.
            _ => header.push(t),
        }
        j += 1;
    }

    let (name, trait_name) = item_names(kind, &header);
    (
        Item {
            attrs,
            kind,
            name,
            trait_name,
            line,
            body,
            header,
            span: (i, j),
        },
        j,
    )
}

/// Extracts (name, trait_name) from an item header.
fn item_names(kind: &'static str, header: &[&TokenTree]) -> (String, String) {
    match kind {
        "impl" => {
            // `impl<G…> Trait for Type …` or `impl<G…> Type …`.
            // Split on `for`; the self type is the final path segment of
            // the part after `for` (or of the whole header when absent),
            // ignoring generic argument groups.
            let mut depth = 0i32;
            let mut for_pos = None;
            for (k, t) in header.iter().enumerate() {
                if t.is_punct('<') {
                    depth += 1;
                } else if t.is_punct('>') {
                    depth -= 1;
                } else if depth == 0 && t.is_ident("for") {
                    for_pos = Some(k);
                    break;
                }
            }
            let (trait_part, type_part) = match for_pos {
                Some(k) => (&header[..k], &header[k + 1..]),
                None => (&header[..0], header),
            };
            (last_path_ident(type_part), last_path_ident(trait_part))
        }
        _ => {
            // First identifier after the keyword.
            let name = header
                .iter()
                .find_map(|t| t.leaf())
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone())
                .unwrap_or_default();
            (name, String::new())
        }
    }
}

/// The last plain identifier at angle-depth 0 in a token slice — the
/// final segment of a (possibly generic) path like `sync::Arc<Foo>`
/// is `Arc`, and `&'a mut Bar` is `Bar`.
fn last_path_ident(trees: &[&TokenTree]) -> String {
    let mut depth = 0i32;
    let mut last = String::new();
    for t in trees {
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth -= 1;
        } else if depth == 0 {
            if let Some(tok) = t.leaf() {
                if tok.kind == TokKind::Ident && tok.text != "mut" && tok.text != "dyn" {
                    last = tok.text.clone();
                }
            }
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(src: &str) -> Vec<(String, String)> {
        let (trees, errs) = parse(src);
        assert!(errs.is_empty(), "{errs:?}");
        scan_items(&trees)
            .into_iter()
            .map(|i| (i.kind.to_string(), i.name))
            .collect()
    }

    #[test]
    fn recognizes_fn_mod_impl_struct() {
        let got = items(
            "pub fn f(x: u32) -> u32 { x }\n\
             mod m { }\n\
             impl Foo { fn g(&self) {} }\n\
             pub struct Bar { x: Mutex<u32> }\n",
        );
        assert_eq!(
            got,
            [
                ("fn".into(), "f".into()),
                ("mod".into(), "m".into()),
                ("impl".into(), "Foo".into()),
                ("struct".into(), "Bar".into()),
            ]
        );
    }

    #[test]
    fn impl_trait_for_type_names_both() {
        let (trees, _) = parse("impl std::fmt::Display for SourceFinding { }");
        let it = &scan_items(&trees)[0];
        assert_eq!(it.name, "SourceFinding");
        assert_eq!(it.trait_name, "Display");
    }

    #[test]
    fn generic_impl_resolves_self_type() {
        let (trees, _) = parse("impl<T: Clone> BoundedQueue<T> { fn len(&self) {} }");
        let it = &scan_items(&trees)[0];
        assert_eq!(it.name, "BoundedQueue");
    }

    #[test]
    fn cfg_test_attribute_binds_to_item() {
        let (trees, _) = parse("#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn g() {} }");
        let its = scan_items(&trees);
        assert_eq!(its.len(), 1);
        assert!(its[0].is_cfg_test());
        assert_eq!(its[0].name, "tests");
    }

    #[test]
    fn cfg_all_test_counts_as_test() {
        let (trees, _) = parse("#[cfg(all(test, feature = \"x\"))] fn helper() {}");
        assert!(scan_items(&trees)[0].is_cfg_test());
    }

    #[test]
    fn cfg_feature_is_not_test() {
        let (trees, _) = parse("#[cfg(feature = \"fast-test\")] fn helper() {}");
        // The ident `test` does not appear — `"fast-test"` is a string
        // literal, invisible to ident matching.
        assert!(!scan_items(&trees)[0].is_cfg_test());
    }

    #[test]
    fn test_and_should_panic_markers() {
        let (trees, _) =
            parse("#[test]\nfn a() {}\n#[should_panic(expected = \"boom\")]\nfn b() {}\nfn c() {}");
        let its = scan_items(&trees);
        assert!(its[0].has_test_marker());
        assert!(its[1].has_test_marker());
        assert!(!its[2].has_test_marker());
    }

    #[test]
    fn macro_invocation_body_is_scannable() {
        let (trees, _) = parse("proptest! { #![proptest_config(x)] #[test] fn p(a in 0..9) { } }");
        let its = scan_items(&trees);
        assert_eq!(its[0].kind, "macro-call");
        assert_eq!(its[0].name, "proptest");
        let inner = scan_items(&its[0].body.expect("body").trees);
        assert_eq!(inner.len(), 1);
        assert!(inner[0].has_test_marker());
    }

    #[test]
    fn fn_with_where_clause_and_return_type_finds_body() {
        let (trees, _) = parse("fn f<T>(x: T) -> Vec<T> where T: Clone { vec![x] }");
        let its = scan_items(&trees);
        assert_eq!(its[0].name, "f");
        assert!(its[0].body.is_some());
    }

    #[test]
    fn fn_returning_generic_with_gt_in_header() {
        // `-> Arc<SessionSlot>` closes its angle depth before the body.
        let (trees, _) = parse("pub fn slot(&self, id: &str) -> Arc<SessionSlot> { todo() }");
        let its = scan_items(&trees);
        assert_eq!(its[0].name, "slot");
        assert!(its[0].body.is_some());
    }

    #[test]
    fn unbalanced_delimiters_recover() {
        let (trees, errs) = parse("fn f() { let x = (1; }");
        assert!(!errs.is_empty());
        assert!(!trees.is_empty());
    }

    #[test]
    fn const_item_vs_const_fn() {
        let got = items("const X: u32 = 1;\nconst fn f() -> u32 { 1 }");
        assert_eq!(
            got,
            [("const".into(), "X".into()), ("fn".into(), "f".into())]
        );
    }
}
