//! Lock-discipline analysis over the serving layer and the coordinator.
//!
//! Three questions, all answered on the token tree (no type checker, so
//! every resolution step is deliberately conservative and documented):
//!
//! 1. **Which locks exist?** A struct scan over the analyzed crates
//!    finds every `Mutex`/`RwLock`/`Condvar` field; a lock's identity is
//!    `Struct.field` (e.g. `SessionSlot.engine`).
//! 2. **Is a guard ever held across an engine entry point?** Guard
//!    bindings from `.lock()`/`.read()`/`.write()` are tracked to end of
//!    scope (or `drop(name)`); chain continuations other than
//!    `.expect(..)`/`.unwrap()` demote the binding to a
//!    statement-temporary (`let gm = slot.engine.lock().take()` binds an
//!    engine, not a guard). `Condvar::wait(g)` keeps the passed guard
//!    alive. A call to a solver/engine entry point — directly by name,
//!    or transitively through the call graph — while any guard is held
//!    is a `lock-across-entry` finding: the solver can run for
//!    milliseconds, and a guard held that long stalls every other path
//!    to the lock.
//! 3. **Can the acquisition order deadlock?** Every "lock B acquired
//!    while lock A is held" event (direct, or through a called
//!    function's transitive acquisition set) is an edge A→B in the
//!    acquisition-order graph; a cycle is a potential AB/BA deadlock
//!    and fails CI.
//!
//! Receiver resolution for acquisitions: `self.field` resolves against
//! the `impl` type's own fields; a bare `receiver.field` resolves when
//! the field name names exactly one known lock field across the
//! analyzed structs; anything else (e.g. `stdout().lock()`) is not a
//! tracked lock and is ignored.
//!
//! Call resolution is *typed*, never merged by bare name (an early
//! bare-name prototype conflated every `new`/`push`/`get` in two crates
//! into one node and fabricated 9 deadlock cycles): `Type::f(..)` and
//! `Self::f(..)` resolve through the path; `self.f(..)` resolves to the
//! enclosing `impl`; `expr.field.f(..)` resolves when `field` has a
//! unique known struct type; a lone `recv.f(..)` or free `f(..)` falls
//! back to the unique analyzed function of that name, if there is
//! exactly one. Anything still ambiguous stays unresolved — the
//! analysis loses that edge rather than inventing one.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::Path;

use crate::lex::TokKind;
use crate::source::SourceFinding;
use crate::tree::{parse, scan_items, Group, TokenTree};

/// Crates covered by the lock analysis: the hand-rolled scheduling in
/// gm-serve and the session/solver-cache layer in gridmind-core.
pub const LOCK_CRATES: &[&str] = &["serve", "core"];

/// Solver/engine entry points a held guard must never span: the
/// conversational engine and every cached/uncached solver entry.
pub const ENGINE_ENTRY_FNS: &[&str] = &[
    "ask",
    "solve_acopf",
    "solve_scopf",
    "solve_base",
    "solve_dcopf",
    "solve_acopf_cached",
    "solve_scopf_cached",
    "solve_base_cached",
    "run_n1",
    "run_n1_screened",
    "run_n1_cached",
    "run_n1_cached_shared",
];

/// One discovered lock field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockInfo {
    /// Identity: `Struct.field`.
    pub id: String,
    /// `Mutex`, `RwLock`, or `Condvar`.
    pub kind: &'static str,
    /// Declaring file (repo-relative).
    pub file: String,
    /// Declaration line.
    pub line: usize,
}

/// One acquisition-order edge: `acquired` was taken while `held` was
/// held, at `site`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct OrderEdge {
    /// The lock already held.
    pub held: String,
    /// The lock acquired under it.
    pub acquired: String,
    /// `file:line` of the acquisition (or call) site.
    pub site: String,
}

/// Outcome of the lock analysis.
#[derive(Debug, Default)]
pub struct LockReport {
    /// Every `Mutex`/`RwLock`/`Condvar` field in the analyzed crates.
    pub locks: Vec<LockInfo>,
    /// Acquisition-order edges (deduplicated, sorted).
    pub edges: Vec<OrderEdge>,
    /// `lock-across-entry` findings.
    pub findings: Vec<SourceFinding>,
    /// Cycles in the order graph (each a lock-id sequence; empty =
    /// acyclic = deadlock-free ordering).
    pub cycles: Vec<Vec<String>>,
    /// Number of functions analyzed.
    pub functions_analyzed: usize,
}

impl LockReport {
    /// True when no guard spans an entry point and the order graph is
    /// acyclic.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.cycles.is_empty()
    }
}

/// A struct field: lock fields feed the inventory, every typed field
/// feeds call-receiver resolution.
#[derive(Debug, Clone)]
struct FieldInfo {
    owner: String,
    field: String,
    /// Identifier tokens of the declared type, in order.
    type_idents: Vec<String>,
    /// `Some` for `Mutex`/`RwLock`/`Condvar` fields.
    lock_kind: Option<&'static str>,
    file: String,
    line: usize,
}

struct FnDef<'a> {
    name: String,
    impl_type: String,
    file: String,
    body: &'a Group,
}

/// `(impl type or "", fn name)` — the call-graph node identity.
type FnKey = (String, String);

/// Method names excluded from the unique-name fallback (see
/// [`Tables::unique_fn`]): the std prelude and collection vocabulary.
const FOREIGN_METHOD_NAMES: &[&str] = &[
    "get",
    "get_mut",
    "push",
    "pop",
    "insert",
    "remove",
    "len",
    "is_empty",
    "clear",
    "clone",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "contains",
    "contains_key",
    "push_back",
    "pop_front",
    "position",
    "take",
    "replace",
    "send",
    "recv",
    "join",
    "entry",
    "keys",
    "values",
    "extend",
    "drain",
    "retain",
    "map",
    "filter",
    "collect",
    "first",
    "last",
    "to_string",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "fetch_add",
    "load",
    "store",
    "min",
    "max",
    "abs",
];

/// Per-function direct facts (phase A) and transitive closure (fixpoint).
#[derive(Debug, Default, Clone)]
struct FnFacts {
    locks: BTreeSet<String>,
    calls: BTreeSet<FnKey>,
    entry: bool,
}

/// Name-resolution tables shared by both analysis phases.
struct Tables {
    fields: Vec<FieldInfo>,
    /// Field name → declared type, when every field of that name agrees
    /// on one known (impl'd) type.
    unique_field_type: BTreeMap<String, String>,
    /// `(owner, field)` → known type.
    field_type: BTreeMap<(String, String), String>,
    fn_keys: BTreeSet<FnKey>,
    /// Fn name → all keys carrying it (for the unique-name fallback).
    fns_by_name: BTreeMap<String, BTreeSet<FnKey>>,
}

impl Tables {
    /// Lock-receiver resolution (see module docs).
    fn resolve_lock(&self, impl_type: &str, is_self: bool, field: &str) -> Option<String> {
        if is_self {
            if let Some(f) = self
                .fields
                .iter()
                .find(|f| f.lock_kind.is_some() && f.owner == impl_type && f.field == field)
            {
                return Some(format!("{}.{}", f.owner, f.field));
            }
        }
        let mut hits = self
            .fields
            .iter()
            .filter(|f| f.lock_kind.is_some() && f.field == field);
        match (hits.next(), hits.next()) {
            (Some(only), None) => Some(format!("{}.{}", only.owner, only.field)),
            // Ambiguous non-self field: conservatively unresolvable (a
            // wrong guess would fabricate order edges).
            _ => None,
        }
    }

    /// Unique-name fallback: the single analyzed function of this name.
    /// Never fires for std-prelude/collection method names — with an
    /// untyped receiver those are overwhelmingly `Vec`/`HashMap`/`Option`
    /// calls, and matching them to a same-named analyzed function
    /// fabricates edges (`state.order.push(k)` is `Vec::push`, not
    /// `BoundedQueue::push`). Typed receivers still resolve such names
    /// through the field table.
    fn unique_fn(&self, name: &str) -> Option<FnKey> {
        if FOREIGN_METHOD_NAMES.contains(&name) {
            return None;
        }
        match self.fns_by_name.get(name) {
            Some(keys) if keys.len() == 1 => keys.iter().next().cloned(),
            _ => None,
        }
    }
}

/// Analyzes `(path, text)` source pairs. Exposed (rather than only the
/// directory walker) so the golden corpus can feed fixture files.
pub fn analyze_lock_sources(files: &[(String, String)]) -> LockReport {
    let parsed: Vec<(String, Vec<TokenTree>)> = files
        .iter()
        .map(|(path, text)| (path.clone(), parse(text).0))
        .collect();

    // ---- pass 1: field inventory + function inventory.
    let mut fields: Vec<FieldInfo> = Vec::new();
    let mut fns: Vec<FnDef> = Vec::new();
    for (path, trees) in &parsed {
        collect_items(trees, path, "", &mut fields, &mut fns);
    }
    let mut fn_keys: BTreeSet<FnKey> = BTreeSet::new();
    let mut fns_by_name: BTreeMap<String, BTreeSet<FnKey>> = BTreeMap::new();
    for f in &fns {
        let key = (f.impl_type.clone(), f.name.clone());
        fn_keys.insert(key.clone());
        fns_by_name.entry(f.name.clone()).or_default().insert(key);
    }
    let impl_types: BTreeSet<&str> = fn_keys
        .iter()
        .filter(|(t, _)| !t.is_empty())
        .map(|(t, _)| t.as_str())
        .collect();
    let mut field_type: BTreeMap<(String, String), String> = BTreeMap::new();
    let mut unique_field_type: BTreeMap<String, String> = BTreeMap::new();
    let mut ambiguous: BTreeSet<String> = BTreeSet::new();
    for f in &fields {
        let Some(ty) = f
            .type_idents
            .iter()
            .find(|t| impl_types.contains(t.as_str()))
        else {
            continue;
        };
        field_type.insert((f.owner.clone(), f.field.clone()), ty.clone());
        match unique_field_type.get(&f.field) {
            None if !ambiguous.contains(&f.field) => {
                unique_field_type.insert(f.field.clone(), ty.clone());
            }
            Some(prev) if prev != ty => {
                unique_field_type.remove(&f.field);
                ambiguous.insert(f.field.clone());
            }
            _ => {}
        }
    }
    let tables = Tables {
        fields,
        unique_field_type,
        field_type,
        fn_keys,
        fns_by_name,
    };

    // ---- pass 2 (phase A): direct facts per function.
    let mut direct: BTreeMap<FnKey, FnFacts> = BTreeMap::new();
    for f in &fns {
        let mut facts = FnFacts::default();
        collect_direct(&f.body.trees, &f.impl_type, &tables, &mut facts);
        let merged = direct
            .entry((f.impl_type.clone(), f.name.clone()))
            .or_default();
        merged.locks.extend(facts.locks);
        merged.calls.extend(facts.calls);
        merged.entry |= facts.entry;
    }

    // ---- fixpoint: transitive lock sets + entry reachability.
    let mut trans = direct.clone();
    loop {
        let mut changed = false;
        let snapshot = trans.clone();
        for facts in trans.values_mut() {
            for callee in facts.calls.clone() {
                if let Some(c) = snapshot.get(&callee) {
                    let before = facts.locks.len();
                    facts.locks.extend(c.locks.iter().cloned());
                    changed |= facts.locks.len() != before;
                    if c.entry && !facts.entry {
                        facts.entry = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // ---- pass 3 (phase B): guard tracking, edges, findings.
    let mut rep = LockReport {
        functions_analyzed: fns.len(),
        ..LockReport::default()
    };
    let mut edge_set: BTreeSet<OrderEdge> = BTreeSet::new();
    for f in &fns {
        let mut held: Vec<HeldGuard> = Vec::new();
        let mut ctx = WalkCtx {
            impl_type: &f.impl_type,
            file: &f.file,
            fn_name: &f.name,
            tables: &tables,
            trans: &trans,
            edges: &mut edge_set,
            findings: &mut rep.findings,
        };
        walk_block(&f.body.trees, &mut ctx, &mut held);
    }
    rep.edges = edge_set.into_iter().collect();

    for f in &tables.fields {
        if let Some(kind) = f.lock_kind {
            rep.locks.push(LockInfo {
                id: format!("{}.{}", f.owner, f.field),
                kind,
                file: f.file.clone(),
                line: f.line,
            });
        }
    }
    rep.locks.sort_by(|a, b| a.id.cmp(&b.id));
    rep.cycles = find_cycles(&rep.edges);
    rep.findings
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    rep
}

/// Directory-walking entry point: analyzes all of [`LOCK_CRATES`].
pub fn lint_locks(repo_root: &Path) -> io::Result<LockReport> {
    let mut files = Vec::new();
    for krate in LOCK_CRATES {
        let src = repo_root.join("crates").join(krate).join("src");
        if !src.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        collect_rs(&src, &mut paths)?;
        for path in paths {
            let rel = path
                .strip_prefix(repo_root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            files.push((rel, fs::read_to_string(&path)?));
        }
    }
    Ok(analyze_lock_sources(&files))
}

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
    Ok(())
}

/// Recursively collects struct fields and function bodies, skipping
/// `#[cfg(test)]` items. `impl_type` is the enclosing `impl` target ("",
/// outside an impl).
fn collect_items<'a>(
    trees: &'a [TokenTree],
    file: &str,
    impl_type: &str,
    fields: &mut Vec<FieldInfo>,
    fns: &mut Vec<FnDef<'a>>,
) {
    for item in scan_items(trees) {
        if item.is_cfg_test() {
            continue;
        }
        let Some(body) = item.body else { continue };
        match item.kind {
            "struct" => collect_struct_fields(&item.name, body, file, fields),
            "impl" => collect_items(&body.trees, file, &item.name, fields, fns),
            "mod" => collect_items(&body.trees, file, impl_type, fields, fns),
            "fn" => fns.push(FnDef {
                name: item.name.clone(),
                impl_type: impl_type.to_string(),
                file: file.to_string(),
                body,
            }),
            _ => {}
        }
    }
}

/// Splits a struct body on top-level commas and records every field
/// with its type identifiers; `Mutex`/`RwLock`/`Condvar` fields are
/// additionally tagged as locks.
fn collect_struct_fields(owner: &str, body: &Group, file: &str, fields: &mut Vec<FieldInfo>) {
    for chunk in body
        .trees
        .split(|t| t.leaf().is_some_and(|l| l.is_punct(',')))
    {
        // Skip attrs and visibility: `#[..]* [pub[(..)]] name : type`.
        let mut i = 0;
        while i < chunk.len() {
            if chunk[i].is_punct('#') {
                i += 2; // '#' + bracket group
            } else if chunk[i].is_ident("pub") {
                i += 1;
                if chunk.get(i).and_then(TokenTree::group).is_some() {
                    i += 1;
                }
            } else {
                break;
            }
        }
        let (Some(name), Some(colon)) = (chunk.get(i), chunk.get(i + 1)) else {
            continue;
        };
        if !colon.is_punct(':') || colon_is_path(chunk, i + 1) {
            continue;
        }
        let Some(name_tok) = name.leaf().filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        let ty = &chunk[i + 2..];
        let type_idents = type_idents(ty);
        let lock_kind = if type_idents.iter().any(|t| t == "Mutex") {
            Some("Mutex")
        } else if type_idents.iter().any(|t| t == "RwLock") {
            Some("RwLock")
        } else if type_idents.iter().any(|t| t == "Condvar") {
            Some("Condvar")
        } else {
            None
        };
        fields.push(FieldInfo {
            owner: owner.to_string(),
            field: name_tok.text.clone(),
            type_idents,
            lock_kind,
            file: file.to_string(),
            line: name_tok.line,
        });
    }
}

/// All identifier tokens of a type expression, including inside
/// generic-argument groups (`Arc<Mutex<T>>` → `[Arc, Mutex, T]`).
fn type_idents(trees: &[TokenTree]) -> Vec<String> {
    let mut out = Vec::new();
    for t in trees {
        match t {
            TokenTree::Leaf(tok) if tok.kind == TokKind::Ident => out.push(tok.text.clone()),
            TokenTree::Group(g) => out.extend(type_idents(&g.trees)),
            _ => {}
        }
    }
    out
}

/// True when the `:` at `i` is half of a `::` path separator.
fn colon_is_path(chunk: &[TokenTree], i: usize) -> bool {
    chunk.get(i + 1).is_some_and(|t| t.is_punct(':')) || i > 0 && chunk[i - 1].is_punct(':')
}

/// Phase A: direct acquisitions, direct callee keys, direct entry
/// calls — a flat recursive scan with no guard tracking.
fn collect_direct(trees: &[TokenTree], impl_type: &str, tables: &Tables, facts: &mut FnFacts) {
    for i in 0..trees.len() {
        if let Some((lock, _)) = acquisition_at(trees, i, impl_type, tables) {
            facts.locks.insert(lock);
        }
        if let Some(name) = call_name_at(trees, i) {
            if ENGINE_ENTRY_FNS.contains(&name) {
                facts.entry = true;
            }
            if let Some(key) = resolve_call(trees, i, impl_type, tables) {
                facts.calls.insert(key);
            }
        }
        if let TokenTree::Group(g) = &trees[i] {
            collect_direct(&g.trees, impl_type, tables, facts);
        }
    }
}

/// Detects a guard acquisition at `i`: `.` `{lock,read,write}` `()`.
/// Returns `(lock id, index after the paren group)`.
fn acquisition_at(
    trees: &[TokenTree],
    i: usize,
    impl_type: &str,
    tables: &Tables,
) -> Option<(String, usize)> {
    if !trees[i].is_punct('.') {
        return None;
    }
    let name = trees.get(i + 1)?.leaf()?;
    if !matches!(name.text.as_str(), "lock" | "read" | "write") {
        return None;
    }
    let g = trees.get(i + 2)?.group()?;
    if g.delim != '(' || !g.trees.is_empty() {
        return None;
    }
    let segs = receiver_path(trees, i);
    if segs.is_empty() {
        return None;
    }
    let is_self = segs[0] == "self";
    let field = segs[segs.len() - 1];
    if field == "self" {
        return None;
    }
    tables
        .resolve_lock(impl_type, is_self, field)
        .map(|lock| (lock, i + 3))
}

/// The `ident (. ident)*` receiver run ending just before the `.` at
/// `dot`, left-to-right. Empty when the receiver is not a plain path
/// (e.g. a call result).
fn receiver_path(trees: &[TokenTree], dot: usize) -> Vec<&str> {
    let mut segs: Vec<&str> = Vec::new();
    let mut j = dot;
    while j >= 1 {
        let Some(tok) = trees[j - 1].leaf() else {
            break;
        };
        if tok.kind == TokKind::Ident {
            segs.push(&tok.text);
            if j >= 2 && trees[j - 2].is_punct('.') {
                j -= 2;
                continue;
            }
        }
        break;
    }
    segs.reverse();
    segs
}

/// The called name at `i` when `i` is `ident` `(..)` and not a
/// definition (`fn ident(..)`) or macro (`ident!(..)` never matches:
/// the group is not adjacent).
fn call_name_at(trees: &[TokenTree], i: usize) -> Option<&str> {
    let tok = trees[i].leaf()?;
    if tok.kind != TokKind::Ident {
        return None;
    }
    let g = trees.get(i + 1)?.group()?;
    if g.delim != '(' {
        return None;
    }
    if i > 0 && trees[i - 1].leaf().is_some_and(|t| t.is_ident("fn")) {
        return None;
    }
    Some(&tok.text)
}

/// Typed call resolution (see module docs). `None` = unresolved: the
/// call contributes nothing rather than a guessed edge.
fn resolve_call(trees: &[TokenTree], i: usize, impl_type: &str, tables: &Tables) -> Option<FnKey> {
    let name = call_name_at(trees, i)?;
    // Acquisitions and guard plumbing are handled structurally, never
    // as call-graph nodes.
    if matches!(name, "lock" | "read" | "write" | "wait" | "drop") {
        return None;
    }
    let in_table = |key: FnKey| -> Option<FnKey> {
        if tables.fn_keys.contains(&key) {
            Some(key)
        } else {
            None
        }
    };
    // `Type::name(..)` / `Self::name(..)`.
    if i >= 3
        && trees[i - 1].is_punct(':')
        && trees[i - 2].is_punct(':')
        && trees[i - 3]
            .leaf()
            .is_some_and(|t| t.kind == TokKind::Ident)
    {
        let ty = &trees[i - 3].leaf()?.text;
        let ty = if ty == "Self" { impl_type } else { ty };
        return in_table((ty.to_string(), name.to_string()));
    }
    // Method call: resolve the receiver to a type.
    if i >= 1 && trees[i - 1].is_punct('.') {
        let segs = receiver_path(trees, i - 1);
        match segs.as_slice() {
            ["self"] => {
                if let Some(key) = in_table((impl_type.to_string(), name.to_string())) {
                    return Some(key);
                }
            }
            ["self", field] => {
                if let Some(ty) = tables
                    .field_type
                    .get(&(impl_type.to_string(), (*field).to_string()))
                {
                    return in_table((ty.clone(), name.to_string()));
                }
            }
            [.., field] if segs.len() >= 2 => {
                if let Some(ty) = tables.unique_field_type.get(*field) {
                    return in_table((ty.clone(), name.to_string()));
                }
            }
            _ => {}
        }
        // Lone local receiver (or unknown field): unique-name fallback.
        return tables.unique_fn(name);
    }
    // Free call.
    in_table((String::new(), name.to_string())).or_else(|| tables.unique_fn(name))
}

#[derive(Debug)]
struct HeldGuard {
    lock: String,
    /// `Some(name)`: let-bound, lives to end of block or `drop(name)`.
    /// `None`: statement temporary.
    binding: Option<String>,
}

struct WalkCtx<'a> {
    impl_type: &'a str,
    file: &'a str,
    fn_name: &'a str,
    tables: &'a Tables,
    trans: &'a BTreeMap<FnKey, FnFacts>,
    edges: &'a mut BTreeSet<OrderEdge>,
    findings: &'a mut Vec<SourceFinding>,
}

/// Phase B block walker. Statements end at `;` or at a top-level brace
/// group (expression statements: `if`/`match`/`loop` bodies) — which
/// keeps an `if let Some(x) = y.read().get(..)` scrutinee temporary
/// alive exactly through the construct's body. Guards bound inside a
/// block die when the block exits.
fn walk_block(trees: &[TokenTree], ctx: &mut WalkCtx<'_>, held: &mut Vec<HeldGuard>) {
    let block_base = held.len();
    let mut i = 0;
    while i < trees.len() {
        // One statement: [i, end).
        let stmt_base = held.len();
        let binding = stmt_binding(&trees[i..]);
        let mut j = i;
        while j < trees.len() {
            if trees[j].leaf().is_some_and(|t| t.is_punct(';')) {
                j += 1;
                break;
            }
            if let Some((lock, after)) = acquisition_at(trees, j, ctx.impl_type, ctx.tables) {
                let line = trees[j].line();
                for h in held.iter() {
                    if h.lock != lock {
                        ctx.edges.insert(OrderEdge {
                            held: h.lock.clone(),
                            acquired: lock.clone(),
                            site: format!("{}:{line}", ctx.file),
                        });
                    }
                }
                let is_guard_binding = binding.is_some() && chain_stays_guard(trees, after);
                held.push(HeldGuard {
                    lock,
                    binding: if is_guard_binding {
                        binding.map(str::to_string)
                    } else {
                        None
                    },
                });
                j = after;
                continue;
            }
            if let Some(name) = call_name_at(trees, j) {
                let line = trees[j].line();
                if name == "drop" {
                    // `drop(g)` releases the named guard.
                    if let Some(g) = trees.get(j + 1).and_then(TokenTree::group) {
                        if let [only] = g.trees.as_slice() {
                            if let Some(tok) = only.leaf() {
                                held.retain(|h| h.binding.as_deref() != Some(&tok.text));
                            }
                        }
                    }
                } else if !held.is_empty() {
                    let callee = resolve_call(trees, j, ctx.impl_type, ctx.tables)
                        .and_then(|key| ctx.trans.get(&key));
                    let is_entry =
                        ENGINE_ENTRY_FNS.contains(&name) || callee.is_some_and(|c| c.entry);
                    if is_entry {
                        let held_ids: Vec<&str> = held.iter().map(|h| h.lock.as_str()).collect();
                        ctx.findings.push(SourceFinding {
                            file: ctx.file.to_string(),
                            line,
                            rule: "lock-across-entry",
                            excerpt: format!(
                                "guard on {} held across engine entry `{name}(..)` in `{}` — \
                                 check the value out of the lock instead",
                                held_ids.join(" + "),
                                ctx.fn_name,
                            ),
                        });
                    }
                    if let Some(c) = callee {
                        for m in &c.locks {
                            for h in held.iter() {
                                if &h.lock != m {
                                    ctx.edges.insert(OrderEdge {
                                        held: h.lock.clone(),
                                        acquired: m.clone(),
                                        site: format!("{}:{line}", ctx.file),
                                    });
                                }
                            }
                        }
                    }
                }
            }
            if let TokenTree::Group(g) = &trees[j] {
                walk_block(&g.trees, ctx, held);
                if g.delim == '{' {
                    // Expression-statement body (if/match/loop/fn-block):
                    // ends the statement, releasing its temporaries.
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
        // Statement end: temporaries acquired in it die; let-bound
        // guards survive to block exit.
        let mut idx = 0;
        held.retain(|h| {
            let keep = idx < stmt_base || h.binding.is_some();
            idx += 1;
            keep
        });
        i = j.max(i + 1);
    }
    held.truncate(block_base);
}

/// `let [mut] name = …` → the bound name (`_` and destructuring
/// patterns bind no guard).
fn stmt_binding(stmt: &[TokenTree]) -> Option<&str> {
    if !stmt.first()?.is_ident("let") {
        return None;
    }
    let mut i = 1;
    if stmt.get(i)?.is_ident("mut") {
        i += 1;
    }
    let tok = stmt.get(i)?.leaf()?;
    if tok.kind != TokKind::Ident || tok.text == "_" {
        return None;
    }
    if !stmt.get(i + 1)?.is_punct('=') {
        return None;
    }
    Some(&tok.text)
}

/// After an acquisition's `()` group at `after`, does the chain keep
/// guard-ness to the end of the statement? Only `.expect(..)` and
/// `.unwrap()` preserve the guard; `.take()`, `.as_ref()`, field
/// access, `=` … all mean the binding holds something else and the
/// guard is a statement temporary.
fn chain_stays_guard(trees: &[TokenTree], mut j: usize) -> bool {
    loop {
        match trees.get(j) {
            None => return true,
            Some(t) if t.is_punct(';') => return true,
            Some(t) if t.is_punct('.') => {
                let name = trees.get(j + 1).and_then(TokenTree::leaf);
                let args = trees.get(j + 2).and_then(TokenTree::group);
                match (name, args) {
                    (Some(n), Some(_)) if n.text == "expect" || n.text == "unwrap" => {
                        j += 3;
                    }
                    _ => return false,
                }
            }
            Some(_) => return false,
        }
    }
}

/// DFS cycle detection over the order graph. Returns each elementary
/// cycle found (first-discovered per strongly connected loop, enough to
/// fail CI and name the locks involved).
fn find_cycles(edges: &[OrderEdge]) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.held).or_default().insert(&e.acquired);
    }
    fn dfs<'a>(
        node: &'a str,
        adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
        path: &mut Vec<&'a str>,
        done: &mut BTreeSet<&'a str>,
        cycles: &mut Vec<Vec<String>>,
    ) {
        if let Some(pos) = path.iter().position(|n| *n == node) {
            let cycle: Vec<String> = path[pos..].iter().map(|s| (*s).to_string()).collect();
            if !cycles.iter().any(|c| same_cycle(c, &cycle)) {
                cycles.push(cycle);
            }
            return;
        }
        if done.contains(node) {
            return;
        }
        path.push(node);
        if let Some(nexts) = adj.get(node) {
            for next in nexts {
                dfs(next, adj, path, done, cycles);
            }
        }
        path.pop();
        done.insert(node);
    }
    let mut cycles: Vec<Vec<String>> = Vec::new();
    let mut done: BTreeSet<&str> = BTreeSet::new();
    let starts: Vec<&str> = adj.keys().copied().collect();
    for start in starts {
        if !done.contains(start) {
            let mut path = Vec::new();
            dfs(start, &adj, &mut path, &mut done, &mut cycles);
        }
    }
    cycles
}

/// Two cycles are the same up to rotation.
fn same_cycle(a: &[String], b: &[String]) -> bool {
    a.len() == b.len()
        && !a.is_empty()
        && (0..a.len()).any(|r| (0..a.len()).all(|i| a[(r + i) % a.len()] == b[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> LockReport {
        analyze_lock_sources(&[("fixture.rs".to_string(), src.to_string())])
    }

    const SLOT: &str = "
        pub struct Slot {
            state: Mutex<State>,
            pub engine: Mutex<Option<Engine>>,
        }
    ";

    #[test]
    fn struct_scan_finds_lock_fields() {
        let rep = analyze(SLOT);
        let ids: Vec<&str> = rep.locks.iter().map(|l| l.id.as_str()).collect();
        assert_eq!(ids, ["Slot.engine", "Slot.state"]);
        assert_eq!(rep.locks[0].kind, "Mutex");
    }

    #[test]
    fn condvar_fields_are_inventoried() {
        let rep = analyze("struct Q { inner: Mutex<Inner>, ready: Condvar, capacity: usize }");
        let kinds: Vec<&str> = rep.locks.iter().map(|l| l.kind).collect();
        assert_eq!(kinds, ["Mutex", "Condvar"]);
    }

    #[test]
    fn guard_held_across_ask_is_flagged() {
        let src = format!(
            "{SLOT}
            fn serve(slot: &Slot, gm: &mut Engine) {{
                let mut engine = slot.engine.lock();
                let reply = gm.ask(query);
                drop(engine);
            }}"
        );
        let rep = analyze(&src);
        assert_eq!(rep.findings.len(), 1, "{:?}", rep.findings);
        assert_eq!(rep.findings[0].rule, "lock-across-entry");
        assert!(rep.findings[0].excerpt.contains("Slot.engine"));
    }

    #[test]
    fn checkout_pattern_is_clean() {
        let src = format!(
            "{SLOT}
            fn serve(slot: &Slot) {{
                let mut gm = slot.engine.lock().take().unwrap_or_else(make_engine);
                let reply = gm.ask(query);
                *slot.engine.lock() = Some(gm);
            }}"
        );
        let rep = analyze(&src);
        assert!(rep.findings.is_empty(), "{:?}", rep.findings);
    }

    #[test]
    fn drop_releases_the_guard_before_the_entry_call() {
        let src = format!(
            "{SLOT}
            fn serve(slot: &Slot, gm: &mut Engine) {{
                let g = slot.engine.lock();
                drop(g);
                let reply = gm.ask(query);
            }}"
        );
        assert!(analyze(&src).findings.is_empty());
    }

    #[test]
    fn std_guard_with_expect_still_tracks() {
        let src = format!(
            "{SLOT}
            fn serve(slot: &Slot, gm: &mut Engine) {{
                let g = slot.engine.lock().expect(\"poisoned\");
                let reply = gm.ask(query);
            }}"
        );
        assert_eq!(analyze(&src).findings.len(), 1);
    }

    #[test]
    fn transitive_entry_through_call_graph_is_flagged() {
        let src = format!(
            "{SLOT}
            fn inner_solve(gm: &mut Engine) {{ gm.ask(query); }}
            fn serve(slot: &Slot, gm: &mut Engine) {{
                let g = slot.state.lock();
                inner_solve(gm);
            }}"
        );
        let rep = analyze(&src);
        assert_eq!(rep.findings.len(), 1, "{:?}", rep.findings);
        assert!(rep.findings[0].excerpt.contains("inner_solve"));
        assert!(rep.findings[0].excerpt.contains("Slot.state"));
    }

    #[test]
    fn ab_ba_cycle_is_detected() {
        let src = "
            struct A { m: Mutex<u32> }
            struct B { n: Mutex<u32> }
            fn f(a: &A, b: &B) {
                let g = a.m.lock();
                let h = b.n.lock();
            }
            fn g(a: &A, b: &B) {
                let h = b.n.lock();
                let g = a.m.lock();
            }
        ";
        let rep = analyze(src);
        assert_eq!(rep.edges.len(), 2, "{:?}", rep.edges);
        assert_eq!(rep.cycles.len(), 1, "{:?}", rep.cycles);
        assert!(!rep.is_clean());
    }

    #[test]
    fn consistent_order_is_acyclic() {
        let src = "
            struct A { m: Mutex<u32> }
            struct B { n: Mutex<u32> }
            fn f(a: &A, b: &B) {
                let g = a.m.lock();
                let h = b.n.lock();
            }
            fn g2(a: &A, b: &B) {
                let g = a.m.lock();
                let h = b.n.lock();
            }
        ";
        let rep = analyze(src);
        // Two sites, one direction: edges dedupe by (held, acquired, site).
        let pairs: BTreeSet<(&str, &str)> = rep
            .edges
            .iter()
            .map(|e| (e.held.as_str(), e.acquired.as_str()))
            .collect();
        assert_eq!(pairs.len(), 1, "{:?}", rep.edges);
        assert!(rep.cycles.is_empty());
        assert!(rep.is_clean());
    }

    #[test]
    fn transitive_edge_through_called_function() {
        let src = "
            struct A { m: Mutex<u32> }
            struct B { n: Mutex<u32> }
            impl B {
                fn bump(&self) { let g = self.n.lock(); }
            }
            fn f(a: &A, b: &B) {
                let g = a.m.lock();
                b.bump();
            }
        ";
        let rep = analyze(src);
        assert_eq!(rep.edges.len(), 1, "{:?}", rep.edges);
        assert_eq!(rep.edges[0].held, "A.m");
        assert_eq!(rep.edges[0].acquired, "B.n");
    }

    #[test]
    fn typed_resolution_does_not_merge_same_named_fns() {
        // Two `refresh` methods: only B's takes a lock. A call through a
        // receiver typed as C must not inherit B's acquisitions.
        let src = "
            struct A { m: Mutex<u32> }
            struct B { n: Mutex<u32> }
            struct C { v: u32 }
            struct Holder { c: C }
            impl B {
                fn refresh(&self) { let g = self.n.lock(); }
            }
            impl C {
                fn refresh(&self) {}
            }
            impl Holder {
                fn f(&self, a: &A) {
                    let g = a.m.lock();
                    self.c.refresh();
                }
            }
        ";
        let rep = analyze(src);
        assert!(rep.edges.is_empty(), "{:?}", rep.edges);
    }

    #[test]
    fn type_path_calls_resolve() {
        let src = "
            struct A { m: Mutex<u32> }
            struct B { n: Mutex<u32> }
            impl B {
                fn init() { let g = GLOBAL.n.lock(); }
            }
            fn f(a: &A) {
                let g = a.m.lock();
                B::init();
            }
        ";
        let rep = analyze(src);
        assert_eq!(rep.edges.len(), 1, "{:?}", rep.edges);
        assert_eq!(rep.edges[0].acquired, "B.n");
    }

    #[test]
    fn field_typed_receiver_resolves_through_the_struct_table() {
        let src = "
            struct Q { inner: Mutex<u32> }
            struct Shared { queue: Q }
            impl Q {
                fn push(&self) { let g = self.inner.lock(); }
            }
            struct R { slots: RwLock<Map> }
            impl R {
                fn f(&self, shared: &Shared) {
                    let w = self.slots.write();
                    shared.queue.push();
                }
            }
        ";
        let rep = analyze(src);
        assert_eq!(rep.edges.len(), 1, "{:?}", rep.edges);
        assert_eq!(rep.edges[0].held, "R.slots");
        assert_eq!(rep.edges[0].acquired, "Q.inner");
    }

    #[test]
    fn statement_temporary_does_not_span_statements() {
        let src = "
            struct A { m: Mutex<u32> }
            fn f(a: &A, gm: &mut Engine) {
                a.m.lock().push(1);
                gm.ask(query);
            }
        ";
        assert!(analyze(src).findings.is_empty());
    }

    #[test]
    fn if_let_scrutinee_temporary_spans_the_body() {
        let src = "
            struct R { slots: RwLock<Map> }
            fn f(r: &R, gm: &mut Engine) {
                if let Some(s) = r.slots.read().get(id) {
                    gm.ask(query);
                }
                gm.ask(query2);
            }
        ";
        let rep = analyze(src);
        assert_eq!(rep.findings.len(), 1, "{:?}", rep.findings);
        assert!(rep.findings[0].excerpt.contains("R.slots"));
    }

    #[test]
    fn self_field_resolution_disambiguates_shared_names() {
        let src = "
            struct A { inner: Mutex<u32> }
            struct B { inner: Mutex<u32> }
            impl A {
                fn f(&self, b: &B, gm: &mut Engine) {
                    let g = self.inner.lock();
                    gm.ask(query);
                }
            }
        ";
        let rep = analyze(src);
        assert_eq!(rep.findings.len(), 1);
        assert!(rep.findings[0].excerpt.contains("A.inner"));
    }

    #[test]
    fn unknown_receivers_are_ignored() {
        let src = "
            fn f(gm: &mut Engine) {
                let out = stdout().lock();
                gm.ask(query);
            }
        ";
        let rep = analyze(src);
        assert!(rep.findings.is_empty());
        assert!(rep.locks.is_empty());
    }

    #[test]
    fn cfg_test_items_are_excluded() {
        let src = "
            struct A { m: Mutex<u32> }
            #[cfg(test)]
            mod tests {
                fn f(a: &A, gm: &mut Engine) {
                    let g = a.m.lock();
                    gm.ask(query);
                }
            }
        ";
        assert!(analyze(src).findings.is_empty());
    }

    #[test]
    fn block_exit_releases_bound_guards() {
        let src = "
            struct A { m: Mutex<u32> }
            fn f(a: &A, gm: &mut Engine) {
                {
                    let g = a.m.lock();
                }
                gm.ask(query);
            }
        ";
        assert!(analyze(src).findings.is_empty());
    }
}
