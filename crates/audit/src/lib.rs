//! # gm-audit
//!
//! Two-level static analysis for GridMind-RS.
//!
//! **Level 1 — source lints** ([`source`], CLI `lint-src`): a line-based
//! scanner over the workspace source tree enforcing repo invariants that
//! `clippy` alone cannot gate offline:
//!
//! - no `unwrap()` / `expect()` / `panic!`-family macros in non-test
//!   code of the solver crates (`gm-numeric`, `gm-sparse`,
//!   `gm-powerflow`, `gm-acopf`, `gm-contingency`), with an explicit
//!   allowlist of grandfathered sites that may only shrink;
//! - no truncating float→int `as` casts in the numeric kernel crates;
//! - no `println!` / `eprintln!` in library code of any workspace crate
//!   (binaries and `main.rs` are exempt): diagnostics go through
//!   `gm_telemetry::event` so stdout stays clean and machine-readable;
//! - every `pub fn *_tool` handler in `crates/core/src/tools_*.rs` must
//!   be registered in `crates/core/src/agents.rs` (so every tool an
//!   agent can call carries a `ToolSpec` schema);
//! - repo-root `tests/` and `examples/` are scanned for `no-panic`
//!   only: `println!` is fine there and `#[test]`-annotated functions
//!   may assert freely, but panic sites in plain helper functions and
//!   example `main`s are ratcheted like any other.
//!
//! Grandfathered sites live in `crates/audit/lint_allowlist.txt` as
//! `<path> [rule] <count>` entries; the ratchet is exact per `(file,
//! rule)` — more sites than granted fails, and so does fewer (the
//! allowlist must then shrink).
//!
//! **Level 2 — model lints** (CLI `lint-case`): the [`GridLint`]
//! invariant pass re-exported from `gm-network`, auditing any [`Network`]
//! for connectivity, reference-bus, limit-ordering, impedance, per-unit
//! base, and dispatch-feasibility problems as structured
//! [`AuditFinding`]s.
//!
//! The crate is deliberately regex-free and `syn`-free (the build
//! environment is offline); the source scanner is a small line-oriented
//! state machine documented in [`source`].

pub mod lex;
pub mod locks;
pub mod rules;
pub mod source;
pub mod tree;
pub mod xref;

pub use gm_network::{AuditFinding, GridLint, Network, Severity};
pub use source::{
    lint_sources, scan_file, scan_file_rules, scan_test_support_file, SourceFinding,
    SourceLintReport,
};
