//! Source lints over the workspace tree, driven by the token-tree
//! engine ([`crate::lex`] → [`crate::tree`] → [`crate::rules`]).
//!
//! The scanner used to be a line-based state machine with documented
//! approximations (string literals confusable with code, `#[cfg(test)]`
//! regions tracked by brace counting, `//` inside a string treated as a
//! comment). All of those are gone: the lexer classifies every byte as
//! code, literal contents, or trivia before any rule looks at it, so a
//! `panic!` spelled inside a string or doc comment *cannot* fire, and
//! test exemptions bind to parsed attributes — including `#[test]`
//! functions inside macro invocation bodies such as `proptest! { … }`.
//!
//! The rules (see the crate docs) and the grandfathered-site allowlist
//! (`crates/audit/lint_allowlist.txt`) are enforced by [`lint_sources`].
//! A file the lexer cannot model (unterminated literal, unbalanced
//! delimiters) produces a `parse-error` finding rather than being
//! silently under-linted.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lex::{lex, TokKind};
use crate::rules::{scan_source, RuleSet};
use crate::tree::{parse, scan_items};

/// Crates whose non-test code must be panic-free.
pub const SOLVER_CRATES: &[&str] = &[
    "numeric",
    "sparse",
    "powerflow",
    "acopf",
    "contingency",
    "faults",
];

/// Crates whose non-test code must not contain truncating float→int
/// `as` casts (silent data-loss hazard in numeric kernels).
pub const KERNEL_CRATES: &[&str] = &["numeric", "sparse"];

/// Crates whose library code must not write to stdout/stderr with
/// `println!`/`eprintln!` — diagnostics go through `gm_telemetry::event`
/// so library output stays structured and stdout stays clean. Binaries
/// (`src/bin/**`, `main.rs`) are exempt: printing is their job.
pub const NO_PRINTLN_CRATES: &[&str] = &[
    "numeric",
    "sparse",
    "network",
    "powerflow",
    "acopf",
    "contingency",
    "agents",
    "telemetry",
    "core",
    "serve",
    "faults",
];

/// Crates whose non-test code must not swallow `Result`s
/// (`let _ = call()`, statement-final `.ok()`, `Err(_) => {}`): the
/// solver crates plus the serving layer and the coordinator, where a
/// dropped error means a silently lost response or a poisoned cache
/// entry nobody hears about.
pub const SWALLOW_CRATES: &[&str] = &[
    "numeric",
    "sparse",
    "powerflow",
    "acopf",
    "contingency",
    "faults",
    "core",
    "serve",
];

/// Crates whose non-test code is checked for float-safety:
/// `==`/`!=` on float expressions (except the exact-zero sparsity
/// idiom) and NaN-unaware `partial_cmp(..).unwrap()` chains.
pub const FLOAT_CRATES: &[&str] = &["numeric", "sparse", "powerflow", "acopf", "contingency"];

/// Repo-root directories holding test-support code (`tests/`,
/// `examples/`). Scanned for `no-panic` only: printing is fine there,
/// and panic sites inside `#[test]` functions are the assertion idiom —
/// but a plain helper function (or example `main`) that panics is
/// flagged, because it kills every caller with a useless backtrace.
pub const TEST_SUPPORT_DIRS: &[&str] = &["tests", "examples"];

/// Relative path of the allowlist file (from the repo root).
pub const ALLOWLIST_PATH: &str = "crates/audit/lint_allowlist.txt";

/// One source-lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFinding {
    /// Path relative to the repo root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (`no-panic`, `no-truncating-cast`, `no-println`,
    /// `swallowed-error`, `float-eq`, `nan-partial-cmp`, `parse-error`,
    /// `tool-registration`).
    pub rule: &'static str,
    /// The offending line (trimmed) or a description.
    pub excerpt: String,
}

impl std::fmt::Display for SourceFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.excerpt
        )
    }
}

/// Outcome of a full `lint-src` run.
#[derive(Debug, Default)]
pub struct SourceLintReport {
    /// Violations not covered by the allowlist.
    pub findings: Vec<SourceFinding>,
    /// Grandfathered sites per `(path, rule)` — matches absorbed by the
    /// allowlist.
    pub grandfathered: BTreeMap<(String, String), usize>,
    /// Allowlist bookkeeping problems: stale entries (site was removed
    /// but the allowlist still grants it — the ratchet must be
    /// tightened) or entries for files that no longer exist.
    pub allowlist_errors: Vec<String>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl SourceLintReport {
    /// True when the tree is clean and the allowlist is exact.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.allowlist_errors.is_empty()
    }
}

/// Scans one file's text for `no-panic` (and optionally
/// `no-truncating-cast`) violations with attribute-accurate
/// `#[cfg(test)]` exemptions. Returns `(line_number, rule, excerpt)`
/// triples.
pub fn scan_file(text: &str, check_casts: bool) -> Vec<(usize, &'static str, String)> {
    scan_file_rules(text, true, check_casts, false)
}

/// Scans with explicit per-rule switches (`no-panic`,
/// `no-truncating-cast`, `no-println`), skipping `#[cfg(test)]` items.
pub fn scan_file_rules(
    text: &str,
    check_panics: bool,
    check_casts: bool,
    check_println: bool,
) -> Vec<(usize, &'static str, String)> {
    scan_file_ruleset(
        text,
        &RuleSet {
            panics: check_panics,
            casts: check_casts,
            println: check_println,
            ..RuleSet::default()
        },
    )
}

/// Scans a test-support file (`tests/*.rs`, `examples/*.rs`): panics
/// inside `#[test]`-annotated functions are the idiom and are skipped
/// (including inside macro bodies like `proptest! { … }`), but panic
/// sites in plain helper functions (and example `main`s) are still
/// flagged — a helper that panics kills every test that calls it with a
/// useless backtrace.
pub fn scan_test_support_file(text: &str) -> Vec<(usize, &'static str, String)> {
    scan_file_ruleset(
        text,
        &RuleSet {
            panics: true,
            skip_test_fns: true,
            ..RuleSet::default()
        },
    )
}

/// Runs an arbitrary [`RuleSet`] over one file's text. Lexer/parser
/// errors surface as `parse-error` hits so a file the engine cannot
/// model fails loudly instead of passing unscanned.
pub fn scan_file_ruleset(text: &str, rules: &RuleSet) -> Vec<(usize, &'static str, String)> {
    let lines: Vec<&str> = text.lines().collect();
    let excerpt_at = |line: usize| -> String {
        lines
            .get(line.saturating_sub(1))
            .map_or_else(String::new, |l| l.trim().to_string())
    };
    let (hits, errors) = scan_source(text, rules);
    let mut out: Vec<(usize, &'static str, String)> = hits
        .into_iter()
        .map(|(line, rule)| (line, rule, excerpt_at(line)))
        .collect();
    for e in errors {
        out.push((e.line, "parse-error", e.message));
    }
    out.sort_by_key(|(line, rule, _)| (*line, *rule));
    out
}

fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
    Ok(())
}

/// Parses the allowlist, keyed `(path, rule)`. Two line forms, `#`
/// comments allowed:
///
/// - `<relative path> <rule> <count>` — explicit rule;
/// - `<relative path> <count>` — legacy form, meaning `no-panic`.
///
/// Missing file → empty allowlist.
fn read_allowlist(repo_root: &Path) -> BTreeMap<(String, String), usize> {
    let mut map = BTreeMap::new();
    let Ok(text) = fs::read_to_string(repo_root.join(ALLOWLIST_PATH)) else {
        return map;
    };
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let Some(path) = parts.next() else { continue };
        let (rule, count) = match (parts.next(), parts.next()) {
            (Some(rule), Some(count)) => (rule.to_string(), count.parse::<usize>()),
            (Some(count), None) => ("no-panic".to_string(), count.parse::<usize>()),
            _ => continue,
        };
        if let Ok(n) = count {
            map.insert((path.to_string(), rule), n);
        }
    }
    map
}

/// The ratcheted rules, in reporting order. `parse-error` and
/// `tool-registration` are deliberately absent: those are never
/// grandfatherable.
const RATCHET_RULES: &[&str] = &[
    "no-panic",
    "no-truncating-cast",
    "no-println",
    "swallowed-error",
    "float-eq",
    "nan-partial-cmp",
];

/// Applies the exact ratchet to one scanned file: every rule's hit
/// count must match the allowlist grant exactly — more is a finding,
/// fewer is a stale allowlist entry (the ratchet may only shrink).
/// Non-ratchetable rules (`parse-error`) always report.
fn ratchet_file(
    rep: &mut SourceLintReport,
    allow: &mut BTreeMap<(String, String), usize>,
    rel: &str,
    hits: &[(usize, &'static str, String)],
) {
    for (ln, rule, excerpt) in hits.iter().filter(|(_, r, _)| !RATCHET_RULES.contains(r)) {
        rep.findings.push(SourceFinding {
            file: rel.to_string(),
            line: *ln,
            rule,
            excerpt: excerpt.clone(),
        });
    }
    for rule in RATCHET_RULES {
        let matched: Vec<_> = hits.iter().filter(|(_, r, _)| r == rule).collect();
        let granted = allow
            .remove(&(rel.to_string(), (*rule).to_string()))
            .unwrap_or(0);
        match matched.len().cmp(&granted) {
            std::cmp::Ordering::Greater => {
                // More sites than grandfathered: report them all so the
                // offender is visible regardless of which line is "new".
                for (ln, rule, excerpt) in &matched {
                    rep.findings.push(SourceFinding {
                        file: rel.to_string(),
                        line: *ln,
                        rule,
                        excerpt: excerpt.clone(),
                    });
                }
            }
            std::cmp::Ordering::Less => rep.allowlist_errors.push(format!(
                "{rel}: allowlist grants {granted} {rule} site(s) but only {} remain — \
                 tighten {ALLOWLIST_PATH} (the allowlist may only shrink)",
                matched.len()
            )),
            std::cmp::Ordering::Equal => {
                if granted > 0 {
                    rep.grandfathered
                        .insert((rel.to_string(), (*rule).to_string()), granted);
                }
            }
        }
    }
}

/// The [`RuleSet`] a library file in `crates/<krate>/src` is scanned
/// under. `is_bin` exempts `no-println` (printing is a binary's job).
pub fn crate_ruleset(krate: &str, is_bin: bool) -> RuleSet {
    RuleSet {
        panics: SOLVER_CRATES.contains(&krate),
        casts: KERNEL_CRATES.contains(&krate),
        println: !is_bin,
        swallowed: SWALLOW_CRATES.contains(&krate),
        float_eq: FLOAT_CRATES.contains(&krate),
        nan_cmp: FLOAT_CRATES.contains(&krate),
        skip_test_fns: false,
    }
}

/// Runs every source lint over the workspace at `repo_root`.
pub fn lint_sources(repo_root: &Path) -> io::Result<SourceLintReport> {
    let mut rep = SourceLintReport::default();
    let mut allow = read_allowlist(repo_root);

    for krate in NO_PRINTLN_CRATES {
        let src = repo_root.join("crates").join(krate).join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rs_files(&src, &mut files)?;
        for path in files {
            rep.files_scanned += 1;
            let rel = path
                .strip_prefix(repo_root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            // Binaries print by design; the no-println rule covers
            // library code only.
            let is_bin = rel.contains("/src/bin/") || rel.ends_with("/main.rs");
            let text = fs::read_to_string(&path)?;
            let hits = scan_file_ruleset(&text, &crate_ruleset(krate, is_bin));
            ratchet_file(&mut rep, &mut allow, &rel, &hits);
        }
    }

    // Repo-root test-support trees: integration tests and examples.
    for dir in TEST_SUPPORT_DIRS {
        let root = repo_root.join(dir);
        if !root.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rs_files(&root, &mut files)?;
        for path in files {
            rep.files_scanned += 1;
            let rel = path
                .strip_prefix(repo_root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let text = fs::read_to_string(&path)?;
            let hits = scan_test_support_file(&text);
            ratchet_file(&mut rep, &mut allow, &rel, &hits);
        }
    }

    for ((path, rule), n) in allow {
        rep.allowlist_errors.push(format!(
            "{path}: allowlist grants {n} {rule} site(s) but the file was not scanned \
             (moved or deleted?) — remove the entry from {ALLOWLIST_PATH}"
        ));
    }

    registration_lint(repo_root, &mut rep)?;
    Ok(rep)
}

/// Every `pub fn *_tool` in `crates/core/src/tools_*.rs` must appear in
/// `crates/core/src/agents.rs` (the registration site that binds each
/// handler to its `ToolSpec` schema). Both sides are judged on tokens:
/// a handler name is a parsed `pub fn` item, and a registry mention
/// must be an identifier token — a name spelled only in a comment or
/// string no longer counts as registered.
fn registration_lint(repo_root: &Path, rep: &mut SourceLintReport) -> io::Result<()> {
    let core_src = repo_root.join("crates/core/src");
    if !core_src.is_dir() {
        return Ok(());
    }
    let registry_text = fs::read_to_string(core_src.join("agents.rs")).unwrap_or_default();
    let (registry_toks, _) = lex(&registry_text);
    let registered: std::collections::BTreeSet<&str> = registry_toks
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect();

    let mut files = Vec::new();
    rs_files(&core_src, &mut files)?;
    for path in files {
        let name = path.file_name().map(|n| n.to_string_lossy().to_string());
        let Some(name) = name else { continue };
        if !name.starts_with("tools_") {
            continue;
        }
        rep.files_scanned += 1;
        let rel = format!("crates/core/src/{name}");
        let text = fs::read_to_string(&path)?;
        let (trees, _) = parse(&text);
        for item in scan_items(&trees) {
            if item.kind != "fn" || !item.name.ends_with("_tool") {
                continue;
            }
            let is_pub = trees[item.span.0..item.span.1.min(trees.len())]
                .iter()
                .any(|t| t.is_ident("pub"));
            if is_pub && !registered.contains(item.name.as_str()) {
                rep.findings.push(SourceFinding {
                    file: rel.clone(),
                    line: item.line,
                    rule: "tool-registration",
                    excerpt: format!(
                        "`{}` is not registered in crates/core/src/agents.rs \
                         (every tool handler needs a ToolSpec schema binding)",
                        item.name
                    ),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_unwrap_and_expect() {
        let hits = scan_file(
            "fn f() {\n    x.unwrap();\n    y.expect(\"m\");\n}\n",
            false,
        );
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, 2);
        assert_eq!(hits[1].0, 3);
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let text = "fn f() {\n    x.unwrap_or(0);\n    y.unwrap_or_else(|| 1);\n    z.unwrap_or_default();\n}\n";
        assert!(scan_file(text, false).is_empty());
    }

    #[test]
    fn test_modules_are_skipped() {
        let text = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); }\n}\nfn h() { y.unwrap(); }\n";
        let hits = scan_file(text, false);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 6);
    }

    #[test]
    fn comments_do_not_count() {
        let text = "// x.unwrap() in a comment\n/// doc: panic!(\"no\")\nfn f() {}\n";
        assert!(scan_file(text, false).is_empty());
    }

    #[test]
    fn string_literals_do_not_count() {
        // The regression class the line scanner could not express: the
        // pattern bytes live inside string-literal contents.
        let text =
            "fn f() -> String {\n    format!(\"never call x.unwrap() or panic!(..) here\")\n}\n";
        assert!(scan_file(text, false).is_empty());
    }

    #[test]
    fn code_after_string_with_slashes_still_scanned() {
        // The line scanner treated `//` inside a string as a comment
        // start and dropped the rest of the line — hiding this unwrap.
        let text = "fn f() {\n    g(\"https://example.com\").unwrap();\n}\n";
        let hits = scan_file(text, false);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].0, 2);
    }

    #[test]
    fn panic_macros_detected() {
        let text = "fn f() {\n    panic!(\"boom\");\n    unreachable!();\n    todo!();\n}\n";
        assert_eq!(scan_file(text, false).len(), 3);
    }

    #[test]
    fn float_to_int_cast_flagged_in_kernel_mode() {
        let text = "fn f(x: f64) -> usize {\n    (x * 2.0) as usize\n}\n";
        let hits = scan_file(text, true);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1, "no-truncating-cast");
        // Same text without cast checking: clean.
        assert!(scan_file(text, false).is_empty());
    }

    #[test]
    fn int_to_int_cast_is_fine() {
        let text = "fn f(x: u32) -> usize {\n    x as usize\n}\n";
        assert!(scan_file(text, true).is_empty());
    }

    #[test]
    fn int_to_float_cast_is_fine() {
        let text = "fn f(x: usize) -> f64 {\n    x as f64\n}\n";
        assert!(scan_file(text, true).is_empty());
    }

    #[test]
    fn cfg_test_attr_with_following_attrs_skipped() {
        let text =
            "#[cfg(test)]\n#[allow(dead_code)]\nmod tests {\n    fn g() { x.unwrap(); }\n}\n";
        assert!(scan_file(text, false).is_empty());
    }

    #[test]
    fn println_and_eprintln_flagged_when_enabled() {
        let text = "fn f() {\n    println!(\"x\");\n    eprintln!(\"y\");\n}\n";
        let hits = scan_file_rules(text, false, false, true);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|(_, rule, _)| *rule == "no-println"));
        assert_eq!(hits[0].0, 2);
        assert_eq!(hits[1].0, 3);
    }

    #[test]
    fn println_in_comments_and_tests_not_flagged() {
        let text = "// println!(\"doc\")\n#[cfg(test)]\nmod tests {\n    fn g() { println!(\"t\"); }\n}\nfn h() {}\n";
        assert!(scan_file_rules(text, false, false, true).is_empty());
    }

    #[test]
    fn scan_file_ignores_println() {
        // Back-compat entry point: panics only (plus optional casts).
        let text = "fn f() {\n    println!(\"x\");\n}\n";
        assert!(scan_file(text, true).is_empty());
    }

    #[test]
    fn writeln_to_buffer_is_fine() {
        let text = "fn f(out: &mut String) {\n    writeln!(out, \"x\").ok();\n}\n";
        assert!(scan_file_rules(text, false, false, true).is_empty());
    }

    #[test]
    fn test_support_skips_test_fns_but_flags_helpers() {
        let text = "#[test]\nfn asserts() {\n    x.unwrap();\n    assert_eq!(a, b);\n}\n\nfn helper() -> u32 {\n    y.unwrap()\n}\n";
        let hits = scan_test_support_file(text);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 8);
        assert_eq!(hits[0].1, "no-panic");
    }

    #[test]
    fn test_support_skips_should_panic_fns() {
        let text = "#[test]\n#[should_panic(expected = \"boom\")]\nfn dies() {\n    panic!(\"boom\");\n}\n";
        assert!(scan_test_support_file(text).is_empty());
    }

    #[test]
    fn test_support_skips_macro_body_test_fns() {
        // The brace-counting scanner could not see into `proptest! { }`
        // bodies; the token tree can.
        let text = "proptest! {\n    #![proptest_config(Config::with_cases(64))]\n    #[test]\n    fn roundtrips(a in 0usize..9) {\n        check(a).unwrap();\n    }\n}\n";
        assert!(scan_test_support_file(text).is_empty());
    }

    #[test]
    fn test_support_allows_println_everywhere() {
        let text = "fn main() {\n    println!(\"demo output\");\n    eprintln!(\"progress\");\n}\n";
        assert!(scan_test_support_file(text).is_empty());
    }

    #[test]
    fn test_support_flags_example_main_unwrap() {
        let text =
            "fn main() {\n    let net = cases::load(id).unwrap();\n    println!(\"{net:?}\");\n}\n";
        let hits = scan_test_support_file(text);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 2);
    }

    #[test]
    fn library_mode_does_not_skip_test_attr_fns() {
        // #[test] outside #[cfg(test)] cannot occur in library code the
        // crate loop scans; the switch stays off there so a stray
        // `#[test]`-looking line never hides a panic site.
        let text = "#[test]\nfn f() {\n    x.unwrap();\n}\n";
        assert_eq!(scan_file(text, false).len(), 1);
    }

    #[test]
    fn parse_errors_surface_as_hits() {
        let text = "fn f() { let s = \"unterminated; }\n";
        let hits = scan_file(text, false);
        assert!(hits.iter().any(|(_, rule, _)| *rule == "parse-error"));
    }

    #[test]
    fn crate_rulesets_cover_the_declared_scopes() {
        let serve = crate_ruleset("serve", false);
        assert!(serve.swallowed && serve.println && !serve.panics && !serve.float_eq);
        let sparse = crate_ruleset("sparse", false);
        assert!(sparse.panics && sparse.casts && sparse.float_eq && sparse.swallowed);
        let serve_bin = crate_ruleset("serve", true);
        assert!(!serve_bin.println);
    }
}
