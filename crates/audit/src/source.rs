//! Line-based source lints over the workspace tree.
//!
//! `syn` is unavailable offline, so the scanner is a deliberately simple
//! state machine over source lines. Its known approximations:
//!
//! - `#[cfg(test)]` items are skipped by brace counting from the
//!   attribute to the matching close brace;
//! - text after `//` on a line is ignored (doc comments and line
//!   comments never produce findings); a `//` inside a string literal
//!   is mis-treated as a comment, which can only *hide* a finding on
//!   an already-unusual line, never invent one;
//! - pattern matches inside string literals are accepted as findings —
//!   solver-crate code has no reason to spell `".unwrap()"` in a string.
//!
//! The rules (see the crate docs) and the grandfathered-site allowlist
//! (`crates/audit/lint_allowlist.txt`) are enforced by [`lint_sources`].

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose non-test code must be panic-free.
pub const SOLVER_CRATES: &[&str] = &[
    "numeric",
    "sparse",
    "powerflow",
    "acopf",
    "contingency",
    "faults",
];

/// Crates whose non-test code must not contain truncating float→int
/// `as` casts (silent data-loss hazard in numeric kernels).
pub const KERNEL_CRATES: &[&str] = &["numeric", "sparse"];

/// Crates whose library code must not write to stdout/stderr with
/// `println!`/`eprintln!` — diagnostics go through `gm_telemetry::event`
/// so library output stays structured and stdout stays clean. Binaries
/// (`src/bin/**`, `main.rs`) are exempt: printing is their job.
pub const NO_PRINTLN_CRATES: &[&str] = &[
    "numeric",
    "sparse",
    "network",
    "powerflow",
    "acopf",
    "contingency",
    "agents",
    "telemetry",
    "core",
    "serve",
    "faults",
];

/// Repo-root directories holding test-support code (`tests/`,
/// `examples/`). Scanned for `no-panic` only: printing is fine there,
/// and panic sites inside `#[test]` functions are the assertion idiom —
/// but a plain helper function (or example `main`) that panics is
/// flagged, because it kills every caller with a useless backtrace.
pub const TEST_SUPPORT_DIRS: &[&str] = &["tests", "examples"];

/// Relative path of the allowlist file (from the repo root).
pub const ALLOWLIST_PATH: &str = "crates/audit/lint_allowlist.txt";

/// One source-lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFinding {
    /// Path relative to the repo root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (`no-panic`, `no-truncating-cast`, `no-println`,
    /// `tool-registration`).
    pub rule: &'static str,
    /// The offending line (trimmed) or a description.
    pub excerpt: String,
}

impl std::fmt::Display for SourceFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.excerpt
        )
    }
}

/// Outcome of a full `lint-src` run.
#[derive(Debug, Default)]
pub struct SourceLintReport {
    /// Violations not covered by the allowlist.
    pub findings: Vec<SourceFinding>,
    /// Grandfathered sites per `(path, rule)` — matches absorbed by the
    /// allowlist.
    pub grandfathered: BTreeMap<(String, String), usize>,
    /// Allowlist bookkeeping problems: stale entries (site was removed
    /// but the allowlist still grants it — the ratchet must be
    /// tightened) or entries for files that no longer exist.
    pub allowlist_errors: Vec<String>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl SourceLintReport {
    /// True when the tree is clean and the allowlist is exact.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.allowlist_errors.is_empty()
    }
}

/// Strips the trailing `//` comment from a line. A `//` inside a string
/// literal is treated as a comment start (see module docs).
fn code_part(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// True when `code` contains a panicking construct.
fn has_panic_site(code: &str) -> bool {
    code.contains(".unwrap()")
        || code.contains(".expect(")
        || code.contains("panic!(")
        || code.contains("unreachable!(")
        || code.contains("todo!(")
        || code.contains("unimplemented!(")
}

/// True when `code` contains a float→int `as` cast, judged by an `as
/// <int type>` cast on a line with float evidence (a float type, a
/// float-producing method, or a float literal).
fn has_truncating_cast(code: &str) -> bool {
    const INT_TYPES: &[&str] = &[
        "i8", "i16", "i32", "i64", "i128", "isize", "u8", "u16", "u32", "u64", "u128", "usize",
    ];
    let mut has_int_cast = false;
    let mut rest = code;
    while let Some(i) = rest.find(" as ") {
        let after = &rest[i + 4..];
        let token: String = after
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if INT_TYPES.contains(&token.as_str()) {
            has_int_cast = true;
            break;
        }
        rest = &rest[i + 4..];
    }
    if !has_int_cast {
        return false;
    }
    let float_method = [
        ".sqrt()", ".floor()", ".ceil()", ".round()", ".abs()", ".powi(", ".powf(",
    ]
    .iter()
    .any(|m| code.contains(m));
    let float_literal = {
        let bytes = code.as_bytes();
        (1..bytes.len().saturating_sub(1)).any(|i| {
            bytes[i] == b'.' && bytes[i - 1].is_ascii_digit() && bytes[i + 1].is_ascii_digit()
        })
    };
    code.contains("f64") || code.contains("f32") || float_method || float_literal
}

/// True when `code` writes to stdout/stderr directly.
fn has_println_site(code: &str) -> bool {
    code.contains("println!(") || code.contains("eprintln!(")
}

/// Scans one file's text for `no-panic` (and optionally
/// `no-truncating-cast`) violations, skipping `#[cfg(test)]` items and
/// comments. Returns `(line_number, rule, excerpt)` triples.
pub fn scan_file(text: &str, check_casts: bool) -> Vec<(usize, &'static str, String)> {
    scan_file_rules(text, true, check_casts, false)
}

/// Scans with explicit per-rule switches (`no-panic`,
/// `no-truncating-cast`, `no-println`), skipping `#[cfg(test)]` items
/// and comments.
pub fn scan_file_rules(
    text: &str,
    check_panics: bool,
    check_casts: bool,
    check_println: bool,
) -> Vec<(usize, &'static str, String)> {
    scan_impl(text, check_panics, check_casts, check_println, false)
}

/// Scans a test-support file (`tests/*.rs`, `examples/*.rs`): panics
/// inside `#[test]`-annotated functions are the idiom and are skipped,
/// but panic sites in plain helper functions (and example `main`s) are
/// still flagged — a helper that panics kills every test that calls it
/// with a useless backtrace.
pub fn scan_test_support_file(text: &str) -> Vec<(usize, &'static str, String)> {
    scan_impl(text, true, false, false, true)
}

fn scan_impl(
    text: &str,
    check_panics: bool,
    check_casts: bool,
    check_println: bool,
    skip_test_fns: bool,
) -> Vec<(usize, &'static str, String)> {
    let mut out = Vec::new();
    let mut skip_depth: i32 = 0; // >0: inside a #[cfg(test)]/#[test] item
    let mut pending_test_attr = false;
    for (ln0, raw) in text.lines().enumerate() {
        let code = code_part(raw);
        let trimmed = code.trim();
        if skip_depth > 0 {
            skip_depth += braces(code);
            continue;
        }
        if pending_test_attr {
            // Attribute lines between the test attribute and the item
            // keep the pending state; the item line opens the skip
            // region.
            if trimmed.is_empty() || trimmed.starts_with("#[") {
                // stay pending
            } else {
                let d = braces(code);
                if d > 0 {
                    skip_depth = d;
                    pending_test_attr = false;
                    continue;
                }
                // Braceless item (e.g. `mod tests;`): nothing to skip.
                pending_test_attr = false;
            }
        }
        if trimmed.starts_with("#[cfg(test)]")
            || (skip_test_fns
                && (trimmed.starts_with("#[test]")
                    || trimmed == "#[should_panic]"
                    || trimmed.starts_with("#[should_panic(")))
        {
            pending_test_attr = true;
            continue;
        }
        if check_panics && has_panic_site(code) {
            out.push((ln0 + 1, "no-panic", trimmed.to_string()));
        }
        if check_casts && has_truncating_cast(code) {
            out.push((ln0 + 1, "no-truncating-cast", trimmed.to_string()));
        }
        if check_println && has_println_site(code) {
            out.push((ln0 + 1, "no-println", trimmed.to_string()));
        }
    }
    out
}

/// Net brace depth change of a code line.
#[allow(clippy::cast_possible_wrap)]
fn braces(code: &str) -> i32 {
    let open = code.matches('{').count() as i32;
    let close = code.matches('}').count() as i32;
    open - close
}

fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
    Ok(())
}

/// Parses the allowlist, keyed `(path, rule)`. Two line forms, `#`
/// comments allowed:
///
/// - `<relative path> <rule> <count>` — explicit rule;
/// - `<relative path> <count>` — legacy form, meaning `no-panic`.
///
/// Missing file → empty allowlist.
fn read_allowlist(repo_root: &Path) -> BTreeMap<(String, String), usize> {
    let mut map = BTreeMap::new();
    let Ok(text) = fs::read_to_string(repo_root.join(ALLOWLIST_PATH)) else {
        return map;
    };
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let Some(path) = parts.next() else { continue };
        let (rule, count) = match (parts.next(), parts.next()) {
            (Some(rule), Some(count)) => (rule.to_string(), count.parse::<usize>()),
            (Some(count), None) => ("no-panic".to_string(), count.parse::<usize>()),
            _ => continue,
        };
        if let Ok(n) = count {
            map.insert((path.to_string(), rule), n);
        }
    }
    map
}

/// The ratcheted rules, in reporting order.
const RATCHET_RULES: &[&str] = &["no-panic", "no-truncating-cast", "no-println"];

/// Applies the exact ratchet to one scanned file: every rule's hit
/// count must match the allowlist grant exactly — more is a finding,
/// fewer is a stale allowlist entry (the ratchet may only shrink).
fn ratchet_file(
    rep: &mut SourceLintReport,
    allow: &mut BTreeMap<(String, String), usize>,
    rel: &str,
    hits: &[(usize, &'static str, String)],
) {
    for rule in RATCHET_RULES {
        let matched: Vec<_> = hits.iter().filter(|(_, r, _)| r == rule).collect();
        let granted = allow
            .remove(&(rel.to_string(), rule.to_string()))
            .unwrap_or(0);
        match matched.len().cmp(&granted) {
            std::cmp::Ordering::Greater => {
                // More sites than grandfathered: report them all so the
                // offender is visible regardless of which line is "new".
                for (ln, rule, excerpt) in &matched {
                    rep.findings.push(SourceFinding {
                        file: rel.to_string(),
                        line: *ln,
                        rule,
                        excerpt: excerpt.clone(),
                    });
                }
            }
            std::cmp::Ordering::Less => rep.allowlist_errors.push(format!(
                "{rel}: allowlist grants {granted} {rule} site(s) but only {} remain — \
                 tighten {ALLOWLIST_PATH} (the allowlist may only shrink)",
                matched.len()
            )),
            std::cmp::Ordering::Equal => {
                if granted > 0 {
                    rep.grandfathered
                        .insert((rel.to_string(), rule.to_string()), granted);
                }
            }
        }
    }
}

/// Runs every source lint over the workspace at `repo_root`.
pub fn lint_sources(repo_root: &Path) -> io::Result<SourceLintReport> {
    let mut rep = SourceLintReport::default();
    let mut allow = read_allowlist(repo_root);

    for krate in NO_PRINTLN_CRATES {
        let src = repo_root.join("crates").join(krate).join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rs_files(&src, &mut files)?;
        let check_panics = SOLVER_CRATES.contains(krate);
        let check_casts = KERNEL_CRATES.contains(krate);
        for path in files {
            rep.files_scanned += 1;
            let rel = path
                .strip_prefix(repo_root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            // Binaries print by design; the no-println rule covers
            // library code only.
            let is_bin = rel.contains("/src/bin/") || rel.ends_with("/main.rs");
            let text = fs::read_to_string(&path)?;
            let hits = scan_file_rules(&text, check_panics, check_casts, !is_bin);
            ratchet_file(&mut rep, &mut allow, &rel, &hits);
        }
    }

    // Repo-root test-support trees: integration tests and examples.
    for dir in TEST_SUPPORT_DIRS {
        let root = repo_root.join(dir);
        if !root.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rs_files(&root, &mut files)?;
        for path in files {
            rep.files_scanned += 1;
            let rel = path
                .strip_prefix(repo_root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let text = fs::read_to_string(&path)?;
            let hits = scan_test_support_file(&text);
            ratchet_file(&mut rep, &mut allow, &rel, &hits);
        }
    }

    for ((path, rule), n) in allow {
        rep.allowlist_errors.push(format!(
            "{path}: allowlist grants {n} {rule} site(s) but the file was not scanned \
             (moved or deleted?) — remove the entry from {ALLOWLIST_PATH}"
        ));
    }

    registration_lint(repo_root, &mut rep)?;
    Ok(rep)
}

/// Every `pub fn *_tool` in `crates/core/src/tools_*.rs` must appear in
/// `crates/core/src/agents.rs` (the registration site that binds each
/// handler to its `ToolSpec` schema).
fn registration_lint(repo_root: &Path, rep: &mut SourceLintReport) -> io::Result<()> {
    let core_src = repo_root.join("crates/core/src");
    if !core_src.is_dir() {
        return Ok(());
    }
    let registry = fs::read_to_string(core_src.join("agents.rs")).unwrap_or_default();
    let mut files = Vec::new();
    rs_files(&core_src, &mut files)?;
    for path in files {
        let name = path.file_name().map(|n| n.to_string_lossy().to_string());
        let Some(name) = name else { continue };
        if !name.starts_with("tools_") {
            continue;
        }
        rep.files_scanned += 1;
        let rel = format!("crates/core/src/{name}");
        let text = fs::read_to_string(&path)?;
        for (ln0, raw) in text.lines().enumerate() {
            let code = code_part(raw).trim();
            let Some(sig) = code.strip_prefix("pub fn ") else {
                continue;
            };
            let fn_name: String = sig
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if fn_name.ends_with("_tool") && !registry.contains(fn_name.as_str()) {
                rep.findings.push(SourceFinding {
                    file: rel.clone(),
                    line: ln0 + 1,
                    rule: "tool-registration",
                    excerpt: format!(
                        "`{fn_name}` is not registered in crates/core/src/agents.rs \
                         (every tool handler needs a ToolSpec schema binding)"
                    ),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_unwrap_and_expect() {
        let hits = scan_file(
            "fn f() {\n    x.unwrap();\n    y.expect(\"m\");\n}\n",
            false,
        );
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, 2);
        assert_eq!(hits[1].0, 3);
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let text = "fn f() {\n    x.unwrap_or(0);\n    y.unwrap_or_else(|| 1);\n    z.unwrap_or_default();\n}\n";
        assert!(scan_file(text, false).is_empty());
    }

    #[test]
    fn test_modules_are_skipped() {
        let text = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); }\n}\nfn h() { y.unwrap(); }\n";
        let hits = scan_file(text, false);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 6);
    }

    #[test]
    fn comments_do_not_count() {
        let text = "// x.unwrap() in a comment\n/// doc: panic!(\"no\")\nfn f() {}\n";
        assert!(scan_file(text, false).is_empty());
    }

    #[test]
    fn panic_macros_detected() {
        let text = "fn f() {\n    panic!(\"boom\");\n    unreachable!();\n    todo!();\n}\n";
        assert_eq!(scan_file(text, false).len(), 3);
    }

    #[test]
    fn float_to_int_cast_flagged_in_kernel_mode() {
        let text = "fn f(x: f64) -> usize {\n    (x * 2.0) as usize\n}\n";
        let hits = scan_file(text, true);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1, "no-truncating-cast");
        // Same text without cast checking: clean.
        assert!(scan_file(text, false).is_empty());
    }

    #[test]
    fn int_to_int_cast_is_fine() {
        let text = "fn f(x: u32) -> usize {\n    x as usize\n}\n";
        assert!(scan_file(text, true).is_empty());
    }

    #[test]
    fn int_to_float_cast_is_fine() {
        let text = "fn f(x: usize) -> f64 {\n    x as f64\n}\n";
        assert!(scan_file(text, true).is_empty());
    }

    #[test]
    fn cfg_test_attr_with_following_attrs_skipped() {
        let text =
            "#[cfg(test)]\n#[allow(dead_code)]\nmod tests {\n    fn g() { x.unwrap(); }\n}\n";
        assert!(scan_file(text, false).is_empty());
    }

    #[test]
    fn println_and_eprintln_flagged_when_enabled() {
        let text = "fn f() {\n    println!(\"x\");\n    eprintln!(\"y\");\n}\n";
        let hits = scan_file_rules(text, false, false, true);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|(_, rule, _)| *rule == "no-println"));
        assert_eq!(hits[0].0, 2);
        assert_eq!(hits[1].0, 3);
    }

    #[test]
    fn println_in_comments_and_tests_not_flagged() {
        let text = "// println!(\"doc\")\n#[cfg(test)]\nmod tests {\n    fn g() { println!(\"t\"); }\n}\nfn h() {}\n";
        assert!(scan_file_rules(text, false, false, true).is_empty());
    }

    #[test]
    fn scan_file_ignores_println() {
        // Back-compat entry point: panics only (plus optional casts).
        let text = "fn f() {\n    println!(\"x\");\n}\n";
        assert!(scan_file(text, true).is_empty());
    }

    #[test]
    fn writeln_to_buffer_is_fine() {
        let text = "fn f(out: &mut String) {\n    writeln!(out, \"x\").ok();\n}\n";
        assert!(scan_file_rules(text, false, false, true).is_empty());
    }

    #[test]
    fn test_support_skips_test_fns_but_flags_helpers() {
        let text = "#[test]\nfn asserts() {\n    x.unwrap();\n    assert_eq!(a, b);\n}\n\nfn helper() -> u32 {\n    y.unwrap()\n}\n";
        let hits = scan_test_support_file(text);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 8);
        assert_eq!(hits[0].1, "no-panic");
    }

    #[test]
    fn test_support_skips_should_panic_fns() {
        let text = "#[test]\n#[should_panic(expected = \"boom\")]\nfn dies() {\n    panic!(\"boom\");\n}\n";
        assert!(scan_test_support_file(text).is_empty());
    }

    #[test]
    fn test_support_allows_println_everywhere() {
        let text = "fn main() {\n    println!(\"demo output\");\n    eprintln!(\"progress\");\n}\n";
        assert!(scan_test_support_file(text).is_empty());
    }

    #[test]
    fn test_support_flags_example_main_unwrap() {
        let text =
            "fn main() {\n    let net = cases::load(id).unwrap();\n    println!(\"{net:?}\");\n}\n";
        let hits = scan_test_support_file(text);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 2);
    }

    #[test]
    fn library_mode_does_not_skip_test_attr_fns() {
        // #[test] outside #[cfg(test)] cannot occur in library code the
        // crate loop scans; the switch stays off there so a stray
        // `#[test]`-looking line never hides a panic site.
        let text = "#[test]\nfn f() {\n    x.unwrap();\n}\n";
        assert_eq!(scan_file(text, false).len(), 1);
    }
}
