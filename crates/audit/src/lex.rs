//! A hand-written, zero-dependency Rust lexer.
//!
//! The build environment is offline, so `syn`/`proc-macro2` are not
//! available; this module implements the subset of Rust's lexical
//! grammar the lint engine needs to be *exact* about what is code and
//! what is not:
//!
//! - line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`), all discarded as [`TokKind::trivia`];
//! - string literals: plain (`"…"` with escapes), raw (`r"…"`,
//!   `r##"…"##`), byte (`b"…"`), raw byte (`br#"…"#`), and C strings
//!   (`c"…"`);
//! - char and byte-char literals (`'a'`, `'\n'`, `'\u{1F600}'`,
//!   `b'x'`) disambiguated from **lifetimes** (`'a`, `'static`);
//! - numeric literals with radix prefixes, underscores, exponents and
//!   type suffixes, classified int vs float (`0x1f`, `1_000`, `1.5e-3`,
//!   `2f64`) — `0..n` lexes as int, dot-dot, int, and `x.0` never
//!   produces a float;
//! - identifiers (including raw `r#type`) and keywords;
//! - single-character punctuation (multi-char operators such as `=>`,
//!   `::`, `==` stay as adjacent [`TokKind::Punct`] tokens, which is
//!   what a token-tree matcher wants).
//!
//! Every token carries its 1-based source line, so findings produced
//! from any depth of the token tree still point at real code lines.

/// Lexical class of one token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `foo`, `r#type`).
    Ident,
    /// Lifetime (`'a`, `'static`) — the quote is part of the token text.
    Lifetime,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    CharLit,
    /// String literal of any flavor (plain, raw, byte, raw-byte, C).
    /// `text` holds the *unquoted* contents (escapes left as written).
    StrLit,
    /// Integer literal (any radix, suffix included in `text`).
    IntLit,
    /// Float literal (decimal point and/or exponent and/or f32/f64
    /// suffix).
    FloatLit,
    /// One punctuation character (`.`, `=`, `!`, `#`, `&`, …).
    Punct,
    /// Opening delimiter: `(`, `[`, `{`.
    Open,
    /// Closing delimiter: `)`, `]`, `}`.
    Close,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Token {
    /// Lexical class.
    pub kind: TokKind,
    /// Token text. For [`TokKind::StrLit`] this is the literal's
    /// *contents* (no quotes, no raw hashes, escapes unprocessed); for
    /// every other kind it is the exact source slice.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

impl Token {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True for a punctuation token with exactly this character.
    pub fn is_punct(&self, c: char) -> bool {
        (self.kind == TokKind::Punct || self.kind == TokKind::Open || self.kind == TokKind::Close)
            && self.text.len() == c.len_utf8()
            && self.text.starts_with(c)
    }
}

/// A problem encountered while lexing (unterminated literal or
/// comment). The lexer recovers by consuming to end of input, so one
/// error never cascades; the driver reports it as a finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line of the offending construct's start.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

/// Lexes `src` into a flat token stream, discarding comments and
/// whitespace. Returns the tokens plus any (recoverable) lex errors.
pub fn lex(src: &str) -> (Vec<Token>, Vec<LexError>) {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
        errors: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    tokens: Vec<Token>,
    errors: Vec<LexError>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek(0);
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        b
    }

    fn push(&mut self, kind: TokKind, text: String, line: usize) {
        self.tokens.push(Token { kind, text, line });
    }

    fn error(&mut self, line: usize, message: &str) {
        self.errors.push(LexError {
            line,
            message: message.to_string(),
        });
    }

    fn run(mut self) -> (Vec<Token>, Vec<LexError>) {
        while self.pos < self.src.len() {
            let b = self.peek(0);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'r' | b'b' | b'c' if self.maybe_prefixed_literal() => {}
                b'"' => self.string(false),
                b'\'' => self.quote(),
                b'0'..=b'9' => self.number(),
                _ if is_ident_start(b) => self.ident(),
                b'(' | b'[' | b'{' => {
                    let line = self.line;
                    self.bump();
                    self.push(TokKind::Open, (b as char).to_string(), line);
                }
                b')' | b']' | b'}' => {
                    let line = self.line;
                    self.bump();
                    self.push(TokKind::Close, (b as char).to_string(), line);
                }
                _ => {
                    let line = self.line;
                    self.bump();
                    self.push(TokKind::Punct, (b as char).to_string(), line);
                }
            }
        }
        (self.tokens, self.errors)
    }

    fn line_comment(&mut self) {
        while self.pos < self.src.len() && self.peek(0) != b'\n' {
            self.bump();
        }
    }

    fn block_comment(&mut self) {
        let start_line = self.line;
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while self.pos < self.src.len() {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                self.bump();
                self.bump();
                depth += 1;
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                self.bump();
                self.bump();
                depth -= 1;
                if depth == 0 {
                    return;
                }
            } else {
                self.bump();
            }
        }
        self.error(start_line, "unterminated block comment");
    }

    /// Handles `r"…"`, `r#"…"#`, `r#ident`, `b"…"`, `b'…'`, `br"…"`,
    /// `br#"…"#`, `c"…"`, `cr#"…"#`. Returns `true` when a prefixed
    /// literal (or raw identifier) was consumed; `false` means the
    /// leading letter is an ordinary identifier start.
    fn maybe_prefixed_literal(&mut self) -> bool {
        let b0 = self.peek(0);
        let b1 = self.peek(1);
        let b2 = self.peek(2);
        match (b0, b1) {
            // Raw identifier r#name (but r#"…" is a raw string).
            (b'r', b'#') if is_ident_start(b2) => {
                let line = self.line;
                self.bump();
                self.bump();
                let mut text = String::from("r#");
                while is_ident_cont(self.peek(0)) {
                    text.push(self.bump() as char);
                }
                self.push(TokKind::Ident, text, line);
                true
            }
            (b'r', b'"') | (b'r', b'#') => {
                self.bump();
                self.raw_string();
                true
            }
            (b'b', b'\'') => {
                self.bump();
                self.quote_char_only();
                true
            }
            (b'b', b'"') | (b'c', b'"') => {
                self.bump();
                self.string(false);
                true
            }
            (b'b', b'r') | (b'c', b'r') if b2 == b'"' || b2 == b'#' => {
                self.bump();
                self.bump();
                self.raw_string();
                true
            }
            _ => false,
        }
    }

    /// Consumes a raw string starting at `#…"` or `"` (prefix letters
    /// already consumed).
    fn raw_string(&mut self) {
        let start_line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != b'"' {
            self.error(start_line, "malformed raw string");
            return;
        }
        self.bump(); // opening quote
        let mut text = String::new();
        loop {
            if self.pos >= self.src.len() {
                self.error(start_line, "unterminated raw string");
                break;
            }
            if self.peek(0) == b'"' {
                // Candidate closer: need `hashes` hash marks after it.
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(1 + k) != b'#' {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.bump();
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
            text.push(self.bump() as char);
        }
        self.push(TokKind::StrLit, text, start_line);
    }

    /// Consumes a plain (escaped) string starting at the opening quote.
    fn string(&mut self, _raw: bool) {
        let start_line = self.line;
        self.bump(); // opening quote
        let mut text = String::new();
        loop {
            if self.pos >= self.src.len() {
                self.error(start_line, "unterminated string literal");
                break;
            }
            match self.peek(0) {
                b'"' => {
                    self.bump();
                    break;
                }
                b'\\' => {
                    text.push(self.bump() as char);
                    if self.pos < self.src.len() {
                        text.push(self.bump() as char);
                    }
                }
                _ => text.push(self.bump() as char),
            }
        }
        self.push(TokKind::StrLit, text, start_line);
    }

    /// A `'`: lifetime or char literal. Rust's rule: `'` followed by an
    /// identifier not closed by another `'` is a lifetime; everything
    /// else is a char literal.
    fn quote(&mut self) {
        let b1 = self.peek(1);
        if is_ident_start(b1) && b1 != b'\\' {
            // Scan the identifier run and look for a closing quote.
            let mut k = 2;
            while is_ident_cont(self.peek(k)) {
                k += 1;
            }
            if self.peek(k) != b'\'' {
                // Lifetime.
                let line = self.line;
                let mut text = String::from("'");
                self.bump();
                while is_ident_cont(self.peek(0)) {
                    text.push(self.bump() as char);
                }
                self.push(TokKind::Lifetime, text, line);
                return;
            }
        }
        self.quote_char_only();
    }

    /// Consumes a char literal starting at `'` (a `b` prefix, if any,
    /// was already consumed).
    fn quote_char_only(&mut self) {
        let start_line = self.line;
        self.bump(); // opening quote
        let mut text = String::new();
        loop {
            if self.pos >= self.src.len() {
                self.error(start_line, "unterminated char literal");
                break;
            }
            match self.peek(0) {
                b'\'' => {
                    self.bump();
                    break;
                }
                b'\\' => {
                    text.push(self.bump() as char);
                    if self.pos < self.src.len() {
                        text.push(self.bump() as char);
                    }
                }
                _ => text.push(self.bump() as char),
            }
        }
        self.push(TokKind::CharLit, text, start_line);
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut is_float = false;

        if self.peek(0) == b'0' && matches!(self.peek(1), b'x' | b'o' | b'b') {
            // Radix literal: digits + underscores + hex letters, then an
            // optional suffix; never a float.
            text.push(self.bump() as char);
            text.push(self.bump() as char);
            while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
                text.push(self.bump() as char);
            }
            self.push(TokKind::IntLit, text, line);
            return;
        }

        // A number right after a `.` is a tuple index (`x.0`, `x.0.1`):
        // integral, and never owns a fractional part of its own.
        let tuple_index = self
            .tokens
            .last()
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == ".");

        while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
            text.push(self.bump() as char);
        }
        // Fractional part: a '.' followed by a digit, or a lone trailing
        // '.' not followed by '.', ident (method call / field access).
        if self.peek(0) == b'.' && !tuple_index {
            let after = self.peek(1);
            if after.is_ascii_digit() {
                is_float = true;
                text.push(self.bump() as char);
                while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                    text.push(self.bump() as char);
                }
            } else if after != b'.' && !is_ident_start(after) {
                // `1.` — trailing-dot float.
                is_float = true;
                text.push(self.bump() as char);
            }
        }
        // Exponent.
        if matches!(self.peek(0), b'e' | b'E') {
            let s1 = self.peek(1);
            let s2 = self.peek(2);
            if s1.is_ascii_digit() || ((s1 == b'+' || s1 == b'-') && s2.is_ascii_digit()) {
                is_float = true;
                text.push(self.bump() as char);
                if matches!(self.peek(0), b'+' | b'-') {
                    text.push(self.bump() as char);
                }
                while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                    text.push(self.bump() as char);
                }
            }
        }
        // Type suffix (`u32`, `f64`, `usize`, …).
        if is_ident_start(self.peek(0)) {
            let mut suffix = String::new();
            while is_ident_cont(self.peek(0)) {
                suffix.push(self.bump() as char);
            }
            if suffix.starts_with('f') {
                is_float = true;
            }
            text.push_str(&suffix);
        }
        self.push(
            if is_float {
                TokKind::FloatLit
            } else {
                TokKind::IntLit
            },
            text,
            line,
        );
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while is_ident_cont(self.peek(0)) {
            text.push(self.bump() as char);
        }
        self.push(TokKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        let (toks, errs) = lex(src);
        assert!(errs.is_empty(), "{errs:?}");
        toks.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_hide_code() {
        let toks = kinds(r#"let s = "x.unwrap()";"#);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::StrLit).count(),
            1
        );
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::StrLit && t == "x.unwrap()"));
        // No Ident token named `unwrap` outside the literal.
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"a "quoted" panic!("x")"#;"###);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::StrLit && t.contains("panic!")));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "panic"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* x /* y */ z.unwrap() */ b");
        let idents: Vec<_> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(idents, ["a", "b"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::CharLit).count(),
            2
        );
    }

    #[test]
    fn static_lifetime_and_quoted_keyword() {
        let toks = kinds("&'static str");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "'static"));
    }

    #[test]
    fn numbers_classified() {
        let toks = kinds("1 1.5 0x1f 1e3 1_000 2f64 0.5e-2 7usize");
        let t: Vec<_> = toks.iter().map(|(k, s)| (*k, s.as_str())).collect();
        assert_eq!(
            t,
            [
                (TokKind::IntLit, "1"),
                (TokKind::FloatLit, "1.5"),
                (TokKind::IntLit, "0x1f"),
                (TokKind::FloatLit, "1e3"),
                (TokKind::IntLit, "1_000"),
                (TokKind::FloatLit, "2f64"),
                (TokKind::FloatLit, "0.5e-2"),
                (TokKind::IntLit, "7usize"),
            ]
        );
    }

    #[test]
    fn range_is_not_a_float() {
        let toks = kinds("for i in 0..n {}");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::IntLit && t == "0"));
        assert!(!toks.iter().any(|(k, _)| *k == TokKind::FloatLit));
    }

    #[test]
    fn tuple_index_is_not_a_float() {
        let toks = kinds("x.0.1");
        let floats = toks.iter().filter(|(k, _)| *k == TokKind::FloatLit).count();
        assert_eq!(floats, 0, "{toks:?}");
    }

    #[test]
    fn trailing_dot_float() {
        let toks = kinds("let x = 1.;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::FloatLit && t == "1."));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = kinds(r##"let a = b"bytes"; let b = br#"raw "b""#; let c = b'x';"##);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::StrLit).count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::CharLit).count(),
            1
        );
    }

    #[test]
    fn raw_identifier() {
        let toks = kinds("let r#type = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "r#type"));
    }

    #[test]
    fn doc_comments_are_trivia() {
        let toks = kinds("/// doc with panic!(\"x\")\n//! inner .unwrap()\nfn f() {}");
        assert!(!toks.iter().any(|(_, t)| t == "panic" || t == "unwrap"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "fn"));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = \"x\ny\nz\";\nlet b = 1;";
        let (toks, _) = lex(src);
        let b = toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn escaped_quote_in_char() {
        let toks = kinds(r"let q = '\''; let s = 'a';");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::CharLit).count(),
            2
        );
    }

    #[test]
    fn unterminated_string_is_reported() {
        let (_, errs) = lex("let s = \"oops");
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("unterminated"));
    }
}
