//! Token-tree lint rules.
//!
//! Every rule here matches *token adjacency*, never raw text, so a
//! `panic!` spelled inside a string literal, doc comment, or nested
//! block comment can never produce a finding — the lexer already
//! classified those bytes as literal contents or trivia. Exemptions are
//! attribute-accurate: an item carrying `#[cfg(test)]` (at any nesting
//! depth, including inside macro invocation bodies like `proptest!`)
//! is skipped wholesale, and in test-support mode `#[test]` /
//! `#[should_panic]` functions are skipped too.
//!
//! Rules:
//!
//! | rule | pattern |
//! |------|---------|
//! | `no-panic` | `.unwrap()`, `.expect(…)`, `panic!`/`unreachable!`/`todo!`/`unimplemented!` invocations |
//! | `no-truncating-cast` | `as <int type>` whose source expression shows float evidence |
//! | `no-println` | `println!`/`eprintln!` invocations |
//! | `swallowed-error` | `let _ = <call>;`, statement-final `.ok();`, `Err(_) => {}` match arms |
//! | `float-eq` | `==`/`!=` with float evidence on either side (exact-zero comparisons exempt: they are the sparsity idiom and IEEE-exact) |
//! | `nan-partial-cmp` | `.partial_cmp(…).unwrap…`/`.expect…` — NaN-unaware total-order shortcut; use `total_cmp` |

use std::collections::BTreeSet;

use crate::lex::{LexError, TokKind};
use crate::tree::{parse, scan_items, TokenTree};

/// Which rules to run over one file.
#[derive(Clone, Copy, Debug, Default)]
pub struct RuleSet {
    /// `no-panic`.
    pub panics: bool,
    /// `no-truncating-cast`.
    pub casts: bool,
    /// `no-println`.
    pub println: bool,
    /// `swallowed-error`.
    pub swallowed: bool,
    /// `float-eq`.
    pub float_eq: bool,
    /// `nan-partial-cmp`.
    pub nan_cmp: bool,
    /// Test-support mode: `#[test]`/`#[should_panic]` functions are
    /// exempt (asserting is their job).
    pub skip_test_fns: bool,
}

/// One rule match: `(line, rule)`; the driver attaches the excerpt.
pub type Hit = (usize, &'static str);

/// Lexes, parses, and scans `src` under `rules`. Returns rule hits
/// (sorted by line) and any lexer/parser errors (unterminated literals,
/// unbalanced delimiters — reported by the driver as findings so a file
/// the engine cannot model is never silently under-linted).
pub fn scan_source(src: &str, rules: &RuleSet) -> (Vec<Hit>, Vec<LexError>) {
    let (trees, errors) = parse(src);
    let mut hits = Vec::new();
    scan_stream(&trees, rules, &BTreeSet::new(), &mut hits);
    hits.sort_unstable_by_key(|(line, rule)| (*line, *rule));
    (hits, errors)
}

/// Scans one token stream: recognizes item structure to apply
/// attribute exemptions, pattern-matches the stream's token adjacency,
/// and recurses into every non-exempt group.
///
/// `floats` carries identifiers known to be `f64`/`f32` from enclosing
/// declarations (`theta: f64` in a fn header, `let x: f64 = ..`), so
/// bare-ident expressions like `theta as usize` or `a == b` still carry
/// float evidence without a type checker.
fn scan_stream(
    trees: &[TokenTree],
    rules: &RuleSet,
    floats: &BTreeSet<String>,
    hits: &mut Vec<Hit>,
) {
    // Indices covered by an exempt item ([cfg(test)] always; #[test]
    // fns in test-support mode).
    let mut skip = vec![false; trees.len()];
    for item in scan_items(trees) {
        if item.is_cfg_test() || (rules.skip_test_fns && item.has_test_marker()) {
            for s in skip
                .iter_mut()
                .take(item.span.1.min(trees.len()))
                .skip(item.span.0)
            {
                *s = true;
            }
        }
    }
    // Extend the float-ident context with annotations visible at this
    // level — including inside immediate paren groups, so `fn` headers
    // (params in a sibling group of the body) contribute.
    let mut extended: Option<BTreeSet<String>> = None;
    let mut add = |name: &str| {
        extended
            .get_or_insert_with(|| floats.clone())
            .insert(name.to_string());
    };
    collect_float_annotations(trees, &mut add);
    for t in trees {
        if let TokenTree::Group(g) = t {
            if g.delim == '(' {
                collect_float_annotations(&g.trees, &mut add);
            }
        }
    }
    let floats = extended.as_ref().unwrap_or(floats);

    match_patterns(trees, &skip, rules, floats, hits);
    for (i, t) in trees.iter().enumerate() {
        if skip[i] {
            continue;
        }
        if let TokenTree::Group(g) = t {
            scan_stream(&g.trees, rules, floats, hits);
        }
    }
}

/// Finds `name : [& | mut | lifetime]* (f64|f32)` annotations at one
/// stream level and reports each `name`.
fn collect_float_annotations(trees: &[TokenTree], add: &mut impl FnMut(&str)) {
    for i in 0..trees.len() {
        let Some(name) = trees[i].leaf().filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        let Some(colon) = trees.get(i + 1) else {
            continue;
        };
        // `:` but not `::`.
        if !colon.is_punct(':')
            || trees.get(i + 2).is_some_and(|t| t.is_punct(':'))
            || i > 0 && trees[i - 1].is_punct(':')
        {
            continue;
        }
        let mut j = i + 2;
        while trees.get(j).is_some_and(|t| {
            t.is_punct('&')
                || t.is_ident("mut")
                || t.leaf().is_some_and(|tok| tok.kind == TokKind::Lifetime)
        }) {
            j += 1;
        }
        let is_float = trees
            .get(j)
            .is_some_and(|t| t.is_ident("f64") || t.is_ident("f32"));
        // The type must END there (next is a separator/terminator), so
        // `v: Vec<f64>` never marks `v` as a float.
        let terminated = match trees.get(j + 1) {
            None => true,
            Some(t) => t.is_punct(',') || t.is_punct(';') || t.is_punct('=') || t.is_punct(')'),
        };
        if is_float && terminated {
            add(&name.text);
        }
    }
}

/// True when this node sequence element is a call-shaped group
/// adjacency at `i`: `ident (…)`, `.ident (…)`, or `ident ! (…)`.
fn contains_call(trees: &[TokenTree]) -> bool {
    for i in 0..trees.len() {
        if let TokenTree::Group(g) = &trees[i] {
            if g.delim == '(' && i > 0 {
                match &trees[i - 1] {
                    TokenTree::Leaf(t) if t.kind == TokKind::Ident => return true,
                    TokenTree::Leaf(t) if t.is_punct('!') => return true,
                    TokenTree::Leaf(t) if t.is_punct('?') => return true,
                    _ => {}
                }
            }
            if contains_call(&g.trees) {
                return true;
            }
        }
    }
    false
}

/// True when any node (recursively) is float evidence: a float literal,
/// an `f64`/`f32` identifier (types, casts, `f64::NAN` paths), a
/// float-producing method name, or an identifier declared `f64`/`f32`
/// in an enclosing scope (`floats`).
fn contains_float_evidence(
    trees: &[TokenTree],
    allow_zero: bool,
    floats: &BTreeSet<String>,
) -> bool {
    const FLOAT_METHODS: &[&str] = &["sqrt", "floor", "ceil", "round", "powi", "powf"];
    for (i, t) in trees.iter().enumerate() {
        match t {
            TokenTree::Leaf(tok) => match tok.kind {
                TokKind::FloatLit if allow_zero || !is_zero_float(&tok.text) => return true,
                TokKind::Ident if tok.text == "f64" || tok.text == "f32" => return true,
                TokKind::Ident
                    if FLOAT_METHODS.contains(&tok.text.as_str())
                        && i > 0
                        && trees[i - 1].is_punct('.') =>
                {
                    return true;
                }
                // A bare ident with a float declaration in scope counts
                // only when NOT a method/field access on some other
                // value (`cfg.theta` says nothing about `theta: f64`),
                // and not when `.to_bits()` launders it to an integer.
                TokKind::Ident
                    if floats.contains(&tok.text)
                        && !(i > 0 && trees[i - 1].is_punct('.'))
                        && !(trees.get(i + 1).is_some_and(|t| t.is_punct('.'))
                            && trees.get(i + 2).is_some_and(|t| t.is_ident("to_bits"))) =>
                {
                    return true;
                }
                _ => {}
            },
            TokenTree::Group(g) => {
                if contains_float_evidence(&g.trees, allow_zero, floats) {
                    return true;
                }
            }
        }
    }
    false
}

/// True for a float literal spelling zero (`0.0`, `0.`, `0e0`,
/// `0.000_0f64`).
fn is_zero_float(text: &str) -> bool {
    let mantissa: String = text
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '_')
        .filter(|c| c.is_ascii_digit())
        .collect();
    !mantissa.is_empty() && mantissa.chars().all(|c| c == '0')
}

const INT_TYPES: &[&str] = &[
    "i8", "i16", "i32", "i64", "i128", "isize", "u8", "u16", "u32", "u64", "u128", "usize",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// True when node `i` starts an expression-boundary token that delimits
/// operand scans (`;`, `,`, `=` alone, `&&`, `||`, `{`-group at
/// statement level is a group node and treated as opaque).
fn is_operand_boundary(trees: &[TokenTree], i: usize) -> bool {
    let Some(tok) = trees[i].leaf() else {
        // Brace groups (blocks, struct literals) end an operand; paren
        // and bracket groups are part of expressions.
        return trees[i].group().is_some_and(|g| g.delim == '{');
    };
    if tok.is_punct(';') || tok.is_punct(',') {
        return true;
    }
    // Lone `=` (assignment/let); `==`, `!=`, `<=`, `>=` are handled by
    // the caller looking at pairs.
    if tok.is_punct('=') {
        let prev_cmp = i > 0
            && trees[i - 1]
                .leaf()
                .is_some_and(|t| "!<>=".chars().any(|c| t.is_punct(c)));
        let next_eq = trees.get(i + 1).is_some_and(|t| t.is_punct('='));
        return !prev_cmp && !next_eq;
    }
    // `&&` / `||`.
    if tok.is_punct('&') || tok.is_punct('|') {
        return trees.get(i + 1).is_some_and(|t| {
            t.leaf()
                .is_some_and(|n| n.text == tok.text && n.kind == TokKind::Punct)
        });
    }
    false
}

/// The operand run to the left of the comparison operator starting at
/// `op` (exclusive), stopped at the nearest boundary.
fn left_operand(trees: &[TokenTree], op: usize) -> &[TokenTree] {
    let mut start = op;
    while start > 0 && !is_operand_boundary(trees, start - 1) {
        start -= 1;
    }
    &trees[start..op]
}

/// The operand run to the right of the comparison operator ending at
/// `after` (inclusive start), stopped at the nearest boundary.
fn right_operand(trees: &[TokenTree], after: usize) -> &[TokenTree] {
    let mut end = after;
    while end < trees.len() && !is_operand_boundary(trees, end) {
        end += 1;
    }
    &trees[after..end]
}

/// True when an operand run is exactly a zero float literal (with an
/// optional sign): comparisons against exact zero are the sparse-kernel
/// idiom (explicit-zero skipping is IEEE-exact) and stay exempt.
fn operand_is_zero_literal(run: &[TokenTree]) -> bool {
    let nodes: Vec<&TokenTree> = run
        .iter()
        .filter(|t| {
            !t.leaf()
                .is_some_and(|tok| tok.is_punct('-') || tok.is_punct('+'))
        })
        .collect();
    nodes.len() == 1
        && nodes[0]
            .leaf()
            .is_some_and(|t| t.kind == TokKind::FloatLit && is_zero_float(&t.text))
}

/// Pattern-matches one stream level. `skip[i]` masks indices inside
/// exempt items. Matches never recurse (group recursion is the
/// caller's job), except where a pattern's semantics need to look
/// inside one group (call detection, float evidence).
#[allow(clippy::too_many_lines)]
fn match_patterns(
    trees: &[TokenTree],
    skip: &[bool],
    rules: &RuleSet,
    floats: &BTreeSet<String>,
    hits: &mut Vec<Hit>,
) {
    let mut i = 0usize;
    while i < trees.len() {
        if skip[i] {
            i += 1;
            continue;
        }
        let line = trees[i].line();

        // --- method-call shaped rules: `.` `name` `(…)` ---------------
        if trees[i].is_punct('.') {
            if let (Some(TokenTree::Leaf(name)), Some(TokenTree::Group(args))) =
                (trees.get(i + 1), trees.get(i + 2))
            {
                if name.kind == TokKind::Ident && args.delim == '(' {
                    let mline = name.line;
                    if rules.panics && name.text == "unwrap" && args.trees.is_empty() {
                        hits.push((mline, "no-panic"));
                    }
                    if rules.panics && name.text == "expect" && !args.trees.is_empty() {
                        hits.push((mline, "no-panic"));
                    }
                    if rules.nan_cmp && name.text == "partial_cmp" {
                        // `.partial_cmp(…).unwrap…` / `.expect…`.
                        if let (Some(dot), Some(TokenTree::Leaf(next))) =
                            (trees.get(i + 3), trees.get(i + 4))
                        {
                            if dot.is_punct('.')
                                && next.kind == TokKind::Ident
                                && (next.text.starts_with("unwrap")
                                    || next.text.starts_with("expect"))
                            {
                                hits.push((mline, "nan-partial-cmp"));
                            }
                        }
                    }
                    if rules.swallowed
                        && name.text == "ok"
                        && args.trees.is_empty()
                        && trees.get(i + 3).is_some_and(|t| t.is_punct(';'))
                    {
                        // Statement-final `.ok();`: the value (and the
                        // error) is dropped on the floor.
                        hits.push((mline, "swallowed-error"));
                    }
                }
            }
        }

        // --- macro rules: `name` `!` `(…)`/`{…}`/`[…]` ----------------
        if let Some(tok) = trees[i].leaf() {
            if tok.kind == TokKind::Ident
                && trees.get(i + 1).is_some_and(|t| t.is_punct('!'))
                && trees.get(i + 2).and_then(TokenTree::group).is_some()
            {
                if rules.panics && PANIC_MACROS.contains(&tok.text.as_str()) {
                    hits.push((line, "no-panic"));
                }
                if rules.println && (tok.text == "println" || tok.text == "eprintln") {
                    hits.push((line, "no-println"));
                }
            }
        }

        // --- `as <int>` truncating-cast rule --------------------------
        if rules.casts && trees[i].is_ident("as") {
            if let Some(TokenTree::Leaf(ty)) = trees.get(i + 1) {
                if ty.kind == TokKind::Ident && INT_TYPES.contains(&ty.text.as_str()) {
                    // Float evidence in the cast's source expression:
                    // the operand run to the left of `as`.
                    let src_run = left_operand(trees, i);
                    if contains_float_evidence(src_run, true, floats) {
                        hits.push((line, "no-truncating-cast"));
                    }
                }
            }
        }

        // --- `let _ = <call>;` ----------------------------------------
        if rules.swallowed
            && trees[i].is_ident("let")
            && trees.get(i + 1).is_some_and(|t| t.is_ident("_"))
        {
            if let Some(eq) = trees.get(i + 2) {
                if eq.is_punct('=') {
                    let mut j = i + 3;
                    let start = j;
                    while j < trees.len() && !trees[j].is_punct(';') {
                        j += 1;
                    }
                    if contains_call(&trees[start..j]) {
                        hits.push((line, "swallowed-error"));
                    }
                }
            }
        }

        // --- `Err(_) => {}` silent match arm --------------------------
        if rules.swallowed && trees[i].is_ident("Err") {
            if let Some(TokenTree::Group(pat)) = trees.get(i + 1) {
                let silent_pat = pat.delim == '('
                    && pat.trees.len() == 1
                    && pat.trees[0]
                        .leaf()
                        .is_some_and(|t| t.kind == TokKind::Ident && t.text.starts_with('_'));
                let arrow = trees.get(i + 2).is_some_and(|t| t.is_punct('='))
                    && trees.get(i + 3).is_some_and(|t| t.is_punct('>'));
                if silent_pat && arrow {
                    let empty_body = match trees.get(i + 4) {
                        Some(TokenTree::Group(b)) => b.trees.is_empty(),
                        _ => false,
                    };
                    if empty_body {
                        hits.push((line, "swallowed-error"));
                    }
                }
            }
        }

        // --- float `==` / `!=` ----------------------------------------
        if rules.float_eq {
            let is_eq_eq = trees[i].is_punct('=')
                && trees.get(i + 1).is_some_and(|t| t.is_punct('='))
                && !(i > 0
                    && trees[i - 1]
                        .leaf()
                        .is_some_and(|t| "!<>=".chars().any(|c| t.is_punct(c))));
            let is_not_eq =
                trees[i].is_punct('!') && trees.get(i + 1).is_some_and(|t| t.is_punct('='));
            if is_eq_eq || is_not_eq {
                let lhs = left_operand(trees, i);
                let rhs = right_operand(trees, i + 2);
                let zero_compare = operand_is_zero_literal(lhs) || operand_is_zero_literal(rhs);
                if !zero_compare
                    && (contains_float_evidence(lhs, false, floats)
                        || contains_float_evidence(rhs, false, floats))
                {
                    hits.push((line, "float-eq"));
                }
                i += 2;
                continue;
            }
        }

        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_rules() -> RuleSet {
        RuleSet {
            panics: true,
            casts: true,
            println: true,
            swallowed: true,
            float_eq: true,
            nan_cmp: true,
            skip_test_fns: false,
        }
    }

    fn hits(src: &str, rules: RuleSet) -> Vec<(usize, &'static str)> {
        let (h, errs) = scan_source(src, &rules);
        assert!(errs.is_empty(), "{errs:?}");
        h
    }

    #[test]
    fn panic_in_string_literal_never_fires() {
        let src = r#"fn f() { let s = "please panic!(now) and x.unwrap()"; use_it(s); }"#;
        assert!(hits(src, all_rules()).is_empty());
    }

    #[test]
    fn panic_in_doc_comment_never_fires() {
        let src = "/// This fn does not panic!(\"ever\") nor .unwrap()\nfn f() {}";
        assert!(hits(src, all_rules()).is_empty());
    }

    #[test]
    fn panic_in_raw_string_never_fires() {
        let src = r###"fn f() { let s = r#"x.unwrap() "quoted" panic!(no)"#; use_it(s); }"###;
        assert!(hits(src, all_rules()).is_empty());
    }

    #[test]
    fn real_panic_sites_fire() {
        let src = "fn f() {\n    x.unwrap();\n    y.expect(\"m\");\n    panic!(\"boom\");\n}";
        let h = hits(src, all_rules());
        assert_eq!(h, [(2, "no-panic"), (3, "no-panic"), (4, "no-panic")]);
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); z.unwrap_or_default(); }";
        assert!(hits(src, all_rules()).is_empty());
    }

    #[test]
    fn declared_float_param_cast_fires() {
        // `theta: f64` in the header makes the bare ident evidence.
        let src = "fn f(theta: f64) -> usize {\n    let a = theta as usize;\n    a\n}";
        assert_eq!(hits(src, all_rules()), [(2, "no-truncating-cast")]);
    }

    #[test]
    fn declared_float_let_binding_eq_fires() {
        let src = "fn f() {\n    let a: f64 = g();\n    if a == b() { h(); }\n}";
        assert_eq!(hits(src, all_rules()), [(3, "float-eq")]);
    }

    #[test]
    fn declared_float_params_eq_fires() {
        let src = "fn f(a: f64, b: f64) -> bool {\n    a == b\n}";
        assert_eq!(hits(src, all_rules()), [(2, "float-eq")]);
    }

    #[test]
    fn vec_of_floats_does_not_mark_binding() {
        // `v: Vec<f64>` must not register `v` as a float ident.
        let src = "fn f(v: Vec<f64>, n: usize) {\n    if v == w() { g(); }\n    let _x = v;\n}";
        assert!(hits(src, all_rules()).is_empty());
    }

    #[test]
    fn field_access_does_not_borrow_float_declaration() {
        // `cfg.theta` is some other value even if a local `theta: f64`
        // exists.
        let src =
            "fn f(theta: f64, cfg: &Cfg) -> usize {\n    use_it(theta);\n    cfg.theta as usize\n}";
        assert!(hits(src, all_rules()).is_empty());
    }

    #[test]
    fn to_bits_laundering_is_exempt() {
        // Bit-pattern identity compares (cache keys) are NaN-safe and
        // intentional.
        let src = "fn f(tol: f64, prev: f64) -> bool {\n    tol.to_bits() == prev.to_bits()\n}";
        assert!(hits(src, all_rules()).is_empty());
    }

    #[test]
    fn declared_float_reaches_nested_blocks() {
        let src = "fn f(x: f64) {\n    if cond() {\n        let i = x as i32;\n        use_it(i);\n    }\n}";
        assert_eq!(hits(src, all_rules()), [(3, "no-truncating-cast")]);
    }

    #[test]
    fn panic_with_space_before_paren_fires() {
        // The regex scanner required `panic!(` byte-adjacent; token
        // matching sees through formatting.
        let src = "fn f() { panic! (\"boom\") }";
        assert_eq!(hits(src, all_rules()), [(1, "no-panic")]);
    }

    #[test]
    fn cfg_test_items_are_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); }\n}\nfn h() { y.unwrap(); }";
        assert_eq!(hits(src, all_rules()), [(6, "no-panic")]);
    }

    #[test]
    fn test_fns_exempt_only_in_test_support_mode() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn helper() { y.unwrap(); }";
        let lib = hits(src, all_rules());
        assert_eq!(lib.len(), 2, "library mode keeps #[test] visible");
        let mut ts = all_rules();
        ts.skip_test_fns = true;
        assert_eq!(hits(src, ts), [(3, "no-panic")]);
    }

    #[test]
    fn proptest_macro_body_test_fns_exempt_in_test_support_mode() {
        let src = "proptest! {\n    #![proptest_config(x)]\n    #[test]\n    fn p(a in 0usize..9) { v[a].unwrap(); }\n}\nfn helper() { y.unwrap(); }";
        let mut ts = all_rules();
        ts.skip_test_fns = true;
        assert_eq!(hits(src, ts), [(6, "no-panic")]);
    }

    #[test]
    fn float_cast_flagged_int_cast_clean() {
        let src = "fn f(x: f64) -> usize { (x * 2.0) as usize }";
        assert_eq!(hits(src, all_rules()), [(1, "no-truncating-cast")]);
        let clean = "fn f(x: u32) -> usize { x as usize }";
        assert!(hits(clean, all_rules()).is_empty());
        let to_float = "fn f(x: usize) -> f64 { x as f64 }";
        assert!(hits(to_float, all_rules()).is_empty());
    }

    #[test]
    fn cast_evidence_is_expression_scoped_not_line_scoped() {
        // The regex scanner used whole-line float evidence: an unrelated
        // float on the same line produced a false positive. Expression
        // scoping fixes that class.
        let src = "fn f(n: u32, s: f64) { g(n as usize, s * 2.0); }";
        assert!(hits(src, all_rules()).is_empty());
    }

    #[test]
    fn println_fires_and_writeln_is_fine() {
        let src = "fn f(out: &mut String) { println!(\"x\"); writeln!(out, \"y\").ok(); }";
        let h = hits(
            src,
            RuleSet {
                println: true,
                ..RuleSet::default()
            },
        );
        assert_eq!(h, [(1, "no-println")]);
    }

    #[test]
    fn swallowed_let_underscore_call() {
        let src = "fn f() { let _ = fallible(); let _ = x; let _ = (a, b); }";
        let h = hits(src, all_rules());
        assert_eq!(h, [(1, "swallowed-error")]);
    }

    #[test]
    fn swallowed_statement_final_ok() {
        let src = "fn f() { send(x).ok(); }";
        assert_eq!(hits(src, all_rules()), [(1, "swallowed-error")]);
    }

    #[test]
    fn ok_feeding_a_consumer_is_fine() {
        let src = "fn f() -> Option<u32> { parse(x).ok() }";
        assert!(hits(src, all_rules()).is_empty());
    }

    #[test]
    fn silent_err_arm_flagged() {
        let src = "fn f() { match r { Ok(v) => use_it(v), Err(_) => {} } }";
        assert_eq!(hits(src, all_rules()), [(1, "swallowed-error")]);
    }

    #[test]
    fn handled_err_arm_is_fine() {
        let src = "fn f() { match r { Ok(v) => use_it(v), Err(e) => log(e) } }";
        assert!(hits(src, all_rules()).is_empty());
    }

    #[test]
    fn float_eq_flagged_zero_compare_exempt() {
        let src = "fn f(x: f64) {\n    if x == 1.0 { g(); }\n    if x != 0.0 { h(); }\n}";
        assert_eq!(hits(src, all_rules()), [(2, "float-eq")]);
    }

    #[test]
    fn float_eq_via_f64_path_flagged() {
        let src = "fn f(x: f64) { if x == f64::INFINITY { g(); } }";
        assert_eq!(hits(src, all_rules()), [(1, "float-eq")]);
    }

    #[test]
    fn int_eq_is_fine() {
        let src = "fn f(a: usize, b: usize) { if a == b || a != 3 { g(); } }";
        assert!(hits(src, all_rules()).is_empty());
    }

    #[test]
    fn nan_partial_cmp_unwrap_flagged() {
        let src = "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        let h = hits(src, all_rules());
        assert!(h.contains(&(1, "nan-partial-cmp")), "{h:?}");
        // `.unwrap()` with args group non-empty is not `.unwrap()`; the
        // panic rule also fires here (unwrap on the chain).
        assert!(h.contains(&(1, "no-panic")));
    }

    #[test]
    fn nan_partial_cmp_unwrap_or_flagged_without_panic_hit() {
        let src =
            "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal)); }";
        assert_eq!(hits(src, all_rules()), [(1, "nan-partial-cmp")]);
    }

    #[test]
    fn total_cmp_is_fine() {
        let src = "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.total_cmp(b)); }";
        assert!(hits(src, all_rules()).is_empty());
    }

    #[test]
    fn lifetime_heavy_generics_lex_cleanly() {
        let src = "impl<'a, T: 'a> Iterator for Iter<'a, T> { fn next(&mut self) -> Option<&'a T> { self.inner.next() } }";
        assert!(hits(src, all_rules()).is_empty());
    }

    #[test]
    fn lex_errors_are_surfaced() {
        let (_, errs) = scan_source("fn f() { let s = \"unterminated; }", &all_rules());
        assert!(!errs.is_empty());
    }
}
