//! Property tests for the batched multi-scenario engine.
//!
//! The contract under test: [`gm_powerflow::run_batch`] is bit-for-bit
//! identical to [`gm_powerflow::run_naive`] — the same scenarios solved
//! one at a time through fresh per-scenario state — while doing no more
//! symbolic analysis than the naive replay (the amortization that pays
//! for the batch in the first place).

use gm_powerflow::{run_batch, run_naive, PfOptions, Scenario, ScenarioDelta, ScenarioSet};
use gm_telemetry::Registry;
use proptest::prelude::*;

fn scenario_set(factors: &[f64], bus_loads: &[(u8, f64)]) -> ScenarioSet {
    let mut scenarios: Vec<Scenario> = factors
        .iter()
        .enumerate()
        .map(|(i, &factor)| Scenario {
            label: format!("scale {i}"),
            deltas: vec![ScenarioDelta::ScaleAllLoads { factor }],
        })
        .collect();
    for (i, &(bus_sel, p)) in bus_loads.iter().enumerate() {
        scenarios.push(Scenario {
            label: format!("bus load {i}"),
            deltas: vec![ScenarioDelta::SetBusLoad {
                // Bus ids on the IEEE 14-bus case are 1..=14.
                bus_id: u32::from(bus_sel % 14) + 1,
                p_mw: p,
                q_mvar: None,
            }],
        });
    }
    ScenarioSet::new(scenarios)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batch and naive replay agree bit for bit on every per-scenario
    /// answer, flag, and counter — and the batch never does more
    /// symbolic analyses than the one-at-a-time loop.
    #[test]
    fn batch_is_bitwise_identical_to_naive_replay(
        factors in prop::collection::vec(0.7f64..1.25, 1..8),
        bus_loads in prop::collection::vec((0u8..14, 5.0f64..80.0), 0..4),
    ) {
        let net = gm_network::cases::load(gm_network::CaseId::Ieee14);
        let set = scenario_set(&factors, &bus_loads);
        let opts = PfOptions::default();

        let reg_fast = Registry::new();
        let fast = {
            let _g = reg_fast.install();
            run_batch(&net, &opts, &set).unwrap()
        };
        let reg_slow = Registry::new();
        let slow = {
            let _g = reg_slow.install();
            run_naive(&net, &opts, &set).unwrap()
        };

        prop_assert_eq!(fast.scenarios, slow.scenarios);
        prop_assert_eq!(fast.warm_hits, slow.warm_hits);
        prop_assert_eq!(fast.flat_restarts, slow.flat_restarts);
        for (a, b) in fast.outcomes.iter().zip(&slow.outcomes) {
            prop_assert_eq!(&a.label, &b.label);
            prop_assert_eq!(a.signature_mw.to_bits(), b.signature_mw.to_bits());
            prop_assert_eq!(a.warm_started, b.warm_started);
            prop_assert_eq!(a.flat_restarted, b.flat_restarted);
            match (&a.report, &b.report) {
                (Ok(ra), Ok(rb)) => {
                    prop_assert_eq!(ra.iterations, rb.iterations);
                    prop_assert_eq!(ra.q_limit_rounds, rb.q_limit_rounds);
                    prop_assert_eq!(
                        ra.max_mismatch_pu.to_bits(), rb.max_mismatch_pu.to_bits());
                    for (ba, bb) in ra.buses.iter().zip(&rb.buses) {
                        prop_assert_eq!(ba.vm_pu.to_bits(), bb.vm_pu.to_bits());
                        prop_assert_eq!(ba.va_deg.to_bits(), bb.va_deg.to_bits());
                        prop_assert_eq!(ba.p_mw.to_bits(), bb.p_mw.to_bits());
                        prop_assert_eq!(ba.q_mvar.to_bits(), bb.q_mvar.to_bits());
                    }
                    for (fa, fb) in ra.branches.iter().zip(&rb.branches) {
                        prop_assert_eq!(fa.p_from_mw.to_bits(), fb.p_from_mw.to_bits());
                        prop_assert_eq!(fa.loading_pct.to_bits(), fb.loading_pct.to_bits());
                    }
                    for (ga, gb) in ra.gens.iter().zip(&rb.gens) {
                        prop_assert_eq!(ga.p_mw.to_bits(), gb.p_mw.to_bits());
                        prop_assert_eq!(ga.q_mvar.to_bits(), gb.q_mvar.to_bits());
                    }
                }
                (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
                (a, b) => prop_assert!(false, "outcome mismatch: {a:?} vs {b:?}"),
            }
        }

        // Per-scenario solver stats stay monotone: the shared engine
        // and the single DC panel factorization can only *reduce* the
        // symbolic/factorization work relative to the per-scenario
        // replay, and both paths run one Newton solve per scenario
        // (plus flat restarts).
        let fast_sym = reg_fast.counter_value("sparse.symbolic.build");
        let slow_sym = reg_slow.counter_value("sparse.symbolic.build");
        prop_assert!(fast_sym <= slow_sym, "symbolic {fast_sym} > naive {slow_sym}");
        let fast_fac = reg_fast.counter_value("sparse.lu.factorizations");
        let slow_fac = reg_slow.counter_value("sparse.lu.factorizations");
        prop_assert!(fast_fac <= slow_fac, "factorizations {fast_fac} > naive {slow_fac}");
        prop_assert_eq!(
            reg_fast.counter_value("pf.newton.solves"),
            reg_slow.counter_value("pf.newton.solves")
        );
    }
}
