//! Compensated post-outage AC power flow (the Alsac–Stott–Tinney
//! compensation method).
//!
//! A branch outage perturbs the polar Newton Jacobian, evaluated at a
//! fixed state, only in the rows and columns of its two endpoint buses —
//! a rank ≤ 4 update. Instead of assembling and factoring a fresh
//! Jacobian per outage (what the brute N-1 sweep does), this module
//! factors the *base-case* Jacobian once, and solves each suspect outage
//! with a fixed-Jacobian ("dishonest") Newton iteration whose linear
//! solves go through [`gm_sparse::CompensatedLu`]: base factorization +
//! Woodbury correction for the outage block. The mismatch is always the
//! *true* mismatch of the outaged network, so a converged answer meets
//! exactly the same tolerance as the full Newton solver — only the path
//! there is approximated, never the fixed point.
//!
//! The trade: per outage, `p ≤ 4` sparse solves and a tiny dense
//! factorization up front, then one sparse solve + `O(n·p)` per
//! iteration — versus one Jacobian assembly + LU factorization *per
//! Newton iteration* in the full solver. The fixed-point iteration
//! converges linearly instead of quadratically, which is the right trade
//! for mild perturbations (one branch out of hundreds) and the wrong one
//! for severe ones — so every failure mode (ill-conditioned capacitance,
//! stalled or diverging iteration, Q-limit enforcement) is a typed error
//! that routes the caller to the existing full-Newton fallback.

use crate::newton::{build_report, Role};
use crate::types::{PfOptions, PfReport};
use gm_network::{BusKind, Network, YBus};
use gm_numeric::Complex;
use gm_sparse::{CompensateError, CompensatedLu, SparseLu, Triplets};

/// Iteration budget for the fixed-Jacobian loop. Linear convergence
/// needs more headroom than Newton's default; past this, the outage is
/// severe enough that the full solver is the better tool anyway.
const COMP_MAX_ITER: usize = 40;

/// Consecutive non-improving iterations tolerated before declaring a
/// stall (the fixed-point map is contracting on the cases worth
/// compensating; a plateau means it is not).
const STALL_LIMIT: usize = 4;

/// Why a compensated outage solve could not produce a report.
#[derive(Clone, Debug)]
pub enum CompensatedPfError {
    /// The sweep options or network shape rule compensation out (e.g.
    /// Q-limit enforcement, which re-partitions the variable space
    /// mid-solve).
    Unsupported { reason: &'static str },
    /// The base-case Jacobian could not be factored.
    BaseSingular,
    /// The outage update (nearly) singularizes the base factorization —
    /// the Woodbury capacitance matrix is ill-conditioned.
    IllConditioned,
    /// The fixed-Jacobian iteration stalled or diverged before meeting
    /// tolerance.
    NotConverged { iterations: usize, mismatch_pu: f64 },
}

impl std::fmt::Display for CompensatedPfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompensatedPfError::Unsupported { reason } => {
                write!(f, "compensated solve unsupported: {reason}")
            }
            CompensatedPfError::BaseSingular => write!(f, "base-case Jacobian is singular"),
            CompensatedPfError::IllConditioned => {
                write!(f, "outage update ill-conditioned against the base factorization")
            }
            CompensatedPfError::NotConverged {
                iterations,
                mismatch_pu,
            } => write!(
                f,
                "fixed-Jacobian iteration stopped after {iterations} iterations at {mismatch_pu:.3e} p.u."
            ),
        }
    }
}

impl std::error::Error for CompensatedPfError {}

/// Base-case state shared by every compensated outage solve of one
/// sweep: fixed bus roles and variable maps, scheduled injections, the
/// base Ybus, the base voltages, and the base Jacobian factored once.
///
/// Immutable after construction, so one instance can back all parallel
/// sweep workers.
pub struct CompensationBase {
    ybus: YBus,
    role: Vec<Role>,
    col_th: Vec<usize>,
    col_vm: Vec<usize>,
    nvar: usize,
    p_spec: Vec<f64>,
    q_spec: Vec<f64>,
    slack: usize,
    v0: Vec<Complex>,
    /// Base injections at `v0` (feeds the outage-block delta).
    s0: Vec<Complex>,
    /// Base Jacobian at `v0`, factored once.
    j0: SparseLu,
}

impl CompensationBase {
    /// Builds the shared base state from a solved base case. `opts` must
    /// have Q-limit enforcement off (the N-1 sweep default): PV→PQ
    /// switching re-partitions the variable space, which a fixed
    /// factorization cannot follow.
    pub fn new(
        net: &Network,
        opts: &PfOptions,
        base: &PfReport,
    ) -> Result<CompensationBase, CompensatedPfError> {
        if opts.enforce_q_limits {
            return Err(CompensatedPfError::Unsupported {
                reason: "Q-limit enforcement re-partitions the variable space",
            });
        }
        let n = net.n_bus();
        if base.buses.len() != n {
            return Err(CompensatedPfError::Unsupported {
                reason: "base report does not match the network",
            });
        }
        let Some(slack) = net.slack() else {
            return Err(CompensatedPfError::Unsupported {
                reason: "network has no slack bus",
            });
        };
        let ybus = YBus::assemble(net);

        // Effective roles, as in the Newton solver (no Q-limit rounds, so
        // they are fixed for the whole sweep).
        let mut role = vec![Role::Pq; n];
        for (i, bus) in net.buses.iter().enumerate() {
            if bus.kind == BusKind::Pv && net.gens_at(i).next().is_some() {
                role[i] = Role::Pv;
            }
        }
        role[slack] = Role::Slack;

        let (p_mw, q_mvar) = net.scheduled_injections();
        let p_spec: Vec<f64> = p_mw.iter().map(|v| v / net.base_mva).collect();
        let q_spec: Vec<f64> = q_mvar.iter().map(|v| v / net.base_mva).collect();

        let mut col_th = vec![usize::MAX; n];
        let mut col_vm = vec![usize::MAX; n];
        let mut n_th = 0usize;
        for i in 0..n {
            if role[i] != Role::Slack {
                col_th[i] = n_th;
                n_th += 1;
            }
        }
        let mut n_vm = 0usize;
        for i in 0..n {
            if role[i] == Role::Pq {
                col_vm[i] = n_th + n_vm;
                n_vm += 1;
            }
        }
        let nvar = n_th + n_vm;
        if nvar == 0 {
            return Err(CompensatedPfError::Unsupported {
                reason: "no free variables",
            });
        }

        let v0: Vec<Complex> = base
            .buses
            .iter()
            .map(|b| Complex::from_polar(b.vm_pu, b.va_deg.to_radians()))
            .collect();
        let s0 = ybus.injections(&v0);

        // Assemble and factor the base Jacobian at v0.
        let mut tj = Triplets::with_capacity(nvar, nvar, 4 * ybus.matrix.nnz());
        for i in 0..n {
            let (cols, vals) = ybus.matrix.row(i);
            for (&j, &y) in cols.iter().zip(vals) {
                stamp_pair(&mut tj, &v0, &s0, &col_th, &col_vm, i, j, y);
            }
        }
        let j0 = SparseLu::factor(&tj.to_csr()).map_err(|_| CompensatedPfError::BaseSingular)?;

        Ok(CompensationBase {
            ybus,
            role,
            col_th,
            col_vm,
            nvar,
            p_spec,
            q_spec,
            slack,
            v0,
            s0,
            j0,
        })
    }

    /// Solves the post-outage power flow for `work` — the base network
    /// with one or more branches switched out — against the base
    /// factorization. `outaged` lists the switched-out branch indices
    /// (endpoints of the Jacobian delta block).
    ///
    /// On success the report's voltages satisfy the outaged network's
    /// mismatch to `opts.tol_pu`, exactly like the full Newton path. Any
    /// failure is a typed signal to fall back to that path.
    pub fn solve_outage(
        &self,
        work: &Network,
        opts: &PfOptions,
        outaged: &[usize],
    ) -> Result<PfReport, CompensatedPfError> {
        let _span = gm_telemetry::span!(
            "pf.compensated.solve",
            case = work.name,
            n_bus = work.n_bus()
        );
        gm_telemetry::counter_add("pf.compensated.solves", 1);
        let n = work.n_bus();
        let ybus_out = YBus::assemble(work);
        let s0_out = ybus_out.injections(&self.v0);

        // Endpoint buses of the outaged branches: the Jacobian delta at
        // v0 lives entirely on their rows × columns.
        let mut buses: Vec<usize> = Vec::with_capacity(2 * outaged.len());
        for &b in outaged {
            buses.push(work.branches[b].from_bus);
            buses.push(work.branches[b].to_bus);
        }
        buses.sort_unstable();
        buses.dedup();

        // ΔJ = J_out(v0) − J_base(v0), restricted to the endpoint block.
        let mut delta: Vec<(usize, usize, f64)> = Vec::new();
        let mut out_entries = Triplets::new(self.nvar, self.nvar);
        let mut base_entries = Triplets::new(self.nvar, self.nvar);
        for &i in &buses {
            for &j in &buses {
                let y_out = ybus_entry(&ybus_out, i, j);
                let y_base = ybus_entry(&self.ybus, i, j);
                stamp_pair(
                    &mut out_entries,
                    &self.v0,
                    &s0_out,
                    &self.col_th,
                    &self.col_vm,
                    i,
                    j,
                    y_out,
                );
                stamp_pair(
                    &mut base_entries,
                    &self.v0,
                    &self.s0,
                    &self.col_th,
                    &self.col_vm,
                    i,
                    j,
                    y_base,
                );
            }
        }
        collect_delta(&out_entries, &base_entries, &mut delta);

        // Index sets and dense block for the Woodbury update.
        let mut rows: Vec<usize> = delta.iter().map(|&(r, _, _)| r).collect();
        rows.sort_unstable();
        rows.dedup();
        let mut cols: Vec<usize> = delta.iter().map(|&(_, c, _)| c).collect();
        cols.sort_unstable();
        cols.dedup();
        if rows.is_empty() || cols.is_empty() {
            // No Jacobian change (e.g. the branch was already out): the
            // base factorization is exact.
            rows = vec![0];
            cols = vec![0];
            delta.clear();
        }
        let (p, q) = (rows.len(), cols.len());
        let mut block = vec![0.0f64; p * q];
        for &(r, c, v) in &delta {
            // Sets were built from the entries, so lookups always hit.
            if let (Ok(a), Ok(b)) = (rows.binary_search(&r), cols.binary_search(&c)) {
                block[a * q + b] += v;
            }
        }

        let comp = CompensatedLu::new(&self.j0, &rows, &cols, &block).map_err(|e| match e {
            CompensateError::IllConditioned { .. } => CompensatedPfError::IllConditioned,
            _ => CompensatedPfError::Unsupported {
                reason: "malformed update block",
            },
        })?;

        // Fixed-Jacobian iteration against the true post-outage mismatch.
        let mismatch = |v: &[Complex]| -> (Vec<f64>, f64) {
            let s = ybus_out.injections(v);
            let mut f = vec![0.0f64; self.nvar];
            let mut norm = 0.0f64;
            for i in 0..n {
                if self.col_th[i] != usize::MAX {
                    let m = s[i].re - self.p_spec[i];
                    f[self.col_th[i]] = m;
                    norm = norm.max(m.abs());
                }
                if self.col_vm[i] != usize::MAX {
                    let m = s[i].im - self.q_spec[i];
                    f[self.col_vm[i]] = m;
                    norm = norm.max(m.abs());
                }
            }
            (f, norm)
        };

        let mut v = self.v0.clone();
        let mut scratch = vec![0.0f64; self.nvar];
        let mut mismatch_history = Vec::new();
        let mut multipliers = Vec::new();
        let (mut f, mut norm) = mismatch(&v);
        let mut best = norm;
        let mut stall = 0usize;
        let mut iterations = 0usize;
        loop {
            mismatch_history.push(norm);
            if norm < opts.tol_pu {
                break;
            }
            if iterations >= COMP_MAX_ITER || !norm.is_finite() {
                return Err(CompensatedPfError::NotConverged {
                    iterations,
                    mismatch_pu: norm,
                });
            }
            iterations += 1;
            comp.solve_in_place(&mut f, &mut scratch);
            let dx = &f;
            let apply = |v: &[Complex], mu: f64| -> Vec<Complex> {
                let mut out = v.to_vec();
                for i in 0..n {
                    let mut vm = v[i].abs();
                    let mut th = v[i].arg();
                    if self.col_th[i] != usize::MAX {
                        th -= mu * dx[self.col_th[i]];
                    }
                    if self.col_vm[i] != usize::MAX {
                        vm -= mu * dx[self.col_vm[i]];
                        vm = vm.max(0.1);
                    }
                    out[i] = Complex::from_polar(vm, th);
                }
                out
            };
            let full = apply(&v, 1.0);
            let (f_full, norm_full) = mismatch(&full);
            let (vc, fc, nc, mu) = if norm_full <= norm || !opts.iwamoto_damping {
                (full, f_full, norm_full, 1.0)
            } else {
                // Overshoot: one halved step is the cheap stabilizer —
                // if that does not help either, the stall guard below
                // routes to the full solver.
                let half = apply(&v, 0.5);
                let (f_half, norm_half) = mismatch(&half);
                if norm_half < norm_full {
                    (half, f_half, norm_half, 0.5)
                } else {
                    (full, f_full, norm_full, 1.0)
                }
            };
            multipliers.push(mu);
            if nc < best * 0.9999 {
                best = nc;
                stall = 0;
            } else {
                stall += 1;
                if stall >= STALL_LIMIT {
                    return Err(CompensatedPfError::NotConverged {
                        iterations,
                        mismatch_pu: nc,
                    });
                }
            }
            v = vc;
            f = fc;
            norm = nc;
        }
        gm_telemetry::histogram_record("pf.compensated.iterations_per_solve", iterations as f64);

        Ok(build_report(
            work,
            &ybus_out,
            &v,
            self.slack,
            iterations,
            0,
            mismatch_history,
            multipliers,
            &[],
        ))
    }

    /// Base-case voltages (warm start for fallback solves).
    pub fn base_voltages(&self) -> &[Complex] {
        &self.v0
    }

    /// Number of solver variables (diagnostics).
    pub fn n_variables(&self) -> usize {
        self.nvar
    }

    /// Bus role check used by callers that must not compensate across a
    /// re-partition (diagnostics/tests).
    pub fn is_pq(&self, bus: usize) -> bool {
        self.role.get(bus).copied() == Some(Role::Pq)
    }
}

/// Looks up `Y[i][j]`; structurally absent entries are zero (e.g. the
/// outaged branch was the only coupling between its endpoints).
fn ybus_entry(ybus: &YBus, i: usize, j: usize) -> Complex {
    let (cols, vals) = ybus.matrix.row(i);
    for (&c, &y) in cols.iter().zip(vals) {
        if c == j {
            return y;
        }
    }
    Complex::new(0.0, 0.0)
}

/// Stamps the polar Jacobian entries for the bus pair `(i, j)` — the
/// same formulas as the Newton solver's assembly loop, factored out so
/// the compensated path computes single blocks without a full assembly.
#[allow(clippy::too_many_arguments)]
fn stamp_pair(
    tj: &mut Triplets<f64>,
    v: &[Complex],
    s_calc: &[Complex],
    col_th: &[usize],
    col_vm: &[usize],
    i: usize,
    j: usize,
    y: Complex,
) {
    let (g, b) = (y.re, y.im);
    let vi = v[i].abs();
    let thi = v[i].arg();
    let row_p = col_th[i];
    let row_q = col_vm[i];
    if i == j {
        let (pi, qi) = (s_calc[i].re, s_calc[i].im);
        if row_p != usize::MAX {
            tj.push(row_p, col_th[i], -qi - b * vi * vi);
            if col_vm[i] != usize::MAX {
                tj.push(row_p, col_vm[i], pi / vi + g * vi);
            }
        }
        if row_q != usize::MAX {
            tj.push(row_q, col_th[i], pi - g * vi * vi);
            tj.push(row_q, col_vm[i], qi / vi - b * vi);
        }
    } else {
        let vj = v[j].abs();
        let thij = thi - v[j].arg();
        let (sin, cos) = thij.sin_cos();
        if row_p != usize::MAX {
            if col_th[j] != usize::MAX {
                tj.push(row_p, col_th[j], vi * vj * (g * sin - b * cos));
            }
            if col_vm[j] != usize::MAX {
                tj.push(row_p, col_vm[j], vi * (g * cos + b * sin));
            }
        }
        if row_q != usize::MAX {
            if col_th[j] != usize::MAX {
                tj.push(row_q, col_th[j], -vi * vj * (g * cos + b * sin));
            }
            if col_vm[j] != usize::MAX {
                tj.push(row_q, col_vm[j], vi * (g * sin - b * cos));
            }
        }
    }
}

/// `out − base` over two triplet sets stamped on the same block,
/// dropping exact zeros.
fn collect_delta(out: &Triplets<f64>, base: &Triplets<f64>, delta: &mut Vec<(usize, usize, f64)>) {
    use std::collections::BTreeMap;
    let mut acc: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    for &(r, c, v) in out.entries() {
        *acc.entry((r, c)).or_insert(0.0) += v;
    }
    for &(r, c, v) in base.entries() {
        *acc.entry((r, c)).or_insert(0.0) -= v;
    }
    for ((r, c), v) in acc {
        if v != 0.0 {
            delta.push((r, c, v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve, solve_from};
    use gm_network::{cases, topology, CaseId};

    fn sweep_opts() -> PfOptions {
        PfOptions {
            enforce_q_limits: false,
            max_iter: 25,
            ..Default::default()
        }
    }

    #[test]
    fn compensated_outage_matches_full_newton() {
        let net = cases::load(CaseId::Ieee30);
        let opts = sweep_opts();
        let base = solve(&net, &opts).unwrap();
        let comp_base = CompensationBase::new(&net, &opts, &base).unwrap();
        let v0 = comp_base.base_voltages().to_vec();
        let mut checked = 0;
        for k in 0..net.branches.len() {
            if topology::outage_islands(&net, k) {
                continue;
            }
            let mut work = net.clone();
            work.branches[k].in_service = false;
            let full = solve_from(&work, &opts, Some(&v0)).unwrap();
            let comp = match comp_base.solve_outage(&work, &opts, &[k]) {
                Ok(r) => r,
                // Fallback-worthy outages are legitimate; the cascade
                // routes them to the full solver.
                Err(CompensatedPfError::NotConverged { .. })
                | Err(CompensatedPfError::IllConditioned) => continue,
                Err(e) => panic!("unexpected error for outage {k}: {e}"),
            };
            checked += 1;
            for (a, b) in comp.buses.iter().zip(&full.buses) {
                assert!(
                    (a.vm_pu - b.vm_pu).abs() < 1e-6,
                    "outage {k}: vm {} vs {}",
                    a.vm_pu,
                    b.vm_pu
                );
                assert!(
                    (a.va_deg - b.va_deg).abs() < 1e-5,
                    "outage {k}: va {} vs {}",
                    a.va_deg,
                    b.va_deg
                );
            }
            for (a, b) in comp.branches.iter().zip(&full.branches) {
                assert!(
                    (a.loading_pct - b.loading_pct).abs() < 1e-4,
                    "outage {k}: loading {} vs {}",
                    a.loading_pct,
                    b.loading_pct
                );
            }
        }
        assert!(
            checked > net.branches.len() / 2,
            "compensation only handled {checked} outages"
        );
    }

    #[test]
    fn q_limit_options_are_rejected() {
        let net = cases::load(CaseId::Ieee14);
        let opts = PfOptions::default(); // enforce_q_limits = true
        let base = solve(&net, &opts).unwrap();
        match CompensationBase::new(&net, &opts, &base) {
            Err(CompensatedPfError::Unsupported { .. }) => {}
            Err(e) => panic!("expected Unsupported, got {e}"),
            Ok(_) => panic!("expected Unsupported, got a base"),
        }
    }

    #[test]
    fn double_outage_block_is_supported() {
        // The same machinery compensates an N-2 pair: two branches out,
        // one rank ≤ 8 block.
        let net = cases::load(CaseId::Ieee118);
        let opts = sweep_opts();
        let base = solve(&net, &opts).unwrap();
        let comp_base = CompensationBase::new(&net, &opts, &base).unwrap();
        let v0 = comp_base.base_voltages().to_vec();
        // Find a pair that neither islands alone nor jointly.
        let mut tested = false;
        'outer: for k in 0..net.branches.len() {
            if topology::outage_islands(&net, k) {
                continue;
            }
            for l in (k + 1)..net.branches.len().min(k + 12) {
                if topology::outage_islands(&net, l) {
                    continue;
                }
                let mut work = net.clone();
                work.branches[k].in_service = false;
                work.branches[l].in_service = false;
                if topology::connected_components(&work) > topology::connected_components(&net) {
                    continue;
                }
                let Ok(full) = solve_from(&work, &opts, Some(&v0)) else {
                    continue;
                };
                let Ok(comp) = comp_base.solve_outage(&work, &opts, &[k, l]) else {
                    continue;
                };
                for (a, b) in comp.buses.iter().zip(&full.buses) {
                    assert!(
                        (a.vm_pu - b.vm_pu).abs() < 1e-6,
                        "pair ({k},{l}): vm {} vs {}",
                        a.vm_pu,
                        b.vm_pu
                    );
                }
                tested = true;
                break 'outer;
            }
        }
        assert!(tested, "no compensatable pair found");
    }
}
