//! Linear network sensitivities: PTDF and LODF.
//!
//! Power Transfer Distribution Factors map nodal injections to branch
//! flows under the DC approximation; Line Outage Distribution Factors map
//! a branch's pre-outage flow to the post-outage flow changes on every
//! other branch. Together they support the fast N-1 screening mode of the
//! contingency engine (Appendix B.4's "sensitivity analysis" capability)
//! and the security constraints of the SCOPF extension.

use crate::types::PfError;
use gm_network::Network;
use gm_numeric::DMat;
use gm_sparse::{SparseLu, Triplets};

/// PTDF/LODF matrices for a network snapshot (in-service branches only;
/// out-of-service rows are zero).
#[derive(Clone, Debug)]
pub struct Sensitivities {
    /// `ptdf[(l, i)]`: MW flow change on branch `l` per MW injected at
    /// bus `i` (withdrawn at the slack).
    pub ptdf: DMat,
    /// `lodf[(l, k)]`: MW flow change on branch `l` per MW of pre-outage
    /// flow on branch `k`, when `k` is outaged. `NaN` on columns whose
    /// outage islands the network (radial branches).
    pub lodf: DMat,
    /// Slack bus (reference for the PTDF).
    pub slack: usize,
}

/// Computes PTDF and LODF matrices.
///
/// Factorizes the reduced DC susceptance matrix once, then performs one
/// in-place solve per bus against that single factorization (rhs and
/// scratch buffers are reused across columns, so the column loop
/// allocates nothing). O(n · nnz-factor) — comfortably fast for the
/// case library sizes. Buses left without any in-service branch are
/// pinned in the factorization and their (identically zero) PTDF
/// columns are skipped. Fails with [`PfError::InvalidNetwork`] when
/// there is no slack bus and [`PfError::SingularJacobian`] when the
/// reduced B matrix cannot be factorized (islanded network).
pub fn sensitivities(net: &Network) -> Result<Sensitivities, PfError> {
    sensitivities_impl(net, None)
}

/// [`sensitivities`] restricted to the PTDF columns that screening and
/// security-constraint construction actually read: buses incident to an
/// in-service branch, plus buses with a nonzero scheduled injection.
/// Columns for other buses (out-of-service-only endpoints, isolated or
/// zero-injection buses) are skipped — their PTDF columns stay zero —
/// and the LODF is bit-identical to the full computation, because every
/// column it consumes is included.
pub fn sensitivities_for_screening(net: &Network) -> Result<Sensitivities, PfError> {
    let n = net.n_bus();
    let mut wanted = vec![false; n];
    for br in net.branches.iter().filter(|b| b.in_service) {
        wanted[br.from_bus] = true;
        wanted[br.to_bus] = true;
    }
    let (p_mw, q_mvar) = net.scheduled_injections();
    for i in 0..n {
        if p_mw[i] != 0.0 || q_mvar[i] != 0.0 {
            wanted[i] = true;
        }
    }
    sensitivities_impl(net, Some(&wanted))
}

fn sensitivities_impl(net: &Network, wanted: Option<&[bool]>) -> Result<Sensitivities, PfError> {
    let n = net.n_bus();
    let nb = net.branches.len();
    let Some(slack) = net.slack() else {
        return Err(PfError::InvalidNetwork {
            problems: vec!["network has no slack bus".into()],
        });
    };

    // Reduced B with the slack pinned, as in the DC power flow.
    let mut t = Triplets::new(n, n);
    let mut connected = vec![false; n];
    for br in net.branches.iter().filter(|b| b.in_service) {
        let b = 1.0 / br.x_pu;
        let (i, j) = (br.from_bus, br.to_bus);
        connected[i] = true;
        connected[j] = true;
        if i != slack && j != slack {
            t.push(i, i, b);
            t.push(j, j, b);
            t.push(i, j, -b);
            t.push(j, i, -b);
        } else if i != slack {
            t.push(i, i, b);
        } else if j != slack {
            t.push(j, j, b);
        }
    }
    t.push(slack, slack, 1.0);
    // Buses with no in-service branch would leave a zero row; pin them
    // like the slack so B stays factorizable. Their PTDF columns are
    // forced to zero below (no in-service branch can see them), so the
    // pin value never reaches a result.
    for i in 0..n {
        if i != slack && !connected[i] {
            t.push(i, i, 1.0);
        }
    }
    let lu =
        SparseLu::factor(&t.to_csr()).map_err(|_| PfError::SingularJacobian { iteration: 0 })?;

    // θ response per unit injection at each bus: one in-place solve per
    // column against the single factorization above.
    let mut theta = DMat::zeros(n, n); // column i = θ for e_i
    let mut rhs = vec![0.0f64; n];
    let mut ws = vec![0.0f64; n];
    let mut skipped = 0u64;
    for i in 0..n {
        if i == slack {
            continue; // zero column: injecting at the slack moves nothing
        }
        if !connected[i] {
            skipped += 1;
            continue; // zero column: no in-service branch to carry flow
        }
        if let Some(w) = wanted {
            if !w[i] {
                skipped += 1;
                continue; // column never read downstream
            }
        }
        rhs.fill(0.0);
        rhs[i] = 1.0;
        lu.solve_in_place(&mut rhs, &mut ws);
        for (r, v) in rhs.iter().enumerate() {
            theta[(r, i)] = *v;
        }
    }
    if skipped > 0 {
        gm_telemetry::counter_add("pf.ptdf.columns_skipped", skipped);
    }

    let mut ptdf = DMat::zeros(nb, n);
    for (l, br) in net.branches.iter().enumerate() {
        if !br.in_service {
            continue;
        }
        let b = 1.0 / br.x_pu;
        for i in 0..n {
            ptdf[(l, i)] = (theta[(br.from_bus, i)] - theta[(br.to_bus, i)]) * b;
        }
    }

    // LODF from PTDF: LODF(l,k) = PTDF(l, f_k→t_k) / (1 − PTDF(k, f_k→t_k)).
    let mut lodf = DMat::zeros(nb, nb);
    for (k, brk) in net.branches.iter().enumerate() {
        if !brk.in_service {
            continue;
        }
        let denom = 1.0 - (ptdf[(k, brk.from_bus)] - ptdf[(k, brk.to_bus)]);
        let islanding = denom.abs() < 1e-7;
        for (l, brl) in net.branches.iter().enumerate() {
            if l == k || !brl.in_service {
                continue;
            }
            let num = ptdf[(l, brk.from_bus)] - ptdf[(l, brk.to_bus)];
            lodf[(l, k)] = if islanding { f64::NAN } else { num / denom };
        }
        if islanding {
            lodf[(k, k)] = f64::NAN;
        }
    }

    Ok(Sensitivities { ptdf, lodf, slack })
}

impl Sensitivities {
    /// Estimated post-outage flows (MW) on every branch when branch `k`
    /// is outaged, given the pre-outage flows. Returns `None` when the
    /// outage islands the network.
    pub fn post_outage_flows(&self, base_flow_mw: &[f64], k: usize) -> Option<Vec<f64>> {
        if self.lodf[(k, k)].is_nan() {
            return None;
        }
        let fk = base_flow_mw[k];
        Some(
            base_flow_mw
                .iter()
                .enumerate()
                .map(|(l, &f)| {
                    if l == k {
                        0.0
                    } else {
                        let d = self.lodf[(l, k)];
                        if d.is_nan() {
                            f
                        } else {
                            f + d * fk
                        }
                    }
                })
                .collect(),
        )
    }

    /// Worst estimated post-outage |flow|/rating over all branches for
    /// outage `k` (fraction; 1.0 = at rating). Unrated branches are
    /// skipped. `None` for islanding outages.
    pub fn worst_post_outage_loading(
        &self,
        net: &Network,
        base_flow_mw: &[f64],
        k: usize,
    ) -> Option<f64> {
        let flows = self.post_outage_flows(base_flow_mw, k)?;
        let mut worst = 0.0f64;
        for (l, br) in net.branches.iter().enumerate() {
            if l != k && br.in_service && br.rating_mva > 0.0 {
                worst = worst.max(flows[l].abs() / br.rating_mva);
            }
        }
        Some(worst)
    }

    /// Reactive-aware variant of [`Self::worst_post_outage_loading`]:
    /// estimates post-outage MVA as `sqrt(P_est² + Q_base²)` — the LODF
    /// redistributes active power only, and branch reactive flows are
    /// approximately preserved to first order. This closes most of the
    /// MW-vs-MVA gap that makes pure-P screening unsafe on reactive-heavy
    /// systems.
    pub fn worst_post_outage_loading_mva(
        &self,
        net: &Network,
        base_p_mw: &[f64],
        base_q_mvar: &[f64],
        k: usize,
    ) -> Option<f64> {
        let flows = self.post_outage_flows(base_p_mw, k)?;
        let mut worst = 0.0f64;
        for (l, br) in net.branches.iter().enumerate() {
            if l != k && br.in_service && br.rating_mva > 0.0 {
                let s = (flows[l] * flows[l] + base_q_mvar[l] * base_q_mvar[l]).sqrt();
                worst = worst.max(s / br.rating_mva);
            }
        }
        Some(worst)
    }

    /// Worst estimated post-outage MVA loading for a *simultaneous* pair
    /// outage `(k, l)` — the N-2 screen. The double-outage flows come
    /// from the standard 2×2 compensation of single-outage LODFs:
    ///
    /// ```text
    /// Δk = (f_k + L_kl·f_l) / (1 − L_kl·L_lk)
    /// Δl = (f_l + L_lk·f_k) / (1 − L_kl·L_lk)
    /// f'_m = f_m + L_mk·Δk + L_ml·Δl
    /// ```
    ///
    /// Returns `None` when either single outage islands the network or
    /// the pair denominator (the 2×2 capacitance) vanishes — i.e. the
    /// pair jointly islands and must be routed to a full evaluation.
    pub fn worst_pair_outage_loading_mva(
        &self,
        net: &Network,
        base_p_mw: &[f64],
        base_q_mvar: &[f64],
        k: usize,
        l: usize,
    ) -> Option<f64> {
        if k == l || self.lodf[(k, k)].is_nan() || self.lodf[(l, l)].is_nan() {
            return None;
        }
        let (lkl, llk) = (self.lodf[(k, l)], self.lodf[(l, k)]);
        let denom = 1.0 - lkl * llk;
        if !denom.is_finite() || denom.abs() < 1e-7 {
            return None;
        }
        let (fk, fl) = (base_p_mw[k], base_p_mw[l]);
        let dk = (fk + lkl * fl) / denom;
        let dl = (fl + llk * fk) / denom;
        let mut worst = 0.0f64;
        for (m, br) in net.branches.iter().enumerate() {
            if m == k || m == l || !br.in_service || br.rating_mva <= 0.0 {
                continue;
            }
            let (lmk, lml) = (self.lodf[(m, k)], self.lodf[(m, l)]);
            if lmk.is_nan() || lml.is_nan() {
                continue;
            }
            let p_est = base_p_mw[m] + lmk * dk + lml * dl;
            let s = (p_est * p_est + base_q_mvar[m] * base_q_mvar[m]).sqrt();
            worst = worst.max(s / br.rating_mva);
        }
        Some(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::solve_dc;
    use gm_network::{cases, topology, CaseId};

    #[test]
    fn ptdf_rows_sum_consistency() {
        // Injecting 1 MW at a bus must flow out through its incident
        // branches: column sums of signed incident PTDFs equal 1 (for
        // non-slack buses).
        let net = cases::load(CaseId::Ieee14);
        let s = sensitivities(&net).unwrap();
        let slack = net.slack().unwrap();
        for i in 0..net.n_bus() {
            if i == slack {
                continue;
            }
            let mut net_out = 0.0;
            for (l, br) in net.branches.iter().enumerate() {
                if br.from_bus == i {
                    net_out += s.ptdf[(l, i)];
                } else if br.to_bus == i {
                    net_out -= s.ptdf[(l, i)];
                }
            }
            assert!(
                (net_out - 1.0).abs() < 1e-9,
                "bus {i}: injected power not conserved ({net_out})"
            );
        }
    }

    #[test]
    fn lodf_predicts_dc_outage_flows() {
        let net = cases::load(CaseId::Ieee14);
        let s = sensitivities(&net).unwrap();
        let base = solve_dc(&net).unwrap();
        // Pick a non-radial branch and compare against a real DC re-solve.
        for k in [0usize, 2, 4, 6] {
            if topology::outage_islands(&net, k) {
                continue;
            }
            let est = s.post_outage_flows(&base.flow_mw, k).unwrap();
            let mut out_net = net.clone();
            out_net.branches[k].in_service = false;
            let exact = solve_dc(&out_net).unwrap();
            for l in 0..net.branches.len() {
                assert!(
                    (est[l] - exact.flow_mw[l]).abs() < 1e-6,
                    "outage {k}, branch {l}: LODF {} vs DC {}",
                    est[l],
                    exact.flow_mw[l]
                );
            }
        }
    }

    #[test]
    fn radial_outage_flagged_as_islanding() {
        let net = cases::load(CaseId::Ieee14);
        let s = sensitivities(&net).unwrap();
        // Line 7-8 is radial in case14.
        let radial = net
            .branches
            .iter()
            .position(|b| {
                let f = net.buses[b.from_bus].id;
                let t = net.buses[b.to_bus].id;
                (f, t) == (7, 8) || (t, f) == (7, 8)
            })
            .unwrap();
        assert!(s.lodf[(radial, radial)].is_nan());
        let base = solve_dc(&net).unwrap();
        assert!(s.post_outage_flows(&base.flow_mw, radial).is_none());
    }

    #[test]
    fn sparse_ptdf_pinned_against_dense_path() {
        // Regression pin: the factorization-reuse column loop must agree
        // with a straightforward dense solve of the same reduced-B
        // system, column by column.
        use gm_numeric::DenseLu;
        let net = cases::load(CaseId::Ieee30);
        let s = sensitivities(&net).unwrap();
        let n = net.n_bus();
        let slack = net.slack().unwrap();
        let mut bd = DMat::zeros(n, n);
        for br in net.branches.iter().filter(|b| b.in_service) {
            let b = 1.0 / br.x_pu;
            let (i, j) = (br.from_bus, br.to_bus);
            if i != slack && j != slack {
                bd[(i, i)] += b;
                bd[(j, j)] += b;
                bd[(i, j)] -= b;
                bd[(j, i)] -= b;
            } else if i != slack {
                bd[(i, i)] += b;
            } else if j != slack {
                bd[(j, j)] += b;
            }
        }
        bd[(slack, slack)] += 1.0;
        let dlu = DenseLu::factor(&bd).unwrap();
        for col in 0..n {
            if col == slack {
                continue;
            }
            let mut e = vec![0.0; n];
            e[col] = 1.0;
            let theta = dlu.solve(&e);
            for (l, br) in net.branches.iter().enumerate() {
                if !br.in_service {
                    continue;
                }
                let dense = (theta[br.from_bus] - theta[br.to_bus]) / br.x_pu;
                assert!(
                    (s.ptdf[(l, col)] - dense).abs() < 1e-9,
                    "branch {l}, col {col}: sparse {} vs dense {}",
                    s.ptdf[(l, col)],
                    dense
                );
            }
        }
    }

    #[test]
    fn screening_variant_matches_full_lodf_and_skips_columns() {
        let mut net = cases::load(CaseId::Ieee14);
        // Manufacture a skippable column: an isolated, injection-free bus
        // only reachable over an out-of-service branch.
        let dangling = net
            .branches
            .iter()
            .position(|b| {
                let f = net.buses[b.from_bus].id;
                let t = net.buses[b.to_bus].id;
                (f, t) == (7, 8) || (t, f) == (7, 8)
            })
            .unwrap();
        let stub = if net.buses[net.branches[dangling].from_bus].id == 8 {
            net.branches[dangling].from_bus
        } else {
            net.branches[dangling].to_bus
        };
        net.branches[dangling].in_service = false;
        net.loads.retain(|l| l.bus != stub);
        net.gens.retain(|g| g.bus != stub);

        let full = sensitivities(&net).unwrap();
        let reg = gm_telemetry::Registry::new();
        let scoped = {
            let _g = reg.install();
            sensitivities_for_screening(&net).unwrap()
        };
        assert!(
            reg.counters()["pf.ptdf.columns_skipped"] >= 1,
            "no column was skipped"
        );
        // LODF identical (NaN columns included), PTDF identical on every
        // column the scoped variant computed.
        for k in 0..net.branches.len() {
            for l in 0..net.branches.len() {
                let (a, b) = (full.lodf[(l, k)], scoped.lodf[(l, k)]);
                assert!(
                    a == b || (a.is_nan() && b.is_nan()),
                    "lodf[{l},{k}]: {a} vs {b}"
                );
            }
        }
        for i in 0..net.n_bus() {
            if i == stub {
                assert!((0..net.branches.len()).all(|l| scoped.ptdf[(l, i)] == 0.0));
                continue;
            }
            for l in 0..net.branches.len() {
                assert_eq!(full.ptdf[(l, i)], scoped.ptdf[(l, i)], "ptdf[{l},{i}]");
            }
        }
    }

    #[test]
    fn worst_loading_screen_matches_dc_on_case118() {
        let net = cases::load(CaseId::Ieee118);
        let s = sensitivities(&net).unwrap();
        let base = solve_dc(&net).unwrap();
        let mut screened = 0;
        for k in 0..net.branches.len() {
            if let Some(w) = s.worst_post_outage_loading(&net, &base.flow_mw, k) {
                assert!(w.is_finite());
                if w > 0.9 {
                    screened += 1;
                }
            }
        }
        // The stressed-minority construction guarantees some hot outages.
        assert!(screened > 0, "screening found nothing on case118");
        assert!(screened < net.branches.len(), "screening flags everything");
    }
}
