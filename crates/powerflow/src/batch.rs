//! Batched multi-scenario power flow: one symbolic analysis, many
//! right-hand sides.
//!
//! The what-if workload from the paper's motivating study ("adjust load
//! levels, re-solve, inspect impacts") solves the *same* network under
//! many load/dispatch scenarios. Since the scenarios share a sparsity
//! pattern, the batch engine pays the fixed costs once — base
//! validation, `YBus` assembly, the DC seed factorization (one `B'`
//! factor, all scenario angle seeds in a single
//! [`SparseLu::solve_many_in_place`] panel solve), and the Jacobian
//! symbolic analysis inside the shared [`LuEngine`] — then refactors
//! per scenario and warm-starts each solve from the nearest
//! already-solved neighbor's voltages.
//!
//! Two entry points share one per-scenario policy:
//!
//! * [`run_batch`] — the amortized engine.
//! * [`run_naive`] — the same plan order and the same seeds, replayed
//!   one scenario at a time through fresh per-scenario state (fresh
//!   engine, fresh `YBus`, fresh DC factorization). Every per-scenario
//!   answer is **bit-identical** to `run_batch` (pattern-reuse
//!   refactorization and the panel solve are bitwise-exact replays of
//!   their one-shot counterparts); property-tested in
//!   `tests/batch_props.rs`.
//!
//! Warm-start divergence is never a hard error here: a scenario whose
//! neighbor-seeded Newton diverges restarts from flat (counted in
//! `batch.flat_restarts`); only a scenario that fails *both* ways
//! surfaces an `Err` outcome for the caller's recovery ladder.

use crate::newton::{solve_prepared, JacScratch, QState};
use crate::types::{InitStrategy, PfError, PfOptions, PfReport};
use gm_faults::FaultKind;
use gm_network::{Modification, Network, YBus};
use gm_numeric::Complex;
use gm_sparse::{LuEngine, SparseLu, Triplets};
use serde::{Deserialize, Serialize};

/// One load/dispatch edit inside a scenario. None of the variants touch
/// branch or shunt data, so every scenario in a set shares the base
/// network's admittance structure (and therefore its Jacobian sparsity
/// pattern) by construction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ScenarioDelta {
    /// Scale every in-service load by a factor (P and Q).
    ScaleAllLoads {
        /// Multiplier applied to both P and Q.
        factor: f64,
    },
    /// Set the total demand at a bus (external id); `q_mvar = None`
    /// keeps the existing power factor.
    SetBusLoad {
        /// External bus id.
        bus_id: u32,
        /// New total active demand (MW).
        p_mw: f64,
        /// New reactive demand; `None` scales Q with P.
        q_mvar: Option<f64>,
    },
    /// Set a generator's active dispatch (MW).
    SetGenDispatch {
        /// Generator index into `Network::gens`.
        index: usize,
        /// New active dispatch (MW).
        p_mw: f64,
    },
}

impl ScenarioDelta {
    /// Applies the edit to `net` in place. Load edits delegate to
    /// [`Modification`] so the semantics match the interactive mutation
    /// path exactly.
    fn apply(&self, net: &mut Network) -> Result<(), String> {
        match self {
            ScenarioDelta::ScaleAllLoads { factor } => {
                Modification::ScaleAllLoads { factor: *factor }
                    .apply(net)
                    .map_err(|e| e.to_string())
            }
            ScenarioDelta::SetBusLoad {
                bus_id,
                p_mw,
                q_mvar,
            } => Modification::SetBusLoad {
                bus_id: *bus_id,
                p_mw: *p_mw,
                q_mvar: *q_mvar,
            }
            .apply(net)
            .map_err(|e| e.to_string()),
            ScenarioDelta::SetGenDispatch { index, p_mw } => {
                if !p_mw.is_finite() {
                    return Err(format!("p_mw = {p_mw}"));
                }
                let Some(g) = net.gens.get_mut(*index) else {
                    return Err(format!("no generator with index {index}"));
                };
                g.p_mw = *p_mw;
                Ok(())
            }
        }
    }
}

/// One named scenario: a label plus the edits applied to the base case.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable label carried through to the narrated table.
    pub label: String,
    /// Edits applied to a clone of the base network, in order.
    pub deltas: Vec<ScenarioDelta>,
}

/// A typed set of scenarios sharing one base network.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSet {
    /// The scenarios, in the order outcomes are reported.
    pub scenarios: Vec<Scenario>,
}

impl ScenarioSet {
    /// Wraps explicit scenarios.
    pub fn new(scenarios: Vec<Scenario>) -> ScenarioSet {
        ScenarioSet { scenarios }
    }

    /// A system-wide load scaling sweep: `steps` evenly spaced factors
    /// from `from_factor` to `to_factor` inclusive (a single step pins
    /// at `from_factor`).
    pub fn load_sweep(from_factor: f64, to_factor: f64, steps: usize) -> ScenarioSet {
        let scenarios = (0..steps)
            .map(|i| {
                let t = if steps > 1 {
                    i as f64 / (steps - 1) as f64
                } else {
                    0.0
                };
                let factor = from_factor + (to_factor - from_factor) * t;
                Scenario {
                    label: format!("load {:.1}%", factor * 100.0),
                    deltas: vec![ScenarioDelta::ScaleAllLoads { factor }],
                }
            })
            .collect();
        ScenarioSet { scenarios }
    }

    /// An hourly profile of system-wide load factors ("how does this
    /// look across the day?").
    pub fn daily_profile(factors: &[f64]) -> ScenarioSet {
        let scenarios = factors
            .iter()
            .enumerate()
            .map(|(h, &factor)| Scenario {
                label: format!("hour {h:02}"),
                deltas: vec![ScenarioDelta::ScaleAllLoads { factor }],
            })
            .collect();
        ScenarioSet { scenarios }
    }

    /// A per-bus demand profile: one scenario per requested MW level at
    /// the given bus (external id), Q following the existing power
    /// factor.
    pub fn bus_profile(bus_id: u32, p_mw: &[f64]) -> ScenarioSet {
        let scenarios = p_mw
            .iter()
            .map(|&p| Scenario {
                label: format!("bus {bus_id} at {p:.1} MW"),
                deltas: vec![ScenarioDelta::SetBusLoad {
                    bus_id,
                    p_mw: p,
                    q_mvar: None,
                }],
            })
            .collect();
        ScenarioSet { scenarios }
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// True when the set holds no scenarios.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Applies every scenario to a clone of `net`, returning the
    /// materialized per-scenario networks in scenario order.
    pub fn materialize(&self, net: &Network) -> Result<Vec<Network>, BatchError> {
        let mut nets = Vec::with_capacity(self.len());
        for sc in &self.scenarios {
            let mut net_k = net.clone();
            for d in &sc.deltas {
                d.apply(&mut net_k)
                    .map_err(|reason| BatchError::BadScenario {
                        label: sc.label.clone(),
                        reason,
                    })?;
            }
            nets.push(net_k);
        }
        Ok(nets)
    }

    /// Canonical length-prefixed encoding for cache fingerprinting.
    ///
    /// Every variable-length field is prefixed with its length and
    /// every delta with a tag byte, so distinct sets can never share an
    /// encoding by sliding bytes across field boundaries (the same
    /// shape as the `ScopfCacheKey` collision fix: `["ab","c"]` and
    /// `["a","bc"]` encode differently). Floats are encoded as their
    /// IEEE-754 bit patterns.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        fn u32le(out: &mut Vec<u8>, v: u32) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        fn f64le(out: &mut Vec<u8>, v: f64) {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let mut out = Vec::new();
        u32le(&mut out, self.scenarios.len() as u32);
        for sc in &self.scenarios {
            u32le(&mut out, sc.label.len() as u32);
            out.extend_from_slice(sc.label.as_bytes());
            u32le(&mut out, sc.deltas.len() as u32);
            for d in &sc.deltas {
                match d {
                    ScenarioDelta::ScaleAllLoads { factor } => {
                        out.push(0);
                        f64le(&mut out, *factor);
                    }
                    ScenarioDelta::SetBusLoad {
                        bus_id,
                        p_mw,
                        q_mvar,
                    } => {
                        out.push(1);
                        u32le(&mut out, *bus_id);
                        f64le(&mut out, *p_mw);
                        match q_mvar {
                            None => out.push(0),
                            Some(q) => {
                                out.push(1);
                                f64le(&mut out, *q);
                            }
                        }
                    }
                    ScenarioDelta::SetGenDispatch { index, p_mw } => {
                        out.push(2);
                        out.extend_from_slice(&(*index as u64).to_le_bytes());
                        f64le(&mut out, *p_mw);
                    }
                }
            }
        }
        out
    }
}

/// Why a batch could not run at all (per-scenario solver failures live
/// in [`ScenarioOutcome::report`] instead).
#[derive(Clone, Debug, PartialEq)]
pub enum BatchError {
    /// The scenario set was empty.
    Empty,
    /// The base network failed validation.
    InvalidBase {
        /// Validation problems, rendered.
        problems: Vec<String>,
    },
    /// A scenario's edits could not be applied to the base case.
    BadScenario {
        /// Label of the offending scenario.
        label: String,
        /// What went wrong.
        reason: String,
    },
    /// The shared DC seed factorization failed (islanded base network).
    DcSeed {
        /// The underlying solver error.
        error: PfError,
    },
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::Empty => write!(f, "scenario set is empty"),
            BatchError::InvalidBase { problems } => {
                write!(f, "base network invalid: {}", problems.join("; "))
            }
            BatchError::BadScenario { label, reason } => {
                write!(f, "scenario '{label}': {reason}")
            }
            BatchError::DcSeed { error } => write!(f, "DC seed factorization failed: {error}"),
        }
    }
}

impl std::error::Error for BatchError {}

/// One scenario's result inside a [`BatchReport`].
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// The scenario's label.
    pub label: String,
    /// Net scheduled imbalance signature (total load − scheduled
    /// generation, MW) used by the warm-start neighbor policy.
    pub signature_mw: f64,
    /// The solve result; `Err` only when both the seeded solve and the
    /// flat restart failed.
    pub report: Result<PfReport, PfError>,
    /// The primary solve was seeded from a neighbor's voltages (as
    /// opposed to the DC angle seed used when no solved neighbor
    /// existed yet).
    pub warm_started: bool,
    /// The seeded solve diverged and the scenario was re-run from flat.
    pub flat_restarted: bool,
}

/// The batch result: per-scenario outcomes in the *original* scenario
/// order plus the engine's warm-start telemetry.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Base case name.
    pub case_name: String,
    /// Outcomes, index-aligned with [`ScenarioSet::scenarios`].
    pub outcomes: Vec<ScenarioOutcome>,
    /// Scenario count (`outcomes.len()`).
    pub scenarios: usize,
    /// Neighbor-seeded solves that converged without a restart.
    pub warm_hits: u64,
    /// Seeded solves that diverged and were re-run from flat.
    pub flat_restarts: u64,
}

/// Runs every scenario through the amortized batch engine. See the
/// module docs for the seeding policy; results are bit-identical to
/// [`run_naive`].
pub fn run_batch(
    net: &Network,
    opts: &PfOptions,
    set: &ScenarioSet,
) -> Result<BatchReport, BatchError> {
    let _span = gm_telemetry::span!("batch.run", case = net.name, scenarios = set.len());
    let (nets, sigs, order) = prepare(net, set)?;
    let nrhs = nets.len();

    // Fixed costs, paid once for the whole batch.
    let ybus = YBus::assemble(net);
    let dc_lu = dc_bprime(net)?;
    let dc_seeds = dc_seed_panel(&dc_lu, net, &nets);
    let mut engine = LuEngine::new();
    let mut scratch = JacScratch::new();

    let mut outcomes: Vec<Option<ScenarioOutcome>> = (0..nrhs).map(|_| None).collect();
    let mut solved_v: Vec<Option<Vec<Complex>>> = vec![None; nrhs];
    let mut solved_q: Vec<Option<QState>> = vec![None; nrhs];
    let mut warm_hits = 0u64;
    let mut flat_restarts = 0u64;

    for &k in &order {
        let t0 = std::time::Instant::now();
        let (seed, q_seed, warm) = match nearest_converged(k, &sigs, &solved_v) {
            Some(j) => (report_voltages_of(&solved_v, j), solved_q[j].clone(), true),
            None => (dc_voltages(&dc_seeds[k]), None, false),
        };
        let (result, flat_restarted) = solve_scenario(
            &nets[k],
            opts,
            &seed,
            q_seed.as_ref(),
            &ybus,
            &mut engine,
            &mut scratch,
        );
        let report = match result {
            Ok((rep, qstate)) => {
                if warm && !flat_restarted {
                    warm_hits += 1;
                }
                solved_v[k] = Some(report_voltages(&rep));
                solved_q[k] = Some(qstate);
                Ok(rep)
            }
            Err(e) => Err(e),
        };
        if flat_restarted {
            flat_restarts += 1;
        }
        gm_telemetry::quantile_record("batch.scenario_s", t0.elapsed().as_secs_f64());
        outcomes[k] = Some(ScenarioOutcome {
            label: set.scenarios[k].label.clone(),
            signature_mw: sigs[k],
            report,
            warm_started: warm,
            flat_restarted,
        });
    }

    gm_telemetry::counter_add("batch.scenarios", nrhs as u64);
    gm_telemetry::counter_add("batch.warm_hits", warm_hits);
    gm_telemetry::counter_add("batch.flat_restarts", flat_restarts);
    Ok(BatchReport {
        case_name: net.name.clone(),
        outcomes: outcomes.into_iter().flatten().collect(),
        scenarios: nrhs,
        warm_hits,
        flat_restarts,
    })
}

/// The reference replay: the same plan order and the same seeds as
/// [`run_batch`], but every scenario pays its own fixed costs — fresh
/// validation, fresh `YBus`, fresh DC `B'` factorization, fresh
/// `LuEngine` and Jacobian scratch. Exists so tests and benches can pin
/// the batch engine bit-for-bit against an unshared execution; emits no
/// `batch.*` telemetry of its own.
pub fn run_naive(
    net: &Network,
    opts: &PfOptions,
    set: &ScenarioSet,
) -> Result<BatchReport, BatchError> {
    let (nets, sigs, order) = prepare(net, set)?;
    let nrhs = nets.len();

    let mut outcomes: Vec<Option<ScenarioOutcome>> = (0..nrhs).map(|_| None).collect();
    let mut solved_v: Vec<Option<Vec<Complex>>> = vec![None; nrhs];
    let mut solved_q: Vec<Option<QState>> = vec![None; nrhs];
    let mut warm_hits = 0u64;
    let mut flat_restarts = 0u64;

    for &k in &order {
        let (seed, q_seed, warm) = match nearest_converged(k, &sigs, &solved_v) {
            Some(j) => (report_voltages_of(&solved_v, j), solved_q[j].clone(), true),
            None => {
                // Per-scenario DC seed: fresh factorization, single RHS.
                let lu = dc_bprime(net)?;
                let n = net.n_bus();
                let mut b = vec![0.0f64; n];
                dc_rhs(net, &nets[k], &mut b, 1, 0);
                let mut ws = vec![0.0f64; n];
                lu.solve_in_place(&mut b, &mut ws);
                (dc_voltages(&b), None, false)
            }
        };
        let ybus = YBus::assemble(&nets[k]);
        let mut engine = LuEngine::new();
        let mut scratch = JacScratch::new();
        let (result, flat_restarted) = solve_scenario(
            &nets[k],
            opts,
            &seed,
            q_seed.as_ref(),
            &ybus,
            &mut engine,
            &mut scratch,
        );
        let report = match result {
            Ok((rep, qstate)) => {
                if warm && !flat_restarted {
                    warm_hits += 1;
                }
                solved_v[k] = Some(report_voltages(&rep));
                solved_q[k] = Some(qstate);
                Ok(rep)
            }
            Err(e) => Err(e),
        };
        if flat_restarted {
            flat_restarts += 1;
        }
        outcomes[k] = Some(ScenarioOutcome {
            label: set.scenarios[k].label.clone(),
            signature_mw: sigs[k],
            report,
            warm_started: warm,
            flat_restarted,
        });
    }

    Ok(BatchReport {
        case_name: net.name.clone(),
        outcomes: outcomes.into_iter().flatten().collect(),
        scenarios: nrhs,
        warm_hits,
        flat_restarts,
    })
}

/// [`prepare`]'s output: materialized per-scenario networks, their
/// signatures, and the plan order.
type BatchPlan = (Vec<Network>, Vec<f64>, Vec<usize>);

/// Shared front half of both entry points: validate the base once,
/// materialize per-scenario networks, compute signatures, and fix the
/// plan order (ascending signature, original index breaking ties).
fn prepare(net: &Network, set: &ScenarioSet) -> Result<BatchPlan, BatchError> {
    if set.is_empty() {
        return Err(BatchError::Empty);
    }
    if let Err(problems) = net.validate() {
        return Err(BatchError::InvalidBase {
            problems: problems.iter().map(|p| p.to_string()).collect(),
        });
    }
    let nets = set.materialize(net)?;
    let sigs: Vec<f64> = nets.iter().map(signature_mw).collect();
    let mut order: Vec<usize> = (0..nets.len()).collect();
    order.sort_by(|&a, &b| sigs[a].total_cmp(&sigs[b]).then(a.cmp(&b)));
    Ok((nets, sigs, order))
}

/// The per-scenario solve policy shared by [`run_batch`] and
/// [`run_naive`]: consult the `batch.scenario` fault site, run the
/// seeded solve, and on divergence (or a singular Jacobian) restart
/// once from flat. Load/dispatch deltas on a validated base cannot
/// invalidate it, so scenarios skip re-validation by construction.
fn solve_scenario(
    net_k: &Network,
    opts: &PfOptions,
    seed: &[Complex],
    q_seed: Option<&QState>,
    ybus: &YBus,
    engine: &mut LuEngine,
    scratch: &mut JacScratch,
) -> (Result<(PfReport, QState), PfError>, bool) {
    let primary = match gm_faults::inject("batch.scenario") {
        Some(FaultKind::NewtonDiverge) | Some(FaultKind::LuSingular) => Err(PfError::Diverged {
            iterations: 0,
            mismatch_pu: f64::INFINITY,
        }),
        _ => solve_prepared(net_k, opts, Some(seed), q_seed, ybus, engine, scratch),
    };
    match primary {
        Err(PfError::Diverged { .. }) | Err(PfError::SingularJacobian { .. }) => {
            let flat = PfOptions {
                init: InitStrategy::Flat,
                ..opts.clone()
            };
            (
                solve_prepared(net_k, &flat, None, None, ybus, engine, scratch),
                true,
            )
        }
        other => (other, false),
    }
}

/// Net scheduled imbalance (total load − scheduled in-service
/// generation, MW): the 1-D signature behind the plan order and the
/// nearest-neighbor warm-start policy.
fn signature_mw(net: &Network) -> f64 {
    let gen: f64 = net
        .gens
        .iter()
        .filter(|g| g.in_service)
        .map(|g| g.p_mw)
        .sum();
    net.total_load_mw() - gen
}

/// Nearest already-converged scenario by |signature difference|, ties
/// broken toward the lower index.
fn nearest_converged(k: usize, sigs: &[f64], solved: &[Option<Vec<Complex>>]) -> Option<usize> {
    let mut best: Option<(f64, usize)> = None;
    for (j, v) in solved.iter().enumerate() {
        if v.is_none() {
            continue;
        }
        let d = (sigs[j] - sigs[k]).abs();
        if best.is_none_or(|(bd, _)| d < bd) {
            best = Some((d, j));
        }
    }
    best.map(|(_, j)| j)
}

/// The slack-reduced DC `B'` factorization (same assembly as
/// [`crate::dc::solve_dc`]). Load/dispatch deltas never touch branch
/// data, so one factorization from the base network serves every
/// scenario in the set.
fn dc_bprime(net: &Network) -> Result<SparseLu, BatchError> {
    let n = net.n_bus();
    let Some(slack) = net.slack() else {
        return Err(BatchError::InvalidBase {
            problems: vec!["network has no slack bus".into()],
        });
    };
    let mut t = Triplets::new(n, n);
    for br in net.branches.iter().filter(|b| b.in_service) {
        let b = 1.0 / br.x_pu;
        let (i, j) = (br.from_bus, br.to_bus);
        if i != slack && j != slack {
            t.push(i, i, b);
            t.push(j, j, b);
            t.push(i, j, -b);
            t.push(j, i, -b);
        } else if i != slack {
            t.push(i, i, b);
        } else if j != slack {
            t.push(j, j, b);
        }
    }
    t.push(slack, slack, 1.0);
    SparseLu::factor(&t.to_csr()).map_err(|_| BatchError::DcSeed {
        error: PfError::SingularJacobian { iteration: 0 },
    })
}

/// Writes scenario `net_k`'s p.u. active injections (slack pinned to
/// zero) into lane `s` of an `nrhs`-wide panel.
fn dc_rhs(base: &Network, net_k: &Network, panel: &mut [f64], nrhs: usize, s: usize) {
    // `prepare` validated the base, so a slack exists.
    let slack = base.slack().unwrap_or(0);
    let (p_mw, _) = net_k.scheduled_injections();
    for (i, p) in p_mw.iter().enumerate() {
        panel[i * nrhs + s] = if i == slack { 0.0 } else { p / net_k.base_mva };
    }
}

/// Solves every scenario's DC angle seed in one panel solve over the
/// shared `B'` factorization.
fn dc_seed_panel(lu: &SparseLu, base: &Network, nets: &[Network]) -> Vec<Vec<f64>> {
    let n = base.n_bus();
    let nrhs = nets.len();
    let mut panel = vec![0.0f64; n * nrhs];
    for (s, net_k) in nets.iter().enumerate() {
        dc_rhs(base, net_k, &mut panel, nrhs, s);
    }
    let mut scratch = vec![0.0f64; n * nrhs + nrhs];
    lu.solve_many_in_place(&mut panel, nrhs, &mut scratch);
    (0..nrhs)
        .map(|s| (0..n).map(|i| panel[i * nrhs + s]).collect())
        .collect()
}

/// Flat-magnitude voltages at the DC seed angles (PV/slack magnitudes
/// are pinned to their setpoints inside the solver regardless of the
/// seed).
fn dc_voltages(theta: &[f64]) -> Vec<Complex> {
    theta
        .iter()
        .map(|&th| Complex::from_polar(1.0, th))
        .collect()
}

/// Reconstructs the complex bus voltages of a solved report.
fn report_voltages(rep: &PfReport) -> Vec<Complex> {
    rep.buses
        .iter()
        .map(|b| Complex::from_polar(b.vm_pu, b.va_deg.to_radians()))
        .collect()
}

/// Clones the stored voltages of scenario `j` (always present for a
/// `nearest_converged` hit).
fn report_voltages_of(solved: &[Option<Vec<Complex>>], j: usize) -> Vec<Complex> {
    solved[j].clone().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_network::{cases, CaseId};
    use gm_telemetry::Registry;

    fn opts() -> PfOptions {
        PfOptions::default()
    }

    #[test]
    fn load_sweep_converges_with_warm_hits() {
        let reg = Registry::new();
        let _g = reg.install();
        let net = cases::load(CaseId::Ieee14);
        let set = ScenarioSet::load_sweep(0.8, 1.2, 9);
        let rep = run_batch(&net, &opts(), &set).unwrap();
        assert_eq!(rep.scenarios, 9);
        assert_eq!(rep.outcomes.len(), 9);
        for (out, sc) in rep.outcomes.iter().zip(&set.scenarios) {
            assert_eq!(out.label, sc.label);
            assert!(out.report.as_ref().unwrap().converged, "{}", out.label);
        }
        // Everything after the first plan-order scenario warm-starts.
        assert_eq!(rep.warm_hits, 8);
        assert_eq!(rep.flat_restarts, 0);
        assert_eq!(reg.counter_value("batch.scenarios"), 9);
        assert_eq!(reg.counter_value("batch.warm_hits"), 8);
        assert_eq!(reg.counter_value("batch.flat_restarts"), 0);
        // One DC panel solve (9 lanes) + Newton solves all routed
        // through the shared engine.
        assert_eq!(reg.counter_value("pf.newton.solves"), 9);
    }

    #[test]
    fn batch_matches_naive_bitwise_on_daily_profile() {
        let net = cases::load(CaseId::Ieee30);
        let factors: Vec<f64> = (0..12).map(|h| 0.85 + 0.03 * (h as f64)).collect();
        let set = ScenarioSet::daily_profile(&factors);
        let fast = run_batch(&net, &opts(), &set).unwrap();
        let slow = run_naive(&net, &opts(), &set).unwrap();
        assert_eq!(fast.warm_hits, slow.warm_hits);
        assert_eq!(fast.flat_restarts, slow.flat_restarts);
        for (a, b) in fast.outcomes.iter().zip(&slow.outcomes) {
            let (ra, rb) = (a.report.as_ref().unwrap(), b.report.as_ref().unwrap());
            assert_eq!(ra.iterations, rb.iterations);
            for (ba, bb) in ra.buses.iter().zip(&rb.buses) {
                assert_eq!(ba.vm_pu.to_bits(), bb.vm_pu.to_bits());
                assert_eq!(ba.va_deg.to_bits(), bb.va_deg.to_bits());
            }
        }
    }

    #[test]
    fn injected_divergence_flat_restarts_instead_of_erroring() {
        let reg = Registry::new();
        let _g = reg.install();
        let inj = gm_faults::FaultInjector::scripted(vec![gm_faults::FaultRule::new(
            "batch.scenario",
            FaultKind::NewtonDiverge,
            2,
            1,
        )]);
        let _f = inj.install();
        let net = cases::load(CaseId::Ieee14);
        let set = ScenarioSet::load_sweep(0.9, 1.1, 5);
        let rep = run_batch(&net, &opts(), &set).unwrap();
        assert_eq!(rep.flat_restarts, 1);
        let restarted: Vec<&ScenarioOutcome> =
            rep.outcomes.iter().filter(|o| o.flat_restarted).collect();
        assert_eq!(restarted.len(), 1);
        // The restarted scenario still converged — never a hard error.
        assert!(restarted[0].report.as_ref().unwrap().converged);
        assert_eq!(reg.counter_value("batch.flat_restarts"), 1);
    }

    #[test]
    fn bus_profile_and_dispatch_deltas_apply() {
        let net = cases::load(CaseId::Ieee14);
        let bus_id = net.buses[3].id;
        let mut set = ScenarioSet::bus_profile(bus_id, &[30.0, 60.0]);
        set.scenarios.push(Scenario {
            label: "redispatch".into(),
            deltas: vec![ScenarioDelta::SetGenDispatch {
                index: 1,
                p_mw: 35.0,
            }],
        });
        let rep = run_batch(&net, &opts(), &set).unwrap();
        assert_eq!(rep.scenarios, 3);
        assert!(rep.outcomes.iter().all(|o| o.report.is_ok()));
        // Signature tracks the edits: more load at the bus raises it.
        assert!(rep.outcomes[1].signature_mw > rep.outcomes[0].signature_mw);
    }

    #[test]
    fn empty_set_is_a_typed_error() {
        let net = cases::load(CaseId::Ieee14);
        let err = run_batch(&net, &opts(), &ScenarioSet::new(Vec::new())).unwrap_err();
        assert_eq!(err, BatchError::Empty);
    }

    #[test]
    fn bad_gen_index_is_a_typed_error() {
        let net = cases::load(CaseId::Ieee14);
        let set = ScenarioSet::new(vec![Scenario {
            label: "ghost unit".into(),
            deltas: vec![ScenarioDelta::SetGenDispatch {
                index: 999,
                p_mw: 10.0,
            }],
        }]);
        match run_batch(&net, &opts(), &set).unwrap_err() {
            BatchError::BadScenario { label, .. } => assert_eq!(label, "ghost unit"),
            other => panic!("expected BadScenario, got {other:?}"),
        }
    }

    #[test]
    fn canonical_bytes_separate_sliding_labels() {
        let a = ScenarioSet::new(vec![
            Scenario {
                label: "ab".into(),
                deltas: vec![],
            },
            Scenario {
                label: "c".into(),
                deltas: vec![],
            },
        ]);
        let b = ScenarioSet::new(vec![
            Scenario {
                label: "a".into(),
                deltas: vec![],
            },
            Scenario {
                label: "bc".into(),
                deltas: vec![],
            },
        ]);
        assert_ne!(a.canonical_bytes(), b.canonical_bytes());
    }
}
