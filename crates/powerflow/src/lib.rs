//! # gm-powerflow
//!
//! AC and DC power flow solvers for GridMind-RS — the role
//! `pandapower.runpp` plays in the paper.
//!
//! - [`newton`] — full Newton–Raphson in polar coordinates with sparse
//!   Jacobians, Iwamoto-style optimal step damping, and generator
//!   reactive-limit enforcement (PV→PQ switching).
//! - [`decoupled`] — fast-decoupled (XB) variant used as a fallback /
//!   screening solver.
//! - [`dc`] — linear DC power flow for warm starts and contingency
//!   screening.
//! - [`sensitivity`] — PTDF / LODF linear sensitivities for fast N-1
//!   screening and security constraints.
//! - [`types`] — options, rich solution reports, and error types.
//!
//! ```
//! use gm_network::{cases, CaseId};
//! use gm_powerflow::{solve, PfOptions};
//!
//! let net = cases::load(CaseId::Ieee14);
//! let report = solve(&net, &PfOptions::default()).unwrap();
//! assert!(report.converged);
//! assert!(report.losses_mw > 0.0);
//! ```
// Solver crates are panic-free outside tests: every fallible path
// returns a typed error. Enforced by clippy here and by the regex
// pass of `gm-audit lint-src` (with its allowlist) in CI.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
// Numeric kernels iterate several parallel arrays by index; the
// index-based loops are the clearer form here.
#![allow(clippy::needless_range_loop)]

pub mod batch;
pub mod compensated;
pub mod dc;
pub mod decoupled;
pub mod newton;
pub mod sensitivity;
pub mod types;

pub use batch::{
    run_batch, run_naive, BatchError, BatchReport, Scenario, ScenarioDelta, ScenarioOutcome,
    ScenarioSet,
};
pub use compensated::{CompensatedPfError, CompensationBase};
pub use dc::{solve_dc, DcReport};
pub use decoupled::{solve_fast_decoupled, solve_fast_decoupled_with_engine};
pub use newton::{solve, solve_from, solve_from_with_engine};
pub use sensitivity::{sensitivities, sensitivities_for_screening, Sensitivities};
pub use types::{BranchFlow, BusResult, GenResult, InitStrategy, PfError, PfOptions, PfReport};

#[cfg(test)]
mod tests {
    use super::*;
    use gm_network::{cases, CaseId, Modification};

    #[test]
    fn ieee14_converges_and_reproduces_reference() {
        let net = cases::load(CaseId::Ieee14);
        let rep = solve(&net, &PfOptions::default()).unwrap();
        assert!(rep.converged);
        assert!(rep.iterations <= 10, "took {} iterations", rep.iterations);
        // MATPOWER reference: slack P ≈ 232.4 MW, losses ≈ 13.4 MW.
        let slack_p = rep.gens[0].p_mw;
        assert!(
            (slack_p - 232.4).abs() < 5.0,
            "slack P {slack_p} far from reference 232.4"
        );
        assert!(
            (rep.losses_mw - 13.4).abs() < 2.0,
            "losses {} far from reference 13.4",
            rep.losses_mw
        );
    }

    #[test]
    fn ieee14_q_limits_respected() {
        let net = cases::load(CaseId::Ieee14);
        let rep = solve(&net, &PfOptions::default()).unwrap();
        let slack = net.slack().unwrap();
        for (g, gen) in rep.gens.iter().zip(&net.gens) {
            if gen.bus == slack {
                // The slack generator's Q is unconstrained by convention
                // (MATPOWER/pandapower behave the same way); case14's
                // authentic solution has it at -16.9 MVAr outside [0, 10].
                continue;
            }
            assert!(
                g.q_mvar <= gen.q_max_mvar + 0.5 && g.q_mvar >= gen.q_min_mvar - 0.5,
                "gen at bus {} Q {} outside [{}, {}]",
                net.buses[gen.bus].id,
                g.q_mvar,
                gen.q_min_mvar,
                gen.q_max_mvar
            );
        }
    }

    #[test]
    fn ieee30_converges() {
        let net = cases::load(CaseId::Ieee30);
        let rep = solve(&net, &PfOptions::default()).unwrap();
        assert!(rep.converged);
        assert!(rep.losses_mw > 0.0 && rep.losses_mw < 30.0);
        assert!(rep.min_vm.0 > 0.9);
    }

    #[test]
    fn synthetic_cases_converge() {
        for id in [CaseId::Ieee57, CaseId::Ieee118, CaseId::Ieee300] {
            let net = cases::load(id);
            let rep =
                solve(&net, &PfOptions::default()).unwrap_or_else(|e| panic!("{id:?} failed: {e}"));
            assert!(rep.converged, "{id:?} did not converge");
            assert!(
                rep.min_vm.0 > 0.85,
                "{id:?} voltage collapse: min vm {}",
                rep.min_vm.0
            );
            // Losses positive and a plausible fraction of load.
            assert!(rep.losses_mw > 0.0);
            assert!(rep.losses_mw < 0.1 * net.total_load_mw());
        }
    }

    #[test]
    fn power_balance_holds() {
        let net = cases::load(CaseId::Ieee118);
        let rep = solve(&net, &PfOptions::default()).unwrap();
        let gen_p: f64 = rep.gens.iter().map(|g| g.p_mw).sum();
        let balance = gen_p - net.total_load_mw() - rep.losses_mw;
        assert!(balance.abs() < 0.5, "power balance error {balance} MW");
    }

    #[test]
    fn init_strategies_reach_same_solution() {
        let net = cases::load(CaseId::Ieee30);
        let mut opts = PfOptions {
            enforce_q_limits: false,
            ..Default::default()
        };
        let flat = solve(&net, &opts).unwrap();
        opts.init = InitStrategy::CaseValues;
        let warm = solve(&net, &opts).unwrap();
        opts.init = InitStrategy::DcWarmStart;
        let dc = solve(&net, &opts).unwrap();
        for ((a, b), c) in flat.buses.iter().zip(&warm.buses).zip(&dc.buses) {
            assert!((a.vm_pu - b.vm_pu).abs() < 1e-7);
            assert!((a.vm_pu - c.vm_pu).abs() < 1e-7);
        }
    }

    #[test]
    fn load_increase_raises_losses_and_lowers_voltage() {
        let base = cases::load(CaseId::Ieee14);
        let rep0 = solve(&base, &PfOptions::default()).unwrap();
        let mut heavy = base.clone();
        Modification::ScaleAllLoads { factor: 1.3 }
            .apply(&mut heavy)
            .unwrap();
        let rep1 = solve(&heavy, &PfOptions::default()).unwrap();
        assert!(rep1.losses_mw > rep0.losses_mw);
        assert!(rep1.min_vm.0 < rep0.min_vm.0);
    }

    #[test]
    fn line_outage_changes_flows() {
        // The 1-2 outage pushes every MW through 1-5 and exhausts the PV
        // units' reactive ranges: with Q-limit enforcement the case is
        // infeasible (pandapower fails it too), so solve without.
        let opts = PfOptions {
            enforce_q_limits: false,
            ..Default::default()
        };
        let mut net = cases::load(CaseId::Ieee14);
        let rep0 = solve(&net, &opts).unwrap();
        net.branches[0].in_service = false;
        let rep1 = solve(&net, &opts).unwrap();
        assert!(rep1.converged);
        assert_eq!(rep1.branches[0].p_from_mw, 0.0);
        // Parallel corridor 1-5 picks up.
        assert!(rep1.branches[1].p_from_mw.abs() > rep0.branches[1].p_from_mw.abs());
    }

    #[test]
    fn absurd_load_diverges_gracefully() {
        let mut net = cases::load(CaseId::Ieee14);
        Modification::ScaleAllLoads { factor: 40.0 }
            .apply(&mut net)
            .unwrap();
        let opts = PfOptions {
            max_iter: 15,
            ..Default::default()
        };
        match solve(&net, &opts) {
            Err(PfError::Diverged { .. }) | Err(PfError::SingularJacobian { .. }) => {}
            Ok(rep) => panic!("should not converge, got losses {}", rep.losses_mw),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn islanded_network_rejected() {
        let mut net = cases::load(CaseId::Ieee14);
        // Disconnect bus 8 (only reachable through 7-8).
        let idx = net
            .branches
            .iter()
            .position(|b| {
                let f = net.buses[b.from_bus].id;
                let t = net.buses[b.to_bus].id;
                (f, t) == (7, 8) || (t, f) == (7, 8)
            })
            .unwrap();
        net.branches[idx].in_service = false;
        match solve(&net, &PfOptions::default()) {
            Err(PfError::InvalidNetwork { problems }) => {
                assert!(problems.iter().any(|p| p.contains("island")));
            }
            other => panic!("expected island rejection, got {other:?}"),
        }
    }

    #[test]
    fn warm_start_from_previous_solution_is_fast() {
        let net = cases::load(CaseId::Ieee118);
        let opts = PfOptions {
            enforce_q_limits: false,
            ..Default::default()
        };
        let rep = solve(&net, &opts).unwrap();
        let v: Vec<gm_numeric::Complex> = rep
            .buses
            .iter()
            .map(|b| gm_numeric::Complex::from_polar(b.vm_pu, b.va_deg.to_radians()))
            .collect();
        let rep2 = solve_from(&net, &opts, Some(&v)).unwrap();
        assert!(
            rep2.iterations <= 2,
            "warm restart took {}",
            rep2.iterations
        );
    }

    #[test]
    fn multipliers_logged_when_damping_active() {
        let net = cases::load(CaseId::Ieee118);
        let rep = solve(&net, &PfOptions::default()).unwrap();
        // One multiplier per Newton step, all in (0, 1].
        assert_eq!(rep.multipliers.len(), rep.iterations);
        assert!(rep.multipliers.iter().all(|&m| m > 0.0 && m <= 1.0));
    }

    #[test]
    fn loading_percentages_populated_for_rated_branches() {
        let net = cases::load(CaseId::Ieee30);
        let rep = solve(&net, &PfOptions::default()).unwrap();
        let loaded = rep.branches.iter().filter(|b| b.loading_pct > 0.0).count();
        assert!(loaded > 30, "only {loaded} branches show loading");
        assert!(rep.max_loading.0 > 10.0);
        assert!(rep.max_loading.1 != usize::MAX);
    }
}
