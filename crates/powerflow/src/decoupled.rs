//! Fast-decoupled power flow (XB scheme).
//!
//! Constant B′ / B″ matrices factored once, alternating P-θ and Q-V half
//! iterations. Cheaper per iteration than Newton but linearly convergent;
//! GridMind uses it as a recovery fallback when Newton struggles and as a
//! cross-check in the validation layer.

use crate::types::{PfError, PfOptions, PfReport};
use gm_network::{BusKind, Network, YBus};
use gm_numeric::Complex;
use gm_sparse::{LuEngine, Triplets};

/// Solves the power flow with the fast-decoupled XB scheme.
///
/// Reuses [`crate::newton`]'s reporting by polishing the decoupled solution
/// with a final report build; convergence control follows `opts.tol_pu` and
/// `opts.max_iter`. One **P-θ + Q-V pair** counts as one iteration — the
/// same "one corrective update per iteration" accounting the Newton
/// solver uses, so `max_iter` budgets the two solvers comparably and the
/// reported `iterations` are measured in the same unit.
pub fn solve_fast_decoupled(net: &Network, opts: &PfOptions) -> Result<PfReport, PfError> {
    solve_fast_decoupled_with_engine(net, opts, &mut LuEngine::new())
}

/// Like [`solve_fast_decoupled`], but running the final Newton polish
/// through a caller-owned [`LuEngine`]. The polish Jacobian shares its
/// pattern with the plain Newton solve of the same network, so the
/// recovery ladder's FDLF rung reuses the symbolic analysis its Newton
/// rungs already paid for.
pub fn solve_fast_decoupled_with_engine(
    net: &Network,
    opts: &PfOptions,
    engine: &mut LuEngine,
) -> Result<PfReport, PfError> {
    let _span = gm_telemetry::span!("pf.fdlf.solve", case = net.name);
    gm_telemetry::counter_add("pf.fdlf.solves", 1);
    if let Err(problems) = net.validate() {
        return Err(PfError::InvalidNetwork {
            problems: problems.iter().map(|p| p.to_string()).collect(),
        });
    }
    let n = net.n_bus();
    let Some(slack) = net.slack() else {
        return Err(PfError::InvalidNetwork {
            problems: vec!["network has no slack bus".into()],
        });
    };
    let ybus = YBus::assemble(net);

    // Roles (no Q-limit handling in the decoupled solver: it is a fallback
    // / screening method; use Newton for limit-accurate solutions).
    let mut is_pv = vec![false; n];
    for (i, b) in net.buses.iter().enumerate() {
        if b.kind == BusKind::Pv && net.gens_at(i).next().is_some() {
            is_pv[i] = true;
        }
    }

    let mut col_th = vec![usize::MAX; n];
    let mut n_th = 0;
    for i in 0..n {
        if i != slack {
            col_th[i] = n_th;
            n_th += 1;
        }
    }
    let mut col_vm = vec![usize::MAX; n];
    let mut n_vm = 0;
    for i in 0..n {
        if i != slack && !is_pv[i] {
            col_vm[i] = n_vm;
            n_vm += 1;
        }
    }

    // B′: series susceptance 1/x, taps and shunts ignored, over θ vars.
    let mut tp = Triplets::new(n_th, n_th);
    for br in net.branches.iter().filter(|b| b.in_service) {
        let b = 1.0 / br.x_pu;
        let (i, j) = (br.from_bus, br.to_bus);
        let (ci, cj) = (col_th[i], col_th[j]);
        if ci != usize::MAX {
            tp.push(ci, ci, b);
        }
        if cj != usize::MAX {
            tp.push(cj, cj, b);
        }
        if ci != usize::MAX && cj != usize::MAX {
            tp.push(ci, cj, -b);
            tp.push(cj, ci, -b);
        }
    }
    let bp = tp.to_csr();

    // B″: negative imaginary part of Ybus over Vm vars.
    let mut tpp = Triplets::new(n_vm, n_vm);
    for i in 0..n {
        if col_vm[i] == usize::MAX {
            continue;
        }
        let (cols, vals) = ybus.matrix.row(i);
        for (&j, &y) in cols.iter().zip(vals) {
            if col_vm[j] != usize::MAX {
                tpp.push(col_vm[i], col_vm[j], -y.im);
            }
        }
    }
    let bpp = tpp.to_csr();

    // B′ and B″ are constant: factored once through the shared
    // symbolic/numeric API and then reused by in-place solves for every
    // half iteration. Each factor gets its own engine so both stay
    // resident simultaneously.
    let mut engine_p = LuEngine::with_capacity(1);
    let lup = engine_p
        .factorize(&bp)
        .map_err(|_| PfError::SingularJacobian { iteration: 0 })?;
    let mut engine_pp = LuEngine::with_capacity(1);
    let lupp = if n_vm > 0 {
        Some(
            engine_pp
                .factorize(&bpp)
                .map_err(|_| PfError::SingularJacobian { iteration: 0 })?,
        )
    } else {
        None
    };

    // Scheduled injections (p.u.).
    let (p_mw, q_mvar) = net.scheduled_injections();
    let p_spec: Vec<f64> = p_mw.iter().map(|v| v / net.base_mva).collect();
    let q_spec: Vec<f64> = q_mvar.iter().map(|v| v / net.base_mva).collect();

    // Flat start with setpoint magnitudes.
    let mut vm: Vec<f64> = (0..n)
        .map(|i| {
            if i == slack || is_pv[i] {
                net.gens_at(i)
                    .next()
                    .map(|(_, g)| g.vm_setpoint_pu)
                    .unwrap_or(net.buses[i].vm_pu)
            } else {
                1.0
            }
        })
        .collect();
    let mut th = vec![0.0f64; n];

    let mut history = Vec::new();
    let mut iterations = 0usize;
    let mut converged = false;
    // Caller-owned buffers for the in-place half-step solves.
    let mut dth = vec![0.0f64; n_th];
    let mut dvm = vec![0.0f64; n_vm];
    let mut solve_ws = vec![0.0f64; n_th.max(n_vm)];
    loop {
        let v: Vec<Complex> = (0..n).map(|i| Complex::from_polar(vm[i], th[i])).collect();
        let s = ybus.injections(&v);
        let mut norm = 0.0f64;
        for i in 0..n {
            if col_th[i] != usize::MAX {
                norm = norm.max((s[i].re - p_spec[i]).abs());
            }
            if col_vm[i] != usize::MAX {
                norm = norm.max((s[i].im - q_spec[i]).abs());
            }
        }
        history.push(norm);
        if norm < opts.tol_pu {
            converged = true;
            break;
        }
        if iterations >= opts.max_iter {
            break;
        }
        iterations += 1;

        // P-θ half step: `dth` holds the rhs going in, the update
        // coming out.
        for i in 0..n {
            if col_th[i] != usize::MAX {
                dth[col_th[i]] = (s[i].re - p_spec[i]) / vm[i];
            }
        }
        lup.solve_in_place(&mut dth, &mut solve_ws[..n_th]);
        for i in 0..n {
            if col_th[i] != usize::MAX {
                th[i] -= dth[col_th[i]];
            }
        }

        // Q-V half step.
        if let Some(lupp) = &lupp {
            let v2: Vec<Complex> = (0..n).map(|i| Complex::from_polar(vm[i], th[i])).collect();
            let s2 = ybus.injections(&v2);
            for i in 0..n {
                if col_vm[i] != usize::MAX {
                    dvm[col_vm[i]] = (s2[i].im - q_spec[i]) / vm[i];
                }
            }
            lupp.solve_in_place(&mut dvm, &mut solve_ws[..n_vm]);
            for i in 0..n {
                if col_vm[i] != usize::MAX {
                    vm[i] = (vm[i] - dvm[col_vm[i]]).max(0.1);
                }
            }
        }
    }

    gm_telemetry::counter_add("pf.fdlf.iterations", iterations as u64);
    if !converged {
        gm_telemetry::counter_add("pf.fdlf.diverged", 1);
        return Err(PfError::Diverged {
            iterations,
            mismatch_pu: history.last().copied().unwrap_or(f64::INFINITY),
        });
    }

    // Hand the converged state to the Newton report builder by doing a
    // zero-iteration Newton polish from this voltage.
    let v: Vec<Complex> = (0..n).map(|i| Complex::from_polar(vm[i], th[i])).collect();
    let polish = PfOptions {
        enforce_q_limits: false,
        iwamoto_damping: false,
        max_iter: 2,
        ..opts.clone()
    };
    let mut report = crate::newton::solve_from_with_engine(net, &polish, Some(&v), engine)?;
    report.iterations += iterations;
    let mut full_history = history;
    full_history.append(&mut report.mismatch_history);
    report.mismatch_history = full_history;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_network::{cases, CaseId};

    #[test]
    fn matches_newton_on_ieee14() {
        let net = cases::load(CaseId::Ieee14);
        let opts = PfOptions {
            enforce_q_limits: false,
            ..Default::default()
        };
        let fd = solve_fast_decoupled(&net, &opts).unwrap();
        let nr = crate::newton::solve(&net, &opts).unwrap();
        assert!(fd.converged);
        for (a, b) in fd.buses.iter().zip(&nr.buses) {
            assert!(
                (a.vm_pu - b.vm_pu).abs() < 1e-6,
                "bus {}: {} vs {}",
                a.id,
                a.vm_pu,
                b.vm_pu
            );
            assert!((a.va_deg - b.va_deg).abs() < 1e-5);
        }
    }

    #[test]
    fn converges_on_ieee30() {
        let net = cases::load(CaseId::Ieee30);
        let opts = PfOptions {
            enforce_q_limits: false,
            max_iter: 60,
            ..Default::default()
        };
        let fd = solve_fast_decoupled(&net, &opts).unwrap();
        assert!(fd.converged);
        assert!(fd.losses_mw > 0.0);
    }

    #[test]
    fn iteration_accounting_counts_pairs_on_case14() {
        // Pins the unified accounting: one P-θ + Q-V pair = one
        // iteration, and `max_iter` bounds exactly that count. The
        // Newton polish runs from the converged point, so it adds zero
        // iterations and the reported total equals the pair count.
        let net = cases::load(CaseId::Ieee14);
        let opts = PfOptions {
            enforce_q_limits: false,
            ..Default::default()
        };
        let fd = solve_fast_decoupled(&net, &opts).unwrap();
        assert_eq!(fd.iterations, 8, "pair count on case14 at tol 1e-8");

        // A budget exactly one pair short must diverge; the exact budget
        // must converge — `max_iter: N` means N pairs, nothing else.
        let short = PfOptions {
            max_iter: fd.iterations - 1,
            ..opts.clone()
        };
        match solve_fast_decoupled(&net, &short) {
            Err(PfError::Diverged { iterations, .. }) => {
                assert_eq!(iterations, fd.iterations - 1)
            }
            other => panic!("one pair short must diverge, got {other:?}"),
        }
        let exact = PfOptions {
            max_iter: fd.iterations,
            ..opts
        };
        assert_eq!(
            solve_fast_decoupled(&net, &exact).unwrap().iterations,
            fd.iterations
        );
    }

    #[test]
    fn needs_more_iterations_than_newton() {
        // Linear vs quadratic convergence: FD should take more sweeps.
        let net = cases::load(CaseId::Ieee14);
        let opts = PfOptions {
            enforce_q_limits: false,
            max_iter: 60,
            ..Default::default()
        };
        let fd = solve_fast_decoupled(&net, &opts).unwrap();
        let nr = crate::newton::solve(&net, &opts).unwrap();
        assert!(fd.iterations > nr.iterations);
    }
}
