//! Options, reports, and errors shared by the power flow solvers.

use serde::{Deserialize, Serialize};

/// Voltage initialization strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum InitStrategy {
    /// 1.0 p.u. / 0° everywhere except scheduled magnitudes at PV/slack.
    #[default]
    Flat,
    /// Use the `vm_pu` / `va_deg` stored on the buses (e.g. a previous
    /// solution or the case file's solved point).
    CaseValues,
    /// Flat magnitudes with angles warm-started from a DC power flow.
    DcWarmStart,
}

/// Options controlling the Newton solver.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PfOptions {
    /// Convergence tolerance on the ∞-norm of the power mismatch (p.u.).
    pub tol_pu: f64,
    /// Maximum Newton iterations per Q-limit round.
    pub max_iter: usize,
    /// Enable the Iwamoto-style optimal step multiplier when a full step
    /// would increase the mismatch norm.
    pub iwamoto_damping: bool,
    /// Enforce generator reactive limits by PV→PQ switching.
    pub enforce_q_limits: bool,
    /// Maximum PV→PQ switching rounds.
    pub max_q_rounds: usize,
    /// Voltage initialization.
    pub init: InitStrategy,
}

impl Default for PfOptions {
    fn default() -> Self {
        PfOptions {
            tol_pu: 1e-8,
            max_iter: 30,
            iwamoto_damping: true,
            enforce_q_limits: true,
            max_q_rounds: 6,
            init: InitStrategy::Flat,
        }
    }
}

/// Solved state of one bus.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BusResult {
    /// External bus id.
    pub id: u32,
    /// Voltage magnitude (p.u.).
    pub vm_pu: f64,
    /// Voltage angle (degrees).
    pub va_deg: f64,
    /// Net active injection (MW).
    pub p_mw: f64,
    /// Net reactive injection (MVAr).
    pub q_mvar: f64,
}

/// Solved flow on one branch.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BranchFlow {
    /// Branch index into `Network::branches`.
    pub index: usize,
    /// Active power entering at the from side (MW).
    pub p_from_mw: f64,
    /// Reactive power entering at the from side (MVAr).
    pub q_from_mvar: f64,
    /// Active power entering at the to side (MW).
    pub p_to_mw: f64,
    /// Reactive power entering at the to side (MVAr).
    pub q_to_mvar: f64,
    /// Loading as percent of the MVA rating; `0` when the branch is
    /// unrated.
    pub loading_pct: f64,
}

impl BranchFlow {
    /// Active losses on the branch (MW).
    pub fn loss_mw(&self) -> f64 {
        self.p_from_mw + self.p_to_mw
    }
}

/// Solved output of one generator.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GenResult {
    /// Generator index into `Network::gens`.
    pub index: usize,
    /// Active output (MW).
    pub p_mw: f64,
    /// Reactive output (MVAr).
    pub q_mvar: f64,
    /// True when the unit's reactive output sits at a limit (the PV bus
    /// was converted to PQ).
    pub at_q_limit: bool,
}

/// Full power flow solution report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PfReport {
    /// Whether the final mismatch met the tolerance.
    pub converged: bool,
    /// Newton iterations used (summed over Q-limit rounds).
    pub iterations: usize,
    /// PV→PQ switching rounds performed.
    pub q_limit_rounds: usize,
    /// Final ∞-norm power mismatch (p.u.).
    pub max_mismatch_pu: f64,
    /// Mismatch history, one entry per iteration.
    pub mismatch_history: Vec<f64>,
    /// Step multipliers applied per iteration (1.0 = full Newton step).
    pub multipliers: Vec<f64>,
    /// Per-bus solution.
    pub buses: Vec<BusResult>,
    /// Per-branch flows (in-service branches; out-of-service carry zeros).
    pub branches: Vec<BranchFlow>,
    /// Per-generator dispatch.
    pub gens: Vec<GenResult>,
    /// Total active losses (MW).
    pub losses_mw: f64,
    /// Minimum bus voltage (p.u.) and the bus id where it occurs.
    pub min_vm: (f64, u32),
    /// Maximum bus voltage (p.u.) and the bus id where it occurs.
    pub max_vm: (f64, u32),
    /// Largest branch loading (%) and the branch index where it occurs;
    /// `(0, usize::MAX)` when every branch is unrated.
    pub max_loading: (f64, usize),
}

impl PfReport {
    /// Voltage violations against the bus limits: `(bus id, vm, low?)`.
    pub fn voltage_violations(&self, vmin: f64, vmax: f64) -> Vec<(u32, f64, bool)> {
        self.buses
            .iter()
            .filter_map(|b| {
                if b.vm_pu < vmin {
                    Some((b.id, b.vm_pu, true))
                } else if b.vm_pu > vmax {
                    Some((b.id, b.vm_pu, false))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Branches loaded above `threshold_pct`.
    pub fn overloads(&self, threshold_pct: f64) -> Vec<&BranchFlow> {
        self.branches
            .iter()
            .filter(|f| f.loading_pct > threshold_pct)
            .collect()
    }
}

/// Power flow failure modes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum PfError {
    /// The network failed validation.
    InvalidNetwork {
        /// Rendered validation messages.
        problems: Vec<String>,
    },
    /// Newton iteration did not converge.
    Diverged {
        /// Iterations performed.
        iterations: usize,
        /// Final mismatch (p.u.).
        mismatch_pu: f64,
    },
    /// The Jacobian became singular (typically an islanded or degenerate
    /// system).
    SingularJacobian {
        /// Iteration at which factorization failed.
        iteration: usize,
    },
}

impl std::fmt::Display for PfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PfError::InvalidNetwork { problems } => {
                write!(f, "invalid network: {}", problems.join("; "))
            }
            PfError::Diverged {
                iterations,
                mismatch_pu,
            } => write!(
                f,
                "power flow diverged after {iterations} iterations (mismatch {mismatch_pu:.3e} p.u.)"
            ),
            PfError::SingularJacobian { iteration } => {
                write!(f, "singular Jacobian at iteration {iteration}")
            }
        }
    }
}

impl std::error::Error for PfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = PfOptions::default();
        assert!(o.tol_pu > 0.0 && o.tol_pu < 1e-4);
        assert!(o.max_iter >= 10);
        assert!(o.enforce_q_limits);
    }

    #[test]
    fn branch_loss() {
        let f = BranchFlow {
            index: 0,
            p_from_mw: 100.0,
            q_from_mvar: 0.0,
            p_to_mw: -98.5,
            q_to_mvar: 0.0,
            loading_pct: 50.0,
        };
        assert!((f.loss_mw() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn violation_helpers() {
        let rep = PfReport {
            converged: true,
            iterations: 3,
            q_limit_rounds: 0,
            max_mismatch_pu: 1e-9,
            mismatch_history: vec![],
            multipliers: vec![],
            buses: vec![
                BusResult {
                    id: 1,
                    vm_pu: 0.93,
                    va_deg: 0.0,
                    p_mw: 0.0,
                    q_mvar: 0.0,
                },
                BusResult {
                    id: 2,
                    vm_pu: 1.07,
                    va_deg: 0.0,
                    p_mw: 0.0,
                    q_mvar: 0.0,
                },
                BusResult {
                    id: 3,
                    vm_pu: 1.0,
                    va_deg: 0.0,
                    p_mw: 0.0,
                    q_mvar: 0.0,
                },
            ],
            branches: vec![BranchFlow {
                index: 0,
                p_from_mw: 0.0,
                q_from_mvar: 0.0,
                p_to_mw: 0.0,
                q_to_mvar: 0.0,
                loading_pct: 120.0,
            }],
            gens: vec![],
            losses_mw: 0.0,
            min_vm: (0.93, 1),
            max_vm: (1.07, 2),
            max_loading: (120.0, 0),
        };
        let v = rep.voltage_violations(0.95, 1.05);
        assert_eq!(v.len(), 2);
        assert!(v[0].2); // low at bus 1
        assert!(!v[1].2); // high at bus 2
        assert_eq!(rep.overloads(100.0).len(), 1);
        assert!(rep.overloads(130.0).is_empty());
    }
}
