//! Newton–Raphson AC power flow in polar coordinates.
//!
//! The reference solver behind GridMind's tools (the role `pandapower.runpp`
//! plays in the paper). Sparse Jacobian assembly over the Ybus pattern,
//! sparse LU solves, optional Iwamoto-style optimal step multipliers (the
//! `iwamoto muliplier:` lines visible in the paper's Fig. 8 logs), and
//! generator reactive-limit enforcement by PV→PQ switching.

use crate::types::{BranchFlow, BusResult, GenResult, InitStrategy, PfError, PfOptions, PfReport};
use gm_network::{BusKind, Network, YBus};
use gm_numeric::Complex;
use gm_sparse::{CsMat, LuEngine, ScatterMap, Triplets};

/// Effective bus role during the solve (PV buses can be demoted to PQ when
/// their units hit reactive limits).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Role {
    Slack,
    Pv,
    Pq,
}

/// Solves the AC power flow for a network.
pub fn solve(net: &Network, opts: &PfOptions) -> Result<PfReport, PfError> {
    solve_from(net, opts, None)
}

/// Solves with an explicit starting voltage (warm start), overriding
/// `opts.init`. The slice must have one entry per bus.
pub fn solve_from(
    net: &Network,
    opts: &PfOptions,
    start: Option<&[Complex]>,
) -> Result<PfReport, PfError> {
    solve_from_with_engine(net, opts, start, &mut LuEngine::new())
}

/// Like [`solve_from`], but factoring through a caller-owned
/// [`LuEngine`] so the Jacobian's symbolic analysis is shared across
/// Newton iterations, Q-limit rounds, repeated warm-started solves (the
/// recovery ladder), and — in the N-1 sweep — across outages with the
/// same post-outage pattern. Results are bit-identical to
/// [`solve_from`] regardless of the engine's cache state.
pub fn solve_from_with_engine(
    net: &Network,
    opts: &PfOptions,
    start: Option<&[Complex]>,
    engine: &mut LuEngine,
) -> Result<PfReport, PfError> {
    if let Err(problems) = net.validate() {
        return Err(PfError::InvalidNetwork {
            problems: problems.iter().map(|p| p.to_string()).collect(),
        });
    }
    let ybus = YBus::assemble(net);
    let mut scratch = JacScratch::new();
    solve_prepared(net, opts, start, None, &ybus, engine, &mut scratch).map(|(rep, _)| rep)
}

/// Reactive-limit switching state of a converged solve: for each bus,
/// the total generator reactive output (p.u.) it ended up pinned at, or
/// `None` if its PV status survived. The batch engine carries this from
/// a warm-start neighbor into the seeded solve so the Newton iteration
/// starts on the *switched* problem the neighbor converged to — without
/// it, every scenario first re-converges the unswitched problem and
/// then re-discovers the same PV→PQ switches, roughly doubling the
/// iteration count and erasing the warm start's advantage. Pin values
/// are generator limits (network constants across load/dispatch
/// deltas), so carrying them between scenarios is exact.
#[derive(Clone, Debug, Default)]
pub(crate) struct QState {
    /// Bus-indexed pinned total generator Q (p.u.), `None` = not pinned.
    pub(crate) pinned_q_gen: Vec<Option<f64>>,
}

/// The solver body behind [`solve_from_with_engine`], taking a
/// pre-assembled admittance matrix and caller-owned Jacobian scratch so
/// the batch engine can amortize validation, `YBus` assembly, and
/// allocation across scenarios that share a topology. Assumes `net` has
/// already passed [`Network::validate`] (load/dispatch deltas on a valid
/// base cannot invalidate it); results are bit-identical to the public
/// entry points.
pub(crate) fn solve_prepared(
    net: &Network,
    opts: &PfOptions,
    start: Option<&[Complex]>,
    q_seed: Option<&QState>,
    ybus: &YBus,
    engine: &mut LuEngine,
    scratch: &mut JacScratch,
) -> Result<(PfReport, QState), PfError> {
    let _span = gm_telemetry::span!("pf.newton.solve", case = net.name, n_bus = net.n_bus());
    gm_telemetry::counter_add("pf.newton.solves", 1);
    let n = net.n_bus();
    let Some(slack) = net.slack() else {
        // `validate` above guarantees a slack; keep a typed error rather
        // than a panic in case validation rules and this ever drift.
        return Err(PfError::InvalidNetwork {
            problems: vec!["network has no slack bus".into()],
        });
    };

    // Effective roles: a PV bus without an in-service generator is just PQ.
    let mut role = vec![Role::Pq; n];
    role[slack] = Role::Slack;
    for (i, bus) in net.buses.iter().enumerate() {
        if bus.kind == BusKind::Pv && net.gens_at(i).next().is_some() {
            role[i] = Role::Pv;
        }
    }
    role[slack] = Role::Slack;

    // Scheduled injections in p.u.
    let (p_mw, q_mvar) = net.scheduled_injections();
    let p_spec: Vec<f64> = p_mw.iter().map(|v| v / net.base_mva).collect();
    let mut q_spec: Vec<f64> = q_mvar.iter().map(|v| v / net.base_mva).collect();
    // At PQ buses the scheduled Q excludes any (switched-off-PV) generator
    // contribution — handled below during Q-limit rounds.

    // Setpoint magnitudes for PV/slack buses.
    let mut vm_set = vec![1.0f64; n];
    for (i, bus) in net.buses.iter().enumerate() {
        vm_set[i] = bus.vm_pu.max(0.5);
        if let Some((_, g)) = net.gens_at(i).next() {
            if role[i] != Role::Pq {
                vm_set[i] = g.vm_setpoint_pu;
            }
        }
    }

    let mut at_limit: Vec<bool> = vec![false; net.gens.len()];
    let mut pinned_q: Vec<Option<f64>> = vec![None; n];
    // Apply a carried Q-switching state before the first iteration: the
    // seeded buses start demoted to PQ with Q pinned exactly where the
    // warm-start neighbor left them (the pin is a generator limit, so
    // it is scenario-independent; only the load share of `q_spec`
    // changes under this scenario's deltas).
    if let Some(seed) = q_seed {
        for i in 0..n {
            if role[i] != Role::Pv {
                continue;
            }
            if let Some(pin) = seed.pinned_q_gen.get(i).copied().flatten() {
                role[i] = Role::Pq;
                q_spec[i] = pin - bus_load_q(net, i);
                pinned_q[i] = Some(pin);
                for (gi, _) in net.gens_at(i) {
                    at_limit[gi] = true;
                }
            }
        }
    }

    // Initial voltages.
    let mut v: Vec<Complex> = match start {
        Some(v0) => {
            assert_eq!(v0.len(), n, "warm start length mismatch");
            v0.to_vec()
        }
        None => match opts.init {
            InitStrategy::Flat => (0..n)
                .map(|i| {
                    Complex::from_polar(if role[i] == Role::Pq { 1.0 } else { vm_set[i] }, 0.0)
                })
                .collect(),
            InitStrategy::CaseValues => net
                .buses
                .iter()
                .map(|b| Complex::from_polar(b.vm_pu, b.va_deg.to_radians()))
                .collect(),
            InitStrategy::DcWarmStart => {
                let dc = crate::dc::solve_dc(net)?;
                (0..n)
                    .map(|i| {
                        Complex::from_polar(
                            if role[i] == Role::Pq { 1.0 } else { vm_set[i] },
                            dc.theta_rad[i],
                        )
                    })
                    .collect()
            }
        },
    };
    // Pin PV/slack magnitudes to setpoints regardless of the start.
    for i in 0..n {
        if role[i] != Role::Pq {
            v[i] = Complex::from_polar(vm_set[i], v[i].arg());
        }
    }

    let mut iterations = 0usize;
    let mut q_rounds = 0usize;
    let mut mismatch_history = Vec::new();
    let mut multipliers = Vec::new();

    loop {
        let converged = newton_inner(
            net,
            ybus,
            &role,
            &p_spec,
            &q_spec,
            slack,
            opts,
            &mut v,
            &mut iterations,
            &mut mismatch_history,
            &mut multipliers,
            engine,
            scratch,
        )?;
        if !converged {
            gm_telemetry::counter_add("pf.newton.diverged", 1);
            gm_telemetry::counter_add("pf.newton.iterations", iterations as u64);
            return Err(PfError::Diverged {
                iterations,
                mismatch_pu: mismatch_history.last().copied().unwrap_or(f64::INFINITY),
            });
        }
        if !opts.enforce_q_limits || q_rounds >= opts.max_q_rounds {
            break;
        }
        // Reactive limit check at PV buses; demote violators to PQ with Q
        // pinned at the limit and resolve from the current voltages.
        let s_calc = ybus.injections(&v);
        let mut switched = false;
        for i in 0..n {
            if role[i] != Role::Pv {
                continue;
            }
            // Total generator Q needed at the bus = injection + load Q.
            let load_q = bus_load_q(net, i);
            let q_gen = s_calc[i].im + load_q;
            let (q_min, q_max) = gen_q_range(net, i);
            if q_gen > q_max + 1e-9 || q_gen < q_min - 1e-9 {
                let pinned = q_gen.clamp(q_min, q_max);
                role[i] = Role::Pq;
                q_spec[i] = pinned - load_q;
                pinned_q[i] = Some(pinned);
                for (gi, _) in net.gens_at(i) {
                    at_limit[gi] = true;
                }
                switched = true;
            }
        }
        if !switched {
            break;
        }
        q_rounds += 1;
    }

    gm_telemetry::counter_add("pf.newton.iterations", iterations as u64);
    gm_telemetry::counter_add("pf.newton.q_rounds", q_rounds as u64);
    gm_telemetry::histogram_record("pf.newton.iterations_per_solve", iterations as f64);
    let report = build_report(
        net,
        ybus,
        &v,
        slack,
        iterations,
        q_rounds,
        mismatch_history,
        multipliers,
        &at_limit,
    );
    Ok((
        report,
        QState {
            pinned_q_gen: pinned_q,
        },
    ))
}

/// Total in-service load reactive demand at a bus (p.u.).
fn bus_load_q(net: &Network, bus: usize) -> f64 {
    net.loads
        .iter()
        .filter(|l| l.in_service && l.bus == bus)
        .map(|l| l.q_mvar)
        .sum::<f64>()
        / net.base_mva
}

/// Total generator reactive range at a bus (p.u.).
fn gen_q_range(net: &Network, bus: usize) -> (f64, f64) {
    let mut lo = 0.0;
    let mut hi = 0.0;
    for (_, g) in net.gens_at(bus) {
        lo += g.q_min_mvar;
        hi += g.q_max_mvar;
    }
    (lo / net.base_mva, hi / net.base_mva)
}

/// Reusable Jacobian assembly state for one power-flow solve: the
/// triplet stamping buffer, the assembled matrix with its scatter map
/// (in-place numeric refresh when the pattern holds, rebuild when it
/// does not), and the update/scratch vectors for the in-place LU solve.
pub(crate) struct JacScratch {
    tj: Triplets<f64>,
    jac: Option<(CsMat<f64>, ScatterMap)>,
    dx: Vec<f64>,
    solve_ws: Vec<f64>,
}

impl JacScratch {
    pub(crate) fn new() -> JacScratch {
        JacScratch {
            tj: Triplets::new(0, 0),
            jac: None,
            dx: Vec::new(),
            solve_ws: Vec::new(),
        }
    }

    /// Readies the stamping buffer for an `nvar × nvar` Jacobian,
    /// invalidating the cached matrix when the variable layout changed
    /// (e.g. a PV→PQ switch between Q-limit rounds).
    fn begin(&mut self, nvar: usize, cap: usize) {
        if self.tj.shape() != (nvar, nvar) {
            self.tj = Triplets::with_capacity(nvar, nvar, cap);
            self.jac = None;
        } else {
            self.tj.clear();
        }
    }

    /// Scatters the stamped values into the cached matrix, rebuilding it
    /// when the pattern changed. Returns the assembled Jacobian; the
    /// result equals `tj.to_csr()` bit-for-bit either way.
    fn assemble(&mut self) -> &CsMat<f64> {
        let reusable = match &mut self.jac {
            Some((jac, map)) => map.scatter(&self.tj, jac),
            None => false,
        };
        if !reusable {
            self.jac = None;
        }
        let tj = &self.tj;
        let (jac, _) = self.jac.get_or_insert_with(|| tj.to_csr_with_map());
        jac
    }
}

/// Runs Newton iterations until convergence or the iteration budget is
/// spent. Returns `Ok(true)` on convergence.
#[allow(clippy::too_many_arguments)]
fn newton_inner(
    net: &Network,
    ybus: &YBus,
    role: &[Role],
    p_spec: &[f64],
    q_spec: &[f64],
    _slack: usize,
    opts: &PfOptions,
    v: &mut [Complex],
    iterations: &mut usize,
    mismatch_history: &mut Vec<f64>,
    multipliers: &mut Vec<f64>,
    engine: &mut LuEngine,
    scratch: &mut JacScratch,
) -> Result<bool, PfError> {
    let n = net.n_bus();

    // Variable maps.
    let mut col_th = vec![usize::MAX; n];
    let mut col_vm = vec![usize::MAX; n];
    let mut n_th = 0usize;
    for i in 0..n {
        if role[i] != Role::Slack {
            col_th[i] = n_th;
            n_th += 1;
        }
    }
    let mut n_vm = 0usize;
    for i in 0..n {
        if role[i] == Role::Pq {
            col_vm[i] = n_th + n_vm;
            n_vm += 1;
        }
    }
    let nvar = n_th + n_vm;
    if nvar == 0 {
        mismatch_history.push(0.0);
        return Ok(true);
    }

    let mismatch = |v: &[Complex]| -> (Vec<f64>, f64) {
        let s = ybus.injections(v);
        let mut f = vec![0.0f64; nvar];
        let mut norm = 0.0f64;
        for i in 0..n {
            if col_th[i] != usize::MAX {
                let m = s[i].re - p_spec[i];
                f[col_th[i]] = m;
                norm = norm.max(m.abs());
            }
            if col_vm[i] != usize::MAX {
                let m = s[i].im - q_spec[i];
                f[col_vm[i]] = m;
                norm = norm.max(m.abs());
            }
        }
        (f, norm)
    };

    let (mut f, mut norm) = mismatch(v);
    for local_iter in 0..=opts.max_iter {
        mismatch_history.push(norm);
        if norm < opts.tol_pu {
            return Ok(true);
        }
        if local_iter == opts.max_iter {
            break;
        }
        *iterations += 1;

        // ---- Jacobian assembly over the Ybus sparsity pattern.
        let s_calc = ybus.injections(v);
        scratch.begin(nvar, 4 * ybus.matrix.nnz());
        let tj = &mut scratch.tj;
        for i in 0..n {
            let (cols, vals) = ybus.matrix.row(i);
            let vi = v[i].abs();
            let thi = v[i].arg();
            let row_p = col_th[i]; // P-mismatch row shares the θ index
            let row_q = col_vm[i]; // Q-mismatch row shares the Vm index
            for (&j, &y) in cols.iter().zip(vals) {
                let (g, b) = (y.re, y.im);
                if i == j {
                    let (pi, qi) = (s_calc[i].re, s_calc[i].im);
                    if row_p != usize::MAX {
                        tj.push(row_p, col_th[i], -qi - b * vi * vi);
                        if col_vm[i] != usize::MAX {
                            tj.push(row_p, col_vm[i], pi / vi + g * vi);
                        }
                    }
                    if row_q != usize::MAX {
                        tj.push(row_q, col_th[i], pi - g * vi * vi);
                        tj.push(row_q, col_vm[i], qi / vi - b * vi);
                    }
                } else {
                    let vj = v[j].abs();
                    let thij = thi - v[j].arg();
                    let (sin, cos) = thij.sin_cos();
                    if row_p != usize::MAX {
                        if col_th[j] != usize::MAX {
                            tj.push(row_p, col_th[j], vi * vj * (g * sin - b * cos));
                        }
                        if col_vm[j] != usize::MAX {
                            tj.push(row_p, col_vm[j], vi * (g * cos + b * sin));
                        }
                    }
                    if row_q != usize::MAX {
                        if col_th[j] != usize::MAX {
                            tj.push(row_q, col_th[j], -vi * vj * (g * cos + b * sin));
                        }
                        if col_vm[j] != usize::MAX {
                            tj.push(row_q, col_vm[j], vi * (g * sin - b * cos));
                        }
                    }
                }
            }
        }
        let jac = scratch.assemble();
        let lu = engine
            .factorize(jac)
            .map_err(|_| PfError::SingularJacobian {
                iteration: *iterations,
            })?;
        scratch.dx.clear();
        scratch.dx.extend_from_slice(&f);
        scratch.solve_ws.resize(nvar, 0.0);
        lu.solve_in_place(&mut scratch.dx, &mut scratch.solve_ws);
        let dx = &scratch.dx;

        // ---- Step with optional Iwamoto-style optimal multiplier.
        let apply = |v: &[Complex], mu: f64| -> Vec<Complex> {
            let mut out = v.to_vec();
            for i in 0..n {
                let mut vm = v[i].abs();
                let mut th = v[i].arg();
                if col_th[i] != usize::MAX {
                    th -= mu * dx[col_th[i]];
                }
                if col_vm[i] != usize::MAX {
                    vm -= mu * dx[col_vm[i]];
                    vm = vm.max(0.1); // keep magnitudes physical
                }
                out[i] = Complex::from_polar(vm, th);
            }
            out
        };

        let full = apply(v, 1.0);
        let (f_full, norm_full) = mismatch(&full);
        let (chosen_v, chosen_f, chosen_norm, mu_used) =
            if !opts.iwamoto_damping || norm_full <= norm {
                (full, f_full, norm_full, 1.0)
            } else {
                // The full step overshoots: search the step length that
                // minimizes the mismatch norm (Iwamoto's optimal multiplier,
                // evaluated numerically).
                let mut best = (full, f_full, norm_full, 1.0);
                for &mu in &[0.9, 0.75, 0.5, 0.35, 0.2, 0.1, 0.05] {
                    let cand = apply(v, mu);
                    let (fc, nc) = mismatch(&cand);
                    if nc < best.2 {
                        best = (cand, fc, nc, mu);
                    }
                }
                best
            };
        multipliers.push(mu_used);
        v.copy_from_slice(&chosen_v);
        f = chosen_f;
        norm = chosen_norm;
        if !norm.is_finite() {
            return Ok(false);
        }
    }
    Ok(false)
}

/// Assembles the final report from a solved voltage vector.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_report(
    net: &Network,
    ybus: &YBus,
    v: &[Complex],
    slack: usize,
    iterations: usize,
    q_limit_rounds: usize,
    mismatch_history: Vec<f64>,
    multipliers: Vec<f64>,
    at_limit: &[bool],
) -> PfReport {
    let n = net.n_bus();
    let base = net.base_mva;
    let s_calc = ybus.injections(v);

    let buses: Vec<BusResult> = (0..n)
        .map(|i| BusResult {
            id: net.buses[i].id,
            vm_pu: v[i].abs(),
            va_deg: v[i].arg().to_degrees(),
            p_mw: s_calc[i].re * base,
            q_mvar: s_calc[i].im * base,
        })
        .collect();

    let mut branches = Vec::with_capacity(net.branches.len());
    let mut losses = 0.0f64;
    let mut max_loading = (0.0f64, usize::MAX);
    for (idx, br) in net.branches.iter().enumerate() {
        if !br.in_service {
            branches.push(BranchFlow {
                index: idx,
                p_from_mw: 0.0,
                q_from_mvar: 0.0,
                p_to_mw: 0.0,
                q_to_mvar: 0.0,
                loading_pct: 0.0,
            });
            continue;
        }
        let sf = ybus.flow_from(idx, v, net) * base;
        let st = ybus.flow_to(idx, v, net) * base;
        losses += sf.re + st.re;
        let smax = sf.abs().max(st.abs());
        let loading = if br.rating_mva > 0.0 {
            100.0 * smax / br.rating_mva
        } else {
            0.0
        };
        if loading > max_loading.0 {
            max_loading = (loading, idx);
        }
        branches.push(BranchFlow {
            index: idx,
            p_from_mw: sf.re,
            q_from_mvar: sf.im,
            p_to_mw: st.re,
            q_to_mvar: st.im,
            loading_pct: loading,
        });
    }

    // Allocate bus-level injections back to generators.
    let mut gens = Vec::with_capacity(net.gens.len());
    for (gi, g) in net.gens.iter().enumerate() {
        if !g.in_service {
            gens.push(GenResult {
                index: gi,
                p_mw: 0.0,
                q_mvar: 0.0,
                at_q_limit: false,
            });
            continue;
        }
        let bus = g.bus;
        let load_p: f64 = net
            .loads
            .iter()
            .filter(|l| l.in_service && l.bus == bus)
            .map(|l| l.p_mw)
            .sum();
        let load_q: f64 = net
            .loads
            .iter()
            .filter(|l| l.in_service && l.bus == bus)
            .map(|l| l.q_mvar)
            .sum();
        let p_bus = s_calc[bus].re * base + load_p;
        let q_bus = s_calc[bus].im * base + load_q;
        // Share among co-located units proportionally to capacity/range.
        let units: Vec<&gm_network::Generator> = net.gens_at(bus).map(|(_, u)| u).collect();
        let p_cap: f64 = units.iter().map(|u| u.p_max_mw.max(1e-6)).sum();
        let q_rng: f64 = units
            .iter()
            .map(|u| (u.q_max_mvar - u.q_min_mvar).max(1e-6))
            .sum();
        let p_share = if bus == slack {
            p_bus * g.p_max_mw.max(1e-6) / p_cap
        } else {
            g.p_mw
        };
        let q_share = q_bus * (g.q_max_mvar - g.q_min_mvar).max(1e-6) / q_rng;
        gens.push(GenResult {
            index: gi,
            p_mw: p_share,
            q_mvar: q_share,
            at_q_limit: at_limit.get(gi).copied().unwrap_or(false),
        });
    }

    let (mut min_vm, mut max_vm) = ((f64::INFINITY, 0u32), (0.0f64, 0u32));
    for b in &buses {
        if b.vm_pu < min_vm.0 {
            min_vm = (b.vm_pu, b.id);
        }
        if b.vm_pu > max_vm.0 {
            max_vm = (b.vm_pu, b.id);
        }
    }

    let converged = mismatch_history
        .last()
        .map(|m| m.is_finite())
        .unwrap_or(false);
    let max_mismatch_pu = mismatch_history.last().copied().unwrap_or(f64::NAN);
    PfReport {
        converged,
        iterations,
        q_limit_rounds,
        max_mismatch_pu,
        mismatch_history,
        multipliers,
        buses,
        branches,
        gens,
        losses_mw: losses,
        min_vm,
        max_vm,
        max_loading,
    }
}
