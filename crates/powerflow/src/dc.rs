//! DC (linearized) power flow.
//!
//! Lossless active-power-only approximation: `P = B·θ` with unit voltage
//! magnitudes. Used for warm starts, the synthetic case calibration, and
//! as the fast screening stage of contingency analysis.

use crate::types::PfError;
use gm_network::Network;
use gm_sparse::{SparseLu, Triplets};

/// DC power flow result.
#[derive(Clone, Debug)]
pub struct DcReport {
    /// Bus voltage angles (radians), slack pinned at zero.
    pub theta_rad: Vec<f64>,
    /// Active flow per branch, from → to (MW). Out-of-service branches
    /// carry zero.
    pub flow_mw: Vec<f64>,
    /// Active power supplied at the slack bus (MW).
    pub slack_p_mw: f64,
}

/// Solves the DC power flow. Fails with [`PfError::InvalidNetwork`] if
/// the network has no slack bus and [`PfError::SingularJacobian`] if the
/// B matrix is singular (islanded network).
pub fn solve_dc(net: &Network) -> Result<DcReport, PfError> {
    gm_telemetry::counter_add("pf.dc.solves", 1);
    let n = net.n_bus();
    let Some(slack) = net.slack() else {
        return Err(PfError::InvalidNetwork {
            problems: vec!["network has no slack bus".into()],
        });
    };
    let (p_mw, _) = net.scheduled_injections();
    let mut p: Vec<f64> = p_mw.iter().map(|v| v / net.base_mva).collect();
    let total: f64 = p.iter().sum();
    // Slack absorbs the imbalance (loads + losses are not represented).
    let slack_p_sched = p[slack];
    p[slack] = 0.0;

    let mut t = Triplets::new(n, n);
    for br in net.branches.iter().filter(|b| b.in_service) {
        let b = 1.0 / br.x_pu;
        let (i, j) = (br.from_bus, br.to_bus);
        if i != slack && j != slack {
            t.push(i, i, b);
            t.push(j, j, b);
            t.push(i, j, -b);
            t.push(j, i, -b);
        } else if i != slack {
            t.push(i, i, b);
        } else if j != slack {
            t.push(j, j, b);
        }
    }
    t.push(slack, slack, 1.0);
    let bmat = t.to_csr();
    let lu = SparseLu::factor(&bmat).map_err(|_| PfError::SingularJacobian { iteration: 0 })?;
    let theta = lu.solve(&p);

    let flow_mw: Vec<f64> = net
        .branches
        .iter()
        .map(|br| {
            if br.in_service {
                (theta[br.from_bus] - theta[br.to_bus]) / br.x_pu * net.base_mva
            } else {
                0.0
            }
        })
        .collect();

    let _ = (slack_p_sched, total);
    // Net flow leaving the slack bus equals the power it injects; add the
    // local load back to get the slack *generation*.
    let mut slack_injection = 0.0;
    for (idx, br) in net.branches.iter().enumerate() {
        if !br.in_service {
            continue;
        }
        if br.from_bus == slack {
            slack_injection += flow_mw[idx];
        } else if br.to_bus == slack {
            slack_injection -= flow_mw[idx];
        }
    }
    let slack_load: f64 = net
        .loads
        .iter()
        .filter(|l| l.in_service && l.bus == slack)
        .map(|l| l.p_mw)
        .sum();

    Ok(DcReport {
        theta_rad: theta,
        flow_mw,
        slack_p_mw: slack_injection + slack_load,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_network::{cases, CaseId};

    #[test]
    fn slack_angle_zero() {
        let net = cases::load(CaseId::Ieee14);
        let dc = solve_dc(&net).unwrap();
        let slack = net.slack().unwrap();
        assert_eq!(dc.theta_rad[slack], 0.0);
    }

    #[test]
    fn flow_balance_at_non_slack_buses() {
        let net = cases::load(CaseId::Ieee14);
        let dc = solve_dc(&net).unwrap();
        let slack = net.slack().unwrap();
        let (p_mw, _) = net.scheduled_injections();
        let mut residual = p_mw.clone();
        for (idx, br) in net.branches.iter().enumerate() {
            residual[br.from_bus] -= dc.flow_mw[idx];
            residual[br.to_bus] += dc.flow_mw[idx];
        }
        for (i, r) in residual.iter().enumerate() {
            if i != slack {
                assert!(r.abs() < 1e-6, "bus {i} residual {r}");
            }
        }
    }

    #[test]
    fn slack_covers_system_balance() {
        let net = cases::load(CaseId::Ieee14);
        let dc = solve_dc(&net).unwrap();
        // DC is lossless: slack generation = total load − other generation.
        let other_gen: f64 = net
            .gens
            .iter()
            .enumerate()
            .filter(|(_, g)| g.in_service && g.bus != net.slack().unwrap())
            .map(|(_, g)| g.p_mw)
            .sum();
        let expect = net.total_load_mw() - other_gen;
        assert!(
            (dc.slack_p_mw - expect).abs() < 1e-6,
            "slack {} vs expected {}",
            dc.slack_p_mw,
            expect
        );
    }

    #[test]
    fn outage_redistributes_flow() {
        let mut net = cases::load(CaseId::Ieee14);
        let base = solve_dc(&net).unwrap();
        net.branches[0].in_service = false;
        let out = solve_dc(&net).unwrap();
        assert_eq!(out.flow_mw[0], 0.0);
        // The parallel path 1-5 must pick up flow.
        assert!(out.flow_mw[1].abs() > base.flow_mw[1].abs());
    }
}
