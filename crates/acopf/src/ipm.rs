//! Generic primal-dual interior point method for smooth NLPs.
//!
//! The algorithm follows MATPOWER's MIPS solver (Wang et al.), the same
//! family as the PIPS solver behind `pandapower.runopp` that the paper
//! uses: perturbed-KKT Newton steps on
//!
//! ```text
//! min f(x)  s.t.  g(x) = 0,  h(x) + z = 0,  z > 0
//! ```
//!
//! with slack/dual elimination to the reduced symmetric system
//!
//! ```text
//! [ H + Jhᵀ·Z⁻¹M·Jh   Jgᵀ ] [Δx]   [ −N ]
//! [ Jg                 0  ] [Δλ] = [ −g ]
//! ```
//!
//! separate primal/dual step clipping, and the standard normalized
//! convergence criteria (feasibility, gradient, complementarity, cost).

use gm_sparse::{CsMat, LuEngine, ScatterMap, Triplets};

/// A smooth nonlinear program the IPM can solve.
pub trait Nlp {
    /// Number of primal variables.
    fn nx(&self) -> usize;
    /// Initial point (will be used as-is; callers should interior-shift
    /// bound-constrained variables).
    fn x0(&self) -> Vec<f64>;
    /// Objective value and gradient.
    fn objective(&self, x: &[f64]) -> (f64, Vec<f64>);
    /// Equality constraint values and Jacobian (rows = constraints).
    fn equalities(&self, x: &[f64]) -> (Vec<f64>, CsMat<f64>);
    /// Inequality constraint values (`h ≤ 0` feasible) and Jacobian.
    fn inequalities(&self, x: &[f64]) -> (Vec<f64>, CsMat<f64>);
    /// Hessian of the Lagrangian `∇²f + Σλ·∇²g + Σμ·∇²h` (lower+upper,
    /// i.e. the full symmetric matrix).
    fn lagrangian_hessian(&self, x: &[f64], lam: &[f64], mu: &[f64]) -> CsMat<f64>;
}

/// IPM options.
#[derive(Clone, Debug)]
pub struct IpmOptions {
    /// Feasibility tolerance.
    pub feastol: f64,
    /// Gradient tolerance.
    pub gradtol: f64,
    /// Complementarity tolerance.
    pub comptol: f64,
    /// Cost-change tolerance.
    pub costtol: f64,
    /// Iteration budget.
    pub max_iter: usize,
    /// Centering parameter σ.
    pub sigma: f64,
    /// Step back-off ξ.
    pub xi: f64,
}

impl Default for IpmOptions {
    fn default() -> Self {
        IpmOptions {
            feastol: 1e-6,
            gradtol: 1e-6,
            comptol: 1e-6,
            costtol: 1e-6,
            max_iter: 150,
            sigma: 0.1,
            xi: 0.99995,
        }
    }
}

/// Result of an IPM run.
#[derive(Clone, Debug)]
pub struct IpmResult {
    /// Whether all four convergence criteria were met.
    pub converged: bool,
    /// Final primal point.
    pub x: Vec<f64>,
    /// Final objective value.
    pub f: f64,
    /// Equality multipliers.
    pub lam: Vec<f64>,
    /// Inequality multipliers.
    pub mu: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final feasibility condition.
    pub feascond: f64,
    /// Final gradient condition.
    pub gradcond: f64,
    /// Final complementarity condition.
    pub compcond: f64,
    /// Human-readable status.
    pub message: String,
}

fn norm_inf(v: &[f64]) -> f64 {
    v.iter().fold(0.0f64, |m, x| m.max(x.abs()))
}

/// Solves the NLP.
pub fn solve<P: Nlp>(prob: &P, opts: &IpmOptions) -> IpmResult {
    let _span = gm_telemetry::span!("acopf.ipm.solve", nx = prob.nx());
    gm_telemetry::counter_add("acopf.ipm.solves", 1);
    if let Some(reg) = gm_telemetry::current() {
        // Log-scale buckets: the barrier parameter decays over ~10 decades.
        reg.register_histogram(
            "acopf.ipm.barrier_mu",
            &[1e-12, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2, 1.0, 100.0],
        );
    }
    let nx = prob.nx();
    let mut x = prob.x0();
    assert_eq!(x.len(), nx, "x0 length mismatch");

    let (mut f, mut df) = prob.objective(&x);
    let (mut g, mut jg) = prob.equalities(&x);
    let (mut h, mut jh) = prob.inequalities(&x);
    let neq = g.len();
    let niq = h.len();

    // Slack and dual initialization (MIPS defaults).
    let z0 = 1.0;
    let mut z: Vec<f64> = h.iter().map(|&hi| (-hi).max(z0)).collect();
    let mut gamma = 1.0f64;
    let mut mu: Vec<f64> = z.iter().map(|zi| gamma / zi).collect();
    let mut lam = vec![0.0f64; neq];

    let mut f_old = f;
    let mut iterations = 0usize;
    let mut message = String::from("iteration limit reached");
    let mut converged = false;

    let (mut feascond, mut gradcond, mut compcond) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);

    // KKT scratch, hoisted out of the barrier loop: the triplet buffer,
    // assembled matrix, and scatter map are reused across iterations
    // (the KKT pattern is stable once the active barrier terms settle),
    // and the symbolic LU analysis is reused through the engine whenever
    // the pattern repeats.
    let mut engine = LuEngine::new();
    let mut kkt_t: Triplets<f64> = Triplets::new(0, 0);
    let mut kkt: Option<(CsMat<f64>, ScatterMap)> = None;
    let mut sol: Vec<f64> = Vec::new();
    let mut solve_ws: Vec<f64> = Vec::new();

    for it in 0..=opts.max_iter {
        iterations = it;
        // Lagrangian gradient Lx = df + Jgᵀλ + Jhᵀμ.
        let mut lx = df.clone();
        let jgt_lam = jg.mul_vec_t(&lam);
        let jht_mu = jh.mul_vec_t(&mu);
        for i in 0..nx {
            lx[i] += jgt_lam[i] + jht_mu[i];
        }

        let maxh = h.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
        let norm_x = norm_inf(&x).max(norm_inf(&z));
        let norm_lam = norm_inf(&lam).max(norm_inf(&mu));
        feascond = norm_inf(&g).max(maxh.max(0.0)) / (1.0 + norm_x);
        gradcond = norm_inf(&lx) / (1.0 + norm_lam);
        compcond = z.iter().zip(&mu).map(|(zi, mi)| zi * mi).sum::<f64>() / (1.0 + norm_inf(&x));
        let costcond = (f - f_old).abs() / (1.0 + f_old.abs());

        if feascond < opts.feastol
            && gradcond < opts.gradtol
            && compcond < opts.comptol
            && (it > 0 && costcond < opts.costtol)
        {
            converged = true;
            message = format!("converged in {it} iterations");
            break;
        }
        if it == opts.max_iter {
            break;
        }

        // ---- Reduced KKT assembly.
        let hess = prob.lagrangian_hessian(&x, &lam, &mu);
        let n_kkt = nx + neq;
        if kkt_t.shape() != (n_kkt, n_kkt) {
            kkt_t = Triplets::with_capacity(
                n_kkt,
                n_kkt,
                hess.nnz() + 2 * jg.nnz() + jh.nnz() * 4 + nx,
            );
            kkt = None;
        } else {
            kkt_t.clear();
        }
        let t = &mut kkt_t;
        for (i, j, v) in hess.iter() {
            t.push(i, j, v);
        }
        // Jhᵀ·(Z⁻¹M)·Jh: accumulate row-pair products per inequality row.
        for r in 0..niq {
            let wr = mu[r] / z[r];
            if wr == 0.0 {
                continue;
            }
            let (cols, vals) = jh.row(r);
            for (idx_a, (&ca, &va)) in cols.iter().zip(vals).enumerate() {
                for (&cb, &vb) in cols[idx_a..].iter().zip(&vals[idx_a..]) {
                    let prod = wr * va * vb;
                    t.push(ca, cb, prod);
                    if ca != cb {
                        t.push(cb, ca, prod);
                    }
                }
            }
        }
        // Light primal regularization keeps the factorization stable.
        for i in 0..nx {
            t.push(i, i, 1e-10);
        }
        for (r, j, v) in jg.iter() {
            t.push(nx + r, j, v);
            t.push(j, nx + r, v);
        }
        // Tiny dual regularization on the (2,2) block.
        for r in 0..neq {
            t.push(nx + r, nx + r, -1e-11);
        }
        // Scatter the fresh values into the cached CSC/CSR storage when
        // the triplet pattern repeats; rebuild the matrix and map when it
        // doesn't (the stamping skips exact-zero barrier weights, so the
        // pattern is value-dependent).
        let reusable = match &mut kkt {
            Some((m, map)) => map.scatter(&kkt_t, m),
            None => false,
        };
        if !reusable {
            kkt = None;
        }
        let tref = &kkt_t;
        let (kkt_m, _) = kkt.get_or_insert_with(|| tref.to_csr_with_map());

        // RHS: [−N; −g], N = Lx + Jhᵀ·Z⁻¹·(γe + M·h).
        let zinv_term: Vec<f64> = (0..niq).map(|r| (gamma + mu[r] * h[r]) / z[r]).collect();
        let jht_zt = jh.mul_vec_t(&zinv_term);
        // N = Lx + Jhᵀ·Z⁻¹(γe + M·h), exactly as in MIPS: eliminating Δz
        // and Δμ folds the current duals (Z⁻¹·M·z = μ) back into the
        // barrier term. Built directly in the reusable solution buffer:
        // `sol` holds the rhs going into the in-place solve, the step
        // coming out.
        sol.resize(n_kkt, 0.0);
        for i in 0..nx {
            sol[i] = -(lx[i] + jht_zt[i]);
        }
        for r in 0..neq {
            sol[nx + r] = -g[r];
        }

        let lu = match engine.factorize(kkt_m) {
            Ok(lu) => lu,
            Err(_) => {
                message = format!("singular KKT system at iteration {it}");
                break;
            }
        };
        solve_ws.resize(n_kkt, 0.0);
        lu.solve_in_place(&mut sol, &mut solve_ws);
        let dx = &sol[..nx];
        let dlam = &sol[nx..];

        // Recover slack and dual steps.
        let jh_dx = jh.mul_vec(dx);
        let dz: Vec<f64> = (0..niq).map(|r| -(h[r] + z[r]) - jh_dx[r]).collect();
        let dmu: Vec<f64> = (0..niq)
            .map(|r| gamma / z[r] - mu[r] - (mu[r] / z[r]) * dz[r])
            .collect();

        // Step lengths.
        let mut alpha_p: f64 = 1.0;
        for r in 0..niq {
            if dz[r] < 0.0 {
                alpha_p = alpha_p.min(-opts.xi * z[r] / dz[r]);
            }
        }
        let mut alpha_d: f64 = 1.0;
        for r in 0..niq {
            if dmu[r] < 0.0 {
                alpha_d = alpha_d.min(-opts.xi * mu[r] / dmu[r]);
            }
        }
        if alpha_p < 1e-14 && alpha_d < 1e-14 {
            message = format!("numerically stuck at iteration {it}");
            break;
        }

        for i in 0..nx {
            x[i] += alpha_p * dx[i];
        }
        for r in 0..niq {
            z[r] = (z[r] + alpha_p * dz[r]).max(1e-14);
            mu[r] = (mu[r] + alpha_d * dmu[r]).max(1e-14);
        }
        for r in 0..neq {
            lam[r] += alpha_d * dlam[r];
        }
        gamma = opts.sigma * z.iter().zip(&mu).map(|(a, b)| a * b).sum::<f64>() / niq.max(1) as f64;
        gm_telemetry::histogram_record("acopf.ipm.barrier_mu", gamma);

        f_old = f;
        let (fnew, dfnew) = prob.objective(&x);
        f = fnew;
        df = dfnew;
        let (gnew, jgnew) = prob.equalities(&x);
        g = gnew;
        jg = jgnew;
        let (hnew, jhnew) = prob.inequalities(&x);
        h = hnew;
        jh = jhnew;
        if !f.is_finite() {
            message = format!("objective became non-finite at iteration {it}");
            break;
        }
    }

    gm_telemetry::counter_add("acopf.ipm.iterations", iterations as u64);
    gm_telemetry::histogram_record("acopf.ipm.iterations_per_solve", iterations as f64);
    gm_telemetry::counter_add(
        if converged {
            "acopf.ipm.converged"
        } else {
            "acopf.ipm.failed"
        },
        1,
    );
    IpmResult {
        converged,
        x,
        f,
        lam,
        mu,
        iterations,
        feascond,
        gradcond,
        compcond,
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_sparse::Triplets;

    /// min (x−2)² + (y−1)²  s.t.  x + y = 2,  x ≥ 0.5  →  x* = 1.5, y* = 0.5
    struct Quadratic;

    impl Nlp for Quadratic {
        fn nx(&self) -> usize {
            2
        }
        fn x0(&self) -> Vec<f64> {
            vec![1.0, 1.0]
        }
        fn objective(&self, x: &[f64]) -> (f64, Vec<f64>) {
            let f = (x[0] - 2.0).powi(2) + (x[1] - 1.0).powi(2);
            (f, vec![2.0 * (x[0] - 2.0), 2.0 * (x[1] - 1.0)])
        }
        fn equalities(&self, x: &[f64]) -> (Vec<f64>, CsMat<f64>) {
            let mut t = Triplets::new(1, 2);
            t.push(0, 0, 1.0);
            t.push(0, 1, 1.0);
            (vec![x[0] + x[1] - 2.0], t.to_csr())
        }
        fn inequalities(&self, x: &[f64]) -> (Vec<f64>, CsMat<f64>) {
            // 0.5 − x ≤ 0
            let mut t = Triplets::new(1, 2);
            t.push(0, 0, -1.0);
            (vec![0.5 - x[0]], t.to_csr())
        }
        fn lagrangian_hessian(&self, _x: &[f64], _l: &[f64], _m: &[f64]) -> CsMat<f64> {
            let mut t = Triplets::new(2, 2);
            t.push(0, 0, 2.0);
            t.push(1, 1, 2.0);
            t.to_csr()
        }
    }

    #[test]
    fn solves_equality_constrained_quadratic() {
        let r = solve(&Quadratic, &IpmOptions::default());
        assert!(r.converged, "{}", r.message);
        assert!((r.x[0] - 1.5).abs() < 1e-5, "x = {:?}", r.x);
        assert!((r.x[1] - 0.5).abs() < 1e-5);
        assert!((r.f - 0.5).abs() < 1e-5);
    }

    /// min x² s.t. x ≥ 1 (active inequality at the optimum).
    struct Bound;

    impl Nlp for Bound {
        fn nx(&self) -> usize {
            1
        }
        fn x0(&self) -> Vec<f64> {
            vec![2.0]
        }
        fn objective(&self, x: &[f64]) -> (f64, Vec<f64>) {
            (x[0] * x[0], vec![2.0 * x[0]])
        }
        fn equalities(&self, _x: &[f64]) -> (Vec<f64>, CsMat<f64>) {
            (vec![], Triplets::new(0, 1).to_csr())
        }
        fn inequalities(&self, x: &[f64]) -> (Vec<f64>, CsMat<f64>) {
            let mut t = Triplets::new(1, 1);
            t.push(0, 0, -1.0);
            (vec![1.0 - x[0]], t.to_csr())
        }
        fn lagrangian_hessian(&self, _x: &[f64], _l: &[f64], _m: &[f64]) -> CsMat<f64> {
            let mut t = Triplets::new(1, 1);
            t.push(0, 0, 2.0);
            t.to_csr()
        }
    }

    #[test]
    fn active_inequality_binds() {
        let r = solve(&Bound, &IpmOptions::default());
        assert!(r.converged, "{}", r.message);
        assert!((r.x[0] - 1.0).abs() < 1e-5, "x = {:?}", r.x);
        // Multiplier for the active constraint is positive (≈ 2).
        assert!(r.mu[0] > 1.0);
    }

    /// Rosenbrock-flavoured nonlinear equality:
    /// min (x−1)² + (y−1)²  s.t.  x² + y² = 1.
    struct Circle;

    impl Nlp for Circle {
        fn nx(&self) -> usize {
            2
        }
        fn x0(&self) -> Vec<f64> {
            vec![0.5, 0.5]
        }
        fn objective(&self, x: &[f64]) -> (f64, Vec<f64>) {
            let f = (x[0] - 1.0).powi(2) + (x[1] - 1.0).powi(2);
            (f, vec![2.0 * (x[0] - 1.0), 2.0 * (x[1] - 1.0)])
        }
        fn equalities(&self, x: &[f64]) -> (Vec<f64>, CsMat<f64>) {
            let mut t = Triplets::new(1, 2);
            t.push(0, 0, 2.0 * x[0]);
            t.push(0, 1, 2.0 * x[1]);
            (vec![x[0] * x[0] + x[1] * x[1] - 1.0], t.to_csr())
        }
        fn inequalities(&self, _x: &[f64]) -> (Vec<f64>, CsMat<f64>) {
            (vec![], Triplets::new(0, 2).to_csr())
        }
        fn lagrangian_hessian(&self, _x: &[f64], lam: &[f64], _m: &[f64]) -> CsMat<f64> {
            let mut t = Triplets::new(2, 2);
            t.push(0, 0, 2.0 + 2.0 * lam[0]);
            t.push(1, 1, 2.0 + 2.0 * lam[0]);
            t.to_csr()
        }
    }

    #[test]
    fn nonlinear_equality_projects_onto_circle() {
        let r = solve(&Circle, &IpmOptions::default());
        assert!(r.converged, "{}", r.message);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!((r.x[0] - s).abs() < 1e-5, "x = {:?}", r.x);
        assert!((r.x[1] - s).abs() < 1e-5);
    }
}
