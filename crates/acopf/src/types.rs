//! ACOPF solution types (the paper's Appendix C `ACOPFSolution` schema).

use serde::{Deserialize, Serialize};

/// Per-branch loading record (Appendix C `BranchLoading`).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BranchLoading {
    /// Branch index into `Network::branches`.
    pub index: usize,
    /// Apparent power at the more-loaded end (MVA).
    pub s_mva: f64,
    /// Loading percent of rating (0 when unrated).
    pub loading_pct: f64,
    /// Active flow at the from end (MW).
    pub p_from_mw: f64,
}

/// A solved AC optimal power flow (Appendix C `ACOPFSolution`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AcopfSolution {
    /// Case name.
    pub case_name: String,
    /// Whether the interior point method converged.
    pub solved: bool,
    /// Total generation cost ($/h).
    pub objective_cost: f64,
    /// Dispatch per generator, MW, keyed by generator index order.
    pub gen_dispatch_mw: Vec<f64>,
    /// Reactive dispatch per generator (MVAr).
    pub gen_dispatch_mvar: Vec<f64>,
    /// Bus voltage magnitudes (p.u.), internal index order.
    pub bus_vm_pu: Vec<f64>,
    /// Bus voltage angles (degrees).
    pub bus_va_deg: Vec<f64>,
    /// Locational marginal prices ($/MWh): the cost of serving one more
    /// MW at each bus, read off the active-power balance multipliers of
    /// the interior point solution.
    pub bus_lmp: Vec<f64>,
    /// Branch loadings.
    pub branch_loading: Vec<BranchLoading>,
    /// Minimum voltage (p.u.).
    pub min_voltage_pu: f64,
    /// Maximum voltage (p.u.).
    pub max_voltage_pu: f64,
    /// Maximum branch loading (%).
    pub max_thermal_loading_pct: f64,
    /// Total active generation (MW).
    pub total_generation_mw: f64,
    /// Total active demand (MW).
    pub total_load_mw: f64,
    /// Active losses (MW).
    pub losses_mw: f64,
    /// IPM iterations.
    pub iterations: usize,
    /// Solver wall time (seconds).
    pub solve_time_s: f64,
    /// Convergence detail for the audit trail.
    pub convergence_message: String,
    /// Number of binding inequality constraints (|μ| above threshold).
    pub binding_constraints: usize,
}

impl AcopfSolution {
    /// Largest power-balance residual implied by the stored aggregates, as
    /// the agent-layer validators check it: generation − load − losses.
    pub fn power_balance_error_mw(&self) -> f64 {
        self.total_generation_mw - self.total_load_mw - self.losses_mw
    }
}

/// ACOPF failure modes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum AcopfError {
    /// Network validation failed.
    InvalidNetwork {
        /// Rendered problems.
        problems: Vec<String>,
    },
    /// The interior point method did not converge.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
        /// Final feasibility condition.
        feascond: f64,
        /// Solver message.
        message: String,
    },
}

impl std::fmt::Display for AcopfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AcopfError::InvalidNetwork { problems } => {
                write!(f, "invalid network: {}", problems.join("; "))
            }
            AcopfError::NotConverged {
                iterations,
                feascond,
                message,
            } => write!(
                f,
                "ACOPF did not converge after {iterations} iterations (feas {feascond:.2e}): {message}"
            ),
        }
    }
}

impl std::error::Error for AcopfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balance_error() {
        let sol = AcopfSolution {
            case_name: "x".into(),
            solved: true,
            objective_cost: 1.0,
            gen_dispatch_mw: vec![],
            gen_dispatch_mvar: vec![],
            bus_vm_pu: vec![],
            bus_va_deg: vec![],
            bus_lmp: vec![],
            branch_loading: vec![],
            min_voltage_pu: 1.0,
            max_voltage_pu: 1.0,
            max_thermal_loading_pct: 0.0,
            total_generation_mw: 105.0,
            total_load_mw: 100.0,
            losses_mw: 5.0,
            iterations: 1,
            solve_time_s: 0.0,
            convergence_message: String::new(),
            binding_constraints: 0,
        };
        assert!(sol.power_balance_error_mw().abs() < 1e-12);
    }
}
