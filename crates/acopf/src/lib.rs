//! # gm-acopf
//!
//! AC optimal power flow for GridMind-RS — the role `pandapower.runopp`
//! (PIPS) plays in the paper.
//!
//! - [`acopf`] — the full polar-form ACOPF with exact analytic gradients
//!   and Hessians, solved by a MIPS-style primal-dual interior point
//!   method. Produces the paper's `ACOPFSolution` schema ([`types`]).
//! - [`ipm`] — the generic interior point core (reusable for any smooth
//!   NLP; the DC-OPF shares it).
//! - [`flows`] — the branch-end flow primitive with first/second
//!   derivatives that both the balance equations and flow limits build on.
//! - [`dispatch`] — lossless economic dispatch (λ-iteration), the
//!   validation lower bound.
//! - [`dcopf`] — DC optimal power flow baseline with thermal limits.
//! - [`scopf`] — preventive security-constrained OPF (LODF-screened
//!   post-contingency flow limits), the paper's Appendix B.4
//!   "security-constrained operation" comparison.
//!
//! ```no_run
//! use gm_network::{cases, CaseId};
//! use gm_acopf::{solve_acopf, AcopfOptions};
//!
//! let net = cases::load(CaseId::Ieee118);
//! let sol = solve_acopf(&net, &AcopfOptions::default()).unwrap();
//! println!("case118 optimal cost: {:.2} $/h", sol.objective_cost);
//! ```
// Solver crates are panic-free outside tests: every fallible path
// returns a typed error. Enforced by clippy here and by the regex
// pass of `gm-audit lint-src` (with its allowlist) in CI.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
// Constraint assembly indexes parallel 4-element column/derivative
// arrays; the index-based loops are the clearer form here.
#![allow(clippy::needless_range_loop)]

pub mod acopf;
pub mod dcopf;
pub mod dispatch;
pub mod flows;
pub mod ipm;
pub mod scopf;
pub mod types;

pub use acopf::{solve_acopf, AcopfOptions};
pub use dcopf::{solve_dcopf, DcOpfSolution};
pub use dispatch::{economic_dispatch, DispatchResult};
pub use ipm::IpmOptions;
pub use scopf::{solve_scopf, ScopfOptions, ScopfSolution, SecurityConstraint};
pub use types::{AcopfError, AcopfSolution, BranchLoading};

#[cfg(test)]
mod tests {
    use super::*;
    use gm_network::{cases, CaseId, Modification};

    #[test]
    fn ieee14_matches_matpower_objective() {
        // MATPOWER's `runopf(case14)` objective is 8081.53 $/h; authentic
        // data should land within rounding noise of it.
        let net = cases::load(CaseId::Ieee14);
        let sol = solve_acopf(&net, &AcopfOptions::default()).unwrap();
        assert!(sol.solved);
        assert!(
            (sol.objective_cost - 8081.53).abs() < 25.0,
            "objective {} far from MATPOWER's 8081.53",
            sol.objective_cost
        );
        assert!(sol.power_balance_error_mw().abs() < 0.1);
    }

    #[test]
    fn all_cases_solve() {
        for id in CaseId::ALL {
            let net = cases::load(id);
            let sol = solve_acopf(&net, &AcopfOptions::default())
                .unwrap_or_else(|e| panic!("{id:?}: {e}"));
            assert!(sol.solved, "{id:?}");
            assert!(sol.objective_cost > 0.0);
            assert!(sol.max_thermal_loading_pct <= 100.5, "{id:?} overloaded");
            // Dispatch within limits.
            for (gi, g) in net.gens.iter().enumerate() {
                if g.in_service {
                    assert!(
                        sol.gen_dispatch_mw[gi] >= g.p_min_mw - 1e-3
                            && sol.gen_dispatch_mw[gi] <= g.p_max_mw + 1e-3,
                        "{id:?} gen {gi} dispatch {} outside [{}, {}]",
                        sol.gen_dispatch_mw[gi],
                        g.p_min_mw,
                        g.p_max_mw
                    );
                }
            }
            // Voltages within bounds.
            for (i, b) in net.buses.iter().enumerate() {
                assert!(
                    sol.bus_vm_pu[i] >= b.vmin_pu - 1e-4 && sol.bus_vm_pu[i] <= b.vmax_pu + 1e-4,
                    "{id:?} bus {} voltage {} outside [{}, {}]",
                    b.id,
                    sol.bus_vm_pu[i],
                    b.vmin_pu,
                    b.vmax_pu
                );
            }
        }
    }

    #[test]
    fn lmps_are_economically_sensible() {
        let net = cases::load(CaseId::Ieee14);
        let sol = solve_acopf(&net, &AcopfOptions::default()).unwrap();
        assert_eq!(sol.bus_lmp.len(), 14);
        // All prices positive and in the fuel-cost band.
        for (i, &lmp) in sol.bus_lmp.iter().enumerate() {
            assert!(
                (5.0..120.0).contains(&lmp),
                "bus {} LMP {lmp:.2} $/MWh out of band",
                net.buses[i].id
            );
        }
        // With losses, prices rise away from the marginal unit: the
        // spread is positive but modest on an uncongested case.
        let min = sol.bus_lmp.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = sol.bus_lmp.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > min, "losses must create a price spread");
        assert!(max < 1.25 * min, "case14 is uncongested; spread too wide");
        // The slack-bus LMP equals the marginal cost of the unit that
        // balances the system there.
        let slack = net.slack().unwrap();
        let mc = net.gens[0].cost.marginal(sol.gen_dispatch_mw[0]);
        assert!(
            (sol.bus_lmp[slack] - mc).abs() < 0.5,
            "slack LMP {:.2} vs marginal cost {:.2}",
            sol.bus_lmp[slack],
            mc
        );
    }

    #[test]
    fn congestion_separates_lmps() {
        // On case118 thermal limits bind (49 constraints at the optimum):
        // congestion must create a wider nodal price spread than the
        // uncongested case14.
        let net = cases::load(CaseId::Ieee118);
        let sol = solve_acopf(&net, &AcopfOptions::default()).unwrap();
        let min = sol.bus_lmp.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = sol.bus_lmp.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            max > 1.25 * min,
            "binding flow limits should separate prices: [{min:.2}, {max:.2}]"
        );
    }

    #[test]
    fn load_increase_raises_cost() {
        let base = cases::load(CaseId::Ieee30);
        let s0 = solve_acopf(&base, &AcopfOptions::default()).unwrap();
        let mut heavy = base.clone();
        Modification::ScaleAllLoads { factor: 1.1 }
            .apply(&mut heavy)
            .unwrap();
        let s1 = solve_acopf(&heavy, &AcopfOptions::default()).unwrap();
        assert!(
            s1.objective_cost > s0.objective_cost,
            "{} !> {}",
            s1.objective_cost,
            s0.objective_cost
        );
    }

    #[test]
    fn what_if_load_modification_on_bus() {
        // The paper's canonical what-if: raise the load at one bus and
        // re-solve; the new optimum costs more.
        let base = cases::load(CaseId::Ieee14);
        let s0 = solve_acopf(&base, &AcopfOptions::default()).unwrap();
        let mut net = base.clone();
        Modification::SetBusLoad {
            bus_id: 10,
            p_mw: 50.0,
            q_mvar: None,
        }
        .apply(&mut net)
        .unwrap();
        let s1 = solve_acopf(&net, &AcopfOptions::default()).unwrap();
        assert!(s1.objective_cost > s0.objective_cost);
        assert!(s1.total_load_mw > s0.total_load_mw);
    }

    #[test]
    fn line_outage_redispatch_costs_more() {
        // Economic impact of removing a line (the paper's §3.2.1 example).
        let base = cases::load(CaseId::Ieee118);
        let s0 = solve_acopf(&base, &AcopfOptions::default()).unwrap();
        let mut net = base.clone();
        // Outage a mid-network line that is not a bridge.
        let idx = 40;
        Modification::OutageBranch { index: idx }
            .apply(&mut net)
            .unwrap();
        let s1 = solve_acopf(&net, &AcopfOptions::default()).unwrap();
        // Removing a line changes the equality constraints, so the optimal
        // cost may move in either direction (corrective transmission
        // switching exploits exactly this); it should stay in the same
        // regime though, and the post-outage case must remain solvable.
        assert!(s1.solved);
        let rel = (s1.objective_cost - s0.objective_cost).abs() / s0.objective_cost;
        assert!(rel < 0.10, "outage moved cost by {:.1}%", 100.0 * rel);
    }

    #[test]
    fn warm_start_converges_to_same_objective() {
        let net = cases::load(CaseId::Ieee30);
        let cold = solve_acopf(&net, &AcopfOptions::default()).unwrap();
        let warm = solve_acopf(
            &net,
            &AcopfOptions {
                warm_start: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            (cold.objective_cost - warm.objective_cost).abs() < 0.5,
            "cold {} vs warm {}",
            cold.objective_cost,
            warm.objective_cost
        );
    }

    #[test]
    fn infeasible_case_reports_not_converged() {
        let mut net = cases::load(CaseId::Ieee14);
        Modification::ScaleAllLoads { factor: 10.0 }
            .apply(&mut net)
            .unwrap();
        let opts = AcopfOptions {
            ipm: IpmOptions {
                max_iter: 60,
                ..Default::default()
            },
            ..Default::default()
        };
        match solve_acopf(&net, &opts) {
            Err(AcopfError::NotConverged { .. }) => {}
            Ok(s) => panic!(
                "10x load should be infeasible, got cost {}",
                s.objective_cost
            ),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn acopf_solution_is_a_valid_power_flow() {
        // Fix the ACOPF dispatch and voltage setpoints into the network and
        // confirm Newton power flow reproduces the same state (losses).
        let net = cases::load(CaseId::Ieee30);
        let sol = solve_acopf(&net, &AcopfOptions::default()).unwrap();
        let mut pf_net = net.clone();
        let slack = pf_net.slack().unwrap();
        for (gi, g) in pf_net.gens.iter_mut().enumerate() {
            g.p_mw = sol.gen_dispatch_mw[gi];
            g.vm_setpoint_pu = sol.bus_vm_pu[g.bus];
            let _ = slack;
        }
        let rep = gm_powerflow::solve(
            &pf_net,
            &gm_powerflow::PfOptions {
                enforce_q_limits: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(rep.converged);
        assert!(
            (rep.losses_mw - sol.losses_mw).abs() < 0.5,
            "PF losses {} vs ACOPF losses {}",
            rep.losses_mw,
            sol.losses_mw
        );
    }
}
