//! Preventive security-constrained OPF (SCOPF).
//!
//! Extends the ACOPF with post-contingency flow limits in the standard
//! industry form: DC (LODF-linearized) estimates of post-outage branch
//! flows are constrained to an emergency rating for a screened set of
//! `(outage, monitored branch)` pairs,
//!
//! ```text
//! | P_l(θ) + LODF(l,k) · P_k(θ) | ≤ emergency_factor · rating_l
//! ```
//!
//! which is linear in the voltage angles and slots directly into the same
//! interior point solver as extra inequality rows. This is the
//! "security-constrained operation" comparison the paper names in
//! Appendix B.4 and cites as [Wu & Conejo 2019]; the screened preventive
//! formulation keeps the problem tractable while demonstrably reducing
//! post-contingency overloads (see the `scopf_comparison` example).

use crate::acopf::{unpack_solution, AcopfOptions, AcopfProblem};
use crate::ipm::{self, Nlp};
use crate::types::{AcopfError, AcopfSolution};
use gm_network::Network;
use gm_powerflow::sensitivities_for_screening;
use gm_sparse::{CsMat, Triplets};

/// One screened security constraint.
#[derive(Clone, Copy, Debug)]
pub struct SecurityConstraint {
    /// Outaged branch index.
    pub outage: usize,
    /// Monitored branch index.
    pub monitored: usize,
    /// LODF(monitored, outage).
    pub lodf: f64,
    /// Flow bound (p.u., both signs enforced).
    pub limit_pu: f64,
}

/// SCOPF options.
#[derive(Clone, Debug)]
pub struct ScopfOptions {
    /// Inner ACOPF/IPM options.
    pub acopf: AcopfOptions,
    /// Screen-in threshold: monitor pairs whose estimated post-outage
    /// loading at the *unconstrained* optimum exceeds this fraction.
    pub monitor_threshold: f64,
    /// Post-contingency flows may reach `emergency_factor × rating`.
    pub emergency_factor: f64,
    /// Cap on the number of security rows (most-loaded pairs first).
    pub max_constraints: usize,
    /// Constraint-generation rounds: after each solve, the screen re-runs
    /// at the new operating point and newly violated pairs are added
    /// until fixpoint (standard iterative SCOPF).
    pub max_rounds: usize,
}

impl ScopfOptions {
    /// Deterministic fingerprint of the SCOPF controls (inner ACOPF
    /// options included) for cross-session solver-cache keys; same
    /// construction as [`AcopfOptions::fingerprint`].
    pub fn fingerprint(&self) -> u64 {
        let text = format!("{self:?}");
        let mut h: u64 = 0xcbf29ce484222325;
        for b in text.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

impl Default for ScopfOptions {
    fn default() -> Self {
        let mut acopf = AcopfOptions::default();
        acopf.ipm.max_iter = 250;
        ScopfOptions {
            acopf,
            monitor_threshold: 0.90,
            emergency_factor: 0.94,
            max_constraints: 6000,
            max_rounds: 4,
        }
    }
}

/// SCOPF result: the secure dispatch plus what securing it cost.
#[derive(Clone, Debug)]
pub struct ScopfSolution {
    /// The security-constrained operating point.
    pub solution: AcopfSolution,
    /// The unconstrained (economic) optimum it is compared against.
    pub economic_cost: f64,
    /// Security premium: `solution.objective_cost − economic_cost` ($/h).
    pub security_premium: f64,
    /// Number of active security constraints in the final problem.
    pub n_security_constraints: usize,
}

struct ScopfProblem<'a> {
    base: AcopfProblem<'a>,
    security: Vec<SecurityConstraint>,
    base_niq: usize,
}

impl ScopfProblem<'_> {
    /// Angle columns and susceptance for a branch's DC flow
    /// `P = (θf − θt)·b`.
    fn branch_terms(&self, bi: usize) -> (usize, usize, f64) {
        let br = &self.base.net.branches[bi];
        (
            self.base.layout.th[br.from_bus],
            self.base.layout.th[br.to_bus],
            1.0 / br.x_pu,
        )
    }

    fn dc_flow(&self, x: &[f64], bi: usize) -> f64 {
        let (cf, ct, b) = self.branch_terms(bi);
        let thf = if cf == usize::MAX { 0.0 } else { x[cf] };
        let tht = if ct == usize::MAX { 0.0 } else { x[ct] };
        (thf - tht) * b
    }
}

impl Nlp for ScopfProblem<'_> {
    fn nx(&self) -> usize {
        self.base.nx()
    }
    fn x0(&self) -> Vec<f64> {
        self.base.x0()
    }
    fn objective(&self, x: &[f64]) -> (f64, Vec<f64>) {
        self.base.objective(x)
    }
    fn equalities(&self, x: &[f64]) -> (Vec<f64>, CsMat<f64>) {
        self.base.equalities(x)
    }

    fn inequalities(&self, x: &[f64]) -> (Vec<f64>, CsMat<f64>) {
        let (mut h, jh) = self.base.inequalities(x);
        let n_sec = 2 * self.security.len();
        let mut t = Triplets::with_capacity(n_sec, self.nx(), 8 * self.security.len());
        for (r2, sc) in self.security.iter().enumerate() {
            let flow = self.dc_flow(x, sc.monitored) + sc.lodf * self.dc_flow(x, sc.outage);
            let (mf, mt, mb) = self.branch_terms(sc.monitored);
            let (of, ot, ob) = self.branch_terms(sc.outage);
            for (sign_idx, sign) in [1.0f64, -1.0].iter().enumerate() {
                let row = 2 * r2 + sign_idx;
                h.push(sign * flow - sc.limit_pu);
                for (col, coef) in [(mf, mb), (mt, -mb), (of, sc.lodf * ob), (ot, -sc.lodf * ob)] {
                    if col != usize::MAX {
                        t.push(row, col, sign * coef);
                    }
                }
            }
        }
        (h, jh.vstack(&t.to_csr()))
    }

    fn lagrangian_hessian(&self, x: &[f64], lam: &[f64], mu: &[f64]) -> CsMat<f64> {
        // The security rows are linear: only the base multipliers carry
        // curvature.
        self.base.lagrangian_hessian(x, lam, &mu[..self.base_niq])
    }
}

/// Solves the security-constrained OPF by iterative contingency
/// constraint generation: solve, screen at the solution, add violated
/// `(outage, monitored)` pairs, repeat until no new violations or the
/// round budget is spent.
pub fn solve_scopf(net: &Network, opts: &ScopfOptions) -> Result<ScopfSolution, AcopfError> {
    let _span = gm_telemetry::span!("acopf.scopf.solve", case = net.name);
    gm_telemetry::counter_add("acopf.scopf.solves", 1);
    let economic = crate::solve_acopf(net, &opts.acopf)?;
    let sens = sensitivities_for_screening(net).map_err(|e| AcopfError::InvalidNetwork {
        problems: vec![e.to_string()],
    })?;
    let base = net.base_mva;

    let mut active: std::collections::BTreeMap<(usize, usize), SecurityConstraint> =
        std::collections::BTreeMap::new();
    let mut current = economic.clone();

    for _round in 0..opts.max_rounds {
        // ---- Screen at the current operating point.
        let flows_pu: Vec<f64> = current
            .branch_loading
            .iter()
            .map(|b| b.p_from_mw / base)
            .collect();
        let mut added = 0usize;
        for (k, brk) in net.branches.iter().enumerate() {
            if !brk.in_service || sens.lodf[(k, k)].is_nan() {
                continue;
            }
            for (l, brl) in net.branches.iter().enumerate() {
                if l == k || !brl.in_service || brl.rating_mva <= 0.0 {
                    continue;
                }
                if active.contains_key(&(k, l)) {
                    continue;
                }
                let d = sens.lodf[(l, k)];
                if d.is_nan() {
                    continue;
                }
                let post = flows_pu[l] + d * flows_pu[k];
                let loading = post.abs() / (brl.rating_mva / base);
                if loading >= opts.monitor_threshold && active.len() < opts.max_constraints {
                    active.insert(
                        (k, l),
                        SecurityConstraint {
                            outage: k,
                            monitored: l,
                            lodf: d,
                            limit_pu: opts.emergency_factor * brl.rating_mva / base,
                        },
                    );
                    added += 1;
                }
            }
        }
        if added == 0 {
            break; // fixpoint: no newly violated pairs at this optimum
        }
        gm_telemetry::counter_add("acopf.scopf.rounds", 1);
        gm_telemetry::counter_add("acopf.scopf.constraints_added", added as u64);

        // ---- Re-solve with the accumulated security rows. Not every
        // post-contingency overload is dispatchable away (a pocket fed by
        // two corridors keeps its load on the survivor, |LODF| ≈ 1), so an
        // infeasible round relaxes every security limit by 10 % and
        // retries — the standard soft-constraint treatment.
        let mut relaxations = 0usize;
        loop {
            let started = std::time::Instant::now();
            let Some(base_prob) = AcopfProblem::build(net, opts.acopf.warm_start) else {
                return Err(AcopfError::InvalidNetwork {
                    problems: vec!["no slack bus".to_string()],
                });
            };
            let (_, base_jh) = base_prob.inequalities(&base_prob.x0());
            let base_niq = base_jh.rows();
            let prob = ScopfProblem {
                base: base_prob,
                security: active.values().copied().collect(),
                base_niq,
            };
            let res = ipm::solve(&prob, &opts.acopf.ipm);
            if res.converged {
                current = unpack_solution(&prob.base, &res, started.elapsed().as_secs_f64());
                break;
            }
            relaxations += 1;
            gm_telemetry::counter_add("acopf.scopf.relaxations", 1);
            if relaxations > 4 {
                return Err(AcopfError::NotConverged {
                    iterations: res.iterations,
                    feascond: res.feascond,
                    message: format!(
                        "SCOPF with {} constraints infeasible even after {} relaxations: {}",
                        active.len(),
                        relaxations - 1,
                        res.message
                    ),
                });
            }
            for c in active.values_mut() {
                c.limit_pu *= 1.10;
            }
        }
    }

    Ok(ScopfSolution {
        economic_cost: economic.objective_cost,
        security_premium: current.objective_cost - economic.objective_cost,
        n_security_constraints: active.len(),
        solution: current,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_network::{cases, CaseId};

    /// Applies a dispatch to the case so the contingency engine can
    /// evaluate its N-1 security.
    fn apply_dispatch(net: &Network, sol: &AcopfSolution) -> Network {
        let mut out = net.clone();
        for (gi, g) in out.gens.iter_mut().enumerate() {
            g.p_mw = sol.gen_dispatch_mw[gi];
            g.vm_setpoint_pu = sol.bus_vm_pu[g.bus];
        }
        out
    }

    fn n1_overload_outages(net: &Network) -> usize {
        gm_contingency_probe::run(net).expect("contingency sweep must complete")
    }

    /// Minimal local N-1 probe (avoids a dev-dependency cycle with
    /// gm-contingency): counts outages that cause a thermal overload.
    mod gm_contingency_probe {
        use gm_network::{topology, Network};
        use gm_numeric::Complex;
        use gm_powerflow::{solve, solve_from, PfOptions};

        pub fn run(net: &Network) -> Option<usize> {
            let opts = PfOptions {
                enforce_q_limits: false,
                ..Default::default()
            };
            let base = solve(net, &opts).ok()?;
            let v0: Vec<Complex> = base
                .buses
                .iter()
                .map(|b| Complex::from_polar(b.vm_pu, b.va_deg.to_radians()))
                .collect();
            let mut bad = 0;
            let mut work = net.clone();
            for k in 0..net.branches.len() {
                if !net.branches[k].in_service || topology::outage_islands(net, k) {
                    continue;
                }
                work.branches[k].in_service = false;
                if let Ok(rep) = solve_from(&work, &opts, Some(&v0)) {
                    // Count severe overloads: both dispatches ride binding
                    // base-case limits, so >100 % saturates trivially.
                    if rep.branches.iter().any(|b| b.loading_pct > 115.0) {
                        bad += 1;
                    }
                } else {
                    bad += 1;
                }
                work.branches[k].in_service = true;
            }
            Some(bad)
        }
    }

    #[test]
    fn scopf_reduces_post_contingency_overloads_on_case118() {
        let net = cases::load(CaseId::Ieee118);
        let scopf = solve_scopf(&net, &ScopfOptions::default()).unwrap();
        assert!(scopf.n_security_constraints > 0, "screen found nothing");
        assert!(
            scopf.security_premium >= -1e-6,
            "security cannot be cheaper than economic dispatch"
        );

        let economic = crate::solve_acopf(&net, &AcopfOptions::default()).unwrap();
        let eco_net = apply_dispatch(&net, &economic);
        let sec_net = apply_dispatch(&net, &scopf.solution);
        let eco_bad = n1_overload_outages(&eco_net);
        let sec_bad = n1_overload_outages(&sec_net);
        assert!(
            sec_bad < eco_bad,
            "SCOPF dispatch must reduce overload-causing outages: {sec_bad} !< {eco_bad}"
        );
    }

    #[test]
    fn scopf_premium_is_modest_on_case57() {
        let net = cases::load(CaseId::Ieee57);
        let scopf = solve_scopf(&net, &ScopfOptions::default()).unwrap();
        // Security should cost something but not blow the budget.
        assert!(scopf.security_premium >= 0.0);
        assert!(
            scopf.security_premium < 0.2 * scopf.economic_cost,
            "premium {:.1} implausible vs economic {:.1}",
            scopf.security_premium,
            scopf.economic_cost
        );
        assert!(scopf.solution.solved);
    }

    #[test]
    fn secure_case_returns_economic_dispatch() {
        // case14 has no branch ratings: nothing to screen, zero premium.
        let net = cases::load(CaseId::Ieee14);
        let scopf = solve_scopf(&net, &ScopfOptions::default()).unwrap();
        assert_eq!(scopf.n_security_constraints, 0);
        assert_eq!(scopf.security_premium, 0.0);
    }
}
