//! Branch-end power flow primitive with analytic first and second
//! derivatives.
//!
//! Every nonlinear quantity in the ACOPF — nodal power balance and squared
//! branch flow limits — decomposes into per-branch-end complex flows
//!
//! ```text
//! S_end = V_f²·conj(y_self) + V_f·V_t·e^{jθ_ft}·conj(y_mut)
//! ```
//!
//! which depend on only four variables `(θ_f, θ_t, V_f, V_t)` ("f" is the
//! end being measured). This module evaluates `P`, `Q`, their 4-gradients,
//! and their 4×4 Hessians in closed form; the ACOPF assembles sparse
//! Jacobians and Lagrangian Hessians by scattering these small dense
//! blocks. Verified against finite differences in the tests.

use gm_numeric::Complex;

/// Variable order within the 4-blocks: `θf, θt, Vf, Vt`.
pub const THF: usize = 0;
/// Index of `θt`.
pub const THT: usize = 1;
/// Index of `Vf`.
pub const VF: usize = 2;
/// Index of `Vt`.
pub const VT: usize = 3;

/// Value, gradient, and Hessian of one branch end's P and Q.
#[derive(Clone, Debug)]
pub struct EndFlow {
    /// Active power leaving the measured end into the branch (p.u.).
    pub p: f64,
    /// Reactive power (p.u.).
    pub q: f64,
    /// Gradient of `p` wrt `(θf, θt, Vf, Vt)`.
    pub dp: [f64; 4],
    /// Gradient of `q`.
    pub dq: [f64; 4],
    /// Hessian of `p` (symmetric).
    pub d2p: [[f64; 4]; 4],
    /// Hessian of `q` (symmetric).
    pub d2q: [[f64; 4]; 4],
}

/// Evaluates one branch end.
///
/// * `thf`, `tht` — voltage angles at the measured and far end (rad);
/// * `vf`, `vt` — magnitudes (p.u.);
/// * `y_self` — the end's self-admittance block (yff or ytt);
/// * `y_mut` — the mutual block (yft or ytf).
pub fn end_flow(thf: f64, tht: f64, vf: f64, vt: f64, y_self: Complex, y_mut: Complex) -> EndFlow {
    let (gs, bs) = (y_self.re, y_self.im);
    let (gm, bm) = (y_mut.re, y_mut.im);
    let thft = thf - tht;
    let (sin, cos) = thft.sin_cos();
    let u = gm * cos + bm * sin; // Re(e^{jθ} conj(y_mut))
    let w = gm * sin - bm * cos; // Im(e^{jθ} conj(y_mut))
    let vv = vf * vt;

    let p = vf * vf * gs + vv * u;
    let q = -vf * vf * bs + vv * w;

    // du/dθf = −w, du/dθt = +w, dw/dθf = u, dw/dθt = −u.
    let dp = [-vv * w, vv * w, 2.0 * vf * gs + vt * u, vf * u];
    let dq = [vv * u, -vv * u, -2.0 * vf * bs + vt * w, vf * w];

    let mut d2p = [[0.0; 4]; 4];
    let mut d2q = [[0.0; 4]; 4];
    // θθ blocks.
    d2p[THF][THF] = -vv * u;
    d2p[THF][THT] = vv * u;
    d2p[THT][THT] = -vv * u;
    d2q[THF][THF] = -vv * w;
    d2q[THF][THT] = vv * w;
    d2q[THT][THT] = -vv * w;
    // θV blocks.
    d2p[THF][VF] = -vt * w;
    d2p[THF][VT] = -vf * w;
    d2p[THT][VF] = vt * w;
    d2p[THT][VT] = vf * w;
    d2q[THF][VF] = vt * u;
    d2q[THF][VT] = vf * u;
    d2q[THT][VF] = -vt * u;
    d2q[THT][VT] = -vf * u;
    // VV blocks.
    d2p[VF][VF] = 2.0 * gs;
    d2p[VF][VT] = u;
    d2q[VF][VF] = -2.0 * bs;
    d2q[VF][VT] = w;
    // Symmetrize.
    for r in 0..4 {
        for c in 0..r {
            d2p[r][c] = d2p[c][r];
            d2q[r][c] = d2q[c][r];
        }
    }

    EndFlow {
        p,
        q,
        dp,
        dq,
        d2p,
        d2q,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_y() -> (Complex, Complex) {
        // A transformer-ish branch block pair.
        (Complex::new(1.2, -4.9), Complex::new(-1.1, 4.6))
    }

    fn eval(x: &[f64; 4]) -> (f64, f64) {
        let (ys, ym) = sample_y();
        let e = end_flow(x[0], x[1], x[2], x[3], ys, ym);
        (e.p, e.q)
    }

    #[test]
    fn matches_complex_arithmetic() {
        let (ys, ym) = sample_y();
        let (thf, tht, vf, vt) = (0.07, -0.03, 1.03, 0.98);
        let e = end_flow(thf, tht, vf, vt, ys, ym);
        let vfp = Complex::from_polar(vf, thf);
        let vtp = Complex::from_polar(vt, tht);
        let s = vfp * (ys * vfp + ym * vtp).conj();
        assert!((e.p - s.re).abs() < 1e-12);
        assert!((e.q - s.im).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let x0 = [0.11, -0.05, 1.04, 0.97];
        let (ys, ym) = sample_y();
        let e = end_flow(x0[0], x0[1], x0[2], x0[3], ys, ym);
        let h = 1e-7;
        for k in 0..4 {
            let mut xp = x0;
            xp[k] += h;
            let (pp, qp) = eval(&xp);
            let mut xm = x0;
            xm[k] -= h;
            let (pm, qm) = eval(&xm);
            let fd_p = (pp - pm) / (2.0 * h);
            let fd_q = (qp - qm) / (2.0 * h);
            assert!(
                (e.dp[k] - fd_p).abs() < 1e-6,
                "dP[{k}]: analytic {} vs fd {fd_p}",
                e.dp[k]
            );
            assert!(
                (e.dq[k] - fd_q).abs() < 1e-6,
                "dQ[{k}]: analytic {} vs fd {fd_q}",
                e.dq[k]
            );
        }
    }

    #[test]
    fn hessian_matches_finite_difference() {
        let x0 = [0.09, 0.02, 1.01, 1.05];
        let (ys, ym) = sample_y();
        let e = end_flow(x0[0], x0[1], x0[2], x0[3], ys, ym);
        let h = 1e-5;
        for r in 0..4 {
            for c in 0..4 {
                // FD of the gradient component r along variable c.
                let mut xp = x0;
                xp[c] += h;
                let ep = end_flow(xp[0], xp[1], xp[2], xp[3], ys, ym);
                let mut xm = x0;
                xm[c] -= h;
                let em = end_flow(xm[0], xm[1], xm[2], xm[3], ys, ym);
                let fd_p = (ep.dp[r] - em.dp[r]) / (2.0 * h);
                let fd_q = (ep.dq[r] - em.dq[r]) / (2.0 * h);
                assert!(
                    (e.d2p[r][c] - fd_p).abs() < 1e-6,
                    "d2P[{r}][{c}]: {} vs {fd_p}",
                    e.d2p[r][c]
                );
                assert!(
                    (e.d2q[r][c] - fd_q).abs() < 1e-6,
                    "d2Q[{r}][{c}]: {} vs {fd_q}",
                    e.d2q[r][c]
                );
            }
        }
    }

    #[test]
    fn hessians_are_symmetric() {
        let (ys, ym) = sample_y();
        let e = end_flow(0.2, -0.1, 1.06, 0.94, ys, ym);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(e.d2p[r][c], e.d2p[c][r]);
                assert_eq!(e.d2q[r][c], e.d2q[c][r]);
            }
        }
    }

    #[test]
    fn zero_mutual_admittance_decouples_ends() {
        let e = end_flow(0.3, 0.1, 1.0, 1.0, Complex::new(0.5, -2.0), Complex::ZERO);
        assert_eq!(e.dp[THT], 0.0);
        assert_eq!(e.dp[VT], 0.0);
        assert_eq!(e.dq[THT], 0.0);
        assert!((e.p - 0.5).abs() < 1e-12);
    }
}
