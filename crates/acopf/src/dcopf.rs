//! DC optimal power flow baseline.
//!
//! Linear network model (lossless, unit voltage, angles only) with the
//! same quadratic cost objective and thermal limits as the ACOPF. Solved
//! by the same interior point core — the problem is just an NLP whose
//! constraints happen to be linear. Used as the paper-style comparison
//! baseline ("economic vs security-constrained operation", Appendix B.4)
//! and as a cross-check: DC-OPF cost should track ACOPF cost from below
//! on loss-dominated systems.

use crate::ipm::{self, IpmOptions, Nlp};
use gm_network::Network;
use gm_sparse::{CsMat, Triplets};

/// DC-OPF solution.
#[derive(Clone, Debug)]
pub struct DcOpfSolution {
    /// Whether the IPM converged.
    pub solved: bool,
    /// Total cost ($/h).
    pub objective_cost: f64,
    /// MW per generator (aligned with `Network::gens`).
    pub gen_dispatch_mw: Vec<f64>,
    /// Branch MW flows (from → to).
    pub flow_mw: Vec<f64>,
    /// Bus angles (degrees).
    pub bus_va_deg: Vec<f64>,
    /// IPM iterations.
    pub iterations: usize,
}

struct DcOpfProblem<'a> {
    net: &'a Network,
    /// θ column per bus (MAX for slack).
    th: Vec<usize>,
    /// Pg column per in-service gen.
    pg: Vec<usize>,
    nx: usize,
    /// (branch index, limit p.u.) for rated in-service branches.
    limits: Vec<(usize, f64)>,
    pd: Vec<f64>,
}

impl<'a> DcOpfProblem<'a> {
    /// `None` when the network has no slack bus (surfaced by
    /// [`solve_dcopf`] as an invalid-network error — no panic path).
    fn build(net: &'a Network) -> Option<Self> {
        let n = net.n_bus();
        let slack = net.slack()?;
        let mut th = vec![usize::MAX; n];
        let mut k = 0;
        for (i, t) in th.iter_mut().enumerate() {
            if i != slack {
                *t = k;
                k += 1;
            }
        }
        let mut pg = vec![usize::MAX; net.gens.len()];
        for (gi, g) in net.gens.iter().enumerate() {
            if g.in_service {
                pg[gi] = k;
                k += 1;
            }
        }
        let limits = net
            .branches
            .iter()
            .enumerate()
            .filter(|(_, b)| b.in_service && b.rating_mva > 0.0)
            .map(|(i, b)| (i, b.rating_mva / net.base_mva))
            .collect();
        let mut pd = vec![0.0; n];
        for l in net.loads.iter().filter(|l| l.in_service) {
            pd[l.bus] += l.p_mw / net.base_mva;
        }
        Some(DcOpfProblem {
            net,
            th,
            pg,
            nx: k,
            limits,
            pd,
        })
    }

    fn angle(&self, x: &[f64], bus: usize) -> f64 {
        if self.th[bus] == usize::MAX {
            0.0
        } else {
            x[self.th[bus]]
        }
    }
}

impl Nlp for DcOpfProblem<'_> {
    fn nx(&self) -> usize {
        self.nx
    }

    fn x0(&self) -> Vec<f64> {
        let mut x = vec![0.0; self.nx];
        for (gi, g) in self.net.gens.iter().enumerate() {
            if g.in_service {
                x[self.pg[gi]] = 0.5 * (g.p_min_mw + g.p_max_mw) / self.net.base_mva;
            }
        }
        x
    }

    fn objective(&self, x: &[f64]) -> (f64, Vec<f64>) {
        let base = self.net.base_mva;
        let mut f = 0.0;
        let mut df = vec![0.0; self.nx];
        for (gi, g) in self.net.gens.iter().enumerate() {
            if !g.in_service {
                continue;
            }
            let p_mw = x[self.pg[gi]] * base;
            f += g.cost.eval(p_mw);
            df[self.pg[gi]] = g.cost.marginal(p_mw) * base;
        }
        (f, df)
    }

    fn equalities(&self, x: &[f64]) -> (Vec<f64>, CsMat<f64>) {
        let n = self.net.n_bus();
        let mut g = self.pd.clone();
        let mut t = Triplets::with_capacity(n, self.nx, 4 * self.net.branches.len());
        for br in self.net.branches.iter().filter(|b| b.in_service) {
            let b = 1.0 / br.x_pu;
            let flow = (self.angle(x, br.from_bus) - self.angle(x, br.to_bus)) * b;
            g[br.from_bus] += flow;
            g[br.to_bus] -= flow;
            for (bus, sign) in [(br.from_bus, 1.0), (br.to_bus, -1.0)] {
                if self.th[br.from_bus] != usize::MAX {
                    t.push(bus, self.th[br.from_bus], sign * b);
                }
                if self.th[br.to_bus] != usize::MAX {
                    t.push(bus, self.th[br.to_bus], -sign * b);
                }
            }
        }
        for (gi, gen) in self.net.gens.iter().enumerate() {
            if gen.in_service {
                g[gen.bus] -= x[self.pg[gi]];
                t.push(gen.bus, self.pg[gi], -1.0);
            }
        }
        (g, t.to_csr())
    }

    fn inequalities(&self, x: &[f64]) -> (Vec<f64>, CsMat<f64>) {
        let niq = 2 * self.limits.len() + 2 * self.pg.iter().filter(|&&c| c != usize::MAX).count();
        let mut h = Vec::with_capacity(niq);
        let mut t = Triplets::with_capacity(niq, self.nx, 4 * niq);
        for &(bi, lim) in &self.limits {
            let br = &self.net.branches[bi];
            let b = 1.0 / br.x_pu;
            let flow = (self.angle(x, br.from_bus) - self.angle(x, br.to_bus)) * b;
            for sign in [1.0, -1.0] {
                let row = h.len();
                h.push(sign * flow - lim);
                if self.th[br.from_bus] != usize::MAX {
                    t.push(row, self.th[br.from_bus], sign * b);
                }
                if self.th[br.to_bus] != usize::MAX {
                    t.push(row, self.th[br.to_bus], -sign * b);
                }
            }
        }
        let base = self.net.base_mva;
        for (gi, g) in self.net.gens.iter().enumerate() {
            if !g.in_service {
                continue;
            }
            let col = self.pg[gi];
            let row = h.len();
            h.push(g.p_min_mw / base - x[col]);
            t.push(row, col, -1.0);
            let row = h.len();
            h.push(x[col] - g.p_max_mw / base);
            t.push(row, col, 1.0);
        }
        debug_assert_eq!(h.len(), niq);
        (h, t.to_csr())
    }

    fn lagrangian_hessian(&self, _x: &[f64], _lam: &[f64], _mu: &[f64]) -> CsMat<f64> {
        let base = self.net.base_mva;
        let mut t = Triplets::new(self.nx, self.nx);
        for (gi, g) in self.net.gens.iter().enumerate() {
            if g.in_service && g.cost.c2 != 0.0 {
                t.push(self.pg[gi], self.pg[gi], 2.0 * g.cost.c2 * base * base);
            }
        }
        t.to_csr()
    }
}

/// Solves the DC optimal power flow.
pub fn solve_dcopf(net: &Network, opts: &IpmOptions) -> Result<DcOpfSolution, String> {
    if let Err(p) = net.validate() {
        return Err(format!(
            "invalid network: {}",
            p.iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        ));
    }
    let Some(prob) = DcOpfProblem::build(net) else {
        return Err("invalid network: no slack bus".to_string());
    };
    let res = ipm::solve(&prob, opts);
    if !res.converged {
        return Err(format!("DC-OPF did not converge: {}", res.message));
    }
    let base = net.base_mva;
    let mut gen_p = vec![0.0; net.gens.len()];
    let mut cost = 0.0;
    for (gi, g) in net.gens.iter().enumerate() {
        if g.in_service {
            gen_p[gi] = res.x[prob.pg[gi]] * base;
            cost += g.cost.eval(gen_p[gi]);
        }
    }
    let flow_mw = net
        .branches
        .iter()
        .map(|br| {
            if br.in_service {
                (prob.angle(&res.x, br.from_bus) - prob.angle(&res.x, br.to_bus)) / br.x_pu * base
            } else {
                0.0
            }
        })
        .collect();
    let bus_va_deg = (0..net.n_bus())
        .map(|i| prob.angle(&res.x, i).to_degrees())
        .collect();
    Ok(DcOpfSolution {
        solved: true,
        objective_cost: cost,
        gen_dispatch_mw: gen_p,
        flow_mw,
        bus_va_deg,
        iterations: res.iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_network::{cases, CaseId};

    #[test]
    fn solves_ieee14() {
        let net = cases::load(CaseId::Ieee14);
        let sol = solve_dcopf(&net, &IpmOptions::default()).unwrap();
        assert!(sol.solved);
        // Lossless: generation equals load.
        let total: f64 = sol.gen_dispatch_mw.iter().sum();
        assert!((total - net.total_load_mw()).abs() < 0.01);
    }

    #[test]
    fn cost_below_acopf_on_ieee14() {
        // DC ignores losses and voltage, so with the same cost curves its
        // optimum cannot exceed the AC optimum (no binding flow limits in
        // case14: unrated branches).
        let net = cases::load(CaseId::Ieee14);
        let dc = solve_dcopf(&net, &IpmOptions::default()).unwrap();
        let ac = crate::solve_acopf(&net, &crate::AcopfOptions::default()).unwrap();
        assert!(
            dc.objective_cost <= ac.objective_cost,
            "DC {} vs AC {}",
            dc.objective_cost,
            ac.objective_cost
        );
        assert!(dc.objective_cost > 0.8 * ac.objective_cost);
    }

    #[test]
    fn flow_limits_respected_on_ieee30() {
        let net = cases::load(CaseId::Ieee30);
        let sol = solve_dcopf(&net, &IpmOptions::default()).unwrap();
        for (idx, br) in net.branches.iter().enumerate() {
            if br.rating_mva > 0.0 && br.in_service {
                assert!(
                    sol.flow_mw[idx].abs() <= br.rating_mva * 1.001,
                    "branch {idx} flow {} exceeds {}",
                    sol.flow_mw[idx],
                    br.rating_mva
                );
            }
        }
    }

    #[test]
    fn matches_economic_dispatch_when_unconstrained() {
        // case14 has no branch ratings: DC-OPF should equal pure ED.
        let net = cases::load(CaseId::Ieee14);
        let dc = solve_dcopf(&net, &IpmOptions::default()).unwrap();
        let ed = crate::dispatch::economic_dispatch(&net, net.total_load_mw());
        assert!(
            (dc.objective_cost - ed.cost).abs() < 1.0,
            "DC {} vs ED {}",
            dc.objective_cost,
            ed.cost
        );
    }
}
