//! The AC optimal power flow problem, solved by the interior point method.
//!
//! Formulation (all quantities p.u. on the system base):
//!
//! - **Variables** `x = [θ (non-slack buses), Vm (all buses), Pg, Qg]`.
//! - **Objective** Σ c2·(Pg·S_b)² + c1·(Pg·S_b) + c0 over in-service
//!   units.
//! - **Equalities** nodal active/reactive balance at every bus, expressed
//!   as sums of branch-end flows (see [`crate::flows`]) plus shunts minus
//!   net generation.
//! - **Inequalities** squared MVA flow limits at both ends of every rated
//!   branch, plus box bounds on `Vm`, `Pg`, `Qg`.
//!
//! Gradients and Hessians are exact; the IPM is the MIPS-style solver in
//! [`crate::ipm`].

use crate::flows::{end_flow, EndFlow, THF, THT, VF, VT};
use crate::ipm::{self, IpmOptions, Nlp};
use crate::types::{AcopfError, AcopfSolution, BranchLoading};
use gm_network::{Network, YBus};
use gm_sparse::{CsMat, Triplets};

/// ACOPF solver options.
#[derive(Clone, Debug, Default)]
pub struct AcopfOptions {
    /// IPM controls.
    pub ipm: IpmOptions,
    /// Warm start voltages/dispatch from the case values instead of flat.
    pub warm_start: bool,
}

impl AcopfOptions {
    /// Deterministic fingerprint of every solver control that can affect
    /// the solution, for cross-session solver-cache keys (gm-serve):
    /// FNV-1a over the canonical debug rendering. Two option sets with
    /// identical fields always fingerprint equal; any tolerance,
    /// iteration-limit, or warm-start change fingerprints different.
    pub fn fingerprint(&self) -> u64 {
        let text = format!("{self:?}");
        let mut h: u64 = 0xcbf29ce484222325;
        for b in text.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

/// Index bookkeeping for the variable vector.
pub(crate) struct Layout {
    /// θ column per bus (usize::MAX for the slack).
    pub(crate) th: Vec<usize>,
    /// Vm column per bus.
    pub(crate) vm: Vec<usize>,
    /// Pg column per in-service generator (MAX for off units).
    pub(crate) pg: Vec<usize>,
    /// Qg column per in-service generator.
    pub(crate) qg: Vec<usize>,
    pub(crate) nx: usize,
}

impl Layout {
    /// `None` when the network has no slack bus (callers surface it as
    /// [`AcopfError::InvalidNetwork`] — no panic path remains).
    fn build(net: &Network) -> Option<Layout> {
        let n = net.n_bus();
        let slack = net.slack()?;
        let mut th = vec![usize::MAX; n];
        let mut k = 0;
        for (i, t) in th.iter_mut().enumerate() {
            if i != slack {
                *t = k;
                k += 1;
            }
        }
        let vm: Vec<usize> = (0..n).map(|i| k + i).collect();
        k += n;
        let mut pg = vec![usize::MAX; net.gens.len()];
        for (gi, g) in net.gens.iter().enumerate() {
            if g.in_service {
                pg[gi] = k;
                k += 1;
            }
        }
        let mut qg = vec![usize::MAX; net.gens.len()];
        for (gi, g) in net.gens.iter().enumerate() {
            if g.in_service {
                qg[gi] = k;
                k += 1;
            }
        }
        Some(Layout {
            th,
            vm,
            pg,
            qg,
            nx: k,
        })
    }
}

/// One rated branch end tracked as a flow-limit inequality.
struct FlowLimit {
    branch: usize,
    /// true = from end, false = to end.
    from_end: bool,
    /// Squared limit (p.u.²).
    smax2: f64,
}

/// The assembled NLP.
pub(crate) struct AcopfProblem<'a> {
    pub(crate) net: &'a Network,
    pub(crate) ybus: YBus,
    pub(crate) layout: Layout,
    limits: Vec<FlowLimit>,
    /// Bound rows appended after the flow limits: (variable column,
    /// coefficient, constant) representing `coef·x + const ≤ 0`.
    bounds: Vec<(usize, f64, f64)>,
    /// Load totals per bus in p.u. (P, Q).
    pd: Vec<f64>,
    qd: Vec<f64>,
    /// Shunt (g, b) per bus in p.u.
    shunt: Vec<(f64, f64)>,
    warm_start: bool,
}

impl<'a> AcopfProblem<'a> {
    /// `None` when the network has no slack bus.
    pub(crate) fn build(net: &'a Network, warm_start: bool) -> Option<AcopfProblem<'a>> {
        let n = net.n_bus();
        let ybus = YBus::assemble(net);
        let layout = Layout::build(net)?;
        let base = net.base_mva;

        let mut limits = Vec::new();
        for (bi, br) in net.branches.iter().enumerate() {
            if br.in_service && br.rating_mva > 0.0 {
                let smax2 = (br.rating_mva / base).powi(2);
                limits.push(FlowLimit {
                    branch: bi,
                    from_end: true,
                    smax2,
                });
                limits.push(FlowLimit {
                    branch: bi,
                    from_end: false,
                    smax2,
                });
            }
        }

        let mut bounds = Vec::new();
        for (i, bus) in net.buses.iter().enumerate() {
            // vmin − Vm ≤ 0 ; Vm − vmax ≤ 0.
            bounds.push((layout.vm[i], -1.0, bus.vmin_pu));
            bounds.push((layout.vm[i], 1.0, -bus.vmax_pu));
        }
        for (gi, g) in net.gens.iter().enumerate() {
            if !g.in_service {
                continue;
            }
            bounds.push((layout.pg[gi], -1.0, g.p_min_mw / base));
            bounds.push((layout.pg[gi], 1.0, -g.p_max_mw / base));
            bounds.push((layout.qg[gi], -1.0, g.q_min_mvar / base));
            bounds.push((layout.qg[gi], 1.0, -g.q_max_mvar / base));
        }

        let mut pd = vec![0.0; n];
        let mut qd = vec![0.0; n];
        for l in net.loads.iter().filter(|l| l.in_service) {
            pd[l.bus] += l.p_mw / base;
            qd[l.bus] += l.q_mvar / base;
        }
        let mut shunt = vec![(0.0, 0.0); n];
        for s in net.shunts.iter().filter(|s| s.in_service) {
            shunt[s.bus].0 += s.g_mw / base;
            shunt[s.bus].1 += s.b_mvar / base;
        }

        Some(AcopfProblem {
            net,
            ybus,
            layout,
            limits,
            bounds,
            pd,
            qd,
            shunt,
            warm_start,
        })
    }

    /// Decodes θ and Vm for a bus from the variable vector.
    #[inline]
    fn bus_state(&self, x: &[f64], bus: usize) -> (f64, f64) {
        let th = if self.layout.th[bus] == usize::MAX {
            0.0
        } else {
            x[self.layout.th[bus]]
        };
        (th, x[self.layout.vm[bus]])
    }

    /// Evaluates both ends of every in-service branch.
    fn branch_flows(&self, x: &[f64]) -> Vec<Option<(EndFlow, EndFlow)>> {
        self.net
            .branches
            .iter()
            .enumerate()
            .map(|(bi, br)| {
                if !br.in_service {
                    return None;
                }
                let blk = &self.ybus.branch[bi];
                let (thf, vf) = self.bus_state(x, br.from_bus);
                let (tht, vt) = self.bus_state(x, br.to_bus);
                let from = end_flow(thf, tht, vf, vt, blk.yff, blk.yft);
                let to = end_flow(tht, thf, vt, vf, blk.ytt, blk.ytf);
                Some((from, to))
            })
            .collect()
    }

    /// The four variable columns of a branch oriented for the given end.
    fn end_cols(&self, bi: usize, from_end: bool) -> [usize; 4] {
        let br = &self.net.branches[bi];
        let (fb, tb) = if from_end {
            (br.from_bus, br.to_bus)
        } else {
            (br.to_bus, br.from_bus)
        };
        [
            self.layout.th[fb],
            self.layout.th[tb],
            self.layout.vm[fb],
            self.layout.vm[tb],
        ]
    }
}

impl Nlp for AcopfProblem<'_> {
    fn nx(&self) -> usize {
        self.layout.nx
    }

    fn x0(&self) -> Vec<f64> {
        let mut x = vec![0.0; self.layout.nx];
        let base = self.net.base_mva;
        for (i, bus) in self.net.buses.iter().enumerate() {
            let vm0 = if self.warm_start {
                bus.vm_pu.clamp(bus.vmin_pu + 0.005, bus.vmax_pu - 0.005)
            } else {
                0.5 * (bus.vmin_pu + bus.vmax_pu)
            };
            x[self.layout.vm[i]] = vm0;
            if self.layout.th[i] != usize::MAX && self.warm_start {
                x[self.layout.th[i]] = bus.va_deg.to_radians();
            }
        }
        for (gi, g) in self.net.gens.iter().enumerate() {
            if !g.in_service {
                continue;
            }
            let span = (g.p_max_mw - g.p_min_mw).max(1e-6);
            let p0 = if self.warm_start {
                g.p_mw
                    .clamp(g.p_min_mw + 0.02 * span, g.p_max_mw - 0.02 * span)
            } else {
                0.5 * (g.p_min_mw + g.p_max_mw)
            };
            x[self.layout.pg[gi]] = p0 / base;
            x[self.layout.qg[gi]] = 0.5 * (g.q_min_mvar + g.q_max_mvar) / base;
        }
        x
    }

    fn objective(&self, x: &[f64]) -> (f64, Vec<f64>) {
        let base = self.net.base_mva;
        let mut f = 0.0;
        let mut df = vec![0.0; self.layout.nx];
        for (gi, g) in self.net.gens.iter().enumerate() {
            if !g.in_service {
                continue;
            }
            let col = self.layout.pg[gi];
            let p_mw = x[col] * base;
            f += g.cost.eval(p_mw);
            df[col] = g.cost.marginal(p_mw) * base;
        }
        (f, df)
    }

    fn equalities(&self, x: &[f64]) -> (Vec<f64>, CsMat<f64>) {
        let n = self.net.n_bus();
        let neq = 2 * n;
        let flows = self.branch_flows(x);
        let mut g = vec![0.0; neq];
        // Row layout: P balance rows 0..n, Q balance rows n..2n.
        let mut t = Triplets::with_capacity(neq, self.layout.nx, 16 * self.net.branches.len());

        // Load and generation terms.
        for i in 0..n {
            g[i] += self.pd[i];
            g[n + i] += self.qd[i];
            // Shunt consumption: P = V²·gsh, Q = −V²·bsh.
            let (gsh, bsh) = self.shunt[i];
            let vm = x[self.layout.vm[i]];
            g[i] += vm * vm * gsh;
            g[n + i] -= vm * vm * bsh;
            if gsh != 0.0 {
                t.push(i, self.layout.vm[i], 2.0 * vm * gsh);
            }
            if bsh != 0.0 {
                t.push(n + i, self.layout.vm[i], -2.0 * vm * bsh);
            }
        }
        for (gi, gen) in self.net.gens.iter().enumerate() {
            if !gen.in_service {
                continue;
            }
            g[gen.bus] -= x[self.layout.pg[gi]];
            g[n + gen.bus] -= x[self.layout.qg[gi]];
            t.push(gen.bus, self.layout.pg[gi], -1.0);
            t.push(n + gen.bus, self.layout.qg[gi], -1.0);
        }

        // Branch-end contributions.
        for (bi, br) in self.net.branches.iter().enumerate() {
            let Some((from, to)) = &flows[bi] else {
                continue;
            };
            for (end, bus, from_end) in [(from, br.from_bus, true), (to, br.to_bus, false)] {
                g[bus] += end.p;
                g[n + bus] += end.q;
                let cols = self.end_cols(bi, from_end);
                for k in 0..4 {
                    if cols[k] == usize::MAX {
                        continue;
                    }
                    if end.dp[k] != 0.0 {
                        t.push(bus, cols[k], end.dp[k]);
                    }
                    if end.dq[k] != 0.0 {
                        t.push(n + bus, cols[k], end.dq[k]);
                    }
                }
            }
        }
        (g, t.to_csr())
    }

    fn inequalities(&self, x: &[f64]) -> (Vec<f64>, CsMat<f64>) {
        let flows = self.branch_flows(x);
        let niq = self.limits.len() + self.bounds.len();
        let mut h = vec![0.0; niq];
        let mut t = Triplets::with_capacity(niq, self.layout.nx, 8 * self.limits.len() + niq);

        for (r, lim) in self.limits.iter().enumerate() {
            let Some((from, to)) = flows[lim.branch].as_ref() else {
                // Limits are built for in-service branches only; an
                // out-of-service branch carries zero flow → h = -smax².
                h[r] = -lim.smax2;
                continue;
            };
            let end = if lim.from_end { from } else { to };
            h[r] = end.p * end.p + end.q * end.q - lim.smax2;
            let cols = self.end_cols(lim.branch, lim.from_end);
            for k in 0..4 {
                if cols[k] == usize::MAX {
                    continue;
                }
                let d = 2.0 * (end.p * end.dp[k] + end.q * end.dq[k]);
                if d != 0.0 {
                    t.push(r, cols[k], d);
                }
            }
        }
        let off = self.limits.len();
        for (r, &(col, coef, konst)) in self.bounds.iter().enumerate() {
            h[off + r] = coef * x[col] + konst;
            t.push(off + r, col, coef);
        }
        (h, t.to_csr())
    }

    fn lagrangian_hessian(&self, x: &[f64], lam: &[f64], mu: &[f64]) -> CsMat<f64> {
        let n = self.net.n_bus();
        let base = self.net.base_mva;
        let flows = self.branch_flows(x);
        let mut t = Triplets::with_capacity(
            self.layout.nx,
            self.layout.nx,
            32 * self.net.branches.len() + self.net.gens.len(),
        );

        // Objective curvature: 2·c2·base² on each Pg.
        for (gi, g) in self.net.gens.iter().enumerate() {
            if g.in_service && g.cost.c2 != 0.0 {
                t.push(
                    self.layout.pg[gi],
                    self.layout.pg[gi],
                    2.0 * g.cost.c2 * base * base,
                );
            }
        }

        // Shunt curvature in the balance equations.
        for i in 0..n {
            let (gsh, bsh) = self.shunt[i];
            if gsh != 0.0 || bsh != 0.0 {
                let w = lam[i] * 2.0 * gsh + lam[n + i] * (-2.0 * bsh);
                if w != 0.0 {
                    t.push(self.layout.vm[i], self.layout.vm[i], w);
                }
            }
        }

        // Branch-end curvature: balance equations weighted by λ, flow
        // limits weighted by μ.
        for (bi, br) in self.net.branches.iter().enumerate() {
            let Some((from, to)) = &flows[bi] else {
                continue;
            };
            for (end, bus, from_end) in [(from, br.from_bus, true), (to, br.to_bus, false)] {
                let cols = self.end_cols(bi, from_end);
                let (wp, wq) = (lam[bus], lam[n + bus]);
                if wp != 0.0 || wq != 0.0 {
                    scatter_4x4(&mut t, &cols, |r, c| {
                        wp * end.d2p[r][c] + wq * end.d2q[r][c]
                    });
                }
            }
        }
        for (r, lim) in self.limits.iter().enumerate() {
            let m = mu[r];
            if m == 0.0 {
                continue;
            }
            let Some((from, to)) = flows[lim.branch].as_ref() else {
                continue; // zero flow on an out-of-service branch
            };
            let end = if lim.from_end { from } else { to };
            let cols = self.end_cols(lim.branch, lim.from_end);
            // ∇²(P²+Q²) = 2(∇P∇Pᵀ + P∇²P + ∇Q∇Qᵀ + Q∇²Q).
            scatter_4x4(&mut t, &cols, |r2, c2| {
                2.0 * m
                    * (end.dp[r2] * end.dp[c2]
                        + end.p * end.d2p[r2][c2]
                        + end.dq[r2] * end.dq[c2]
                        + end.q * end.d2q[r2][c2])
            });
        }
        t.to_csr()
    }
}

/// Scatters a dense symmetric 4×4 block into the triplet buffer, skipping
/// fixed (slack-θ) columns.
fn scatter_4x4(t: &mut Triplets<f64>, cols: &[usize; 4], val: impl Fn(usize, usize) -> f64) {
    for r in [THF, THT, VF, VT] {
        if cols[r] == usize::MAX {
            continue;
        }
        for c in [THF, THT, VF, VT] {
            if cols[c] == usize::MAX {
                continue;
            }
            let v = val(r, c);
            if v != 0.0 {
                t.push(cols[r], cols[c], v);
            }
        }
    }
}

/// Solves the ACOPF for a network.
pub fn solve_acopf(net: &Network, opts: &AcopfOptions) -> Result<AcopfSolution, AcopfError> {
    let _span = gm_telemetry::span!("acopf.solve", case = net.name, n_bus = net.n_bus());
    gm_telemetry::counter_add("acopf.solves", 1);
    if let Err(problems) = net.validate() {
        return Err(AcopfError::InvalidNetwork {
            problems: problems.iter().map(|p| p.to_string()).collect(),
        });
    }
    let started = std::time::Instant::now();
    let Some(prob) = AcopfProblem::build(net, opts.warm_start) else {
        return Err(AcopfError::InvalidNetwork {
            problems: vec!["no slack bus".to_string()],
        });
    };
    let res = ipm::solve(&prob, &opts.ipm);
    if !res.converged {
        return Err(AcopfError::NotConverged {
            iterations: res.iterations,
            feascond: res.feascond,
            message: res.message,
        });
    }
    let elapsed = started.elapsed().as_secs_f64();
    Ok(unpack_solution(&prob, &res, elapsed))
}

/// Converts a converged IPM result into the solution schema (shared by
/// the plain ACOPF and the SCOPF extension).
pub(crate) fn unpack_solution(
    prob: &AcopfProblem<'_>,
    res: &ipm::IpmResult,
    elapsed: f64,
) -> AcopfSolution {
    let net = prob.net;
    let base = net.base_mva;
    let x = &res.x;
    let n = net.n_bus();
    let bus_vm: Vec<f64> = (0..n).map(|i| x[prob.layout.vm[i]]).collect();
    let bus_va: Vec<f64> = (0..n)
        .map(|i| {
            if prob.layout.th[i] == usize::MAX {
                0.0
            } else {
                x[prob.layout.th[i]].to_degrees()
            }
        })
        .collect();
    // Active balance rows are 0..n; their multipliers are $/h per p.u.,
    // so dividing by the MVA base yields $/MWh nodal prices.
    let bus_lmp: Vec<f64> = (0..n).map(|i| res.lam[i] / base).collect();
    let mut gen_p = vec![0.0; net.gens.len()];
    let mut gen_q = vec![0.0; net.gens.len()];
    let mut cost = 0.0;
    for (gi, g) in net.gens.iter().enumerate() {
        if !g.in_service {
            continue;
        }
        gen_p[gi] = x[prob.layout.pg[gi]] * base;
        gen_q[gi] = x[prob.layout.qg[gi]] * base;
        cost += g.cost.eval(gen_p[gi]);
    }

    let flows = prob.branch_flows(x);
    let mut loading = Vec::with_capacity(net.branches.len());
    let mut losses = 0.0;
    let mut max_loading = 0.0f64;
    for (bi, br) in net.branches.iter().enumerate() {
        match &flows[bi] {
            None => loading.push(BranchLoading {
                index: bi,
                s_mva: 0.0,
                loading_pct: 0.0,
                p_from_mw: 0.0,
            }),
            Some((from, to)) => {
                losses += (from.p + to.p) * base;
                let s_from = (from.p * from.p + from.q * from.q).sqrt() * base;
                let s_to = (to.p * to.p + to.q * to.q).sqrt() * base;
                let s = s_from.max(s_to);
                let pct = if br.rating_mva > 0.0 {
                    100.0 * s / br.rating_mva
                } else {
                    0.0
                };
                max_loading = max_loading.max(pct);
                loading.push(BranchLoading {
                    index: bi,
                    s_mva: s,
                    loading_pct: pct,
                    p_from_mw: from.p * base,
                });
            }
        }
    }

    let min_v = bus_vm.iter().copied().fold(f64::INFINITY, f64::min);
    let max_v = bus_vm.iter().copied().fold(0.0f64, f64::max);
    let binding = res.mu.iter().filter(|&&m| m > 1e-4).count();
    let total_generation_mw: f64 = gen_p.iter().sum();

    AcopfSolution {
        case_name: net.name.clone(),
        solved: true,
        objective_cost: cost,
        gen_dispatch_mw: gen_p,
        gen_dispatch_mvar: gen_q,
        bus_vm_pu: bus_vm,
        bus_va_deg: bus_va,
        bus_lmp,
        branch_loading: loading,
        min_voltage_pu: min_v,
        max_voltage_pu: max_v,
        max_thermal_loading_pct: max_loading,
        total_generation_mw,
        total_load_mw: net.total_load_mw(),
        losses_mw: losses,
        iterations: res.iterations,
        solve_time_s: elapsed,
        convergence_message: res.message.clone(),
        binding_constraints: binding,
    }
}
