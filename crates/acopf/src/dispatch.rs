//! Economic dispatch baseline (lossless, network-free).
//!
//! Classic equal-incremental-cost (λ-iteration) dispatch of quadratic-cost
//! units against a fixed demand. GridMind uses it as the economic lower
//! bound an ACOPF solution is validated against: ACOPF cost must be ≥ the
//! unconstrained dispatch cost (network constraints can only add cost).

use gm_network::Network;

/// Result of an economic dispatch.
#[derive(Clone, Debug)]
pub struct DispatchResult {
    /// MW per generator (index-aligned with `Network::gens`; zero for
    /// out-of-service units).
    pub p_mw: Vec<f64>,
    /// Total cost ($/h).
    pub cost: f64,
    /// The marginal price λ ($/MWh) at the solution.
    pub lambda: f64,
    /// Whether demand was satisfiable within unit limits.
    pub feasible: bool,
}

/// Dispatches the in-service units against `demand_mw`.
///
/// Uses bisection on the system marginal price: each unit's output at
/// price λ is `clamp((λ − c1)/(2c2), Pmin, Pmax)` (for linear-cost units a
/// step at `λ = c1`), which is monotone in λ.
pub fn economic_dispatch(net: &Network, demand_mw: f64) -> DispatchResult {
    let units: Vec<(usize, f64, f64, f64, f64)> = net
        .gens
        .iter()
        .enumerate()
        .filter(|(_, g)| g.in_service)
        .map(|(i, g)| (i, g.cost.c2, g.cost.c1, g.p_min_mw, g.p_max_mw))
        .collect();
    let mut p_mw = vec![0.0; net.gens.len()];
    if units.is_empty() {
        return DispatchResult {
            p_mw,
            cost: 0.0,
            lambda: 0.0,
            feasible: demand_mw <= 0.0,
        };
    }
    let pmin: f64 = units.iter().map(|u| u.3).sum();
    let pmax: f64 = units.iter().map(|u| u.4).sum();
    let feasible = (pmin..=pmax).contains(&demand_mw);
    let target = demand_mw.clamp(pmin, pmax);

    let output_at = |lambda: f64| -> f64 {
        units
            .iter()
            .map(|&(_, c2, c1, lo, hi)| {
                if c2 > 1e-12 {
                    ((lambda - c1) / (2.0 * c2)).clamp(lo, hi)
                } else if lambda >= c1 {
                    hi
                } else {
                    lo
                }
            })
            .sum()
    };

    // Bracket λ.
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    while output_at(hi) < target && hi < 1e9 {
        hi *= 2.0;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if output_at(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let lambda = 0.5 * (lo + hi);

    // Final outputs at λ, with any residual (from flat cost segments)
    // spread across unclamped units.
    let mut total = 0.0;
    for &(gi, c2, c1, lo_p, hi_p) in &units {
        let p = if c2 > 1e-12 {
            ((lambda - c1) / (2.0 * c2)).clamp(lo_p, hi_p)
        } else if lambda >= c1 {
            hi_p
        } else {
            lo_p
        };
        p_mw[gi] = p;
        total += p;
    }
    let residual = target - total;
    if residual.abs() > 1e-9 {
        // Residual arises only on flat cost segments (λ exactly at some
        // unit's marginal cost): spread it across those *marginal* units —
        // adjusting any other unit would violate equal-incremental-cost.
        let marginal_room = |gi: usize, c2: f64, c1: f64, lo_p: f64, hi_p: f64| -> f64 {
            let mc = c1 + 2.0 * c2 * p_mw[gi];
            if (mc - lambda).abs() > 1e-4 * (1.0 + lambda.abs()) {
                return 0.0;
            }
            if residual > 0.0 {
                hi_p - p_mw[gi]
            } else {
                lo_p - p_mw[gi] // negative
            }
        };
        let mut room: Vec<(usize, f64)> = units
            .iter()
            .map(|&(gi, c2, c1, lo_p, hi_p)| (gi, marginal_room(gi, c2, c1, lo_p, hi_p)))
            .filter(|&(_, r)| r.abs() > 1e-12)
            .collect();
        // Fall back to every unit with headroom if no marginal unit has any.
        if room.is_empty() {
            room = units
                .iter()
                .map(|&(gi, _, _, lo_p, hi_p)| {
                    let r = if residual > 0.0 {
                        hi_p - p_mw[gi]
                    } else {
                        lo_p - p_mw[gi]
                    };
                    (gi, r)
                })
                .filter(|&(_, r)| r.abs() > 1e-12)
                .collect();
        }
        let room_total: f64 = room.iter().map(|&(_, r)| r).sum();
        if room_total.abs() > 1e-12 {
            for (gi, r) in room.drain(..) {
                p_mw[gi] += residual * r / room_total;
            }
        }
    }

    let cost = net
        .gens
        .iter()
        .enumerate()
        .filter(|(_, g)| g.in_service)
        .map(|(gi, g)| g.cost.eval(p_mw[gi]))
        .sum();
    DispatchResult {
        p_mw,
        cost,
        lambda,
        feasible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_network::{cases, CaseId, GenCost, Generator, Network};

    fn unit(bus: usize, c2: f64, c1: f64, pmax: f64) -> Generator {
        Generator {
            bus,
            p_mw: 0.0,
            q_mvar: 0.0,
            vm_setpoint_pu: 1.0,
            p_min_mw: 0.0,
            p_max_mw: pmax,
            q_min_mvar: -50.0,
            q_max_mvar: 50.0,
            in_service: true,
            cost: GenCost { c2, c1, c0: 0.0 },
        }
    }

    #[test]
    fn equal_lambda_split_for_identical_units() {
        let mut net = Network::new("ed");
        net.gens.push(unit(0, 0.01, 10.0, 100.0));
        net.gens.push(unit(0, 0.01, 10.0, 100.0));
        let r = economic_dispatch(&net, 120.0);
        assert!(r.feasible);
        assert!((r.p_mw[0] - 60.0).abs() < 1e-6);
        assert!((r.p_mw[1] - 60.0).abs() < 1e-6);
        // λ = 10 + 2·0.01·60 = 11.2.
        assert!((r.lambda - 11.2).abs() < 1e-6);
    }

    #[test]
    fn cheap_unit_loads_first() {
        let mut net = Network::new("ed");
        net.gens.push(unit(0, 0.01, 5.0, 100.0)); // cheap
        net.gens.push(unit(0, 0.01, 30.0, 100.0)); // expensive
        let r = economic_dispatch(&net, 80.0);
        assert!((r.p_mw[0] - 80.0).abs() < 1e-6, "{:?}", r.p_mw);
        assert!(r.p_mw[1].abs() < 1e-6);
    }

    #[test]
    fn capacity_limit_respected() {
        let mut net = Network::new("ed");
        net.gens.push(unit(0, 0.01, 5.0, 50.0));
        net.gens.push(unit(0, 0.01, 30.0, 100.0));
        let r = economic_dispatch(&net, 90.0);
        assert!((r.p_mw[0] - 50.0).abs() < 1e-6);
        assert!((r.p_mw[1] - 40.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_demand_flagged() {
        let mut net = Network::new("ed");
        net.gens.push(unit(0, 0.01, 5.0, 50.0));
        let r = economic_dispatch(&net, 500.0);
        assert!(!r.feasible);
        assert!((r.p_mw[0] - 50.0).abs() < 1e-6); // best effort
    }

    #[test]
    fn out_of_service_units_excluded() {
        let mut net = Network::new("ed");
        net.gens.push(unit(0, 0.01, 5.0, 100.0));
        net.gens.push(unit(0, 0.01, 5.0, 100.0));
        net.gens[1].in_service = false;
        let r = economic_dispatch(&net, 60.0);
        assert_eq!(r.p_mw[1], 0.0);
        assert!((r.p_mw[0] - 60.0).abs() < 1e-6);
    }

    #[test]
    fn lower_bounds_acopf_cost_on_ieee14() {
        let net = cases::load(CaseId::Ieee14);
        let ed = economic_dispatch(&net, net.total_load_mw());
        let ac = crate::solve_acopf(&net, &crate::AcopfOptions::default()).unwrap();
        assert!(
            ed.cost <= ac.objective_cost + 1e-6,
            "ED {} must lower-bound ACOPF {}",
            ed.cost,
            ac.objective_cost
        );
        // And they should be within a loss-allowance of each other.
        assert!(ac.objective_cost < ed.cost * 1.25);
    }

    #[test]
    fn linear_cost_units_step_dispatch() {
        let mut net = Network::new("ed");
        net.gens.push(unit(0, 0.0, 10.0, 60.0));
        net.gens.push(unit(0, 0.0, 20.0, 60.0));
        let r = economic_dispatch(&net, 90.0);
        assert!((r.p_mw[0] - 60.0).abs() < 1e-6, "{:?}", r.p_mw);
        assert!((r.p_mw[1] - 30.0).abs() < 1e-6);
    }
}
