//! Virtual session clock.
//!
//! The paper's latency evaluation mixes two time sources: real solver time
//! (the deterministic tools actually run) and LLM backend latency (remote
//! API calls). GridMind-RS replaces the remote APIs with simulated models,
//! so their latency is accounted on a *virtual* clock instead of slept:
//! benches reproduce the paper's seconds-scale timing distributions while
//! running in milliseconds.
//!
//! The clock lives in `gm-telemetry` (re-exported by `gm-agents`) so that
//! [`VirtualClock::measure`] can feed the installed metrics collector:
//! real solver time and virtual LLM latency land in one unified timeline.

use parking_lot::Mutex;
use std::sync::Arc;

/// A shared monotonically increasing virtual clock (seconds).
///
/// Total time mixes two components with different reproducibility:
/// explicit [`VirtualClock::advance`] contributions (simulated model
/// latency — identical across runs) and [`VirtualClock::measure`]
/// contributions (real compute wall time — host and run dependent).
/// The deterministic component is tracked separately so artifacts that
/// must be byte-reproducible (flight-recorder dumps) can timestamp
/// against it alone.
#[derive(Clone, Debug, Default)]
pub struct VirtualClock {
    /// `(total, deterministic)` seconds.
    inner: Arc<Mutex<(f64, f64)>>,
}

impl VirtualClock {
    /// New clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time (seconds): simulated latency plus measured
    /// real compute.
    pub fn now(&self) -> f64 {
        self.inner.lock().0
    }

    /// The deterministic component of [`VirtualClock::now`]: only
    /// explicit `advance` contributions, excluding measured wall time.
    /// Two identical runs read identical values.
    pub fn deterministic_now(&self) -> f64 {
        self.inner.lock().1
    }

    /// Advances the clock by `dt` *virtual* seconds (negative values are
    /// ignored). Counts toward both the total and the deterministic
    /// component.
    pub fn advance(&self, dt: f64) {
        if dt > 0.0 && dt.is_finite() {
            let mut t = self.inner.lock();
            t.0 += dt;
            t.1 += dt;
        }
    }

    /// Advances only the total by measured wall seconds.
    fn advance_wall(&self, dt: f64) {
        if dt > 0.0 && dt.is_finite() {
            self.inner.lock().0 += dt;
        }
    }

    /// Runs `f`, advancing the clock by its measured wall time, and
    /// returns the result with the elapsed seconds. Used for tool
    /// invocations, whose cost is real compute. When a telemetry
    /// collector is installed on the calling thread the measurement is
    /// also recorded into its registry (`clock.measures` /
    /// `clock.measure_s`), unifying real compute and virtual latency in
    /// one timeline.
    pub fn measure<T>(&self, f: impl FnOnce() -> T) -> (T, f64) {
        let start = std::time::Instant::now();
        let out = f();
        let dt = start.elapsed().as_secs_f64();
        self.advance_wall(dt);
        crate::counter_add("clock.measures", 1);
        crate::histogram_record("clock.measure_s", dt);
        (out, dt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), 0.0);
        c.advance(2.5);
        c.advance(0.5);
        assert!((c.now() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_ignored() {
        let c = VirtualClock::new();
        c.advance(-1.0);
        c.advance(f64::NAN);
        assert_eq!(c.now(), 0.0);
    }

    #[test]
    fn clones_share_time() {
        let a = VirtualClock::new();
        let b = a.clone();
        a.advance(1.0);
        assert_eq!(b.now(), 1.0);
    }

    #[test]
    fn deterministic_component_excludes_measured_wall_time() {
        let c = VirtualClock::new();
        c.advance(2.0);
        c.measure(|| std::thread::sleep(std::time::Duration::from_millis(3)));
        assert!(c.now() > 2.0, "total includes measured wall time");
        assert!(
            (c.deterministic_now() - 2.0).abs() < 1e-12,
            "deterministic component must see only advance()"
        );
    }

    #[test]
    fn measure_advances_by_wall_time() {
        let c = VirtualClock::new();
        let (value, dt) = c.measure(|| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            42
        });
        assert_eq!(value, 42);
        assert!(dt >= 0.004);
        assert!((c.now() - dt).abs() < 1e-12);
    }

    #[test]
    fn measure_records_into_installed_collector() {
        let reg = crate::Registry::new();
        let _g = reg.install();
        let c = VirtualClock::new();
        c.measure(|| 1);
        c.measure(|| 2);
        assert_eq!(reg.counter_value("clock.measures"), 2);
        let snap = reg.snapshot();
        assert_eq!(snap.histograms["clock.measure_s"].count, 2);
    }
}
