//! Trace/metrics export and the report renderer behind `gm-trace`.
//!
//! [`Registry::snapshot`] captures everything a registry recorded into a
//! serializable [`TelemetrySnapshot`]; [`Registry::export`] is the same
//! as JSON. [`render_report`] turns an exported snapshot (or any JSON
//! blob embedding one under a `"telemetry"` key, e.g. a saved session or
//! a `BENCH_*.json` file) back into a human-readable report: a
//! flamegraph-style span tree (siblings aggregated by name) plus counter
//! and histogram summary tables.

use crate::flight::FlightEvent;
use crate::quantile::QuantileSketch;
use crate::registry::{Event, Histogram, Registry, SpanNode};
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::collections::BTreeMap;

/// Serializable capture of one registry's full state.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Wall seconds the registry had been alive at capture.
    pub wall_elapsed_s: f64,
    /// Virtual-clock time at capture (0 without an attached clock).
    pub virtual_now_s: f64,
    /// Counter values.
    pub counters: BTreeMap<String, u64>,
    /// Histograms.
    pub histograms: BTreeMap<String, Histogram>,
    /// Quantile sketches (absent in pre-SLO exports).
    #[serde(default)]
    pub quantiles: BTreeMap<String, QuantileSketch>,
    /// Flight-recorder ring contents, oldest first (absent in pre-SLO
    /// exports).
    #[serde(default)]
    pub flight: Vec<FlightEvent>,
    /// Buffered events, chronological.
    pub events: Vec<Event>,
    /// Span tree (flat, parent-linked).
    pub spans: Vec<SpanNode>,
}

impl Registry {
    /// Captures the registry state.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            wall_elapsed_s: self.wall_elapsed(),
            virtual_now_s: self.virtual_now(),
            counters: self.counters(),
            histograms: self.histograms_snapshot(),
            quantiles: self.quantiles_snapshot(),
            flight: self.flight_snapshot(),
            events: self.events(),
            spans: self.spans(),
        }
    }

    /// Captures the registry state as JSON (the trace-export format).
    pub fn export(&self) -> Value {
        serde_json::to_value(self.snapshot()).unwrap_or(Value::Null)
    }
}

/// Locates the telemetry snapshot inside an arbitrary exported JSON file:
/// either the value itself is a snapshot, or it embeds one under a
/// `"telemetry"` key (saved sessions, `BENCH_*.json`).
pub fn find_snapshot(blob: &Value) -> Option<TelemetrySnapshot> {
    let candidate = if blob.get("counters").is_some() && blob.get("spans").is_some() {
        blob.clone()
    } else {
        blob.get("telemetry")?.clone()
    };
    serde_json::from_value(candidate).ok()
}

/// One aggregated row of the span tree: all same-named siblings under the
/// same aggregated parent path, collapsed flamegraph-style.
struct TreeRow {
    depth: usize,
    name: String,
    calls: usize,
    total_s: f64,
    max_s: f64,
}

fn aggregate(
    snapshot: &TelemetrySnapshot,
    children: &BTreeMap<Option<usize>, Vec<usize>>,
    ids: &[usize],
    depth: usize,
    rows: &mut Vec<TreeRow>,
) {
    // Group sibling spans by name, preserving first-seen order.
    let mut order: Vec<&str> = Vec::new();
    let mut groups: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for &id in ids {
        let name = snapshot.spans[id].name.as_str();
        if !groups.contains_key(name) {
            order.push(name);
        }
        groups.entry(name).or_default().push(id);
    }
    for name in order {
        let members = &groups[name];
        let durs: Vec<f64> = members
            .iter()
            .map(|&id| snapshot.spans[id].dur_s.unwrap_or(0.0))
            .collect();
        rows.push(TreeRow {
            depth,
            name: name.to_string(),
            calls: members.len(),
            total_s: durs.iter().sum(),
            max_s: durs.iter().fold(0.0f64, |m, &d| m.max(d)),
        });
        let mut kid_ids: Vec<usize> = members
            .iter()
            .flat_map(|&id| children.get(&Some(id)).cloned().unwrap_or_default())
            .collect();
        kid_ids.sort_unstable();
        if !kid_ids.is_empty() {
            aggregate(snapshot, children, &kid_ids, depth + 1, rows);
        }
    }
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.0}µs", s * 1e6)
    }
}

/// Renders the per-session report: span tree, counters, histograms,
/// events. Returns an error string when `blob` holds no snapshot.
pub fn render_report(blob: &Value) -> Result<String, String> {
    let snap = find_snapshot(blob)
        .ok_or_else(|| "no telemetry snapshot found (expected a gm-telemetry export, a saved session, or a BENCH_*.json file)".to_string())?;
    let mut out = String::new();
    out.push_str(&format!(
        "session: wall {} | virtual {:.2}s | {} spans | {} events\n",
        fmt_secs(snap.wall_elapsed_s),
        snap.virtual_now_s,
        snap.spans.len(),
        snap.events.len(),
    ));

    // ---- Span tree (aggregated flamegraph-style).
    let mut children: BTreeMap<Option<usize>, Vec<usize>> = BTreeMap::new();
    for s in &snap.spans {
        children.entry(s.parent).or_default().push(s.id);
    }
    let roots = children.get(&None).cloned().unwrap_or_default();
    if !roots.is_empty() {
        out.push_str("\nspan tree (wall time, siblings aggregated by name):\n");
        let mut rows = Vec::new();
        aggregate(&snap, &children, &roots, 0, &mut rows);
        let root_total: f64 = rows
            .iter()
            .filter(|r| r.depth == 0)
            .map(|r| r.total_s)
            .sum();
        for r in &rows {
            let pct = if root_total > 0.0 {
                100.0 * r.total_s / root_total
            } else {
                0.0
            };
            let calls = if r.calls > 1 {
                format!(" ×{}", r.calls)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "  {:indent$}{}{}  {} total ({:.1}%), {} max\n",
                "",
                r.name,
                calls,
                fmt_secs(r.total_s),
                pct,
                fmt_secs(r.max_s),
                indent = 2 * r.depth,
            ));
        }
    }

    // ---- Counters.
    if !snap.counters.is_empty() {
        out.push_str("\ncounters:\n");
        let width = snap.counters.keys().map(|k| k.len()).max().unwrap_or(0);
        for (k, v) in &snap.counters {
            out.push_str(&format!("  {k:width$}  {v}\n"));
        }
    }

    // ---- Histograms.
    if !snap.histograms.is_empty() {
        out.push_str("\nhistograms (count / mean / max):\n");
        let width = snap.histograms.keys().map(|k| k.len()).max().unwrap_or(0);
        for (k, h) in &snap.histograms {
            out.push_str(&format!(
                "  {k:width$}  {} / {:.4} / {:.4}\n",
                h.count,
                h.mean(),
                h.max
            ));
        }
    }

    // ---- Quantile sketches.
    if !snap.quantiles.is_empty() {
        out.push_str("\nquantiles (count / p50 / p99 / max):\n");
        let width = snap.quantiles.keys().map(|k| k.len()).max().unwrap_or(0);
        for (k, s) in &snap.quantiles {
            out.push_str(&format!(
                "  {k:width$}  {} / {} / {} / {}\n",
                s.count,
                fmt_secs(s.quantile(0.5).unwrap_or(0.0)),
                fmt_secs(s.quantile(0.99).unwrap_or(0.0)),
                fmt_secs(s.max),
            ));
        }
    }

    // ---- Flight recorder.
    if !snap.flight.is_empty() {
        out.push_str(&format!(
            "\nflight recorder ({} entries, oldest first):\n",
            snap.flight.len()
        ));
        for e in &snap.flight {
            out.push_str(&format!(
                "  [#{:<5} v {:7.2}s] {}: {}\n",
                e.seq, e.v_at_s, e.kind, e.detail
            ));
        }
    }

    // ---- Events.
    if !snap.events.is_empty() {
        out.push_str("\nevents:\n");
        for e in &snap.events {
            out.push_str(&format!(
                "  [v {:7.2}s] {:?} {}: {}\n",
                e.v_at_s, e.level, e.target, e.message
            ));
        }
    }
    Ok(out)
}

/// Solver metrics every fully instrumented end-to-end session must have
/// recorded with a nonzero value — the CI gate behind `gm-trace --check`.
pub const REQUIRED_SOLVER_METRICS: &[&str] = &[
    "pf.newton.solves",
    "pf.newton.iterations",
    "sparse.lu.factorizations",
    "sparse.symbolic.build",
    "sparse.symbolic.reuse",
    // The AMD ordering is the default fill-reducing preorder: any
    // instrumented session that factors at all must have ordered
    // through it at least once.
    "sparse.amd.orders",
    "acopf.ipm.solves",
    "acopf.ipm.iterations",
    "ca.outages_evaluated",
    // Cascade screening must actually engage: every sweep classifies its
    // outages (`verified`) and solves suspects through the compensated
    // base factorization (`compensated`). `ca.screen.screened_out` is
    // deliberately absent — on unrated networks the screen honestly
    // verifies everything, so zero screened-out is a legal outcome.
    "ca.screen.verified",
    "ca.screen.compensated",
    // The batched multi-scenario engine: the scenario count and the
    // warm-start hit count must both be live — a batch that flat-starts
    // every scenario has silently lost its amortization.
    "batch.scenarios",
    "batch.warm_hits",
    "tool.invocations",
    "llm.turns",
    "coordinator.steps",
];

/// Serve-layer metrics every serve trace must additionally carry. An
/// entry ending in `.` is a prefix family: at least one quantile sketch
/// or counter under that prefix must be live. Exact entries are counters
/// that must be nonzero.
pub const REQUIRED_SERVE_METRICS: &[&str] = &[
    "serve.requests",
    "serve.latency.",
    "telemetry.flight.recorded",
];

/// True when the snapshot came from a serve run (any `serve.` counter
/// was touched) — such traces are held to [`REQUIRED_SERVE_METRICS`] on
/// top of the solver set.
pub fn is_serve_snapshot(snap: &TelemetrySnapshot) -> bool {
    snap.counters.keys().any(|k| k.starts_with("serve."))
}

/// Checks that every required metric is present and nonzero in the
/// snapshot embedded in `blob`, accumulating **all** failures rather than
/// stopping at the first: the full solver set, plus — for serve traces —
/// the serve latency/flight-recorder set. Returns the list of
/// missing/zero metric names (empty = pass); prefix families are
/// reported as `prefix.*`.
pub fn check_required_metrics(blob: &Value) -> Result<Vec<String>, String> {
    let snap = find_snapshot(blob).ok_or_else(|| "no telemetry snapshot found".to_string())?;
    let mut missing: Vec<String> = REQUIRED_SOLVER_METRICS
        .iter()
        .filter(|m| snap.counters.get(**m).copied().unwrap_or(0) == 0)
        .map(|m| m.to_string())
        .collect();
    if is_serve_snapshot(&snap) {
        for m in REQUIRED_SERVE_METRICS {
            if m.ends_with('.') {
                let live = snap
                    .quantiles
                    .iter()
                    .any(|(k, s)| k.starts_with(*m) && s.count > 0)
                    || snap
                        .counters
                        .iter()
                        .any(|(k, v)| k.starts_with(*m) && *v > 0);
                if !live {
                    missing.push(format!("{m}*"));
                }
            } else if snap.counters.get(*m).copied().unwrap_or(0) == 0 {
                missing.push(m.to_string());
            }
        }
    }
    Ok(missing)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated() -> Registry {
        let reg = Registry::new();
        let _g = reg.install();
        {
            let _a = crate::span!("coordinator.ask");
            for _ in 0..3 {
                let _b = crate::span!("pf.newton.solve", case = "case14");
            }
        }
        crate::counter_add("pf.newton.solves", 3);
        crate::histogram_record("pf.newton.iterations_per_solve", 4.0);
        crate::event("quality", "Solution quality assessment: Overall=7.2/10");
        reg
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let reg = populated();
        let blob = reg.export();
        let snap = find_snapshot(&blob).expect("snapshot present");
        assert_eq!(snap.spans.len(), 4);
        assert_eq!(snap.counters["pf.newton.solves"], 3);
        assert_eq!(snap.events.len(), 1);
    }

    #[test]
    fn embedded_snapshot_is_found() {
        let reg = populated();
        let mut wrapper = serde_json::json!({"active_case": "case14"});
        wrapper["telemetry"] = reg.export();
        let snap = find_snapshot(&wrapper).expect("embedded snapshot");
        assert_eq!(snap.counters["pf.newton.solves"], 3);
    }

    #[test]
    fn report_renders_tree_and_tables() {
        let reg = populated();
        let report = render_report(&reg.export()).expect("renders");
        assert!(report.contains("coordinator.ask"));
        assert!(report.contains("pf.newton.solve ×3"));
        assert!(report.contains("pf.newton.solves"));
        assert!(report.contains("Overall=7.2/10"));
    }

    #[test]
    fn check_reports_missing_metrics() {
        let reg = populated();
        let missing = check_required_metrics(&reg.export()).expect("snapshot");
        assert!(missing.contains(&"acopf.ipm.solves".to_string()));
        assert!(!missing.contains(&"pf.newton.solves".to_string()));
    }

    #[test]
    fn render_rejects_foreign_json() {
        assert!(render_report(&serde_json::json!({"x": 1})).is_err());
    }

    #[test]
    fn pre_slo_exports_still_deserialize() {
        // A snapshot serialized before the quantile/flight fields existed.
        let legacy = serde_json::json!({
            "wall_elapsed_s": 1.0,
            "virtual_now_s": 0.0,
            "counters": {"pf.newton.solves": 3},
            "histograms": {},
            "events": [],
            "spans": [],
        });
        let snap = find_snapshot(&legacy).expect("legacy snapshot parses");
        assert!(snap.quantiles.is_empty());
        assert!(snap.flight.is_empty());
    }

    #[test]
    fn serve_traces_demand_serve_metrics_too() {
        let reg = populated();
        // Mark it as a serve trace, but record none of the serve set.
        reg.add("serve.busy_rejections", 1);
        let missing = check_required_metrics(&reg.export()).expect("snapshot");
        assert!(missing.contains(&"serve.requests".to_string()));
        assert!(missing.contains(&"serve.latency.*".to_string()));
        assert!(missing.contains(&"telemetry.flight.recorded".to_string()));
        // Solver misses are reported in the same run, not short-circuited.
        assert!(missing.contains(&"acopf.ipm.solves".to_string()));

        // Satisfy the serve set: demands clear.
        reg.add("serve.requests", 4);
        reg.record_quantile("serve.latency.pf.total_s", 0.01);
        reg.flight_record("serve.pickup", "session=0".into());
        let missing = check_required_metrics(&reg.export()).expect("snapshot");
        assert!(!missing.iter().any(|m| m.starts_with("serve.")));
        assert!(!missing.contains(&"telemetry.flight.recorded".to_string()));
    }

    #[test]
    fn non_serve_traces_skip_the_serve_set() {
        let reg = populated();
        let missing = check_required_metrics(&reg.export()).expect("snapshot");
        assert!(!missing.iter().any(|m| m.starts_with("serve.")));
    }

    #[test]
    fn report_renders_quantiles_and_flight() {
        let reg = populated();
        reg.record_quantile("serve.latency.pf.total_s", 0.025);
        reg.flight_record("cache.miss", "kind=pf".into());
        let report = render_report(&reg.export()).expect("renders");
        assert!(report.contains("serve.latency.pf.total_s"));
        assert!(report.contains("flight recorder (1 entries"));
        assert!(report.contains("cache.miss: kind=pf"));
    }
}
