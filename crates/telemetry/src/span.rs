//! Guard-style spans.
//!
//! `let _span = span!("newton.solve", case = net.name);` opens a span in
//! the installed collector and closes it when the guard drops. Spans nest
//! per thread: while a guard is alive, new spans on the same thread
//! become its children. Without an installed collector the guard is inert
//! and costs a thread-local read.

use crate::registry::{set_current_parent, with_current, Registry};
use std::collections::BTreeMap;
use std::time::Instant;

/// An open span; closes (records duration, restores the ambient parent)
/// on drop.
pub struct SpanGuard {
    active: Option<Active>,
}

struct Active {
    reg: Registry,
    id: usize,
    prev_parent: Option<usize>,
    t0: Instant,
}

impl SpanGuard {
    /// Opens a span with no attributes.
    pub fn enter(name: impl Into<String>) -> SpanGuard {
        Self::enter_with(name, Vec::new())
    }

    /// Opens a span with key/value attributes.
    pub fn enter_with(name: impl Into<String>, attrs: Vec<(String, String)>) -> SpanGuard {
        let opened = with_current(|reg, parent| {
            let id = reg.open_span(
                name.into(),
                attrs.into_iter().collect::<BTreeMap<_, _>>(),
                parent,
            )?;
            Some(Active {
                reg: reg.clone(),
                id,
                prev_parent: parent,
                t0: Instant::now(),
            })
        });
        let active = opened.flatten();
        if let Some(a) = &active {
            set_current_parent(Some(a.id));
        }
        SpanGuard { active }
    }

    /// The span's id in the trace (None when no collector was installed).
    pub fn id(&self) -> Option<usize> {
        self.active.as_ref().map(|a| a.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(a) = self.active.take() {
            a.reg.close_span(a.id, a.t0.elapsed().as_secs_f64());
            set_current_parent(a.prev_parent);
        }
    }
}

/// Opens a guard-style span in the installed collector.
///
/// ```
/// let reg = gm_telemetry::Registry::new();
/// let _g = reg.install();
/// {
///     let _outer = gm_telemetry::span!("outer");
///     let _inner = gm_telemetry::span!("inner", case = "case14", n = 14);
/// }
/// let spans = reg.spans();
/// assert_eq!(spans.len(), 2);
/// assert_eq!(spans[1].parent, Some(0));
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::SpanGuard::enter_with(
            $name,
            vec![$((stringify!($key).to_string(), format!("{}", $value))),+],
        )
    };
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn spans_nest_and_close() {
        let reg = Registry::new();
        let _g = reg.install();
        {
            let _a = crate::span!("a");
            {
                let _b = crate::span!("b", k = 1);
            }
            let _c = crate::span!("c");
        }
        let spans = reg.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "a");
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].name, "b");
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[1].attrs["k"], "1");
        assert_eq!(spans[2].name, "c");
        assert_eq!(spans[2].parent, Some(0));
        assert!(spans.iter().all(|s| s.dur_s.is_some()));
    }

    #[test]
    fn inert_without_collector() {
        let g = crate::span!("nothing");
        assert!(g.id().is_none());
    }

    #[test]
    fn scoped_install_attaches_to_captured_parent() {
        // Simulates the rayon fan-out: a worker thread re-installs the
        // sweep thread's registry under the sweep span.
        let reg = Registry::new();
        let _g = reg.install();
        let sweep = crate::span!("sweep");
        let sweep_id = sweep.id();
        let reg2 = reg.clone();
        let handle = std::thread::spawn(move || {
            let _w = reg2.install_scoped(sweep_id);
            let _child = crate::span!("worker");
            crate::counter_add("worker.done", 1);
        });
        handle.join().ok();
        drop(sweep);
        let spans = reg.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].name, "worker");
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(reg.counter_value("worker.done"), 1);
    }
}
