//! The metrics registry and the scoped collector.
//!
//! A [`Registry`] is a cheap-to-clone handle to a shared store of
//! counters, fixed-bucket histograms, events, and a span tree. Nothing is
//! global: a registry becomes the *installed collector* for the current
//! thread via [`Registry::install`], and every instrumentation site
//! (`counter_add`, `histogram_record`, [`crate::span!`]) records into the
//! innermost installed collector — or does (almost) nothing when none is
//! installed, which keeps the uninstrumented hot-path cost to a
//! thread-local read.
//!
//! Fan-out across threads (the rayon N-1 sweep) is explicit: capture
//! [`current`]/[`current_span`] before the fan-out and re-install inside
//! each closure with [`Registry::install_scoped`], so worker-side metrics
//! land in the same registry and spans nest under the sweep span.

use crate::clock::VirtualClock;
use crate::flight::{FlightEvent, FlightRing};
use crate::quantile::QuantileSketch;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Severity of a telemetry event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventLevel {
    /// Routine diagnostic (routing decisions, cache outcomes).
    Info,
    /// Suspicious condition worth surfacing in reports.
    Warn,
}

/// One structured event (the telemetry replacement for ad-hoc
/// `println!` in library code).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Event {
    /// Wall seconds since the registry was created.
    pub at_s: f64,
    /// Virtual-clock seconds at emission (0 when no clock is attached).
    pub v_at_s: f64,
    /// Severity.
    pub level: EventLevel,
    /// Component that emitted the event ("coordinator", "quality", …).
    pub target: String,
    /// Message text.
    pub message: String,
}

/// Fixed-bucket histogram: `bounds` are the upper edges of the first
/// `bounds.len()` buckets; one overflow bucket catches the rest.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    /// Upper bucket edges, ascending. A sample `x` lands in the first
    /// bucket with `x <= bound`, or the overflow bucket.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
}

impl Histogram {
    /// Empty histogram with the given ascending upper bucket edges.
    pub fn new(bounds: &[f64]) -> Histogram {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| x <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        self.sum += x;
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Merges another histogram into this one. The bucket layouts must
    /// match; on mismatch the other histogram's samples are folded in by
    /// bucket upper edge (an approximation), keeping count/sum/min/max
    /// exact either way.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        if self.bounds == other.bounds {
            for (a, b) in self.counts.iter_mut().zip(&other.counts) {
                *a += b;
            }
        } else {
            for (i, &c) in other.counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let representative = other.bounds.get(i).copied().unwrap_or(other.max);
                let idx = self
                    .bounds
                    .iter()
                    .position(|&b| representative <= b)
                    .unwrap_or(self.bounds.len());
                self.counts[idx] += c;
            }
        }
    }
}

/// One node of the span tree. Durations are wall time; `v_*` timestamps
/// come from the attached [`VirtualClock`] (0 when none), so traces keep
/// the deterministic virtual timeline of the session.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpanNode {
    /// Index of this span in the trace.
    pub id: usize,
    /// Span name ("pf.newton.solve", "tool.run_contingency_analysis"…).
    pub name: String,
    /// Key/value attributes.
    pub attrs: BTreeMap<String, String>,
    /// Parent span id (None for roots).
    pub parent: Option<usize>,
    /// Wall seconds since the registry was created when the span opened.
    pub start_s: f64,
    /// Wall duration (None while still open).
    pub dur_s: Option<f64>,
    /// Virtual time at open.
    pub v_start_s: f64,
    /// Virtual time at close.
    pub v_end_s: f64,
}

/// Hard cap on buffered events (overflow is counted, not stored).
const MAX_EVENTS: usize = 4096;
/// Hard cap on recorded spans (overflow is counted, not stored).
const MAX_SPANS: usize = 65_536;

#[derive(Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    quantiles: Mutex<BTreeMap<String, QuantileSketch>>,
    flight: Mutex<FlightRing>,
    events: Mutex<Vec<Event>>,
    spans: Mutex<Vec<SpanNode>>,
    clock: Mutex<Option<VirtualClock>>,
}

/// Cheap-to-clone handle to a telemetry store.
#[derive(Clone)]
pub struct Registry {
    start: Instant,
    inner: Arc<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let counters = self.inner.counters.lock().len();
        let spans = self.inner.spans.lock().len();
        write!(f, "Registry({counters} counters, {spans} spans)")
    }
}

struct Ctx {
    reg: Registry,
    parent: Option<usize>,
}

thread_local! {
    static STACK: RefCell<Vec<Ctx>> = const { RefCell::new(Vec::new()) };
}

/// Pops the collector installed by [`Registry::install`] when dropped.
pub struct InstallGuard {
    _private: (),
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Default bucket edges for duration-like histograms (seconds).
pub const TIME_BOUNDS: &[f64] = &[
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0,
];
/// Default bucket edges for iteration-count-like histograms.
pub const COUNT_BOUNDS: &[f64] = &[
    1.0, 2.0, 3.0, 5.0, 8.0, 12.0, 20.0, 30.0, 50.0, 100.0, 200.0, 500.0,
];

/// Picks default bucket edges from the metric name: `*_s` metrics are
/// durations, everything else is a count-like quantity.
fn default_bounds(name: &str) -> &'static [f64] {
    if name.ends_with("_s") {
        TIME_BOUNDS
    } else {
        COUNT_BOUNDS
    }
}

impl Registry {
    /// Fresh empty registry.
    pub fn new() -> Registry {
        Registry {
            start: Instant::now(),
            inner: Arc::new(Inner::default()),
        }
    }

    /// Attaches the session's virtual clock; spans and events recorded
    /// from now on carry virtual timestamps from it.
    pub fn attach_clock(&self, clock: VirtualClock) {
        *self.inner.clock.lock() = Some(clock);
    }

    /// Current virtual time (0 without an attached clock).
    pub fn virtual_now(&self) -> f64 {
        self.inner.clock.lock().as_ref().map_or(0.0, |c| c.now())
    }

    /// Wall seconds since the registry was created.
    pub fn wall_elapsed(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Installs this registry as the innermost collector on the current
    /// thread until the guard drops.
    pub fn install(&self) -> InstallGuard {
        self.install_scoped(None)
    }

    /// Installs with an explicit ambient parent span — the fan-out hook:
    /// worker closures re-install the sweep thread's registry so their
    /// metrics join the same trace under `parent`.
    pub fn install_scoped(&self, parent: Option<usize>) -> InstallGuard {
        STACK.with(|s| {
            s.borrow_mut().push(Ctx {
                reg: self.clone(),
                parent,
            });
        });
        InstallGuard { _private: () }
    }

    /// Adds to a named counter.
    pub fn add(&self, name: &str, delta: u64) {
        *self
            .inner
            .counters
            .lock()
            .entry(name.to_string())
            .or_insert(0) += delta;
    }

    /// Current value of a counter (0 when never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner.counters.lock().get(name).copied().unwrap_or(0)
    }

    /// Snapshot of all counters.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.inner.counters.lock().clone()
    }

    /// Sum of every counter whose name starts with `prefix` (0 when none
    /// match). Counter families share a dotted prefix — e.g.
    /// `sum_prefix("recovery.")` totals all recovery-ladder rungs.
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.inner
            .counters
            .lock()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    }

    /// Snapshot of all histograms.
    pub fn histograms_snapshot(&self) -> BTreeMap<String, Histogram> {
        self.inner.histograms.lock().clone()
    }

    /// Records a sample into a named [`QuantileSketch`] (created at the
    /// default resolution on first record).
    pub fn record_quantile(&self, name: &str, x: f64) {
        self.inner
            .quantiles
            .lock()
            .entry(name.to_string())
            .or_default()
            .record(x);
    }

    /// Snapshot of all quantile sketches.
    pub fn quantiles_snapshot(&self) -> BTreeMap<String, QuantileSketch> {
        self.inner.quantiles.lock().clone()
    }

    /// Quantile estimate from a named sketch (`None` when the sketch is
    /// absent or empty).
    pub fn quantile_value(&self, name: &str, q: f64) -> Option<f64> {
        self.inner.quantiles.lock().get(name)?.quantile(q)
    }

    /// Records an entry into the flight-recorder ring, bumping
    /// `telemetry.flight.recorded` (and `telemetry.flight.evicted` when
    /// the ring wrapped). Entries are stamped with the *deterministic*
    /// virtual time (simulated latency only, excluding measured real
    /// compute — see [`VirtualClock::deterministic_now`]): dumps must be
    /// byte-reproducible across runs, and the real-compute timeline
    /// already lives in the span tree and latency sketches.
    pub fn flight_record(&self, kind: &str, detail: String) {
        let evicted = {
            let v_now = self
                .inner
                .clock
                .lock()
                .as_ref()
                .map_or(0.0, VirtualClock::deterministic_now);
            self.inner.flight.lock().push(v_now, kind, detail)
        };
        self.add("telemetry.flight.recorded", 1);
        if evicted {
            self.add("telemetry.flight.evicted", 1);
        }
    }

    /// Resizes the flight-recorder ring (evicting oldest entries when
    /// shrinking).
    pub fn set_flight_capacity(&self, capacity: usize) {
        self.inner.flight.lock().set_capacity(capacity);
    }

    /// Snapshot of the flight-recorder ring, oldest first.
    pub fn flight_snapshot(&self) -> Vec<FlightEvent> {
        self.inner.flight.lock().snapshot()
    }

    /// Appends another registry's flight entries into this ring with
    /// fresh sequence numbers. Call in a deterministic order (the serve
    /// layer merges session rings in slot-id order) so merged dumps are
    /// reproducible.
    pub fn merge_flight(&self, other: &Registry) {
        let theirs = other.flight_snapshot();
        self.inner.flight.lock().absorb(&theirs);
    }

    /// Pre-registers a histogram with explicit bucket edges (otherwise
    /// the first `record` picks defaults by name).
    pub fn register_histogram(&self, name: &str, bounds: &[f64]) {
        self.inner
            .histograms
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds));
    }

    /// Records a sample into a named histogram.
    pub fn record(&self, name: &str, x: f64) {
        self.inner
            .histograms
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(default_bounds(name)))
            .record(x);
    }

    /// Emits a structured event.
    pub fn emit(&self, level: EventLevel, target: &str, message: String) {
        let mut events = self.inner.events.lock();
        if events.len() >= MAX_EVENTS {
            drop(events);
            self.add("telemetry.events_dropped", 1);
            return;
        }
        events.push(Event {
            at_s: self.wall_elapsed(),
            v_at_s: self.virtual_now(),
            level,
            target: target.to_string(),
            message,
        });
    }

    /// Snapshot of buffered events.
    pub fn events(&self) -> Vec<Event> {
        self.inner.events.lock().clone()
    }

    /// Snapshot of the span tree (flat, parent-linked).
    pub fn spans(&self) -> Vec<SpanNode> {
        self.inner.spans.lock().clone()
    }

    /// Opens a span; returns its id, or None when the trace is full.
    pub(crate) fn open_span(
        &self,
        name: String,
        attrs: BTreeMap<String, String>,
        parent: Option<usize>,
    ) -> Option<usize> {
        let mut spans = self.inner.spans.lock();
        if spans.len() >= MAX_SPANS {
            drop(spans);
            self.add("telemetry.spans_dropped", 1);
            return None;
        }
        let id = spans.len();
        let v_now = self.virtual_now();
        spans.push(SpanNode {
            id,
            name,
            attrs,
            parent,
            start_s: self.wall_elapsed(),
            dur_s: None,
            v_start_s: v_now,
            v_end_s: v_now,
        });
        Some(id)
    }

    /// Closes a span opened by [`Registry::open_span`].
    pub(crate) fn close_span(&self, id: usize, dur_s: f64) {
        let v_now = self.virtual_now();
        if let Some(node) = self.inner.spans.lock().get_mut(id) {
            node.dur_s = Some(dur_s);
            node.v_end_s = v_now;
        }
    }

    /// Merges another registry's counters, histograms, and quantile
    /// sketches into this one (events, spans, and the flight ring are
    /// not merged; flight rings merge explicitly via
    /// [`Registry::merge_flight`]).
    pub fn merge_metrics(&self, other: &Registry) {
        {
            let mut mine = self.inner.counters.lock();
            for (k, v) in other.inner.counters.lock().iter() {
                *mine.entry(k.clone()).or_insert(0) += v;
            }
        }
        {
            let mut mine = self.inner.histograms.lock();
            for (k, h) in other.inner.histograms.lock().iter() {
                mine.entry(k.clone())
                    .or_insert_with(|| Histogram::new(&h.bounds))
                    .merge(h);
            }
        }
        let mut mine = self.inner.quantiles.lock();
        for (k, s) in other.inner.quantiles.lock().iter() {
            mine.entry(k.clone())
                .or_insert_with(|| QuantileSketch::new(s.sub))
                .merge(s);
        }
    }

    /// Clears all recorded data (bucket registrations are kept).
    pub fn reset(&self) {
        self.inner.counters.lock().clear();
        for h in self.inner.histograms.lock().values_mut() {
            let bounds = h.bounds.clone();
            *h = Histogram::new(&bounds);
        }
        for s in self.inner.quantiles.lock().values_mut() {
            *s = QuantileSketch::new(s.sub);
        }
        self.inner.flight.lock().clear();
        self.inner.events.lock().clear();
        self.inner.spans.lock().clear();
    }
}

/// The innermost installed collector on this thread, if any.
pub fn current() -> Option<Registry> {
    STACK.with(|s| s.borrow().last().map(|c| c.reg.clone()))
}

/// The current ambient span id on this thread, if any.
pub fn current_span() -> Option<usize> {
    STACK.with(|s| s.borrow().last().and_then(|c| c.parent))
}

pub(crate) fn with_current<R>(f: impl FnOnce(&Registry, Option<usize>) -> R) -> Option<R> {
    STACK.with(|s| {
        let stack = s.borrow();
        let ctx = stack.last()?;
        Some(f(&ctx.reg, ctx.parent))
    })
}

pub(crate) fn set_current_parent(parent: Option<usize>) {
    STACK.with(|s| {
        if let Some(ctx) = s.borrow_mut().last_mut() {
            ctx.parent = parent;
        }
    });
}

/// Adds to a counter in the installed collector (no-op otherwise).
pub fn counter_add(name: &str, delta: u64) {
    with_current(|reg, _| reg.add(name, delta));
}

/// Records a histogram sample in the installed collector (no-op
/// otherwise).
pub fn histogram_record(name: &str, x: f64) {
    with_current(|reg, _| reg.record(name, x));
}

/// Records a quantile-sketch sample in the installed collector (no-op
/// otherwise).
pub fn quantile_record(name: &str, x: f64) {
    with_current(|reg, _| reg.record_quantile(name, x));
}

/// Records a flight-recorder entry in the installed collector (no-op
/// otherwise).
pub fn flight_event(kind: &str, detail: impl Into<String>) {
    let detail = detail.into();
    with_current(|reg, _| reg.flight_record(kind, detail));
}

/// Emits an info event through the installed collector (no-op
/// otherwise). Library code routes its would-be `println!` diagnostics
/// here; stdout stays clean.
pub fn event(target: &str, message: impl Into<String>) {
    let message = message.into();
    with_current(|reg, _| reg.emit(EventLevel::Info, target, message));
}

/// Emits a warning event through the installed collector.
pub fn warn_event(target: &str, message: impl Into<String>) {
    let message = message.into();
    with_current(|reg, _| reg.emit(EventLevel::Warn, target, message));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_registry() {
        let a = Registry::new();
        let b = Registry::new();
        {
            let _g = a.install();
            counter_add("x", 2);
            counter_add("x", 3);
        }
        {
            let _g = b.install();
            counter_add("x", 7);
        }
        assert_eq!(a.counter_value("x"), 5);
        assert_eq!(b.counter_value("x"), 7);
        // Nothing installed: recording is a no-op, not a panic.
        counter_add("x", 100);
        assert_eq!(a.counter_value("x"), 5);
    }

    #[test]
    fn sum_prefix_totals_a_counter_family() {
        let reg = Registry::new();
        reg.add("recovery.attempts", 2);
        reg.add("recovery.newton_flat", 1);
        reg.add("recovery.dc", 1);
        reg.add("recover", 50); // shorter name, not in the family
        reg.add("recoveryx", 50); // no dot separator, not in the family
        reg.add("serve.timeouts", 9);
        assert_eq!(reg.sum_prefix("recovery."), 4);
        assert_eq!(reg.sum_prefix("absent."), 0);
    }

    #[test]
    fn nested_installs_shadow() {
        let outer = Registry::new();
        let inner = Registry::new();
        let _g1 = outer.install();
        counter_add("n", 1);
        {
            let _g2 = inner.install();
            counter_add("n", 1);
        }
        counter_add("n", 1);
        assert_eq!(outer.counter_value("n"), 2);
        assert_eq!(inner.counter_value("n"), 1);
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new(&[1.0, 5.0, 10.0]);
        for x in [0.5, 1.0, 2.0, 7.0, 11.0, 100.0] {
            h.record(x);
        }
        assert_eq!(h.counts, vec![2, 1, 1, 2]);
        assert_eq!(h.count, 6);
        assert!((h.min - 0.5).abs() < 1e-12);
        assert!((h.max - 100.0).abs() < 1e-12);
        assert!((h.sum - 121.5).abs() < 1e-12);
        h.record(f64::NAN); // ignored
        assert_eq!(h.count, 6);
    }

    #[test]
    fn histogram_merge_same_bounds() {
        let mut a = Histogram::new(&[1.0, 2.0]);
        let mut b = Histogram::new(&[1.0, 2.0]);
        a.record(0.5);
        b.record(1.5);
        b.record(9.0);
        a.merge(&b);
        assert_eq!(a.counts, vec![1, 1, 1]);
        assert_eq!(a.count, 3);
        assert!((a.max - 9.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_mismatched_bounds_preserves_totals() {
        let mut a = Histogram::new(&[10.0]);
        let mut b = Histogram::new(&[1.0, 2.0]);
        b.record(0.5);
        b.record(1.5);
        b.record(50.0);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert!((a.sum - 52.0).abs() < 1e-12);
        assert_eq!(a.counts.iter().sum::<u64>(), 3);
    }

    #[test]
    fn events_capped() {
        let r = Registry::new();
        let _g = r.install();
        for i in 0..(MAX_EVENTS + 10) {
            event("t", format!("e{i}"));
        }
        assert_eq!(r.events().len(), MAX_EVENTS);
        assert_eq!(r.counter_value("telemetry.events_dropped"), 10);
    }

    #[test]
    fn merge_metrics_combines_registries() {
        let a = Registry::new();
        let b = Registry::new();
        a.add("c", 1);
        b.add("c", 2);
        a.record("h", 1.5);
        b.record("h", 2.5);
        a.record_quantile("q_s", 0.1);
        b.record_quantile("q_s", 0.2);
        a.merge_metrics(&b);
        assert_eq!(a.counter_value("c"), 3);
        assert_eq!(a.snapshot().histograms["h"].count, 2);
        assert_eq!(a.snapshot().quantiles["q_s"].count, 2);
    }

    #[test]
    fn quantile_record_lands_in_installed_collector() {
        let r = Registry::new();
        {
            let _g = r.install();
            quantile_record("serve.latency.test.total_s", 0.050);
            quantile_record("serve.latency.test.total_s", 0.150);
        }
        // Nothing installed: no-op.
        quantile_record("serve.latency.test.total_s", 9.0);
        let p100 = r.quantile_value("serve.latency.test.total_s", 1.0).unwrap();
        assert!((p100 - 0.150).abs() <= 0.150 * 0.022);
        assert!(r.quantile_value("absent", 0.5).is_none());
    }

    #[test]
    fn flight_events_count_recordings_and_evictions() {
        let r = Registry::new();
        r.set_flight_capacity(2);
        let _g = r.install();
        flight_event("serve.enqueue", "session=0 seq=0");
        flight_event("serve.pickup", "session=0 seq=0");
        flight_event("cache.miss", "kind=pf");
        let snap = r.flight_snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].kind, "serve.pickup");
        assert_eq!(r.counter_value("telemetry.flight.recorded"), 3);
        assert_eq!(r.counter_value("telemetry.flight.evicted"), 1);
    }

    #[test]
    fn merge_flight_appends_in_call_order() {
        let server = Registry::new();
        let s1 = Registry::new();
        let s2 = Registry::new();
        server.flight_record("serve.start", "workers=2".into());
        s1.flight_record("serve.pickup", "session=1".into());
        s2.flight_record("serve.pickup", "session=2".into());
        server.merge_flight(&s1);
        server.merge_flight(&s2);
        let snap = server.flight_snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[1].detail, "session=1");
        assert_eq!(snap[2].detail, "session=2");
        assert_eq!(
            snap.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }
}
