//! Flight recorder: a bounded ring of recent structured events.
//!
//! Events ([`crate::event`]) and spans are capped and stop recording
//! once full — right for long soaks, wrong for postmortems, where the
//! *last* few hundred things that happened before a gate violation are
//! exactly what's needed. The flight recorder keeps a fixed-capacity
//! ring of [`FlightEvent`]s per registry: recording never fails, old
//! entries are evicted (and counted) once the ring is full, and memory
//! stays bounded no matter how long the run. Serve workers record
//! enqueue/pickup/deadline transitions; fault injection and the
//! recovery ladder record their firings; the cache records hit/miss
//! outcomes. On a gate violation the per-worker rings are merged
//! ([`crate::Registry::merge_flight`]) and dumped as JSON.
//!
//! Determinism: an entry carries only its sequence number, the virtual
//! clock reading, and its kind/detail strings — no wall time — so a
//! dump from a deterministic run is byte-identical across replays.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Default ring capacity per registry.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// One flight-recorder entry. Deliberately wall-clock free so dumps from
/// deterministic runs are byte-identical.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// Monotone sequence number within the ring (re-assigned on merge).
    pub seq: u64,
    /// Virtual-clock seconds at recording (0 without an attached clock).
    pub v_at_s: f64,
    /// Event kind ("serve.enqueue", "fault.fired", "cache.hit", …).
    pub kind: String,
    /// Free-form detail ("session=3 seq=7", "site=pf.base", …).
    pub detail: String,
}

/// Fixed-capacity ring buffer of [`FlightEvent`]s.
#[derive(Debug)]
pub struct FlightRing {
    capacity: usize,
    next_seq: u64,
    evicted: u64,
    events: VecDeque<FlightEvent>,
}

impl Default for FlightRing {
    fn default() -> Self {
        FlightRing::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRing {
    /// Empty ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> FlightRing {
        FlightRing {
            capacity: capacity.max(1),
            next_seq: 0,
            evicted: 0,
            events: VecDeque::new(),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resizes the ring, evicting oldest entries if shrinking below the
    /// current length.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.events.len() > self.capacity {
            self.events.pop_front();
            self.evicted += 1;
        }
    }

    /// Appends an event, evicting the oldest when full. Returns `true`
    /// when an old entry was evicted.
    pub fn push(&mut self, v_at_s: f64, kind: &str, detail: String) -> bool {
        let mut evicted = false;
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.evicted += 1;
            evicted = true;
        }
        self.events.push_back(FlightEvent {
            seq: self.next_seq,
            v_at_s,
            kind: kind.to_string(),
            detail,
        });
        self.next_seq += 1;
        evicted
    }

    /// Entries currently held, oldest first.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total entries evicted so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Snapshot of the held entries, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        self.events.iter().cloned().collect()
    }

    /// Appends another ring's entries (oldest first) with fresh sequence
    /// numbers, evicting as needed. The merge order is the caller's
    /// responsibility — the serve layer merges the server ring first,
    /// then session rings in slot-id order, so merged dumps are
    /// deterministic.
    pub fn absorb(&mut self, other: &[FlightEvent]) {
        for e in other {
            self.push(e.v_at_s, &e.kind, e.detail.clone());
        }
    }

    /// Drops all entries and resets sequence/eviction counts.
    pub fn clear(&mut self) {
        self.events.clear();
        self.next_seq = 0;
        self.evicted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_first() {
        let mut r = FlightRing::new(3);
        for i in 0..5 {
            r.push(i as f64, "k", format!("e{i}"));
        }
        let snap = r.snapshot();
        assert_eq!(r.len(), 3);
        assert_eq!(r.evicted(), 2);
        let details: Vec<&str> = snap.iter().map(|e| e.detail.as_str()).collect();
        assert_eq!(details, vec!["e2", "e3", "e4"]);
        // Sequence numbers keep counting across evictions.
        assert_eq!(snap[0].seq, 2);
        assert_eq!(snap[2].seq, 4);
    }

    #[test]
    fn shrink_evicts_down_to_capacity() {
        let mut r = FlightRing::new(8);
        for i in 0..8 {
            r.push(0.0, "k", format!("e{i}"));
        }
        r.set_capacity(2);
        assert_eq!(r.len(), 2);
        assert_eq!(r.evicted(), 6);
        assert_eq!(r.snapshot()[0].detail, "e6");
    }

    #[test]
    fn absorb_reassigns_sequence_numbers() {
        let mut a = FlightRing::new(10);
        let mut b = FlightRing::new(10);
        a.push(1.0, "x", "a0".into());
        b.push(2.0, "y", "b0".into());
        b.push(3.0, "y", "b1".into());
        a.absorb(&b.snapshot());
        let snap = a.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(
            snap.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(snap[1].detail, "b0");
        assert!((snap[1].v_at_s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut r = FlightRing::new(0);
        r.push(0.0, "k", "a".into());
        r.push(0.0, "k", "b".into());
        assert_eq!(r.len(), 1);
        assert_eq!(r.snapshot()[0].detail, "b");
    }
}
