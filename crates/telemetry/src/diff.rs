//! Trace diffing for regression attribution.
//!
//! `gm-trace diff A.json B.json` answers "e2e moved by 6% — *which
//! phase* moved?": both snapshots' span trees are aggregated
//! flamegraph-style (siblings grouped by name, identified by their full
//! name path from the root), aligned path-for-path, and rendered with
//! per-node wall-time and call-count deltas. Counters and quantile
//! sketches (p50/p99) diff alongside, so a latency shift correlates
//! with the iteration/factorization counters that explain it.

use crate::export::{find_snapshot, TelemetrySnapshot};
use serde_json::Value;
use std::collections::BTreeMap;

/// One aggregated span-tree node, identified by its name path.
struct PathRow {
    path: Vec<String>,
    calls: usize,
    total_s: f64,
}

fn aggregate_paths(
    snap: &TelemetrySnapshot,
    children: &BTreeMap<Option<usize>, Vec<usize>>,
    ids: &[usize],
    prefix: &[String],
    rows: &mut Vec<PathRow>,
) {
    let mut order: Vec<&str> = Vec::new();
    let mut groups: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for &id in ids {
        let name = snap.spans[id].name.as_str();
        if !groups.contains_key(name) {
            order.push(name);
        }
        groups.entry(name).or_default().push(id);
    }
    for name in order {
        let members = &groups[name];
        let mut path = prefix.to_vec();
        path.push(name.to_string());
        rows.push(PathRow {
            path: path.clone(),
            calls: members.len(),
            total_s: members
                .iter()
                .map(|&id| snap.spans[id].dur_s.unwrap_or(0.0))
                .sum(),
        });
        let mut kid_ids: Vec<usize> = members
            .iter()
            .flat_map(|&id| children.get(&Some(id)).cloned().unwrap_or_default())
            .collect();
        kid_ids.sort_unstable();
        if !kid_ids.is_empty() {
            aggregate_paths(snap, children, &kid_ids, &path, rows);
        }
    }
}

fn span_rows(snap: &TelemetrySnapshot) -> Vec<PathRow> {
    let mut children: BTreeMap<Option<usize>, Vec<usize>> = BTreeMap::new();
    for s in &snap.spans {
        children.entry(s.parent).or_default().push(s.id);
    }
    let roots = children.get(&None).cloned().unwrap_or_default();
    let mut rows = Vec::new();
    aggregate_paths(snap, &children, &roots, &[], &mut rows);
    rows
}

fn fmt_secs(s: f64) -> String {
    if s.abs() >= 1.0 {
        format!("{s:.2}s")
    } else if s.abs() >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.0}µs", s * 1e6)
    }
}

fn fmt_delta(a: f64, b: f64) -> String {
    let d = b - a;
    let sign = if d >= 0.0 { "+" } else { "-" };
    if a > 0.0 {
        format!(
            "{sign}{} ({sign}{:.1}%)",
            fmt_secs(d.abs()),
            100.0 * d.abs() / a
        )
    } else {
        format!("{sign}{}", fmt_secs(d.abs()))
    }
}

/// Renders the aligned diff of two trace exports (`a` = baseline, `b` =
/// candidate). Errors when either blob holds no snapshot.
pub fn render_diff(a: &Value, b: &Value) -> Result<String, String> {
    let sa =
        find_snapshot(a).ok_or_else(|| "first file holds no telemetry snapshot".to_string())?;
    let sb =
        find_snapshot(b).ok_or_else(|| "second file holds no telemetry snapshot".to_string())?;
    let mut out = String::new();
    out.push_str(&format!(
        "wall: {} -> {}  {}\n",
        fmt_secs(sa.wall_elapsed_s),
        fmt_secs(sb.wall_elapsed_s),
        fmt_delta(sa.wall_elapsed_s, sb.wall_elapsed_s),
    ));

    // ---- Span tree, aligned by name path (baseline order, then new paths).
    let rows_a = span_rows(&sa);
    let rows_b = span_rows(&sb);
    let b_by_path: BTreeMap<&[String], &PathRow> =
        rows_b.iter().map(|r| (r.path.as_slice(), r)).collect();
    let a_paths: std::collections::BTreeSet<&[String]> =
        rows_a.iter().map(|r| r.path.as_slice()).collect();
    if !rows_a.is_empty() || !rows_b.is_empty() {
        out.push_str("\nspan tree (baseline -> candidate, siblings aggregated by name):\n");
        for r in &rows_a {
            let depth = r.path.len() - 1;
            let name = r.path.last().map(String::as_str).unwrap_or("");
            match b_by_path.get(r.path.as_slice()) {
                Some(other) => {
                    let calls = if r.calls == other.calls {
                        format!("×{}", r.calls)
                    } else {
                        format!("×{}->×{}", r.calls, other.calls)
                    };
                    out.push_str(&format!(
                        "  {:indent$}{name} {calls}  {} -> {}  {}\n",
                        "",
                        fmt_secs(r.total_s),
                        fmt_secs(other.total_s),
                        fmt_delta(r.total_s, other.total_s),
                        indent = 2 * depth,
                    ));
                }
                None => {
                    out.push_str(&format!(
                        "  {:indent$}{name} ×{}  {} -> (gone)\n",
                        "",
                        r.calls,
                        fmt_secs(r.total_s),
                        indent = 2 * depth,
                    ));
                }
            }
        }
        for r in &rows_b {
            if !a_paths.contains(r.path.as_slice()) {
                let depth = r.path.len() - 1;
                let name = r.path.last().map(String::as_str).unwrap_or("");
                out.push_str(&format!(
                    "  {:indent$}{name} ×{}  (new) -> {}\n",
                    "",
                    r.calls,
                    fmt_secs(r.total_s),
                    indent = 2 * depth,
                ));
            }
        }
    }

    // ---- Counters (changed only).
    let mut counter_keys: Vec<&String> = sa.counters.keys().chain(sb.counters.keys()).collect();
    counter_keys.sort_unstable();
    counter_keys.dedup();
    let changed: Vec<(&String, u64, u64)> = counter_keys
        .into_iter()
        .map(|k| {
            (
                k,
                sa.counters.get(k).copied().unwrap_or(0),
                sb.counters.get(k).copied().unwrap_or(0),
            )
        })
        .filter(|(_, va, vb)| va != vb)
        .collect();
    if !changed.is_empty() {
        out.push_str("\ncounters (changed):\n");
        let width = changed.iter().map(|(k, _, _)| k.len()).max().unwrap_or(0);
        for (k, va, vb) in changed {
            let d = vb as i128 - va as i128;
            out.push_str(&format!("  {k:width$}  {va} -> {vb}  ({d:+})\n"));
        }
    }

    // ---- Quantile sketches (p50/p99 per metric present in either).
    let mut q_keys: Vec<&String> = sa.quantiles.keys().chain(sb.quantiles.keys()).collect();
    q_keys.sort_unstable();
    q_keys.dedup();
    if !q_keys.is_empty() {
        out.push_str("\nquantiles (p50 / p99, baseline -> candidate):\n");
        let width = q_keys.iter().map(|k| k.len()).max().unwrap_or(0);
        for k in q_keys {
            let q = |snap: &TelemetrySnapshot, p: f64| {
                snap.quantiles
                    .get(k)
                    .and_then(|s| s.quantile(p))
                    .map_or_else(|| "absent".to_string(), fmt_secs)
            };
            out.push_str(&format!(
                "  {k:width$}  p50 {} -> {} | p99 {} -> {}\n",
                q(&sa, 0.5),
                q(&sb, 0.5),
                q(&sa, 0.99),
                q(&sb, 0.99),
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn trace(extra_solves: usize, slow: bool) -> Value {
        let reg = Registry::new();
        let _g = reg.install();
        {
            let _a = crate::span!("coordinator.ask");
            for _ in 0..(1 + extra_solves) {
                let _b = crate::span!("pf.newton.solve");
                if slow {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            }
        }
        crate::counter_add("pf.newton.solves", 1 + extra_solves as u64);
        reg.record_quantile("serve.latency.pf.total_s", if slow { 0.2 } else { 0.1 });
        reg.export()
    }

    #[test]
    fn diff_aligns_paths_and_reports_deltas() {
        let a = trace(0, false);
        let b = trace(2, true);
        let out = render_diff(&a, &b).expect("diff renders");
        assert!(out.contains("coordinator.ask"));
        assert!(out.contains("pf.newton.solve ×1->×3"));
        assert!(out.contains("pf.newton.solves"));
        assert!(out.contains("1 -> 3  (+2)"));
        assert!(out.contains("serve.latency.pf.total_s"));
    }

    #[test]
    fn diff_marks_new_and_gone_paths() {
        let a = trace(0, false);
        let reg = Registry::new();
        {
            let _g = reg.install();
            let _s = crate::span!("acopf.ipm.solve");
        }
        let b = reg.export();
        let out = render_diff(&a, &b).expect("diff renders");
        assert!(out.contains("(gone)"));
        assert!(out.contains("acopf.ipm.solve ×1  (new)"));
    }

    #[test]
    fn diff_rejects_foreign_json() {
        let good = trace(0, false);
        assert!(render_diff(&serde_json::json!({"x": 1}), &good).is_err());
        assert!(render_diff(&good, &serde_json::json!({"y": 2})).is_err());
    }
}
