//! # gm-telemetry
//!
//! Structured observability for the GridMind-RS stack: guard-style span
//! tracing, a counters/histograms metrics registry, structured events,
//! and a JSON trace exporter — with zero heavy dependencies (only the
//! vendored `serde`/`parking_lot` stand-ins).
//!
//! Design in one paragraph: nothing is global. A [`Registry`] is
//! installed as the *scoped collector* for the current thread
//! ([`Registry::install`]); instrumentation sites — [`counter_add`],
//! [`histogram_record`], [`event`], and the [`span!`] macro — record
//! into the innermost installed collector and are near-no-ops when none
//! is installed, so solver hot loops pay a thread-local read when
//! telemetry is off. Cross-thread fan-outs (the rayon N-1 sweep)
//! re-install the parent registry with [`Registry::install_scoped`] so
//! worker metrics and spans join the same trace. The session's
//! [`VirtualClock`] lives here too, stamping spans and events with
//! virtual timestamps so traces replay the deterministic session
//! timeline. [`Registry::export`] emits the JSON consumed by the
//! `gm-trace` report binary, embedded in session saves and
//! `BENCH_*.json` files.

pub mod clock;
pub mod diff;
pub mod export;
pub mod flight;
pub mod quantile;
pub mod registry;
pub mod slo;
pub mod span;

pub use clock::VirtualClock;
pub use diff::render_diff;
pub use export::{
    check_required_metrics, find_snapshot, is_serve_snapshot, render_report, TelemetrySnapshot,
    REQUIRED_SERVE_METRICS, REQUIRED_SOLVER_METRICS,
};
pub use flight::{FlightEvent, FlightRing, DEFAULT_FLIGHT_CAPACITY};
pub use quantile::QuantileSketch;
pub use registry::{
    counter_add, current, current_span, event, flight_event, histogram_record, quantile_record,
    warn_event, Event, EventLevel, Histogram, InstallGuard, Registry, SpanNode, COUNT_BOUNDS,
    TIME_BOUNDS,
};
pub use slo::{KindSlo, SloSpec, SloViolation, SLO_KEYS};
pub use span::SpanGuard;
