//! `gm-trace` — render a telemetry trace export as a human-readable
//! report.
//!
//! Usage:
//!
//! ```text
//! gm-trace <file.json> [--check]
//! ```
//!
//! The file may be a raw `gm-telemetry` export, a saved GridMind session
//! (telemetry embedded under the `"telemetry"` key), or a `BENCH_*.json`
//! file. With `--check` the process additionally exits nonzero unless
//! every required solver metric (Newton/IPM iterations, LU
//! factorizations, contingency evaluations, tool/LLM/coordinator
//! activity) is present and nonzero — the CI gate that instrumentation
//! stays wired end to end.

use std::process::ExitCode;

fn run() -> Result<bool, String> {
    let mut check = false;
    let mut path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            "--help" | "-h" => {
                println!("usage: gm-trace <file.json> [--check]");
                return Ok(true);
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument: {other}")),
        }
    }
    let path = path.ok_or_else(|| "usage: gm-trace <file.json> [--check]".to_string())?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let blob: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("{path} is not valid JSON: {e}"))?;
    print!("{}", gm_telemetry::render_report(&blob)?);
    if check {
        let missing = gm_telemetry::check_required_metrics(&blob)?;
        if !missing.is_empty() {
            eprintln!("\ncheck FAILED: required solver metrics absent or zero:");
            for m in &missing {
                eprintln!("  - {m}");
            }
            return Ok(false);
        }
        println!(
            "\ncheck OK: all {} required solver metrics nonzero",
            gm_telemetry::REQUIRED_SOLVER_METRICS.len()
        );
    }
    Ok(true)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("gm-trace: {msg}");
            ExitCode::FAILURE
        }
    }
}
