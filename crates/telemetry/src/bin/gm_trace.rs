//! `gm-trace` — render, gate, and diff telemetry trace exports.
//!
//! Usage:
//!
//! ```text
//! gm-trace <file.json> [--check]
//! gm-trace slo <file.json> [--spec slo.toml]
//! gm-trace diff <baseline.json> <candidate.json>
//! ```
//!
//! Files may be raw `gm-telemetry` exports, saved GridMind sessions
//! (telemetry embedded under the `"telemetry"` key), or `BENCH_*.json`
//! files.
//!
//! With `--check` the process exits nonzero unless every required solver
//! metric (Newton/IPM iterations, LU factorizations, contingency
//! evaluations, tool/LLM/coordinator activity) is present and nonzero —
//! and, for serve traces, the serve latency sketches and flight-recorder
//! counters too. All missing metrics are reported in one run.
//!
//! `slo` evaluates the per-query-kind p50/p99/max targets in an
//! `slo.toml` spec against the trace's `serve.latency.<kind>.total_s`
//! quantile sketches and exits nonzero on any violation — the soak/chaos
//! CI latency gate.
//!
//! `diff` aligns two exports' aggregated span trees and renders
//! per-phase wall-time, counter, and quantile deltas — regression
//! attribution for "the benchmark moved".

use std::process::ExitCode;

const USAGE: &str = "usage: gm-trace <file.json> [--check]
       gm-trace slo <file.json> [--spec slo.toml]
       gm-trace diff <baseline.json> <candidate.json>";

fn load(path: &str) -> Result<serde_json::Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path} is not valid JSON: {e}"))
}

fn run_report(args: &[String]) -> Result<bool, String> {
    let mut check = false;
    let mut path: Option<&str> = None;
    for arg in args {
        match arg.as_str() {
            "--check" => check = true,
            other if path.is_none() => path = Some(other),
            other => return Err(format!("unexpected argument: {other}")),
        }
    }
    let path = path.ok_or_else(|| USAGE.to_string())?;
    let blob = load(path)?;
    print!("{}", gm_telemetry::render_report(&blob)?);
    if check {
        let missing = gm_telemetry::check_required_metrics(&blob)?;
        if !missing.is_empty() {
            eprintln!("\ncheck FAILED: required metrics absent or zero:");
            for m in &missing {
                eprintln!("  - {m}");
            }
            return Ok(false);
        }
        println!("\ncheck OK: all required metrics nonzero");
    }
    Ok(true)
}

fn run_slo(args: &[String]) -> Result<bool, String> {
    let mut spec_path = "slo.toml".to_string();
    let mut trace_path: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--spec" => {
                spec_path = it
                    .next()
                    .ok_or_else(|| "--spec needs a path".to_string())?
                    .clone();
            }
            other if trace_path.is_none() => trace_path = Some(other),
            other => return Err(format!("unexpected argument: {other}")),
        }
    }
    let trace_path = trace_path.ok_or_else(|| USAGE.to_string())?;
    let spec_text =
        std::fs::read_to_string(&spec_path).map_err(|e| format!("cannot read {spec_path}: {e}"))?;
    let spec = gm_telemetry::SloSpec::parse(&spec_text)?;
    let blob = load(trace_path)?;
    let snap = gm_telemetry::find_snapshot(&blob)
        .ok_or_else(|| format!("{trace_path} holds no telemetry snapshot"))?;
    print!("{}", spec.render_table(&snap));
    let violations = spec.evaluate(&snap);
    if violations.is_empty() {
        println!(
            "\nslo OK: all targets met ({} kinds gated)",
            spec.kinds.len()
        );
        Ok(true)
    } else {
        eprintln!("\nslo FAILED: {} violation(s):", violations.len());
        for v in &violations {
            eprintln!("  - {v}");
        }
        Ok(false)
    }
}

fn run_diff(args: &[String]) -> Result<bool, String> {
    let [a, b] = args else {
        return Err(USAGE.to_string());
    };
    let blob_a = load(a)?;
    let blob_b = load(b)?;
    print!("{}", gm_telemetry::render_diff(&blob_a, &blob_b)?);
    Ok(true)
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("--help") | Some("-h") => {
            println!("{USAGE}");
            Ok(!args.is_empty())
        }
        Some("slo") => run_slo(&args[1..]),
        Some("diff") => run_diff(&args[1..]),
        _ => run_report(&args),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("gm-trace: {msg}");
            ExitCode::FAILURE
        }
    }
}
