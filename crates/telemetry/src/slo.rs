//! Declarative latency SLOs evaluated against trace exports.
//!
//! An [`SloSpec`] is parsed from a committed `slo.toml`: one section per
//! query kind, each carrying optional `p50_ms` / `p99_ms` / `max_ms`
//! targets evaluated against the `serve.latency.<kind>.total_s` quantile
//! sketch in a [`TelemetrySnapshot`]. The parser is a deliberate,
//! tiny TOML subset (section headers, `key = <float>`, `#` comments) so
//! the telemetry crate stays zero-dependency; unknown keys are a parse
//! error, which keeps the spec honest when metrics are renamed (the
//! gm-audit `telemetry-xref` lint cross-references the section names
//! against recorded metric literals for the same reason).
//!
//! ```toml
//! # slo.toml
//! [pf]
//! p50_ms = 40.0
//! p99_ms = 250.0
//! max_ms = 2000.0
//! ```

use crate::export::TelemetrySnapshot;
use serde::{Deserialize, Serialize};

/// Keys accepted inside a kind section.
pub const SLO_KEYS: &[&str] = &["p50_ms", "p99_ms", "max_ms"];

/// Per-kind latency targets (milliseconds; absent = not gated).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct KindSlo {
    /// Query kind — names the `serve.latency.<kind>.total_s` sketch.
    pub kind: String,
    /// Median target.
    pub p50_ms: Option<f64>,
    /// Tail target.
    pub p99_ms: Option<f64>,
    /// Worst-case target (checked against the sketch's exact max).
    pub max_ms: Option<f64>,
}

/// A full SLO spec: one [`KindSlo`] per `[section]`, in file order.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SloSpec {
    /// Per-kind targets in declaration order.
    pub kinds: Vec<KindSlo>,
}

/// One failed target (or a kind with targets but no recorded metric).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SloViolation {
    /// Query kind whose target failed.
    pub kind: String,
    /// Which target failed ("p50_ms", "p99_ms", "max_ms", or "absent").
    pub what: String,
    /// Observed value in milliseconds (0 when the metric is absent).
    pub observed_ms: f64,
    /// The configured target in milliseconds.
    pub target_ms: f64,
}

impl std::fmt::Display for SloViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.what == "absent" {
            write!(
                f,
                "{}: serve.latency.{}.total_s absent from trace (targets configured)",
                self.kind, self.kind
            )
        } else {
            write!(
                f,
                "{}: {} = {:.2}ms exceeds target {:.2}ms",
                self.kind, self.what, self.observed_ms, self.target_ms
            )
        }
    }
}

impl SloSpec {
    /// Parses the minimal-TOML spec text. Errors name the offending line.
    pub fn parse(text: &str) -> Result<SloSpec, String> {
        let mut spec = SloSpec::default();
        let mut current: Option<KindSlo> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(section) = line.strip_prefix('[') {
                let name = section
                    .strip_suffix(']')
                    .ok_or_else(|| format!("slo.toml:{}: unterminated section header", lineno + 1))?
                    .trim();
                if name.is_empty() {
                    return Err(format!("slo.toml:{}: empty section name", lineno + 1));
                }
                if let Some(done) = current.take() {
                    spec.kinds.push(done);
                }
                if spec.kinds.iter().any(|k| k.kind == name) {
                    return Err(format!(
                        "slo.toml:{}: duplicate section [{name}]",
                        lineno + 1
                    ));
                }
                current = Some(KindSlo {
                    kind: name.to_string(),
                    ..KindSlo::default()
                });
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("slo.toml:{}: expected `key = value`", lineno + 1))?;
            let key = key.trim();
            let value: f64 = value
                .trim()
                .parse()
                .map_err(|_| format!("slo.toml:{}: `{key}` is not a number", lineno + 1))?;
            if !value.is_finite() || value <= 0.0 {
                return Err(format!(
                    "slo.toml:{}: `{key}` must be a positive finite number",
                    lineno + 1
                ));
            }
            let kind = current.as_mut().ok_or_else(|| {
                format!(
                    "slo.toml:{}: `{key}` outside any [kind] section",
                    lineno + 1
                )
            })?;
            match key {
                "p50_ms" => kind.p50_ms = Some(value),
                "p99_ms" => kind.p99_ms = Some(value),
                "max_ms" => kind.max_ms = Some(value),
                other => {
                    return Err(format!(
                        "slo.toml:{}: unknown key `{other}` (expected one of {})",
                        lineno + 1,
                        SLO_KEYS.join(", ")
                    ));
                }
            }
        }
        if let Some(done) = current.take() {
            spec.kinds.push(done);
        }
        if spec.kinds.is_empty() {
            return Err("slo.toml: no [kind] sections found".to_string());
        }
        Ok(spec)
    }

    /// Evaluates the spec against a snapshot. Empty result = every
    /// target met. A kind with configured targets but no recorded
    /// `serve.latency.<kind>.total_s` sketch is itself a violation — an
    /// un-recorded metric must not silently pass the gate.
    pub fn evaluate(&self, snap: &TelemetrySnapshot) -> Vec<SloViolation> {
        let mut violations = Vec::new();
        for k in &self.kinds {
            let targets: Vec<(&str, f64)> = [
                ("p50_ms", k.p50_ms),
                ("p99_ms", k.p99_ms),
                ("max_ms", k.max_ms),
            ]
            .iter()
            .filter_map(|&(w, t)| t.map(|t| (w, t)))
            .collect();
            if targets.is_empty() {
                continue;
            }
            let metric = format!("serve.latency.{}.total_s", k.kind);
            let Some(sketch) = snap.quantiles.get(&metric).filter(|s| s.count > 0) else {
                let worst = targets.iter().fold(0.0f64, |m, &(_, t)| m.max(t));
                violations.push(SloViolation {
                    kind: k.kind.clone(),
                    what: "absent".to_string(),
                    observed_ms: 0.0,
                    target_ms: worst,
                });
                continue;
            };
            for (what, target_ms) in targets {
                let observed_s = match what {
                    "p50_ms" => sketch.quantile(0.50).unwrap_or(0.0),
                    "p99_ms" => sketch.quantile(0.99).unwrap_or(0.0),
                    _ => sketch.max,
                };
                let observed_ms = observed_s * 1e3;
                if observed_ms > target_ms {
                    violations.push(SloViolation {
                        kind: k.kind.clone(),
                        what: what.to_string(),
                        observed_ms,
                        target_ms,
                    });
                }
            }
        }
        violations
    }

    /// Renders the observed-vs-target table for every kind in the spec
    /// (the human-readable half of `gm-trace slo`).
    pub fn render_table(&self, snap: &TelemetrySnapshot) -> String {
        let mut out = String::from(
            "kind          p50        p99        max        targets (p50/p99/max ms)\n",
        );
        for k in &self.kinds {
            let metric = format!("serve.latency.{}.total_s", k.kind);
            let (p50, p99, max) = snap
                .quantiles
                .get(&metric)
                .filter(|s| s.count > 0)
                .map_or((None, None, None), |s| {
                    (s.quantile(0.5), s.quantile(0.99), Some(s.max))
                });
            let cell = |v: Option<f64>| {
                v.map_or_else(|| "   absent".to_string(), |v| format!("{:8.2}ms", v * 1e3))
            };
            let tgt = |t: Option<f64>| t.map_or_else(|| "-".to_string(), |t| format!("{t:.0}"));
            out.push_str(&format!(
                "{:<12}{} {} {}  {}/{}/{}\n",
                k.kind,
                cell(p50),
                cell(p99),
                cell(max),
                tgt(k.p50_ms),
                tgt(k.p99_ms),
                tgt(k.max_ms),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    const SPEC: &str = "\
# serve latency targets
[pf]
p50_ms = 50.0
p99_ms = 200.0
max_ms = 1000.0

[contingency]
p99_ms = 500.0  # tail only
";

    #[test]
    fn parses_sections_and_keys() {
        let spec = SloSpec::parse(SPEC).unwrap();
        assert_eq!(spec.kinds.len(), 2);
        assert_eq!(spec.kinds[0].kind, "pf");
        assert_eq!(spec.kinds[0].p50_ms, Some(50.0));
        assert_eq!(spec.kinds[1].kind, "contingency");
        assert!(spec.kinds[1].p50_ms.is_none());
        assert_eq!(spec.kinds[1].p99_ms, Some(500.0));
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(SloSpec::parse("p50_ms = 1.0").is_err()); // key before section
        assert!(SloSpec::parse("[pf]\nbogus_ms = 1.0").is_err()); // unknown key
        assert!(SloSpec::parse("[pf]\np50_ms = fast").is_err()); // not a number
        assert!(SloSpec::parse("[pf]\np50_ms = -3.0").is_err()); // not positive
        assert!(SloSpec::parse("[pf\np50_ms = 1.0").is_err()); // unterminated
        assert!(SloSpec::parse("[pf]\n[pf]").is_err()); // duplicate
        assert!(SloSpec::parse("# only comments\n").is_err()); // empty spec
    }

    fn snapshot_with(kind: &str, samples_s: &[f64]) -> crate::TelemetrySnapshot {
        let reg = Registry::new();
        for &x in samples_s {
            reg.record_quantile(&format!("serve.latency.{kind}.total_s"), x);
        }
        reg.snapshot()
    }

    #[test]
    fn evaluate_passes_when_under_targets() {
        let spec = SloSpec::parse("[pf]\np50_ms = 100.0\np99_ms = 100.0\nmax_ms = 100.0").unwrap();
        let snap = snapshot_with("pf", &[0.010, 0.020, 0.030]);
        assert!(spec.evaluate(&snap).is_empty());
    }

    #[test]
    fn evaluate_flags_each_exceeded_target() {
        let spec = SloSpec::parse("[pf]\np50_ms = 5.0\np99_ms = 15.0\nmax_ms = 25.0").unwrap();
        let snap = snapshot_with("pf", &[0.010, 0.020, 0.030]);
        let v = spec.evaluate(&snap);
        let whats: Vec<&str> = v.iter().map(|x| x.what.as_str()).collect();
        assert_eq!(whats, vec!["p50_ms", "p99_ms", "max_ms"]);
        assert!(v[0].observed_ms > 5.0);
        assert!(v[0].to_string().contains("exceeds target"));
    }

    #[test]
    fn evaluate_flags_absent_metric() {
        let spec = SloSpec::parse("[ghost]\np99_ms = 100.0").unwrap();
        let snap = snapshot_with("pf", &[0.010]);
        let v = spec.evaluate(&snap);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].what, "absent");
        assert!(v[0].to_string().contains("serve.latency.ghost.total_s"));
    }

    #[test]
    fn table_renders_observed_and_targets() {
        let spec = SloSpec::parse(SPEC).unwrap();
        let snap = snapshot_with("pf", &[0.010, 0.020]);
        let table = spec.render_table(&snap);
        assert!(table.contains("pf"));
        assert!(table.contains("contingency"));
        assert!(table.contains("absent"));
        assert!(table.contains("50/200/1000"));
    }
}
