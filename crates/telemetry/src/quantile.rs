//! Log-linear (HDR-style) quantile sketch.
//!
//! The fixed-bucket [`crate::Histogram`] answers "how many samples fell
//! under each hand-picked edge", which is enough for mean/max summaries
//! but useless for tail percentiles: p99 of a latency distribution needs
//! resolution that tracks the *value*, not a static grid. A
//! [`QuantileSketch`] buckets samples at geometrically spaced edges
//! `base · γ^i` with `γ = 2^(1/sub)`, so every bucket spans a constant
//! *relative* width of `γ − 1`. With the default `sub = 32` sub-buckets
//! per octave, `γ ≈ 1.0219`: any quantile estimate is within **2.2%**
//! relative error of the exact nearest-rank percentile (for samples
//! ≥ `BASE`; see [`QuantileSketch::quantile`] for the proof sketch).
//!
//! Memory is bounded: the count vector is dense but grows only to the
//! highest observed bucket, capped at `1 + 64·sub` entries (64 octaves
//! above `BASE` = 1 ns covers every duration up to ~584 years). Sketches
//! merge exactly when their resolution matches — the serve layer merges
//! per-worker sketches into the server registry at shutdown exactly like
//! fixed-bucket histograms.

use serde::{Deserialize, Serialize};

/// Smallest resolvable sample (seconds): 1 ns. Samples below `BASE` land
/// in the underflow bucket and are reported as the recorded minimum.
pub const BASE: f64 = 1e-9;
/// Default sub-buckets per octave (γ = 2^(1/32) ≈ 1.0219 → ≤2.2% error).
pub const DEFAULT_SUB: u32 = 32;
/// Octave cap: bucket indices above `1 + 64·sub` clamp into the last
/// bucket, bounding memory regardless of input.
const MAX_OCTAVES: u32 = 64;

/// Log-linear quantile sketch with bounded relative error.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QuantileSketch {
    /// Sub-buckets per octave; γ = 2^(1/sub).
    pub sub: u32,
    /// Dense per-bucket counts. Index 0 is the underflow bucket
    /// (samples < [`BASE`]); bucket `i ≥ 1` spans
    /// `[BASE·γ^(i−1), BASE·γ^i)`. Grows lazily to the highest index hit.
    pub counts: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of samples (exact).
    pub sum: f64,
    /// Smallest sample (0 when empty; exact).
    pub min: f64,
    /// Largest sample (0 when empty; exact).
    pub max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new(DEFAULT_SUB)
    }
}

impl QuantileSketch {
    /// Empty sketch with `sub` sub-buckets per octave (γ = 2^(1/sub)).
    pub fn new(sub: u32) -> QuantileSketch {
        QuantileSketch {
            sub: sub.max(1),
            counts: Vec::new(),
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
        }
    }

    /// γ, the ratio between consecutive bucket edges.
    pub fn gamma(&self) -> f64 {
        (2f64).powf(1.0 / f64::from(self.sub))
    }

    /// Guaranteed relative error bound of [`QuantileSketch::quantile`]
    /// for samples ≥ [`BASE`]: `γ − 1` (≈ 0.0219 at the default
    /// resolution).
    pub fn relative_error_bound(&self) -> f64 {
        self.gamma() - 1.0
    }

    fn max_index(&self) -> usize {
        1 + (MAX_OCTAVES * self.sub) as usize
    }

    /// Bucket index for a finite sample `x ≥ 0`.
    fn index_of(&self, x: f64) -> usize {
        if x < BASE {
            return 0;
        }
        // log2(x) - log2(BASE) rather than log2(x / BASE): the quotient
        // overflows to infinity for x near f64::MAX.
        let octaves = x.log2() - BASE.log2();
        let i = 1 + (octaves * f64::from(self.sub)).floor() as usize;
        i.min(self.max_index())
    }

    /// Lower edge of bucket `i ≥ 1`.
    fn lower_edge(&self, i: usize) -> f64 {
        BASE * (2f64).powf((i - 1) as f64 / f64::from(self.sub))
    }

    /// Records one sample. Non-finite and negative samples are ignored.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() || x < 0.0 {
            return;
        }
        let idx = self.index_of(x);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        self.sum += x;
    }

    /// Mean of recorded samples (0 when empty; exact).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Nearest-rank quantile estimate for `q ∈ [0, 1]`, `None` when
    /// empty.
    ///
    /// The rank-`r` sample (r = ⌈q·n⌉, clamped to [1, n]) lies in the
    /// bucket where the cumulative count first reaches `r`, i.e. in
    /// `[lo, lo·γ)`. The estimate log-interpolates within that bucket by
    /// rank fraction and clamps to `[min, max]`, so both the estimate
    /// and the true sample sit in `[lo, lo·γ)`: the error is at most
    /// `lo·(γ−1) ≤ v·(γ−1)` — the documented relative bound. Samples in
    /// the underflow bucket (< [`BASE`]) report the exact recorded
    /// minimum instead; the relative bound does not apply below 1 ns.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                if i == 0 {
                    return Some(self.min);
                }
                let lo = self.lower_edge(i);
                let frac = (rank - cum) as f64 / c as f64;
                let est = lo * self.gamma().powf(frac);
                return Some(est.clamp(self.min, self.max));
            }
            cum += c;
        }
        Some(self.max)
    }

    /// Merges another sketch into this one. Matching resolutions merge
    /// exactly (elementwise); on mismatch the other sketch's buckets are
    /// folded in by their geometric-midpoint representative (an
    /// approximation). `count`/`sum`/`min`/`max` stay exact either way.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        if self.sub == other.sub {
            if other.counts.len() > self.counts.len() {
                self.counts.resize(other.counts.len(), 0);
            }
            for (a, b) in self.counts.iter_mut().zip(&other.counts) {
                *a += b;
            }
        } else {
            for (i, &c) in other.counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let representative = if i == 0 {
                    other.min
                } else {
                    other.lower_edge(i) * other.gamma().sqrt()
                };
                let idx = self.index_of(representative.max(0.0));
                if idx >= self.counts.len() {
                    self.counts.resize(idx + 1, 0);
                }
                self.counts[idx] += c;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_percentile(sorted: &[f64], q: f64) -> f64 {
        let n = sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        sorted[rank - 1]
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let s = QuantileSketch::default();
        assert!(s.quantile(0.5).is_none());
        assert_eq!(s.count, 0);
        assert!((s.mean() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let mut s = QuantileSketch::default();
        s.record(0.125);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            let est = s.quantile(q).unwrap();
            assert!((est - 0.125).abs() <= 0.125 * s.relative_error_bound());
        }
    }

    #[test]
    fn quantiles_track_exact_percentiles_within_bound() {
        let mut s = QuantileSketch::default();
        let mut xs: Vec<f64> = (1..=1000).map(|i| i as f64 * 1e-4).collect();
        for &x in &xs {
            s.record(x);
        }
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.01, 0.1, 0.5, 0.9, 0.99, 0.999] {
            let exact = exact_percentile(&xs, q);
            let est = s.quantile(q).unwrap();
            assert!(
                (est - exact).abs() <= exact * s.relative_error_bound(),
                "q={q}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn rejects_junk_samples() {
        let mut s = QuantileSketch::default();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        s.record(-1.0);
        assert_eq!(s.count, 0);
        s.record(1.0);
        assert_eq!(s.count, 1);
    }

    #[test]
    fn underflow_bucket_reports_min() {
        let mut s = QuantileSketch::default();
        s.record(1e-12);
        s.record(2e-12);
        assert_eq!(s.counts[0], 2);
        assert!((s.quantile(0.5).unwrap() - 1e-12).abs() < 1e-18);
    }

    #[test]
    fn huge_samples_clamp_into_last_bucket() {
        let mut s = QuantileSketch::default();
        s.record(1e300);
        assert_eq!(s.count, 1);
        assert!(s.counts.len() <= 1 + (MAX_OCTAVES * DEFAULT_SUB) as usize + 1);
        // max is exact even though the bucket saturated
        assert!((s.max - 1e300).abs() < 1e288);
    }

    #[test]
    fn merge_same_resolution_is_exact() {
        let mut a = QuantileSketch::default();
        let mut b = QuantileSketch::default();
        let mut all = Vec::new();
        for i in 1..=100 {
            let x = i as f64 * 1e-3;
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            all.push(x);
        }
        a.merge(&b);
        all.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a.count, 100);
        for q in [0.1, 0.5, 0.99] {
            let exact = exact_percentile(&all, q);
            let est = a.quantile(q).unwrap();
            assert!((est - exact).abs() <= exact * a.relative_error_bound());
        }
    }

    #[test]
    fn merge_mismatched_resolution_preserves_totals() {
        let mut a = QuantileSketch::new(32);
        let mut b = QuantileSketch::new(8);
        b.record(0.5);
        b.record(2.0);
        a.record(1.0);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert!((a.sum - 3.5).abs() < 1e-12);
        assert!((a.min - 0.5).abs() < 1e-12);
        assert!((a.max - 2.0).abs() < 1e-12);
        assert_eq!(a.counts.iter().sum::<u64>(), 3);
    }

    #[test]
    fn serde_round_trip() {
        let mut s = QuantileSketch::default();
        for i in 1..=50 {
            s.record(i as f64 * 1e-3);
        }
        let json = serde_json::to_string(&s).unwrap();
        let back: QuantileSketch = serde_json::from_str(&json).unwrap();
        assert_eq!(back.count, s.count);
        assert_eq!(back.counts, s.counts);
        assert!((back.quantile(0.9).unwrap() - s.quantile(0.9).unwrap()).abs() < 1e-15);
    }
}
