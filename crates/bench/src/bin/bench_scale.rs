//! Network-axis scaling benchmark — emits `BENCH_scale.json` for the CI
//! `scale` job.
//!
//! Measures solve time and fill-in versus bus count across
//! {case118, case300, synth1354, synth2869, synth9241} for the three
//! layers the large-network tier rebuilt:
//!
//! - **analyze**: full symbolic + numeric factorization
//!   ([`SymbolicLu::analyze`]) of the case's DC B-matrix under the AMD
//!   ordering, with the greedy min-degree ordering timed side by side
//!   (`analyze_greedy`) and fill-in recorded for both.
//! - **refactor**: the pattern-reuse numeric replay
//!   ([`SymbolicLu::refactor_into`]) on the same matrix.
//! - **newton**: the end-to-end AC power flow
//!   ([`gm_powerflow::solve_from_with_engine`]) with a fresh engine per
//!   run, once under the default AMD ordering and once pinned to
//!   `Ordering::MinDegree` (`newton_greedy`) — the A/B the ≥2x speedup
//!   gate reads.
//! - **panel**: the 64-RHS lane-blocked panel solve
//!   ([`SparseLu::solve_many_in_place`]) against the scalar per-column
//!   path, verified bitwise identical while being timed.
//!
//! The run enforces the tier's contract before any baseline comparison:
//!
//! 1. **Fill parity**: AMD fill ≤ 1.1x greedy fill on every case.
//! 2. **Newton speedup**: ≥ 2x over the greedy leg on synth9241.
//! 3. **Subquadratic analysis**: AMD analyze growth 2869 → 9241 stays
//!    below the quadratic bound `(9241/2869)^2`.
//! 4. **Panel equivalence**: the lane-blocked kernel answers bitwise
//!    match the scalar path.
//!
//! ```text
//! cargo run -p gm-bench --bin bench_scale --release -- [out_dir] [--compare <baseline_dir>]
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use gm_bench::compare::{compare_artifact, tolerances_from_env};
use gm_bench::stats;
use gm_network::{cases, load_scale, CaseId, Network, ScaleId};
use gm_powerflow::{solve_from_with_engine, PfOptions};
use gm_sparse::{CsMat, LuEngine, Ordering, SparseLu, SymbolicLu, Triplets};
use gm_telemetry::Registry;
use serde_json::{json, Value};

const RUNS: usize = 3;
const NRHS: usize = 64;
/// Newton (AMD + blocked kernels) must clear this over the
/// greedy-ordering leg on synth9241.
const MIN_NEWTON_SPEEDUP: f64 = 2.0;
/// AMD fill must stay within this factor of greedy fill everywhere.
const MAX_FILL_RATIO: f64 = 1.1;

fn stats_value(samples: &[f64]) -> Value {
    let s = stats(samples);
    json!({
        "runs": samples.len(),
        "mean_s": s.mean,
        "std_s": s.std,
        "min_s": s.min,
        "max_s": s.max,
    })
}

/// DC B-matrix with the slack row pinned: the power-grid Laplacian
/// pattern class every solver in the stack factors, assembled from the
/// public network model so the bench needs no solver internals.
fn b_matrix(net: &Network) -> CsMat<f64> {
    let n = net.n_bus();
    let slack = net.slack().unwrap_or(0);
    let mut t = Triplets::new(n, n);
    for br in net.branches.iter().filter(|b| b.in_service) {
        let b = 1.0 / br.x_pu;
        let (i, j) = (br.from_bus, br.to_bus);
        if i != slack && j != slack {
            t.push(i, i, b);
            t.push(j, j, b);
            t.push(i, j, -b);
            t.push(j, i, -b);
        } else if i != slack {
            t.push(i, i, b);
        } else if j != slack {
            t.push(j, j, b);
        }
    }
    t.push(slack, slack, 1.0);
    t.to_csr()
}

/// Deterministic pseudo-random RHS panel (no rand dependency needed:
/// splitmix64 over the index).
fn panel_values(n: usize) -> Vec<f64> {
    (0..n as u64)
        .map(|i| {
            let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0
        })
        .collect()
}

struct CaseResult {
    block: Value,
    ok: bool,
    amd_analyze_min: f64,
    newton_speedup: f64,
}

fn bench_case(name: &str, net: &Network) -> CaseResult {
    let b = b_matrix(net);
    let n = b.rows();
    let mut ok = true;

    // ---- analyze: AMD vs greedy, time and fill.
    let mut amd_secs = Vec::with_capacity(RUNS);
    let mut greedy_secs = Vec::with_capacity(RUNS);
    let mut fill_amd = 0usize;
    let mut fill_greedy = 0usize;
    let mut sym_amd: Option<(SymbolicLu, SparseLu)> = None;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        let pair = SymbolicLu::analyze(&b, Ordering::Amd, 0.1).expect("B matrix must analyze");
        amd_secs.push(t0.elapsed().as_secs_f64());
        fill_amd = pair.1.factor_nnz();
        sym_amd = Some(pair);
    }
    for _ in 0..RUNS {
        let t0 = Instant::now();
        let lu = SparseLu::factor_with(&b, Ordering::MinDegree, 0.1).expect("B matrix must factor");
        greedy_secs.push(t0.elapsed().as_secs_f64());
        fill_greedy = lu.factor_nnz();
    }
    let fill_ratio = fill_amd as f64 / fill_greedy as f64;
    if fill_ratio > MAX_FILL_RATIO {
        eprintln!(
            "bench_scale: {name} AMD fill {fill_amd} exceeds {MAX_FILL_RATIO}x greedy fill \
             {fill_greedy}"
        );
        ok = false;
    }
    let (sym, mut numeric) = sym_amd.expect("at least one analyze run");

    // ---- refactor: numeric replay on the captured structure.
    let mut refactor_secs = Vec::with_capacity(RUNS);
    let mut scratch = Vec::new();
    for _ in 0..RUNS {
        let t0 = Instant::now();
        sym.refactor_into(&b, &mut numeric, &mut scratch)
            .expect("same-pattern refactor must replay");
        refactor_secs.push(t0.elapsed().as_secs_f64());
    }

    // ---- panel: lane-blocked 64-RHS solve vs the scalar per-column
    // path, bitwise-verified.
    let panel_init = panel_values(n * NRHS);
    let mut blocked_secs = Vec::with_capacity(RUNS);
    let mut panel = Vec::new();
    let mut panel_scratch = vec![0.0f64; n * NRHS + NRHS];
    for _ in 0..RUNS {
        panel = panel_init.clone();
        let t0 = Instant::now();
        numeric.solve_many_in_place(&mut panel, NRHS, &mut panel_scratch);
        blocked_secs.push(t0.elapsed().as_secs_f64());
    }
    let mut percol_secs = Vec::with_capacity(RUNS);
    let mut cols = Vec::new();
    for _ in 0..RUNS {
        cols = vec![0.0f64; n * NRHS];
        let mut col = vec![0.0f64; n];
        let mut col_scratch = vec![0.0f64; n];
        let t0 = Instant::now();
        for s in 0..NRHS {
            for i in 0..n {
                col[i] = panel_init[i * NRHS + s];
            }
            numeric.solve_in_place(&mut col, &mut col_scratch);
            for i in 0..n {
                cols[i * NRHS + s] = col[i];
            }
        }
        percol_secs.push(t0.elapsed().as_secs_f64());
    }
    let panel_identical = panel
        .iter()
        .zip(&cols)
        .all(|(a, c)| a.to_bits() == c.to_bits());
    if !panel_identical {
        eprintln!("bench_scale: {name} lane-blocked panel diverged from the scalar path");
        ok = false;
    }

    // ---- newton: end-to-end AC solve, AMD vs greedy ordering. A fresh
    // engine per run so each leg pays its ordering + analysis, which is
    // exactly the cost the A/B is about.
    let opts = PfOptions {
        enforce_q_limits: false,
        ..Default::default()
    };
    let mut newton_amd_secs = Vec::with_capacity(RUNS);
    let mut iterations = 0usize;
    for _ in 0..RUNS {
        let mut engine = LuEngine::new().with_ordering(Ordering::Amd);
        let t0 = Instant::now();
        let rep = solve_from_with_engine(net, &opts, None, &mut engine)
            .expect("Newton must converge under AMD");
        newton_amd_secs.push(t0.elapsed().as_secs_f64());
        iterations = rep.iterations;
    }
    let mut newton_greedy_secs = Vec::with_capacity(RUNS);
    let mut iterations_greedy = 0usize;
    for _ in 0..RUNS {
        let mut engine = LuEngine::new().with_ordering(Ordering::MinDegree);
        let t0 = Instant::now();
        let rep = solve_from_with_engine(net, &opts, None, &mut engine)
            .expect("Newton must converge under greedy min-degree");
        newton_greedy_secs.push(t0.elapsed().as_secs_f64());
        iterations_greedy = rep.iterations;
    }
    let newton_amd_min = stats(&newton_amd_secs).min;
    let newton_greedy_min = stats(&newton_greedy_secs).min;
    let newton_speedup = newton_greedy_min / newton_amd_min.max(1e-12);

    let amd_analyze_min = stats(&amd_secs).min;
    let block = json!({
        "n_bus": n,
        "nnz": b.nnz(),
        "fill_amd": fill_amd,
        "fill_greedy": fill_greedy,
        "fill_ratio": fill_ratio,
        "analyze": stats_value(&amd_secs),
        "analyze_greedy": stats_value(&greedy_secs),
        "refactor": stats_value(&refactor_secs),
        "panel_blocked": stats_value(&blocked_secs),
        "panel_percol": stats_value(&percol_secs),
        "panel_nrhs": NRHS,
        "panel_identical": panel_identical,
        "newton": stats_value(&newton_amd_secs),
        "newton_greedy": stats_value(&newton_greedy_secs),
        "newton_iterations": iterations,
        "newton_iterations_greedy": iterations_greedy,
        "newton_speedup": newton_speedup,
    });
    CaseResult {
        block,
        ok,
        amd_analyze_min,
        newton_speedup,
    }
}

fn main() -> ExitCode {
    let mut out_dir = PathBuf::from(".");
    let mut baseline_dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--compare" {
            match args.next() {
                Some(d) => baseline_dir = Some(PathBuf::from(d)),
                None => {
                    eprintln!("bench_scale: --compare needs a baseline directory");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            out_dir = PathBuf::from(arg);
        }
    }
    if !out_dir.is_dir() {
        eprintln!(
            "bench_scale: output directory {} does not exist",
            out_dir.display()
        );
        return ExitCode::FAILURE;
    }

    let reg = Registry::new();
    let guard = reg.install();
    let mut per_case = serde_json::Map::new();
    let mut all_ok = true;
    let mut analyze_min_2869 = 0.0f64;
    let mut analyze_min_9241 = 0.0f64;
    let mut speedup_9241 = 0.0f64;

    let small = [(CaseId::Ieee118, "case118"), (CaseId::Ieee300, "case300")];
    for (id, name) in small {
        let net = cases::load(id);
        let res = bench_case(name, &net);
        print_case(name, &res);
        per_case.insert(name.to_string(), res.block);
        all_ok &= res.ok;
    }
    for id in ScaleId::ALL {
        let name = id.short_name();
        let t0 = Instant::now();
        let net = load_scale(id);
        println!("{name}: generated in {:.2}s", t0.elapsed().as_secs_f64());
        let res = bench_case(name, net);
        print_case(name, &res);
        match id {
            ScaleId::Synth2869 => analyze_min_2869 = res.amd_analyze_min,
            ScaleId::Synth9241 => {
                analyze_min_9241 = res.amd_analyze_min;
                speedup_9241 = res.newton_speedup;
            }
            ScaleId::Synth1354 => {}
        }
        per_case.insert(name.to_string(), res.block);
        all_ok &= res.ok;
    }
    drop(guard);

    // Tier gates: ≥2x Newton at 9241, subquadratic analyze growth.
    if speedup_9241 < MIN_NEWTON_SPEEDUP {
        eprintln!(
            "bench_scale: synth9241 Newton speedup {speedup_9241:.2}x below the \
             {MIN_NEWTON_SPEEDUP:.0}x floor"
        );
        all_ok = false;
    }
    let growth = analyze_min_9241 / analyze_min_2869.max(1e-12);
    let quadratic_bound = (9241.0f64 / 2869.0).powi(2);
    if growth >= quadratic_bound {
        eprintln!(
            "bench_scale: analyze growth 2869→9241 is {growth:.2}x, at or above the quadratic \
             bound {quadratic_bound:.2}x"
        );
        all_ok = false;
    }
    println!(
        "scaling: analyze growth 2869→9241 {growth:.2}x (quadratic bound {quadratic_bound:.2}x), \
         synth9241 newton speedup {speedup_9241:.2}x"
    );

    let mut doc = json!({
        "bench": "scale",
        "cases": Value::Object(per_case),
        "scaling": {
            "analyze_growth_2869_to_9241": growth,
            "quadratic_bound": quadratic_bound,
            "newton_speedup_9241": speedup_9241,
        },
    });
    doc["telemetry"] = reg.export();

    let path = out_dir.join("BENCH_scale.json");
    let text = serde_json::to_string_pretty(&doc).expect("artifact serializes");
    if let Err(e) = std::fs::write(&path, text + "\n") {
        eprintln!("bench_scale: writing {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", path.display());

    if !all_ok {
        eprintln!("bench_scale: scaling-tier invariant failed");
        return ExitCode::FAILURE;
    }

    if let Some(base_dir) = baseline_dir {
        let baseline = match read_artifact(&base_dir, "BENCH_scale.json") {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("bench_scale: {e}");
                return ExitCode::FAILURE;
            }
        };
        let tolerances = tolerances_from_env();
        let report = compare_artifact("BENCH_scale.json", &baseline, &doc, tolerances);
        println!(
            "compared {} wall stats and {} counters against {} (wall tolerance {:.0}%)",
            report.walls_checked,
            report.counters_checked,
            base_dir.display(),
            tolerances.wall * 100.0
        );
        if !report.passed() {
            for line in report.failures() {
                eprintln!("bench_scale: REGRESSION {line}");
            }
            return ExitCode::FAILURE;
        }
        println!("no regressions");
    }

    println!("inspect with: cargo run -p gm-telemetry --bin gm-trace -- BENCH_scale.json");
    ExitCode::SUCCESS
}

fn print_case(name: &str, res: &CaseResult) {
    let b = &res.block;
    println!(
        "{name}: n {} nnz {} | analyze amd {:.2}ms greedy {:.2}ms fill ratio {:.3} | \
         refactor {:.2}ms | newton amd {:.2}ms greedy {:.2}ms ({:.2}x) | panel {:.2}ms vs {:.2}ms",
        b["n_bus"],
        b["nnz"],
        b["analyze"]["min_s"].as_f64().unwrap_or(0.0) * 1e3,
        b["analyze_greedy"]["min_s"].as_f64().unwrap_or(0.0) * 1e3,
        b["fill_ratio"].as_f64().unwrap_or(0.0),
        b["refactor"]["min_s"].as_f64().unwrap_or(0.0) * 1e3,
        b["newton"]["min_s"].as_f64().unwrap_or(0.0) * 1e3,
        b["newton_greedy"]["min_s"].as_f64().unwrap_or(0.0) * 1e3,
        b["newton_speedup"].as_f64().unwrap_or(0.0),
        b["panel_blocked"]["min_s"].as_f64().unwrap_or(0.0) * 1e3,
        b["panel_percol"]["min_s"].as_f64().unwrap_or(0.0) * 1e3,
    );
}

fn read_artifact(dir: &Path, name: &str) -> Result<Value, String> {
    let path = dir.join(name);
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("parsing {}: {e}", path.display()))
}
