//! Regenerates **Figure 3** of the paper: ACOPF agent performance.
//!
//! Three panels:
//! - **left**  — success rate per LLM backend on case118 (5 runs each);
//! - **middle** — execution-time distribution per backend, case118, 5
//!   runs (virtual latency = simulated LLM reasoning + real solver time);
//! - **right** — execution time vs case size (14/30/57/118/300) per
//!   backend.
//!
//! ```text
//! cargo run -p gm-bench --bin figure3 --release            # all panels
//! cargo run -p gm-bench --bin figure3 --release -- left    # one panel
//! ```

use gm_bench::{profile_for_run, stats, timed_ask};
use gridmind_core::{GridMind, ModelProfile};

const RUNS: u64 = 5;

fn panel_left_and_middle() {
    println!("Figure 3 (left + middle): success rate and execution time, case118, {RUNS} runs");
    println!();
    println!(
        "| {:<16} | {:>8} | {:>8} | {:>8} | {:>8} | {:>8} |",
        "Model", "success", "min s", "mean s", "max s", "std s"
    );
    println!("|------------------|----------|----------|----------|----------|----------|");
    for base in ModelProfile::paper_models() {
        let mut times = Vec::new();
        let mut successes = 0u32;
        for run in 0..RUNS {
            let mut gm = GridMind::new(profile_for_run(&base, run));
            let (elapsed, ok, _tokens) = timed_ask(&mut gm, "solve case118");
            if ok {
                successes += 1;
            }
            times.push(elapsed);
        }
        let s = stats(&times);
        println!(
            "| {:<16} | {:>7.0}% | {:>8.1} | {:>8.1} | {:>8.1} | {:>8.1} |",
            base.name,
            100.0 * successes as f64 / RUNS as f64,
            s.min,
            s.mean,
            s.max,
            s.std
        );
    }
    println!();
    println!("Paper shape: 100% success for every model; o4-mini fastest (<10 s),");
    println!("GPT-5 / GPT-5-mini / nano / Claude 4 Sonnet slower (more reasoning time).");
    println!();
}

fn panel_right() {
    println!("Figure 3 (right): execution time vs case size (one solve per case)");
    println!();
    print!("| {:<16} |", "Model");
    for case in ["case14", "case30", "case57", "case118", "case300"] {
        print!(" {case:>8} |");
    }
    println!();
    println!("|------------------|----------|----------|----------|----------|----------|");
    for base in ModelProfile::paper_models() {
        print!("| {:<16} |", base.name);
        for (i, case) in ["case14", "case30", "case57", "case118", "case300"]
            .iter()
            .enumerate()
        {
            let mut gm = GridMind::new(profile_for_run(&base, 100 + i as u64));
            let (elapsed, ok, _) = timed_ask(&mut gm, &format!("solve {case}"));
            assert!(ok, "{} failed on {case}", base.name);
            print!(" {elapsed:>7.1}s |");
        }
        println!();
    }
    println!();
    println!("Paper shape: no significant trend of agent latency with case size — LLM");
    println!("reasoning dominates; only the solver share grows with the case.");
    println!();
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match which.as_str() {
        "left" | "middle" => panel_left_and_middle(),
        "right" => panel_right(),
        _ => {
            panel_left_and_middle();
            panel_right();
        }
    }
}
