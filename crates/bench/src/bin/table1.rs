//! Regenerates **Table 1** of the paper: CA agent performance on case118
//! per LLM backend — total time, top-5 critical elements, and the maximum
//! post-contingency overload percentage among them.
//!
//! ```text
//! cargo run -p gm-bench --bin table1 --release
//! ```

use gm_bench::timed_ask;
use gridmind_core::{GridMind, ModelProfile};

fn main() {
    println!("Table 1: CA Agent Performance (case118)");
    println!();
    println!(
        "| {:<16} | {:>8} | {:<42} | {:>14} |",
        "Model", "Time (s)", "Critical Elements (top-5)", "Max Overload %"
    );
    println!(
        "|------------------|----------|--------------------------------------------|----------------|"
    );
    for profile in ModelProfile::paper_models() {
        let name = profile.name.clone();
        let mut gm = GridMind::new(profile);
        let (elapsed, ok, _tokens) = timed_ask(
            &mut gm,
            "identify the top 5 critical contingencies in case118",
        );
        assert!(ok, "{name} failed the CA run");
        let rep = gm
            .session
            .fresh_contingency()
            .expect("contingency report cached");
        let top5 = rep.top_labels(5);
        // Max post-contingency loading across the top-5 critical set (the
        // paper's "Max Overload %").
        let max_overload = rep
            .ranking
            .iter()
            .take(5)
            .map(|r| rep.outcomes[r.outcome_index].max_loading_pct)
            .fold(0.0f64, f64::max);
        println!(
            "| {:<16} | {:>8.1} | {:<42} | {:>14.0} |",
            name,
            elapsed,
            top5.join(", "),
            max_overload
        );
    }
    println!();
    println!("Paper reference (Table 1):");
    println!("  GPT-5            |  92.7 | 6, 7, 0, 171, 49 | 137");
    println!("  GPT-5 Mini       |  24.8 | 7, 0, 171, 49, 9 | 165");
    println!("  GPT-5 Nano       |  26.2 | 6, 7, 0, 171, 49 | 137");
    println!("  GPT-o4 Mini      |  34.2 | 6, 7, 0, 171, 49 | 137");
    println!("  GPT-o3           |  24.6 | 6, 7, 0, 171, 49 | 137");
    println!("  Claude 4 Sonnet  |  63.3 | 6, 7, 0, 171, 49 | 137");
    println!();
    println!("Shape agreement targets: (a) all models agree on the critical set except");
    println!("GPT-5 Mini, whose overload-first analytical style yields a different list");
    println!("and a higher reported overload; (b) GPT-5 slowest, o3/mini fastest; (c)");
    println!("max overload in the 110-165% band.");
}
