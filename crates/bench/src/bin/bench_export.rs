//! Emits the machine-readable benchmark artifacts consumed by CI:
//! `BENCH_pf.json`, `BENCH_acopf.json`, `BENCH_sparse.json`,
//! `BENCH_e2e.json`, and `BENCH_serve.json`.
//!
//! Each file pairs wall-clock statistics with the full telemetry export
//! (counters, histograms, span tree) under a `"telemetry"` key, so
//! `gm-trace BENCH_e2e.json --check` can verify that every registered
//! solver metric was actually exercised by the run, and `gm-trace
//! BENCH_pf.json` renders the span tree behind the numbers.
//!
//! ```text
//! cargo run -p gm-bench --bin bench_export --release -- [out_dir] [--compare <baseline_dir>]
//! ```
//!
//! With `--compare`, each fresh artifact is additionally checked
//! against the committed baseline in `<baseline_dir>`: a tracked wall
//! statistic regressing by more than 25% (`BENCH_REGRESSION_TOLERANCE`
//! overrides), or any baseline-nonzero telemetry counter going to
//! zero, fails the run with a nonzero exit — the CI regression gate.
//!
//! Interpretation: `mean_s`/`std_s` are wall-clock per solve (host
//! dependent); the telemetry counters (`pf.newton.iterations`,
//! `acopf.ipm.iterations`, `sparse.lu.factorizations`, ...) are exact
//! work counts and therefore comparable across machines.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use gm_acopf::{solve_acopf, AcopfOptions};
use gm_bench::compare::{compare_all, tolerances_from_env};
use gm_bench::stats;
use gm_network::{cases, CaseId};
use gm_powerflow::{solve, PfOptions};
use gm_telemetry::Registry;
use gridmind_core::{GridMind, ModelProfile};
use serde_json::{json, Value};

const PF_RUNS: usize = 5;
const ACOPF_RUNS: usize = 3;
const SPARSE_RUNS: usize = 20;

fn stats_value(samples: &[f64]) -> Value {
    let s = stats(samples);
    json!({
        "runs": samples.len(),
        "mean_s": s.mean,
        "std_s": s.std,
        "min_s": s.min,
        "max_s": s.max,
    })
}

/// Newton power flow across every paper case, telemetry installed.
fn bench_pf() -> Value {
    let reg = Registry::new();
    let _guard = reg.install();
    let mut per_case = serde_json::Map::new();
    for id in CaseId::ALL {
        let net = cases::load(id);
        let mut secs = Vec::with_capacity(PF_RUNS);
        let mut iterations = 0usize;
        for _ in 0..PF_RUNS {
            let t0 = Instant::now();
            let rep = solve(&net, &PfOptions::default()).expect("paper case converges");
            secs.push(t0.elapsed().as_secs_f64());
            iterations = rep.iterations;
        }
        let mut v = stats_value(&secs);
        v["n_bus"] = json!(net.n_bus());
        v["newton_iterations"] = json!(iterations);
        per_case.insert(format!("{id:?}"), v);
    }
    let mut out = json!({ "bench": "pf", "cases": Value::Object(per_case) });
    out["telemetry"] = reg.export();
    out
}

/// Interior-point ACOPF on the cases the paper evaluates (§4.2).
fn bench_acopf() -> Value {
    let reg = Registry::new();
    let _guard = reg.install();
    let mut per_case = serde_json::Map::new();
    for id in [
        CaseId::Ieee14,
        CaseId::Ieee30,
        CaseId::Ieee57,
        CaseId::Ieee118,
    ] {
        let net = cases::load(id);
        let mut secs = Vec::with_capacity(ACOPF_RUNS);
        let mut iterations = 0usize;
        let mut cost = 0.0f64;
        for _ in 0..ACOPF_RUNS {
            let t0 = Instant::now();
            let sol = solve_acopf(&net, &AcopfOptions::default()).expect("paper case solves");
            secs.push(t0.elapsed().as_secs_f64());
            iterations = sol.iterations;
            cost = sol.objective_cost;
        }
        let mut v = stats_value(&secs);
        v["n_bus"] = json!(net.n_bus());
        v["ipm_iterations"] = json!(iterations);
        v["objective_cost"] = json!(cost);
        per_case.insert(format!("{id:?}"), v);
    }
    let mut out = json!({ "bench": "acopf", "cases": Value::Object(per_case) });
    out["telemetry"] = reg.export();
    out
}

/// Symbolic-analysis vs pattern-reuse refactorization microbenchmark on
/// the Ybus sparsity of the small and large paper cases — the structure
/// every Newton Jacobian inherits. `analyze` times a full factorization
/// (ordering + symbolic + numeric); `refactor` times the [`LuEngine`]
/// cache-hit path on perturbed values of the same pattern.
fn bench_sparse() -> Value {
    use gm_network::YBus;
    use gm_sparse::{CsMat, LuEngine, Ordering, SparseLu, Triplets};
    let reg = Registry::new();
    let _guard = reg.install();
    let mut per_case = serde_json::Map::new();
    for id in [CaseId::Ieee14, CaseId::Ieee118] {
        let net = cases::load(id);
        let ybus = YBus::assemble(&net);
        let n = net.n_bus();
        // Real-valued stand-in with the Ybus pattern; the boosted
        // diagonal keeps the pivot sequence stable under the per-run
        // value perturbation, so every engine hit stays on the
        // refactorization path.
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            let (cols, vals) = ybus.matrix.row(i);
            for (&j, &y) in cols.iter().zip(vals) {
                let mag = (y.re * y.re + y.im * y.im).sqrt();
                t.push(i, j, if i == j { 8.0 + mag } else { -0.1 * mag });
            }
        }
        let mut a: CsMat<f64> = t.to_csr();

        let mut analyze_secs = Vec::with_capacity(SPARSE_RUNS);
        for _ in 0..SPARSE_RUNS {
            let t0 = Instant::now();
            let lu = SparseLu::factor_with(&a, Ordering::MinDegree, 0.1).expect("ybus factors");
            analyze_secs.push(t0.elapsed().as_secs_f64());
            std::hint::black_box(lu);
        }

        let mut engine = LuEngine::new();
        engine.factorize(&a).expect("ybus factors"); // untimed cache fill
        let mut refactor_secs = Vec::with_capacity(SPARSE_RUNS);
        for run in 0..SPARSE_RUNS {
            for (k, v) in a.values_mut().iter_mut().enumerate() {
                *v *= 1.0 + 1e-9 * (((run * 31 + k) as f64) * 0.7).sin();
            }
            let t0 = Instant::now();
            let lu = engine.factorize(&a).expect("refactor succeeds");
            refactor_secs.push(t0.elapsed().as_secs_f64());
            std::hint::black_box(lu);
        }

        let analyze = stats_value(&analyze_secs);
        let refactor = stats_value(&refactor_secs);
        let speedup = analyze["mean_s"].as_f64().unwrap_or(0.0)
            / refactor["mean_s"]
                .as_f64()
                .unwrap_or(f64::INFINITY)
                .max(1e-12);
        per_case.insert(
            format!("{id:?}"),
            json!({
                "n_bus": n,
                "nnz": a.nnz(),
                "analyze": analyze,
                "refactor": refactor,
                "refactor_speedup": speedup,
            }),
        );
    }
    let mut out = json!({ "bench": "sparse", "cases": Value::Object(per_case) });
    out["telemetry"] = reg.export();
    out
}

/// Scripted agent session exercising the whole stack: NLU → coordinator
/// → ACOPF agent (IPM) → CA agent (Newton sweeps + LU). Its telemetry
/// export is the one `gm-trace --check` gates in CI.
fn bench_e2e() -> Value {
    let profile = ModelProfile::paper_models().remove(0);
    let model = profile.name.clone();
    let mut gm = GridMind::new(profile);
    let script = [
        "solve case30",
        "run the n-1 contingency analysis",
        "sweep the load from 90% to 110% in 6 steps",
        "what are the most critical contingencies in case14",
    ];
    let t0 = Instant::now();
    let mut steps = Vec::new();
    for request in script {
        let reply = gm.ask(request);
        steps.push(json!({
            "request": request,
            "completed": reply.steps.iter().all(|s| s.completed),
            "virtual_elapsed_s": reply.elapsed_s,
            "tokens": reply.tokens.total(),
        }));
    }
    let mut out = json!({
        "bench": "e2e",
        "model": model,
        "wall_elapsed_s": t0.elapsed().as_secs_f64(),
        "script": Value::Array(steps),
    });
    out["telemetry"] = gm.session.telemetry.export();
    out
}

/// Deterministic serve soak through the workload driver, summarized as
/// per-query-kind latency quantiles (`kinds.<kind>.{p50_s,p99_s}` are
/// the compare-gated statistics) with the merged server telemetry —
/// including the `serve.latency.*` sketches — embedded for
/// `gm-trace slo` and `gm-trace --check`.
fn bench_serve() -> Value {
    let report = gm_serve::workload::run(&gm_serve::workload::WorkloadConfig {
        workers: 4,
        sessions: 8,
        queue_capacity: 16,
        cache_capacity: 64,
        script: gm_serve::workload::default_script(),
        faults: None,
    });
    let mut out = json!({
        "bench": "serve",
        "passed": report.passed(),
        "expected": report.expected,
        "received": report.received,
        "cache_hits": report.cache.hits,
        "wall_s": report.wall_s,
        "kinds": report.latency_summary(),
    });
    out["telemetry"] = report.telemetry.clone();
    out
}

fn write_artifact(dir: &Path, name: &str, value: &Value) -> std::io::Result<PathBuf> {
    let path = dir.join(name);
    let text = serde_json::to_string_pretty(value).expect("artifact serializes");
    std::fs::write(&path, text + "\n")?;
    Ok(path)
}

fn read_artifact(dir: &Path, name: &str) -> Result<Value, String> {
    let path = dir.join(name);
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("parsing {}: {e}", path.display()))
}

fn main() -> ExitCode {
    let mut out_dir = PathBuf::from(".");
    let mut baseline_dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--compare" {
            match args.next() {
                Some(d) => baseline_dir = Some(PathBuf::from(d)),
                None => {
                    eprintln!("bench_export: --compare needs a baseline directory");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            out_dir = PathBuf::from(arg);
        }
    }
    if !out_dir.is_dir() {
        eprintln!(
            "bench_export: output directory {} does not exist",
            out_dir.display()
        );
        return ExitCode::FAILURE;
    }
    let artifacts = [
        ("BENCH_pf.json", bench_pf()),
        ("BENCH_acopf.json", bench_acopf()),
        ("BENCH_sparse.json", bench_sparse()),
        ("BENCH_e2e.json", bench_e2e()),
        ("BENCH_serve.json", bench_serve()),
    ];
    for (name, value) in &artifacts {
        match write_artifact(&out_dir, name, value) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("bench_export: writing {name}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(base_dir) = baseline_dir {
        let mut baselines = Vec::new();
        for (name, _) in &artifacts {
            match read_artifact(&base_dir, name) {
                Ok(doc) => baselines.push(doc),
                Err(e) => {
                    eprintln!("bench_export: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let triples: Vec<(&str, &Value, &Value)> = artifacts
            .iter()
            .zip(&baselines)
            .map(|((name, current), baseline)| (*name, baseline, current))
            .collect();
        let tolerances = tolerances_from_env();
        let report = compare_all(&triples, tolerances);
        println!(
            "compared {} wall stats and {} counters against {} (wall tolerance {:.0}%, quantile tolerance {:.0}%)",
            report.walls_checked,
            report.counters_checked,
            base_dir.display(),
            tolerances.wall * 100.0,
            tolerances.quantile * 100.0
        );
        if !report.passed() {
            for line in report.failures() {
                eprintln!("bench_export: REGRESSION {line}");
            }
            return ExitCode::FAILURE;
        }
        println!("no regressions");
    }

    println!("inspect with: cargo run -p gm-telemetry --bin gm-trace -- BENCH_e2e.json --check");
    ExitCode::SUCCESS
}
