//! Regenerates **Table 2** of the paper: the supported IEEE test cases
//! and their inventory (buses, generators, loads, AC lines,
//! transformers).
//!
//! ```text
//! cargo run -p gm-bench --bin table2 --release
//! ```

use gm_network::{cases, CaseId};

fn main() {
    println!("Table 2: Test cases");
    println!();
    println!(
        "| {:<9} | {:>4} | {:>4} | {:>5} | {:>8} | {:>13} |",
        "Case", "Bus", "Gen", "Load", "AC line", "Transformers"
    );
    println!("|-----------|------|------|-------|----------|---------------|");
    for id in CaseId::ALL {
        let net = cases::load(id);
        let s = net.summary();
        println!(
            "| {:<9} | {:>4} | {:>4} | {:>5} | {:>8} | {:>13} |",
            format!("IEEE {}", id.size()),
            s.buses,
            s.generators,
            s.loads,
            s.lines,
            s.transformers
        );
    }
    println!();
    println!("Paper reference (Table 2):");
    println!("  IEEE 14:  14 bus,  5 gen,  11 load,  17 lines,   3 trafos");
    println!("  IEEE 30:  30 bus,  6 gen,  21 load,  41 lines,   4 trafos  (*)");
    println!("  IEEE 57:  57 bus,  7 gen,  42 load,  63 lines,  17 trafos");
    println!("  IEEE 118: 118 bus, 54 gen,  99 load, 175 lines,  11 trafos");
    println!("  IEEE 300: 300 bus, 68 gen, 193 load, 283 lines, 128 trafos");
    println!();
    println!(
        "(*) The paper's IEEE 30 row lists 41 AC lines + 4 transformers = 45 branches; the\n\
         actual IEEE 30-bus system has 41 branches total (37 lines + 4 transformers), which\n\
         is what this library ships. Every other row matches exactly."
    );
}
