//! Batched multi-scenario benchmark and equivalence gate — emits
//! `BENCH_batch.json` for the CI `bench` job.
//!
//! For case118 and case300 a load sweep (≥64 scenarios on case118) runs
//! through two paths back to back:
//!
//! - **naive**: the public one-at-a-time API — `gm_powerflow::solve`
//!   per scenario network, flat start, full validation, YBus assembly,
//!   and symbolic analysis every time. This is the loop
//!   `examples/what_if_study.rs` used to run.
//! - **batch**: [`gm_powerflow::run_batch`] — one symbolic analysis,
//!   one DC seed panel solved with a single multi-RHS call, refactor
//!   per scenario, warm starts from the nearest solved neighbor.
//!
//! The run enforces the engine's contract before any baseline
//! comparison:
//!
//! 1. **Equivalence**: every per-scenario answer from the batch must be
//!    bit-for-bit identical to [`gm_powerflow::run_naive`] (the
//!    same-policy per-scenario replay).
//! 2. **Speed**: on case118 the batch must clear a ≥5x scenarios/sec
//!    speedup over the naive loop (best of 5 runs per side — the batch
//!    leg is tens of milliseconds, where scheduler noise inflates the
//!    mean; the min is the noise-robust statistic since preemption only
//!    ever adds time).
//! 3. **Warm starts engage**: `batch.warm_hits` must be nonzero.
//!
//! ```text
//! cargo run -p gm-bench --bin bench_batch --release -- [out_dir] [--compare <baseline_dir>]
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use gm_bench::compare::{compare_artifact, tolerances_from_env};
use gm_bench::stats;
use gm_network::{cases, CaseId};
use gm_powerflow::{run_batch, run_naive, solve, BatchReport, PfOptions, ScenarioSet};
use gm_telemetry::Registry;
use serde_json::{json, Value};

const RUNS: usize = 5;
/// Minimum speedup the batch must clear over the naive loop on case118.
const MIN_SPEEDUP: f64 = 5.0;

fn stats_value(samples: &[f64]) -> Value {
    let s = stats(samples);
    json!({
        "runs": samples.len(),
        "mean_s": s.mean,
        "std_s": s.std,
        "min_s": s.min,
        "max_s": s.max,
    })
}

/// Bit-for-bit comparison of two batch reports (labels, flags, and
/// every solved quantity down to the float bits).
fn reports_bitwise_equal(a: &BatchReport, b: &BatchReport) -> bool {
    if a.scenarios != b.scenarios || a.warm_hits != b.warm_hits {
        return false;
    }
    a.outcomes.iter().zip(&b.outcomes).all(|(x, y)| {
        if x.label != y.label || x.warm_started != y.warm_started {
            return false;
        }
        match (&x.report, &y.report) {
            (Ok(rx), Ok(ry)) => {
                rx.iterations == ry.iterations
                    && rx.buses.iter().zip(&ry.buses).all(|(p, q)| {
                        p.vm_pu.to_bits() == q.vm_pu.to_bits()
                            && p.va_deg.to_bits() == q.va_deg.to_bits()
                    })
                    && rx
                        .branches
                        .iter()
                        .zip(&ry.branches)
                        .all(|(p, q)| p.p_from_mw.to_bits() == q.p_from_mw.to_bits())
            }
            (Err(ex), Err(ey)) => ex == ey,
            _ => false,
        }
    })
}

/// Runs one case; returns its JSON block and whether the invariants held.
fn bench_case(id: CaseId, n_scenarios: usize, gate_speedup: bool) -> (Value, bool) {
    let net = cases::load(id);
    let opts = PfOptions::default();
    // A tight sweep around nominal: the operating-envelope shape the
    // batch_study tool produces, and the regime where neighbor warm
    // starts pay (adjacent scenarios differ by a fraction of a percent).
    let set = ScenarioSet::load_sweep(0.90, 1.10, n_scenarios);
    let nets = set.materialize(&net).expect("paper case scenarios");

    let mut batch_secs = Vec::with_capacity(RUNS);
    let mut batch_report = None;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        let rep = run_batch(&net, &opts, &set).expect("paper case batch");
        batch_secs.push(t0.elapsed().as_secs_f64());
        batch_report = Some(rep);
    }
    let batch_report = batch_report.expect("at least one run");

    let mut naive_secs = Vec::with_capacity(RUNS);
    let mut naive_converged = 0usize;
    for _ in 0..RUNS {
        naive_converged = 0;
        let t0 = Instant::now();
        for net_k in &nets {
            if solve(net_k, &opts).is_ok() {
                naive_converged += 1;
            }
        }
        naive_secs.push(t0.elapsed().as_secs_f64());
    }

    // Equivalence gate: batch answers are bitwise identical to the
    // same-policy per-scenario replay.
    let replay = run_naive(&net, &opts, &set).expect("paper case replay");
    let bitwise_identical = reports_bitwise_equal(&batch_report, &replay);

    let batch_min = stats(&batch_secs).min;
    let naive_min = stats(&naive_secs).min;
    let speedup = naive_min / batch_min.max(1e-12);
    let warm_engaged = batch_report.warm_hits > 0;
    let fast_enough = !gate_speedup || speedup >= MIN_SPEEDUP;
    let ok = bitwise_identical && warm_engaged && fast_enough;

    if !bitwise_identical {
        eprintln!("bench_batch: {id:?} batch answers differ from the naive replay");
    }
    if !warm_engaged {
        eprintln!("bench_batch: {id:?} warm starts never engaged");
    }
    if !fast_enough {
        eprintln!(
            "bench_batch: {id:?} speedup {speedup:.2}x below the {MIN_SPEEDUP:.0}x floor \
             (batch {batch_min:.4}s vs naive {naive_min:.4}s, best of {RUNS})"
        );
    }

    let converged = batch_report
        .outcomes
        .iter()
        .filter(|o| o.report.is_ok())
        .count();
    let block = json!({
        "n_bus": net.n_bus(),
        "scenarios": batch_report.scenarios,
        "converged": converged,
        "naive_converged": naive_converged,
        "warm_hits": batch_report.warm_hits,
        "flat_restarts": batch_report.flat_restarts,
        "batch": stats_value(&batch_secs),
        "naive": stats_value(&naive_secs),
        "speedup": speedup,
        "scenarios_per_sec": batch_report.scenarios as f64 / batch_min.max(1e-12),
        "bitwise_identical": bitwise_identical,
    });
    (block, ok)
}

fn main() -> ExitCode {
    let mut out_dir = PathBuf::from(".");
    let mut baseline_dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--compare" {
            match args.next() {
                Some(d) => baseline_dir = Some(PathBuf::from(d)),
                None => {
                    eprintln!("bench_batch: --compare needs a baseline directory");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            out_dir = PathBuf::from(arg);
        }
    }
    if !out_dir.is_dir() {
        eprintln!(
            "bench_batch: output directory {} does not exist",
            out_dir.display()
        );
        return ExitCode::FAILURE;
    }

    let reg = Registry::new();
    let guard = reg.install();
    let mut per_case = serde_json::Map::new();
    let mut all_ok = true;
    for (id, n_scenarios, gate_speedup) in
        [(CaseId::Ieee118, 96, true), (CaseId::Ieee300, 64, false)]
    {
        let (block, ok) = bench_case(id, n_scenarios, gate_speedup);
        println!(
            "{id:?}: batch {:.4}s naive {:.4}s speedup {:.2}x ({:.1} scenarios/s) \
             warm_hits {} bitwise_identical {}",
            block["batch"]["min_s"].as_f64().unwrap_or(0.0),
            block["naive"]["min_s"].as_f64().unwrap_or(0.0),
            block["speedup"].as_f64().unwrap_or(0.0),
            block["scenarios_per_sec"].as_f64().unwrap_or(0.0),
            block["warm_hits"],
            block["bitwise_identical"],
        );
        per_case.insert(format!("{id:?}"), block);
        all_ok &= ok;
    }
    drop(guard);

    let mut doc = json!({ "bench": "batch", "cases": Value::Object(per_case) });
    doc["telemetry"] = reg.export();

    let path = out_dir.join("BENCH_batch.json");
    let text = serde_json::to_string_pretty(&doc).expect("artifact serializes");
    if let Err(e) = std::fs::write(&path, text + "\n") {
        eprintln!("bench_batch: writing {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", path.display());

    if !all_ok {
        eprintln!("bench_batch: equivalence/speedup invariant failed");
        return ExitCode::FAILURE;
    }

    if let Some(base_dir) = baseline_dir {
        let baseline = match read_artifact(&base_dir, "BENCH_batch.json") {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("bench_batch: {e}");
                return ExitCode::FAILURE;
            }
        };
        let tolerances = tolerances_from_env();
        let report = compare_artifact("BENCH_batch.json", &baseline, &doc, tolerances);
        println!(
            "compared {} wall stats and {} counters against {} (wall tolerance {:.0}%)",
            report.walls_checked,
            report.counters_checked,
            base_dir.display(),
            tolerances.wall * 100.0
        );
        if !report.passed() {
            for line in report.failures() {
                eprintln!("bench_batch: REGRESSION {line}");
            }
            return ExitCode::FAILURE;
        }
        println!("no regressions");
    }

    println!("inspect with: cargo run -p gm-telemetry --bin gm-trace -- BENCH_batch.json");
    ExitCode::SUCCESS
}

fn read_artifact(dir: &Path, name: &str) -> Result<Value, String> {
    let path = dir.join(name);
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("parsing {}: {e}", path.display()))
}
