//! Contingency-cascade benchmark and equivalence gate — emits
//! `BENCH_ca.json` for the CI `contingency` job.
//!
//! For case118 and case300 the brute N-1 sweep (full AC solve per
//! outage) and the screening cascade (LODF ranking + Woodbury-compensated
//! AC verification of suspects) run back to back from the same base
//! solution. The run itself enforces the Table 1 invariant before any
//! baseline comparison:
//!
//! 1. **Equivalence**: the top-5 criticality rankings must be identical
//!    between brute and cascade, and every outage the brute sweep finds
//!    thermally violating must have been AC-verified by the cascade.
//! 2. **Speed**: the cascade's mean wall time must beat brute's on every
//!    case.
//!
//! ```text
//! cargo run -p gm-bench --bin bench_ca --release -- [out_dir] [--compare <baseline_dir>]
//! ```
//!
//! With `--compare`, the fresh artifact is additionally gated against the
//! committed `BENCH_baseline/BENCH_ca.json` under the standard rules:
//! wall regression beyond tolerance fails, and any `ca.screen.*` counter
//! that goes dark fails (the screen silently never engaging is a
//! regression even at equal speed).

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use gm_bench::compare::{compare_artifact, tolerances_from_env};
use gm_bench::stats;
use gm_contingency::{run_n1, solve_base, CaOptions, ContingencyReport, SweepMode};
use gm_network::{cases, CaseId};
use gm_telemetry::Registry;
use serde_json::{json, Value};

const RUNS: usize = 3;
const TOP_K: usize = 5;

fn stats_value(samples: &[f64]) -> Value {
    let s = stats(samples);
    json!({
        "runs": samples.len(),
        "mean_s": s.mean,
        "std_s": s.std,
        "min_s": s.min,
        "max_s": s.max,
    })
}

struct SweepOutcome {
    report: ContingencyReport,
    secs: Vec<f64>,
}

fn timed_sweeps(
    net: &gm_network::Network,
    opts: &CaOptions,
    base: &gm_powerflow::PfReport,
) -> SweepOutcome {
    let mut secs = Vec::with_capacity(RUNS);
    let mut report = None;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        let rep = run_n1(net, opts, Some(base)).expect("paper case sweeps");
        secs.push(t0.elapsed().as_secs_f64());
        report = Some(rep);
    }
    SweepOutcome {
        report: report.expect("at least one run"),
        secs,
    }
}

/// Runs one case; returns its JSON block and whether the invariants held.
fn bench_case(id: CaseId) -> (Value, bool) {
    let net = cases::load(id);
    let brute_opts = CaOptions {
        mode: SweepMode::Brute,
        ..Default::default()
    };
    let cascade_opts = CaOptions::default();
    let base = solve_base(&net, &cascade_opts).expect("base case converges");

    let brute = timed_sweeps(&net, &brute_opts, &base);
    let cascade = timed_sweeps(&net, &cascade_opts, &base);

    let brute_top = brute.report.top_labels(TOP_K);
    let cascade_top = cascade.report.top_labels(TOP_K);
    let top_identical = brute_top == cascade_top;
    // Coverage: every brute-detected thermal violator must be AC-verified.
    let mut missed_criticals = 0usize;
    for (b, c) in brute.report.outcomes.iter().zip(&cascade.report.outcomes) {
        if b.n_thermal() > 0 && !c.ac_solved {
            missed_criticals += 1;
        }
    }
    let brute_mean = stats(&brute.secs).mean;
    let cascade_mean = stats(&cascade.secs).mean;
    let faster = cascade_mean < brute_mean;
    let ok = top_identical && faster && missed_criticals == 0;

    if !top_identical {
        eprintln!(
            "bench_ca: {id:?} top-{TOP_K} mismatch: brute {brute_top:?} vs cascade {cascade_top:?}"
        );
    }
    if missed_criticals > 0 {
        eprintln!(
            "bench_ca: {id:?} cascade screened out {missed_criticals} thermally violating outages"
        );
    }
    if !faster {
        eprintln!(
            "bench_ca: {id:?} cascade not faster: {cascade_mean:.4}s vs brute {brute_mean:.4}s"
        );
    }

    let block = json!({
        "n_bus": net.n_bus(),
        "n_contingencies": cascade.report.n_contingencies,
        "brute": stats_value(&brute.secs),
        "cascade": stats_value(&cascade.secs),
        "speedup": brute_mean / cascade_mean.max(1e-12),
        "screened_out": cascade.report.screened_out,
        "ac_verified": cascade.report.ac_verified,
        "top5": cascade_top,
        "top5_identical": top_identical,
        "missed_criticals": missed_criticals,
    });
    (block, ok)
}

fn main() -> ExitCode {
    let mut out_dir = PathBuf::from(".");
    let mut baseline_dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--compare" {
            match args.next() {
                Some(d) => baseline_dir = Some(PathBuf::from(d)),
                None => {
                    eprintln!("bench_ca: --compare needs a baseline directory");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            out_dir = PathBuf::from(arg);
        }
    }
    if !out_dir.is_dir() {
        eprintln!(
            "bench_ca: output directory {} does not exist",
            out_dir.display()
        );
        return ExitCode::FAILURE;
    }

    let reg = Registry::new();
    let guard = reg.install();
    let mut per_case = serde_json::Map::new();
    let mut all_ok = true;
    for id in [CaseId::Ieee118, CaseId::Ieee300] {
        let (block, ok) = bench_case(id);
        println!(
            "{id:?}: brute {:.4}s cascade {:.4}s speedup {:.2}x screened_out {} top5_identical {}",
            block["brute"]["mean_s"].as_f64().unwrap_or(0.0),
            block["cascade"]["mean_s"].as_f64().unwrap_or(0.0),
            block["speedup"].as_f64().unwrap_or(0.0),
            block["screened_out"],
            block["top5_identical"],
        );
        per_case.insert(format!("{id:?}"), block);
        all_ok &= ok;
    }
    drop(guard);

    let mut doc = json!({ "bench": "ca", "cases": Value::Object(per_case) });
    doc["telemetry"] = reg.export();

    let path = out_dir.join("BENCH_ca.json");
    let text = serde_json::to_string_pretty(&doc).expect("artifact serializes");
    if let Err(e) = std::fs::write(&path, text + "\n") {
        eprintln!("bench_ca: writing {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", path.display());

    if !all_ok {
        eprintln!("bench_ca: cascade equivalence/speed invariant failed");
        return ExitCode::FAILURE;
    }

    if let Some(base_dir) = baseline_dir {
        let baseline = match read_artifact(&base_dir, "BENCH_ca.json") {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("bench_ca: {e}");
                return ExitCode::FAILURE;
            }
        };
        let tolerances = tolerances_from_env();
        let report = compare_artifact("BENCH_ca.json", &baseline, &doc, tolerances);
        println!(
            "compared {} wall stats and {} counters against {} (wall tolerance {:.0}%)",
            report.walls_checked,
            report.counters_checked,
            base_dir.display(),
            tolerances.wall * 100.0
        );
        if !report.passed() {
            for line in report.failures() {
                eprintln!("bench_ca: REGRESSION {line}");
            }
            return ExitCode::FAILURE;
        }
        println!("no regressions");
    }

    println!("inspect with: cargo run -p gm-telemetry --bin gm-trace -- BENCH_ca.json");
    ExitCode::SUCCESS
}

fn read_artifact(dir: &Path, name: &str) -> Result<Value, String> {
    let path = dir.join(name);
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("parsing {}: {e}", path.display()))
}
