//! Benchmark regression comparison — the CI gate behind
//! `bench_export --compare <baseline_dir>`.
//!
//! A fresh benchmark artifact is compared against its committed
//! baseline (`BENCH_baseline/BENCH_*.json`) under two rules:
//!
//! 1. **Wall-time regression**: any tracked wall statistic (`mean_s`
//!    per case for pf/acopf, `wall_elapsed_s` for e2e) more than
//!    `tolerance` (default 25%, `BENCH_REGRESSION_TOLERANCE` env
//!    override) above its baseline fails. Serve latency quantiles
//!    (`kinds.<kind>.p50_s`/`p99_s` in `BENCH_serve.json`) are gated
//!    under a separate, looser tolerance (default 100%,
//!    `BENCH_QUANTILE_TOLERANCE` env override) above a noise floor —
//!    queue-wait percentiles are scheduler-dependent in a way per-solve
//!    means are not.
//! 2. **Counter liveness**: any telemetry counter that was nonzero in
//!    the baseline but is zero or absent in the current run fails —
//!    a solver path silently going dark is a regression even when the
//!    wall clock looks fine.
//!
//! Improvements (faster, more counters) never fail.

use serde_json::Value;

/// Default allowed relative slow-down before failing (25%).
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// Default allowed relative slow-down for serve latency quantiles
/// (100%). Percentiles of queue wait + service time move with host
/// scheduling far more than per-solve means do, so the quantile gate is
/// looser by default and independently overridable.
pub const DEFAULT_QUANTILE_TOLERANCE: f64 = 1.0;

/// Wall-time and quantile tolerances applied by one compare run.
#[derive(Clone, Copy, Debug)]
pub struct Tolerances {
    /// Relative slow-down allowed for pf/acopf/sparse/e2e wall stats.
    pub wall: f64,
    /// Relative slow-down allowed for serve latency quantiles.
    pub quantile: f64,
}

impl Tolerances {
    /// The same tolerance for both families (convenient in tests).
    pub fn uniform(t: f64) -> Tolerances {
        Tolerances {
            wall: t,
            quantile: t,
        }
    }
}

/// One detected regression.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// Artifact the metric came from (e.g. `BENCH_pf.json`).
    pub artifact: String,
    /// Dotted metric path (e.g. `cases.Ieee118.mean_s`).
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
}

impl Regression {
    /// Relative change versus baseline (`0.30` = 30% slower; for
    /// counters, `-1.0` = went to zero).
    pub fn ratio(&self) -> f64 {
        if self.baseline == 0.0 {
            0.0
        } else {
            self.current / self.baseline - 1.0
        }
    }
}

/// Outcome of comparing one current artifact against its baseline.
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    /// Wall statistics checked.
    pub walls_checked: usize,
    /// Counters checked for liveness.
    pub counters_checked: usize,
    /// Wall-time regressions beyond tolerance.
    pub slower: Vec<Regression>,
    /// Counters nonzero in baseline but zero/absent now.
    pub dead_counters: Vec<Regression>,
}

impl CompareReport {
    /// True when no rule fired.
    pub fn passed(&self) -> bool {
        self.slower.is_empty() && self.dead_counters.is_empty()
    }

    /// Human-readable failure lines (empty when passed).
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        for r in &self.slower {
            out.push(format!(
                "{}: {} regressed {:.0}% ({:.4}s -> {:.4}s)",
                r.artifact,
                r.metric,
                r.ratio() * 100.0,
                r.baseline,
                r.current
            ));
        }
        for r in &self.dead_counters {
            out.push(format!(
                "{}: counter {} went dark (baseline {}, now {})",
                r.artifact, r.metric, r.baseline, r.current
            ));
        }
        out
    }

    fn merge(&mut self, other: CompareReport) {
        self.walls_checked += other.walls_checked;
        self.counters_checked += other.counters_checked;
        self.slower.extend(other.slower);
        self.dead_counters.extend(other.dead_counters);
    }
}

fn env_tolerance(var: &str, default: f64) -> f64 {
    std::env::var(var)
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|t| t.is_finite() && *t >= 0.0)
        .unwrap_or(default)
}

/// The effective tolerances: `BENCH_REGRESSION_TOLERANCE` /
/// `BENCH_QUANTILE_TOLERANCE` when set and parseable,
/// [`DEFAULT_TOLERANCE`] / [`DEFAULT_QUANTILE_TOLERANCE`] otherwise.
pub fn tolerances_from_env() -> Tolerances {
    Tolerances {
        wall: env_tolerance("BENCH_REGRESSION_TOLERANCE", DEFAULT_TOLERANCE),
        quantile: env_tolerance("BENCH_QUANTILE_TOLERANCE", DEFAULT_QUANTILE_TOLERANCE),
    }
}

fn wall_paths(artifact: &str, doc: &Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    match doc.get("bench").and_then(Value::as_str) {
        Some("pf") | Some("acopf") => {
            if let Some(cases) = doc.get("cases").and_then(Value::as_object) {
                for (case, v) in cases {
                    if let Some(mean) = v.get("mean_s").and_then(Value::as_f64) {
                        out.push((format!("cases.{case}.mean_s"), mean));
                    }
                }
            }
        }
        Some("sparse") => {
            // Nested per-case stats: analyze (full factorization) and
            // refactor (pattern-reuse path) are gated independently.
            // Microsecond-scale means (small cases) sit inside timer
            // noise where a 25% band would flake, so only statistics
            // above a measurement floor are gated.
            const SPARSE_WALL_FLOOR_S: f64 = 50e-6;
            if let Some(cases) = doc.get("cases").and_then(Value::as_object) {
                for (case, v) in cases {
                    for kind in ["analyze", "refactor"] {
                        if let Some(mean) = v
                            .get(kind)
                            .and_then(|s| s.get("mean_s"))
                            .and_then(Value::as_f64)
                        {
                            if mean >= SPARSE_WALL_FLOOR_S {
                                out.push((format!("cases.{case}.{kind}.mean_s"), mean));
                            }
                        }
                    }
                }
            }
        }
        Some("ca") => {
            // Contingency cascade artifact: brute and cascade sweep means
            // are gated independently per case, so the cascade slowly
            // converging back toward brute cost is caught even while it
            // still nominally "beats" it (bench_ca enforces the
            // cascade-beats-brute invariant itself on every run).
            if let Some(cases) = doc.get("cases").and_then(Value::as_object) {
                for (case, v) in cases {
                    for kind in ["brute", "cascade"] {
                        if let Some(mean) = v
                            .get(kind)
                            .and_then(|s| s.get("mean_s"))
                            .and_then(Value::as_f64)
                        {
                            out.push((format!("cases.{case}.{kind}.mean_s"), mean));
                        }
                    }
                }
            }
        }
        Some("batch") => {
            // Batched-study artifact: the batch and naive-loop walls are
            // gated independently per case — the batch quietly losing
            // its amortization edge shows up as a batch-wall regression
            // even while it still beats the naive loop (bench_batch
            // enforces the ≥5x speedup invariant itself on every run).
            // Min-of-runs rather than mean: the batch leg is tens of
            // milliseconds, where scheduler noise swings the mean well
            // past the tolerance band while the min stays put.
            if let Some(cases) = doc.get("cases").and_then(Value::as_object) {
                for (case, v) in cases {
                    for kind in ["batch", "naive"] {
                        if let Some(min) = v
                            .get(kind)
                            .and_then(|s| s.get("min_s"))
                            .and_then(Value::as_f64)
                        {
                            out.push((format!("cases.{case}.{kind}.min_s"), min));
                        }
                    }
                }
            }
        }
        Some("scale") => {
            // Scaling-curve artifact: AMD analyze / refactor means and
            // the end-to-end Newton min are gated per size. The greedy
            // legs are reference measurements, not gated — the bin
            // itself enforces the AMD-vs-greedy speedup and fill
            // invariants on every run. The same measurement floor as
            // the sparse artifact keeps the small sizes out of timer
            // noise.
            const SCALE_WALL_FLOOR_S: f64 = 50e-6;
            if let Some(cases) = doc.get("cases").and_then(Value::as_object) {
                for (case, v) in cases {
                    for (kind, stat) in [
                        ("analyze", "mean_s"),
                        ("refactor", "mean_s"),
                        ("newton", "min_s"),
                        ("panel_blocked", "min_s"),
                    ] {
                        if let Some(x) = v
                            .get(kind)
                            .and_then(|s| s.get(stat))
                            .and_then(Value::as_f64)
                        {
                            if x >= SCALE_WALL_FLOOR_S {
                                out.push((format!("cases.{case}.{kind}.{stat}"), x));
                            }
                        }
                    }
                }
            }
        }
        Some("e2e") => {
            if let Some(w) = doc.get("wall_elapsed_s").and_then(Value::as_f64) {
                out.push(("wall_elapsed_s".to_string(), w));
            }
        }
        Some("serve") => {
            // Per-query-kind latency quantiles from the soak driver.
            // Sub-floor percentiles (a kind whose whole path is a cache
            // recall) sit inside scheduler jitter and are not gated —
            // the same reasoning as the sparse measurement floor.
            const SERVE_QUANTILE_FLOOR_S: f64 = 5e-3;
            if let Some(kinds) = doc.get("kinds").and_then(Value::as_object) {
                for (kind, v) in kinds {
                    for stat in ["p50_s", "p99_s"] {
                        if let Some(x) = v.get(stat).and_then(Value::as_f64) {
                            if x >= SERVE_QUANTILE_FLOOR_S {
                                out.push((format!("kinds.{kind}.{stat}"), x));
                            }
                        }
                    }
                }
            }
        }
        _ => {
            let _ = artifact; // unknown artifact shape: nothing to check
        }
    }
    out
}

fn counters(doc: &Value) -> Vec<(String, f64)> {
    doc.get("telemetry")
        .and_then(|t| t.get("counters"))
        .and_then(Value::as_object)
        .map(|m| {
            m.iter()
                .filter_map(|(k, v)| v.as_f64().map(|x| (k.clone(), x)))
                .collect()
        })
        .unwrap_or_default()
}

/// Compares one artifact pair under the two rules. Serve artifacts
/// (`"bench": "serve"`) are gated under `tolerances.quantile`; all
/// other wall statistics under `tolerances.wall`.
pub fn compare_artifact(
    artifact: &str,
    baseline: &Value,
    current: &Value,
    tolerances: Tolerances,
) -> CompareReport {
    let tolerance = match baseline.get("bench").and_then(Value::as_str) {
        Some("serve") => tolerances.quantile,
        _ => tolerances.wall,
    };
    let mut rep = CompareReport::default();
    let current_walls = wall_paths(artifact, current);
    for (metric, base) in wall_paths(artifact, baseline) {
        let Some((_, cur)) = current_walls.iter().find(|(m, _)| *m == metric) else {
            continue; // case removed: the counter rule will notice dead paths
        };
        rep.walls_checked += 1;
        if base > 0.0 && *cur > base * (1.0 + tolerance) {
            rep.slower.push(Regression {
                artifact: artifact.to_string(),
                metric,
                baseline: base,
                current: *cur,
            });
        }
    }
    let current_counters = counters(current);
    for (name, base) in counters(baseline) {
        if base <= 0.0 {
            continue;
        }
        rep.counters_checked += 1;
        let now = current_counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0.0, |(_, v)| *v);
        if now == 0.0 {
            rep.dead_counters.push(Regression {
                artifact: artifact.to_string(),
                metric: name,
                baseline: base,
                current: 0.0,
            });
        }
    }
    rep
}

/// Compares a set of `(artifact name, baseline, current)` triples and
/// folds the outcomes into one report.
pub fn compare_all(triples: &[(&str, &Value, &Value)], tolerances: Tolerances) -> CompareReport {
    let mut rep = CompareReport::default();
    for (artifact, baseline, current) in triples {
        rep.merge(compare_artifact(artifact, baseline, current, tolerances));
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn pf_doc(mean: f64, newton_solves: u64) -> Value {
        json!({
            "bench": "pf",
            "cases": { "Ieee14": { "mean_s": mean, "runs": 5 } },
            "telemetry": { "counters": { "pf.newton.solves": newton_solves } },
        })
    }

    #[test]
    fn within_tolerance_passes() {
        let base = pf_doc(0.010, 25);
        let cur = pf_doc(0.012, 40); // +20% < 25%
        let rep = compare_artifact("BENCH_pf.json", &base, &cur, Tolerances::uniform(0.25));
        assert!(rep.passed(), "{:?}", rep.failures());
        assert_eq!(rep.walls_checked, 1);
        assert_eq!(rep.counters_checked, 1);
    }

    #[test]
    fn wall_regression_beyond_tolerance_fails() {
        let base = pf_doc(0.010, 25);
        let cur = pf_doc(0.014, 25); // +40% > 25%
        let rep = compare_artifact("BENCH_pf.json", &base, &cur, Tolerances::uniform(0.25));
        assert!(!rep.passed());
        assert_eq!(rep.slower.len(), 1);
        assert_eq!(rep.slower[0].metric, "cases.Ieee14.mean_s");
        assert!((rep.slower[0].ratio() - 0.4).abs() < 1e-9);
        assert!(rep.failures()[0].contains("regressed"));
    }

    #[test]
    fn speedup_never_fails() {
        let base = pf_doc(0.010, 25);
        let cur = pf_doc(0.001, 25);
        assert!(compare_artifact("BENCH_pf.json", &base, &cur, Tolerances::uniform(0.25)).passed());
    }

    #[test]
    fn counter_going_to_zero_fails_even_when_fast() {
        let base = pf_doc(0.010, 25);
        let mut cur = pf_doc(0.010, 0);
        let rep = compare_artifact("BENCH_pf.json", &base, &cur, Tolerances::uniform(0.25));
        assert_eq!(rep.dead_counters.len(), 1);
        assert_eq!(rep.dead_counters[0].metric, "pf.newton.solves");

        // Absent counts the same as zero.
        cur["telemetry"]["counters"] = json!({});
        let rep = compare_artifact("BENCH_pf.json", &base, &cur, Tolerances::uniform(0.25));
        assert_eq!(rep.dead_counters.len(), 1);
        assert!(!rep.passed());
    }

    #[test]
    fn batch_doc_gates_batch_and_naive_walls_separately() {
        let batch_doc = |batch: f64, naive: f64| {
            json!({
                "bench": "batch",
                "cases": { "Ieee118": {
                    "batch": { "min_s": batch },
                    "naive": { "min_s": naive },
                }},
                "telemetry": { "counters": { "batch.warm_hits": 63 } },
            })
        };
        let base = batch_doc(0.10, 0.80);
        let rep = compare_artifact(
            "BENCH_batch.json",
            &base,
            &batch_doc(0.11, 0.82),
            Tolerances::uniform(0.25),
        );
        assert!(rep.passed(), "{:?}", rep.failures());
        assert_eq!(rep.walls_checked, 2);

        // The batch losing its amortization edge regresses its own wall
        // even while it still beats the naive loop outright.
        let rep = compare_artifact(
            "BENCH_batch.json",
            &base,
            &batch_doc(0.20, 0.80),
            Tolerances::uniform(0.25),
        );
        assert!(!rep.passed());
        assert_eq!(rep.slower[0].metric, "cases.Ieee118.batch.min_s");
    }

    #[test]
    fn e2e_wall_and_multi_artifact_fold() {
        let base_e2e = json!({
            "bench": "e2e",
            "wall_elapsed_s": 1.0,
            "telemetry": { "counters": { "llm.turns": 6 } },
        });
        let cur_e2e = json!({
            "bench": "e2e",
            "wall_elapsed_s": 1.6,
            "telemetry": { "counters": { "llm.turns": 6 } },
        });
        let base_pf = pf_doc(0.010, 25);
        let cur_pf = pf_doc(0.010, 25);
        let rep = compare_all(
            &[
                ("BENCH_e2e.json", &base_e2e, &cur_e2e),
                ("BENCH_pf.json", &base_pf, &cur_pf),
            ],
            Tolerances::uniform(0.25),
        );
        assert_eq!(rep.slower.len(), 1);
        assert_eq!(rep.slower[0].artifact, "BENCH_e2e.json");
        assert_eq!(rep.walls_checked, 2);
    }

    #[test]
    fn sparse_doc_gates_analyze_and_refactor_separately() {
        let sparse_doc = |analyze: f64, refactor: f64| {
            json!({
                "bench": "sparse",
                "cases": { "Ieee14": {
                    "analyze": { "mean_s": analyze, "runs": 20 },
                    "refactor": { "mean_s": refactor, "runs": 20 },
                } },
                "telemetry": { "counters": { "sparse.symbolic.reuse": 20 } },
            })
        };
        let base = sparse_doc(0.010, 0.002);
        let ok = sparse_doc(0.011, 0.002);
        let rep = compare_artifact("BENCH_sparse.json", &base, &ok, Tolerances::uniform(0.25));
        assert!(rep.passed(), "{:?}", rep.failures());
        assert_eq!(rep.walls_checked, 2);

        // The refactor path regressing alone must fail, even with the
        // full analysis unchanged.
        let slow_refactor = sparse_doc(0.010, 0.004);
        let rep = compare_artifact(
            "BENCH_sparse.json",
            &base,
            &slow_refactor,
            Tolerances::uniform(0.25),
        );
        assert_eq!(rep.slower.len(), 1);
        assert_eq!(rep.slower[0].metric, "cases.Ieee14.refactor.mean_s");

        // Microsecond-scale means sit below the measurement floor and
        // are not wall-gated at all — a 3x swing there is timer noise.
        let tiny_base = sparse_doc(5e-6, 2e-6);
        let tiny_cur = sparse_doc(15e-6, 6e-6);
        let rep = compare_artifact(
            "BENCH_sparse.json",
            &tiny_base,
            &tiny_cur,
            Tolerances::uniform(0.25),
        );
        assert!(rep.passed(), "{:?}", rep.failures());
        assert_eq!(rep.walls_checked, 0);
    }

    #[test]
    fn ca_doc_gates_brute_and_cascade_means() {
        let ca_doc = |brute: f64, cascade: f64, screened: u64| {
            json!({
                "bench": "ca",
                "cases": { "Ieee118": {
                    "brute": { "mean_s": brute, "runs": 3 },
                    "cascade": { "mean_s": cascade, "runs": 3 },
                    "speedup": brute / cascade,
                } },
                "telemetry": { "counters": { "ca.screen.screened_out": screened } },
            })
        };
        let base = ca_doc(0.200, 0.080, 120);
        let ok = ca_doc(0.210, 0.085, 130);
        let rep = compare_artifact("BENCH_ca.json", &base, &ok, Tolerances::uniform(0.25));
        assert!(rep.passed(), "{:?}", rep.failures());
        assert_eq!(rep.walls_checked, 2);

        // The cascade regressing alone fails even while still beating
        // brute in absolute terms.
        let slow_cascade = ca_doc(0.200, 0.150, 120);
        let rep = compare_artifact(
            "BENCH_ca.json",
            &base,
            &slow_cascade,
            Tolerances::uniform(0.25),
        );
        assert_eq!(rep.slower.len(), 1);
        assert_eq!(rep.slower[0].metric, "cases.Ieee118.cascade.mean_s");

        // The screen silently never engaging is a dead counter.
        let dark = ca_doc(0.200, 0.080, 0);
        let rep = compare_artifact("BENCH_ca.json", &base, &dark, Tolerances::uniform(0.25));
        assert_eq!(rep.dead_counters.len(), 1);
        assert_eq!(rep.dead_counters[0].metric, "ca.screen.screened_out");
    }

    #[test]
    fn scale_doc_gates_amd_walls_but_not_greedy_legs() {
        let scale_doc = |analyze: f64, newton: f64, orders: u64| {
            json!({
                "bench": "scale",
                "cases": { "synth9241": {
                    "analyze": { "mean_s": analyze, "runs": 3 },
                    "analyze_greedy": { "mean_s": analyze * 20.0, "runs": 3 },
                    "refactor": { "mean_s": analyze / 4.0, "runs": 3 },
                    "newton": { "min_s": newton, "runs": 3 },
                    "newton_greedy": { "min_s": newton * 3.0, "runs": 3 },
                    "panel_blocked": { "min_s": 0.010, "runs": 3 },
                    "panel_percol": { "min_s": 0.030, "runs": 3 },
                } },
                "telemetry": { "counters": { "sparse.amd.orders": orders } },
            })
        };
        let base = scale_doc(0.050, 0.400, 12);
        let ok = scale_doc(0.055, 0.420, 14);
        let rep = compare_artifact("BENCH_scale.json", &base, &ok, Tolerances::uniform(0.25));
        assert!(rep.passed(), "{:?}", rep.failures());
        // analyze + refactor + newton + panel_blocked; greedy legs are
        // reference-only.
        assert_eq!(rep.walls_checked, 4);

        // The Newton leg regressing alone fails.
        let slow = scale_doc(0.050, 0.900, 12);
        let rep = compare_artifact("BENCH_scale.json", &base, &slow, Tolerances::uniform(0.25));
        assert_eq!(rep.slower.len(), 1);
        assert_eq!(rep.slower[0].metric, "cases.synth9241.newton.min_s");

        // The AMD ordering going dark is a dead counter.
        let dark = scale_doc(0.050, 0.400, 0);
        let rep = compare_artifact("BENCH_scale.json", &base, &dark, Tolerances::uniform(0.25));
        assert_eq!(rep.dead_counters.len(), 1);
        assert_eq!(rep.dead_counters[0].metric, "sparse.amd.orders");
    }

    fn serve_doc(pf_p50: f64, pf_p99: f64, status_p99: f64) -> Value {
        json!({
            "bench": "serve",
            "kinds": {
                "pf": { "count": 8, "p50_s": pf_p50, "p99_s": pf_p99, "max_s": pf_p99 * 1.2 },
                "status": { "count": 8, "p50_s": status_p99 / 2.0, "p99_s": status_p99,
                            "max_s": status_p99 * 1.2 },
            },
            "telemetry": { "counters": { "serve.requests": 32 } },
        })
    }

    #[test]
    fn serve_doc_gates_quantiles_under_the_quantile_tolerance() {
        let tol = Tolerances {
            wall: 0.25,
            quantile: 1.0,
        };
        let base = serve_doc(0.050, 0.100, 0.020);
        // +60% on pf p99 is inside the 100% quantile band even though it
        // would blow the 25% wall band.
        let ok = serve_doc(0.050, 0.160, 0.020);
        let rep = compare_artifact("BENCH_serve.json", &base, &ok, tol);
        assert!(rep.passed(), "{:?}", rep.failures());
        assert_eq!(rep.walls_checked, 4);

        // +150% on pf p99 fails, and only that metric.
        let slow = serve_doc(0.050, 0.250, 0.020);
        let rep = compare_artifact("BENCH_serve.json", &base, &slow, tol);
        assert_eq!(rep.slower.len(), 1);
        assert_eq!(rep.slower[0].metric, "kinds.pf.p99_s");
    }

    #[test]
    fn serve_quantiles_below_the_noise_floor_are_not_gated() {
        // Whole-path-cached kinds sit in the sub-5ms scheduler-jitter
        // band: a 10x swing there must not trip the gate.
        let base = serve_doc(0.0002, 0.0004, 0.0001);
        let cur = serve_doc(0.002, 0.004, 0.001);
        let rep = compare_artifact("BENCH_serve.json", &base, &cur, Tolerances::uniform(0.25));
        assert!(rep.passed(), "{:?}", rep.failures());
        assert_eq!(rep.walls_checked, 0);
    }

    #[test]
    fn serve_counters_still_obey_the_liveness_rule() {
        let base = serve_doc(0.050, 0.100, 0.020);
        let mut cur = serve_doc(0.050, 0.100, 0.020);
        cur["telemetry"]["counters"]["serve.requests"] = json!(0);
        let rep = compare_artifact("BENCH_serve.json", &base, &cur, Tolerances::uniform(0.25));
        assert_eq!(rep.dead_counters.len(), 1);
        assert_eq!(rep.dead_counters[0].metric, "serve.requests");
    }

    #[test]
    fn new_counters_in_current_are_ignored() {
        let base = pf_doc(0.010, 25);
        let mut cur = pf_doc(0.010, 25);
        cur["telemetry"]["counters"]["brand.new.counter"] = json!(7);
        assert!(compare_artifact("BENCH_pf.json", &base, &cur, Tolerances::uniform(0.25)).passed());
    }
}
