//! # gm-bench
//!
//! The experiment harness: binaries that regenerate every table and
//! figure of the paper's evaluation (§4), plus Criterion benches for the
//! solver substrates and the design-choice ablations called out in
//! DESIGN.md.
//!
//! | Target | Paper artifact |
//! |---|---|
//! | `table2` (bin) | Table 2 — test case inventory |
//! | `figure3` (bin) | Figure 3 — ACOPF agent success / latency panels |
//! | `table1` (bin) | Table 1 — CA agent per-model performance |
//! | `calibrate_ratings` (bin) | regenerates the embedded rating tables |
//! | `power_flow` (bench) | Newton solver scaling per case |
//! | `acopf` (bench) | interior-point ACOPF scaling per case |
//! | `contingency` (bench) | serial vs rayon-parallel N-1 ablation |
//! | `sparse_lu` (bench) | sparse vs dense factorization crossover |
//! | `agent_pipeline` (bench) | end-to-end agent turn (real compute) |

pub mod compare;

use gridmind_core::{GridMind, ModelProfile};

/// Runs one scripted conversation and returns `(virtual seconds, success,
/// total tokens)`.
pub fn timed_ask(gm: &mut GridMind, request: &str) -> (f64, bool, u64) {
    let reply = gm.ask(request);
    let ok = reply.steps.iter().all(|s| s.completed);
    (reply.elapsed_s, ok, reply.tokens.total())
}

/// Builds a model profile whose RNG seed is offset per run, so repeated
/// runs of the same backend sample fresh latencies (the paper's "5 runs").
pub fn profile_for_run(base: &ModelProfile, run: u64) -> ModelProfile {
    let mut p = base.clone();
    p.seed = p.seed.wrapping_add(run.wrapping_mul(0x9E37_79B9));
    p
}

/// Simple descriptive statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
}

/// Computes [`Stats`] over a sample.
pub fn stats(xs: &[f64]) -> Stats {
    if xs.is_empty() {
        return Stats::default();
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = if xs.len() > 1 {
        xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    Stats {
        min: xs.iter().cloned().fold(f64::INFINITY, f64::min),
        max: xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        mean,
        std: var.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basic() {
        let s = stats(&[1.0, 2.0, 3.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - 1.0).abs() < 1e-12);
        assert_eq!(stats(&[]).mean, 0.0);
    }

    #[test]
    fn run_offset_profiles_differ() {
        let base = ModelProfile::by_name("GPT-5").unwrap();
        let a = profile_for_run(&base, 0);
        let b = profile_for_run(&base, 1);
        assert_eq!(a.seed, base.seed);
        assert_ne!(a.seed, b.seed);
        assert_eq!(a.name, b.name);
    }
}
