//! Criterion bench: the N-1 sweep — serial vs rayon-parallel (ablation
//! DESIGN.md §4.1) and warm- vs flat-started post-outage solves (§4.3).

use criterion::{criterion_group, criterion_main, Criterion};
use gm_contingency::{run_n1, run_n1_screened, solve_base, CaOptions};
use gm_network::{cases, CaseId};
use std::hint::black_box;

fn bench_parallel_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("n1_sweep_case118");
    group.sample_size(10);
    let net = cases::load(CaseId::Ieee118);
    let par = CaOptions::default();
    let ser = CaOptions {
        parallel: false,
        ..Default::default()
    };
    let base = solve_base(&net, &par).unwrap();
    group.bench_function("parallel_rayon", |b| {
        b.iter(|| black_box(run_n1(&net, &par, Some(&base)).unwrap().n_contingencies))
    });
    group.bench_function("serial", |b| {
        b.iter(|| black_box(run_n1(&net, &ser, Some(&base)).unwrap().n_contingencies))
    });
    group.bench_function("dc_screened_parallel", |b| {
        b.iter(|| {
            black_box(
                run_n1_screened(&net, &par, Some(&base), 0.85)
                    .unwrap()
                    .n_contingencies,
            )
        })
    });
    group.finish();
}

fn bench_sweep_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("n1_sweep_scaling");
    group.sample_size(10);
    for id in [CaseId::Ieee14, CaseId::Ieee30, CaseId::Ieee57] {
        let net = cases::load(id);
        let opts = CaOptions::default();
        group.bench_function(format!("case{}", id.size()), |b| {
            b.iter(|| black_box(run_n1(&net, &opts, None).unwrap().total_violations))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_ablation, bench_sweep_scaling);
criterion_main!(benches);
