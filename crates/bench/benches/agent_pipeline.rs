//! Criterion bench: end-to-end agent turns (real compute only — the
//! virtual LLM latency is accounted on the virtual clock and does not
//! slow the bench), plus the contingency-cache ablation via repeated
//! compound requests.

use criterion::{criterion_group, criterion_main, Criterion};
use gridmind_core::{GridMind, ModelProfile};
use std::hint::black_box;

fn bench_agent_turns(c: &mut Criterion) {
    let mut group = c.benchmark_group("agent_pipeline");
    group.sample_size(10);
    group.bench_function("solve_case14_turn", |b| {
        b.iter(|| {
            let mut gm = GridMind::new(ModelProfile::by_name("GPT-o3").unwrap());
            black_box(gm.ask("solve case14").elapsed_s)
        })
    });
    group.bench_function("what_if_turn_case14", |b| {
        let mut gm = GridMind::new(ModelProfile::by_name("GPT-o3").unwrap());
        gm.ask("solve case14");
        let mut p = 20.0;
        b.iter(|| {
            p += 1.0;
            black_box(
                gm.ask(&format!("set the load at bus 10 to {p} MW"))
                    .elapsed_s,
            )
        })
    });
    group.bench_function("full_ca_turn_case30", |b| {
        b.iter(|| {
            let mut gm = GridMind::new(ModelProfile::by_name("GPT-o3").unwrap());
            black_box(gm.ask("run the contingency analysis for case30").elapsed_s)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_agent_turns);
criterion_main!(benches);
