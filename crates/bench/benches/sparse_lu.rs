//! Criterion bench: sparse vs dense LU on power-flow-Jacobian-like
//! matrices (ablation DESIGN.md §4.2), plus the ordering ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gm_numeric::{DMat, DenseLu};
use gm_sparse::{CsMat, Ordering, SparseLu, Triplets};
use std::hint::black_box;

/// Builds a Jacobian-like sparse matrix: 2D-mesh stencil of size n×n.
fn mesh_matrix(m: usize) -> CsMat<f64> {
    let n = m * m;
    let mut t = Triplets::new(n, n);
    for r in 0..m {
        for c in 0..m {
            let i = r * m + c;
            t.push(i, i, 8.0 + (i % 7) as f64 * 0.1);
            if c + 1 < m {
                t.push(i, i + 1, -1.1);
                t.push(i + 1, i, -0.9);
            }
            if r + 1 < m {
                t.push(i, i + m, -1.2);
                t.push(i + m, i, -0.8);
            }
        }
    }
    t.to_csr()
}

fn bench_sparse_vs_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("lu_factor_solve");
    group.sample_size(20);
    for m in [8usize, 14, 20] {
        let n = m * m;
        let a = mesh_matrix(m);
        let b: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        group.bench_with_input(BenchmarkId::new("sparse_min_degree", n), &a, |bch, a| {
            bch.iter(|| black_box(SparseLu::factor(a).unwrap().solve(&b)))
        });
        group.bench_with_input(BenchmarkId::new("sparse_natural", n), &a, |bch, a| {
            bch.iter(|| {
                black_box(
                    SparseLu::factor_with(a, Ordering::Natural, 0.1)
                        .unwrap()
                        .solve(&b),
                )
            })
        });
        let mut d = DMat::zeros(n, n);
        a.to_dense_with(|i, j, v| d[(i, j)] = v);
        group.bench_with_input(BenchmarkId::new("dense", n), &d, |bch, d| {
            bch.iter(|| black_box(DenseLu::factor(d).unwrap().solve(&b)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sparse_vs_dense);
criterion_main!(benches);
