//! Criterion bench: interior-point ACOPF per IEEE case (the solver cost
//! component visible in Figure 3 right).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gm_acopf::{economic_dispatch, solve_acopf, solve_dcopf, AcopfOptions, IpmOptions};
use gm_network::{cases, CaseId};
use std::hint::black_box;

fn bench_acopf(c: &mut Criterion) {
    let mut group = c.benchmark_group("acopf_ipm");
    group.sample_size(10);
    for id in [
        CaseId::Ieee14,
        CaseId::Ieee30,
        CaseId::Ieee57,
        CaseId::Ieee118,
    ] {
        let net = cases::load(id);
        group.bench_with_input(BenchmarkId::from_parameter(id.size()), &net, |b, net| {
            b.iter(|| {
                black_box(
                    solve_acopf(net, &AcopfOptions::default())
                        .unwrap()
                        .objective_cost,
                )
            })
        });
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("opf_baselines_case118");
    group.sample_size(10);
    let net = cases::load(CaseId::Ieee118);
    group.bench_function("economic_dispatch", |b| {
        b.iter(|| black_box(economic_dispatch(&net, net.total_load_mw()).cost))
    });
    group.bench_function("dc_opf", |b| {
        b.iter(|| {
            black_box(
                solve_dcopf(&net, &IpmOptions::default())
                    .unwrap()
                    .objective_cost,
            )
        })
    });
    group.bench_function("ac_opf", |b| {
        b.iter(|| {
            black_box(
                solve_acopf(&net, &AcopfOptions::default())
                    .unwrap()
                    .objective_cost,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_acopf, bench_baselines);
criterion_main!(benches);
