//! Criterion bench: Newton–Raphson power flow per IEEE case, plus the
//! warm-start ablation (DESIGN.md §4.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gm_network::{cases, CaseId};
use gm_numeric::Complex;
use gm_powerflow::{solve, solve_from, InitStrategy, PfOptions};
use std::hint::black_box;

fn bench_newton(c: &mut Criterion) {
    let mut group = c.benchmark_group("newton_power_flow");
    group.sample_size(20);
    for id in CaseId::ALL {
        let net = cases::load(id);
        let opts = PfOptions {
            enforce_q_limits: false,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("flat_start", id.size()), &net, |b, net| {
            b.iter(|| black_box(solve(net, &opts).unwrap().iterations))
        });
    }
    group.finish();
}

fn bench_warm_vs_flat(c: &mut Criterion) {
    let mut group = c.benchmark_group("newton_start_strategy");
    group.sample_size(20);
    let net = cases::load(CaseId::Ieee118);
    let opts = PfOptions {
        enforce_q_limits: false,
        ..Default::default()
    };
    let base = solve(&net, &opts).unwrap();
    let v0: Vec<Complex> = base
        .buses
        .iter()
        .map(|b| Complex::from_polar(b.vm_pu, b.va_deg.to_radians()))
        .collect();
    // Perturbed case (one outage) resolved warm vs flat — the contingency
    // engine's inner loop.
    let mut outaged = net.clone();
    outaged.branches[40].in_service = false;

    group.bench_function("case118_outage_warm", |b| {
        b.iter(|| black_box(solve_from(&outaged, &opts, Some(&v0)).unwrap().iterations))
    });
    group.bench_function("case118_outage_flat", |b| {
        b.iter(|| black_box(solve(&outaged, &opts).unwrap().iterations))
    });
    let dc_opts = PfOptions {
        init: InitStrategy::DcWarmStart,
        enforce_q_limits: false,
        ..Default::default()
    };
    group.bench_function("case118_outage_dc_start", |b| {
        b.iter(|| black_box(solve(&outaged, &dc_opts).unwrap().iterations))
    });
    group.finish();
}

criterion_group!(benches, bench_newton, bench_warm_vs_flat);
criterion_main!(benches);
