//! The agent runtime: the paper's deterministic loop —
//! *parse, plan, invoke, validate, narrate, persist* (§3.1).
//!
//! An [`Agent`] owns a language model backend, a tool registry, a memory,
//! and a set of result validators. `handle` runs plan/invoke rounds until
//! the backend narrates a final answer: every tool result is
//! schema-validated by the registry and domain-validated by the
//! validators; failures are surfaced back to the planner as structured
//! errors so it can take the automatic recovery path (§3.2.1).

use crate::clock::VirtualClock;
use crate::llm::{LanguageModel, TokenUsage, TurnAction};
use crate::memory::{AgentMemory, Role};
use crate::tool::{ToolError, ToolRegistry};
use serde::{Deserialize, Serialize};
use serde_json::{json, Value};
use std::sync::Arc;

/// Severity of a validation finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Severity {
    /// Informational (logged, not surfaced).
    Info,
    /// Suspicious but usable (surfaced in the narration).
    Warning,
    /// The result must not be used.
    Error,
}

/// One validation finding.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ValidationIssue {
    /// Severity.
    pub severity: Severity,
    /// Which check produced it.
    pub check: String,
    /// Human-readable description.
    pub message: String,
}

/// Domain validator applied to every successful tool result (§3.1:
/// "convergence flags, power balance tolerance, operating limits, and
/// sanity checks on modified elements").
pub trait Validator: Send + Sync {
    /// Validator name.
    fn name(&self) -> &str;
    /// Inspects a tool result.
    fn validate(&self, tool: &str, result: &Value) -> Vec<ValidationIssue>;
}

/// Record of one tool call made during a turn.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TurnToolCall {
    /// Tool name.
    pub tool: String,
    /// Whether it succeeded (schema + execution).
    pub ok: bool,
    /// Error text when failed.
    pub error: Option<String>,
}

/// The agent's reply for one user turn.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AgentResponse {
    /// Narrated answer.
    pub text: String,
    /// Reasoning steps across all rounds.
    pub reasoning: Vec<String>,
    /// Tool calls in order.
    pub tool_calls: Vec<TurnToolCall>,
    /// Validation findings (tool name, issue).
    pub validation: Vec<(String, ValidationIssue)>,
    /// Virtual seconds elapsed handling the turn (LLM latency + tool
    /// compute).
    pub elapsed_s: f64,
    /// Token usage across all rounds.
    pub tokens: TokenUsage,
    /// Plan/invoke rounds used.
    pub rounds: usize,
    /// Whether the turn ended with a narrated answer (vs the round
    /// budget running out).
    pub completed: bool,
}

/// A conversational agent.
pub struct Agent {
    /// Agent name ("ACOPF Agent", "Contingency Analysis Agent").
    pub name: String,
    llm: Arc<dyn LanguageModel>,
    /// Tool registry (public for provenance inspection).
    pub tools: ToolRegistry,
    /// Conversation memory (public for context sharing).
    pub memory: AgentMemory,
    validators: Vec<Box<dyn Validator>>,
    clock: VirtualClock,
    max_rounds: usize,
}

impl Agent {
    /// Builds an agent. The registry must share `clock`.
    pub fn new(
        name: &str,
        system_prompt: &str,
        llm: Arc<dyn LanguageModel>,
        tools: ToolRegistry,
        clock: VirtualClock,
    ) -> Agent {
        Agent {
            name: name.into(),
            llm,
            tools,
            memory: AgentMemory::new(name, system_prompt),
            validators: Vec::new(),
            clock,
            max_rounds: 8,
        }
    }

    /// Adds a domain validator.
    pub fn add_validator(&mut self, v: impl Validator + 'static) {
        self.validators.push(Box::new(v));
    }

    /// Sets the plan/invoke round budget.
    pub fn set_max_rounds(&mut self, rounds: usize) {
        self.max_rounds = rounds.max(1);
    }

    /// The backend in use.
    pub fn model_name(&self) -> &str {
        self.llm.name()
    }

    /// The shared session clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Handles one user utterance through the full loop.
    pub fn handle(&mut self, input: &str) -> AgentResponse {
        let _span = gm_telemetry::span!("agent.turn", agent = self.name);
        let t_start = self.clock.now();
        // Context-window management: long sessions prune old prose while
        // structured artifacts persist (§3.1 / §3.3).
        self.memory.prune_to(32_000);
        self.memory.push(Role::User, input, t_start);

        let mut pending: Vec<(String, Value)> = Vec::new();
        let mut reasoning: Vec<String> = Vec::new();
        let mut tool_calls: Vec<TurnToolCall> = Vec::new();
        let mut validation: Vec<(String, ValidationIssue)> = Vec::new();
        let mut tokens = TokenUsage::default();

        for round in 0..self.max_rounds {
            let mut view = self.memory.view(input);
            view.pending_results = pending.clone();
            view.round = round;
            let (turn, latency, usage) = self.llm.next_turn(&view);
            self.clock.advance(latency);
            gm_telemetry::counter_add("llm.turns", 1);
            gm_telemetry::counter_add("llm.tokens", usage.total());
            gm_telemetry::histogram_record("llm.latency_virtual_s", latency);
            tokens.add(usage);
            reasoning.extend(turn.reasoning.clone());

            match turn.action {
                TurnAction::Respond(text) => {
                    let now = self.clock.now();
                    self.memory.push(Role::Agent, text.clone(), now);
                    return AgentResponse {
                        text,
                        reasoning,
                        tool_calls,
                        validation,
                        elapsed_s: now - t_start,
                        tokens,
                        rounds: round + 1,
                        completed: true,
                    };
                }
                TurnAction::Calls(calls) => {
                    for call in calls {
                        match self.tools.invoke(&call.tool, &call.args) {
                            Ok(result) => {
                                for v in &self.validators {
                                    for issue in v.validate(&call.tool, &result) {
                                        if issue.severity != Severity::Info {
                                            validation.push((call.tool.clone(), issue));
                                        }
                                    }
                                }
                                let now = self.clock.now();
                                self.memory
                                    .push(Role::Tool, format!("{} -> ok", call.tool), now);
                                pending.push((call.tool.clone(), result));
                                tool_calls.push(TurnToolCall {
                                    tool: call.tool,
                                    ok: true,
                                    error: None,
                                });
                            }
                            Err(e) => {
                                let recoverable = matches!(
                                    e,
                                    ToolError::Execution {
                                        recoverable: true,
                                        ..
                                    }
                                );
                                let now = self.clock.now();
                                self.memory.push(
                                    Role::Tool,
                                    format!("{} -> error: {e}", call.tool),
                                    now,
                                );
                                // Surface the failure to the planner as a
                                // structured pending result so it can take
                                // the recovery path.
                                pending.push((
                                    call.tool.clone(),
                                    json!({
                                        "error": e.to_string(),
                                        "recoverable": recoverable,
                                    }),
                                ));
                                tool_calls.push(TurnToolCall {
                                    tool: call.tool,
                                    ok: false,
                                    error: Some(e.to_string()),
                                });
                            }
                        }
                    }
                }
            }
        }

        // Round budget exhausted: narrate what we have rather than loop.
        let text = format!(
            "I could not complete the request within {} tool rounds; partial results: {} tool call(s) executed.",
            self.max_rounds,
            tool_calls.len()
        );
        let now = self.clock.now();
        self.memory.push(Role::Agent, text.clone(), now);
        AgentResponse {
            text,
            reasoning,
            tool_calls,
            validation,
            elapsed_s: now - t_start,
            tokens,
            rounds: self.max_rounds,
            completed: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::llm::{AnalysisStyle, ModelProfile, ModelTurn, Planner, SimulatedLlm, ToolCall};
    use crate::memory::ConversationView;
    use crate::schema::{Field, Schema};
    use crate::tool::{FnTool, ToolSpec};

    /// Planner: first round calls `double` on the number in the input;
    /// second round narrates the result.
    struct DoublePlanner;
    impl Planner for DoublePlanner {
        fn plan(&self, view: &ConversationView, _style: AnalysisStyle) -> ModelTurn {
            if let Some(result) = view.result_of("double") {
                if result.get("error").is_some() {
                    // Recovery path: retry with a safe argument.
                    return ModelTurn {
                        reasoning: vec!["(recover with fallback value)".into()],
                        action: TurnAction::Calls(vec![ToolCall {
                            tool: "double".into(),
                            args: serde_json::json!({"x": 1.0}),
                        }]),
                    };
                }
                return ModelTurn {
                    reasoning: vec!["(narrate)".into()],
                    action: TurnAction::Respond(format!(
                        "the doubled value is {}",
                        result["doubled"]
                    )),
                };
            }
            let x: f64 = view
                .user_input
                .split_whitespace()
                .find_map(|t| t.parse().ok())
                .unwrap_or(f64::NAN);
            ModelTurn {
                reasoning: vec!["(plan the tool call)".into()],
                action: TurnAction::Calls(vec![ToolCall {
                    tool: "double".into(),
                    args: serde_json::json!({"x": x}),
                }]),
            }
        }
    }

    fn double_tool() -> FnTool {
        FnTool::new(
            ToolSpec {
                name: "double".into(),
                description: "doubles a number".into(),
                input: Schema::object(vec![Field::required("x", Schema::number(), "value")]),
                output: Schema::object(vec![Field::required("doubled", Schema::number(), "2x")]),
            },
            |args| {
                let x = args["x"].as_f64().unwrap();
                Ok(serde_json::json!({"doubled": 2.0 * x}))
            },
        )
    }

    fn agent() -> Agent {
        let clock = VirtualClock::new();
        let mut tools = ToolRegistry::new(clock.clone());
        tools.register(double_tool());
        let llm = Arc::new(SimulatedLlm::new(
            ModelProfile::by_name("GPT-o3").unwrap(),
            DoublePlanner,
        ));
        Agent::new("test-agent", "be deterministic", llm, tools, clock)
    }

    #[test]
    fn full_loop_reaches_answer() {
        let mut a = agent();
        let resp = a.handle("double 21 please");
        assert!(resp.completed);
        assert!(resp.text.contains("42"));
        assert_eq!(resp.rounds, 2);
        assert_eq!(resp.tool_calls.len(), 1);
        assert!(resp.tool_calls[0].ok);
        assert!(resp.elapsed_s > 0.0, "latency must be charged");
        assert!(resp.tokens.total() > 0);
    }

    #[test]
    fn memory_persists_across_turns() {
        let mut a = agent();
        a.handle("double 3");
        a.handle("double 5");
        // user + tool + agent messages per turn.
        assert!(a.memory.messages.len() >= 6);
        assert_eq!(a.tools.provenance().len(), 2);
    }

    #[test]
    fn recovery_path_on_invalid_args() {
        let mut a = agent();
        // No number in the input → NaN → serde_json drops NaN to null →
        // schema rejects → planner retries with the fallback.
        let resp = a.handle("double nothing");
        assert!(resp.completed, "recovery should still finish: {resp:?}");
        assert!(resp.tool_calls.iter().any(|c| !c.ok));
        assert!(resp.tool_calls.iter().any(|c| c.ok));
        assert!(resp.text.contains("2"));
    }

    #[test]
    fn validators_flag_results() {
        struct Suspicious;
        impl Validator for Suspicious {
            fn name(&self) -> &str {
                "suspicious"
            }
            fn validate(&self, _tool: &str, result: &Value) -> Vec<ValidationIssue> {
                if result["doubled"].as_f64().unwrap_or(0.0) > 100.0 {
                    vec![ValidationIssue {
                        severity: Severity::Warning,
                        check: "range".into(),
                        message: "doubled value suspiciously large".into(),
                    }]
                } else {
                    vec![]
                }
            }
        }
        let mut a = agent();
        a.add_validator(Suspicious);
        let ok = a.handle("double 2");
        assert!(ok.validation.is_empty());
        let big = a.handle("double 400");
        assert_eq!(big.validation.len(), 1);
        assert_eq!(big.validation[0].1.severity, Severity::Warning);
    }

    #[test]
    fn round_budget_respected() {
        struct LoopPlanner;
        impl Planner for LoopPlanner {
            fn plan(&self, _v: &ConversationView, _s: AnalysisStyle) -> ModelTurn {
                ModelTurn {
                    reasoning: vec![],
                    action: TurnAction::Calls(vec![ToolCall {
                        tool: "double".into(),
                        args: serde_json::json!({"x": 1.0}),
                    }]),
                }
            }
        }
        let clock = VirtualClock::new();
        let mut tools = ToolRegistry::new(clock.clone());
        tools.register(double_tool());
        let llm = Arc::new(SimulatedLlm::new(
            ModelProfile::by_name("GPT-o3").unwrap(),
            LoopPlanner,
        ));
        let mut a = Agent::new("looper", "p", llm, tools, clock);
        a.set_max_rounds(3);
        let resp = a.handle("go");
        assert!(!resp.completed);
        assert_eq!(resp.rounds, 3);
        assert_eq!(resp.tool_calls.len(), 3);
    }
}
