//! Structured conversational memory and session context.
//!
//! §3.2.1 "Memory (context)": a structured in-session object storing case
//! metadata, the latest feasible solutions, caches, and a chronological
//! diff log — replayed before acting so the agent's reasoning is grounded
//! in actual state rather than recollection. Everything here serializes,
//! giving the session persistence of §3.4.

use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::collections::BTreeMap;

/// Who said what.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// The human operator.
    User,
    /// The agent's narrated replies.
    Agent,
    /// Tool invocation summaries (auditable intermediate artifacts).
    Tool,
}

/// One conversation message.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Message {
    /// Speaker.
    pub role: Role,
    /// Text content.
    pub content: String,
    /// Virtual timestamp (seconds).
    pub at_s: f64,
}

/// The agent's persistent memory.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AgentMemory {
    /// Owning agent name.
    pub agent: String,
    /// The system prompt that constrains behaviour (Figs. 4–5).
    pub system_prompt: String,
    /// Conversation history.
    pub messages: Vec<Message>,
    /// Structured context: typed artifacts keyed by well-known names
    /// (e.g. `acopf_solution`, `contingency_report`, `active_case`).
    pub context: BTreeMap<String, Value>,
}

impl AgentMemory {
    /// Fresh memory.
    pub fn new(agent: &str, system_prompt: &str) -> AgentMemory {
        AgentMemory {
            agent: agent.into(),
            system_prompt: system_prompt.into(),
            messages: Vec::new(),
            context: BTreeMap::new(),
        }
    }

    /// Appends a message.
    pub fn push(&mut self, role: Role, content: impl Into<String>, at_s: f64) {
        self.messages.push(Message {
            role,
            content: content.into(),
            at_s,
        });
    }

    /// Stores a structured artifact under a well-known key.
    pub fn put_context(&mut self, key: &str, value: Value) {
        self.context.insert(key.to_string(), value);
    }

    /// Fetches a structured artifact.
    pub fn get_context(&self, key: &str) -> Option<&Value> {
        self.context.get(key)
    }

    /// Removes an artifact (e.g. when it goes stale after a diff).
    pub fn remove_context(&mut self, key: &str) -> Option<Value> {
        self.context.remove(key)
    }

    /// Builds the read-only view handed to the language model.
    pub fn view<'a>(&'a self, user_input: &'a str) -> ConversationView<'a> {
        ConversationView {
            agent: &self.agent,
            system_prompt: &self.system_prompt,
            user_input,
            messages: &self.messages,
            context: &self.context,
            pending_results: Vec::new(),
            round: 0,
        }
    }

    /// Serializes the whole memory for session persistence.
    pub fn to_json(&self) -> Value {
        serde_json::to_value(self).expect("memory serializes")
    }

    /// Restores a persisted session.
    pub fn from_json(v: &Value) -> Result<AgentMemory, serde_json::Error> {
        serde_json::from_value(v.clone())
    }

    /// Estimated prompt tokens if the model saw the whole memory now.
    pub fn prompt_tokens(&self) -> u64 {
        let chars: usize = self.system_prompt.len()
            + self
                .messages
                .iter()
                .map(|m| m.content.len() + 8)
                .sum::<usize>();
        (chars as u64).div_ceil(4)
    }

    /// Context-window management: drops the *oldest* messages until the
    /// estimated prompt fits `max_prompt_tokens`, replacing them with a
    /// single summary stub. The structured context artifacts are never
    /// pruned — that is the point of the paper's design: conversational
    /// prose is disposable, typed state is not ("a structured context
    /// keeps the latest solved state … so only affected layers are
    /// recomputed", §3.1). Returns the number of messages dropped.
    pub fn prune_to(&mut self, max_prompt_tokens: u64) -> usize {
        let mut dropped = 0usize;
        while self.prompt_tokens() > max_prompt_tokens && self.messages.len() > 2 {
            self.messages.remove(0);
            dropped += 1;
        }
        if dropped > 0 {
            let at_s = self.messages.first().map(|m| m.at_s).unwrap_or(0.0);
            self.messages.insert(
                0,
                Message {
                    role: Role::Agent,
                    content: format!(
                        "[context window: {dropped} earlier message(s) summarized away; \
                         structured artifacts retained]"
                    ),
                    at_s,
                },
            );
        }
        dropped
    }
}

/// Read-only view of the conversation handed to planners/backends.
#[derive(Clone, Debug)]
pub struct ConversationView<'a> {
    /// Agent name.
    pub agent: &'a str,
    /// System prompt.
    pub system_prompt: &'a str,
    /// The utterance being handled.
    pub user_input: &'a str,
    /// Prior messages.
    pub messages: &'a [Message],
    /// Structured context artifacts.
    pub context: &'a BTreeMap<String, Value>,
    /// Results of tool calls made earlier in this same turn:
    /// `(tool name, result)`.
    pub pending_results: Vec<(String, Value)>,
    /// Plan-invoke round within the current turn (0 = first).
    pub round: usize,
}

impl ConversationView<'_> {
    /// Renders the prompt as the backend would see it (used for token
    /// accounting).
    pub fn rendered_prompt(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str(self.system_prompt);
        for m in self.messages {
            s.push('\n');
            s.push_str(&m.content);
        }
        for (tool, result) in &self.pending_results {
            s.push('\n');
            s.push_str(tool);
            s.push_str(&result.to_string());
        }
        s.push('\n');
        s.push_str(self.user_input);
        s
    }

    /// Fetches a context artifact.
    pub fn context_value(&self, key: &str) -> Option<&Value> {
        self.context.get(key)
    }

    /// Latest pending result of a given tool in this turn.
    pub fn result_of(&self, tool: &str) -> Option<&Value> {
        self.pending_results
            .iter()
            .rev()
            .find(|(t, _)| t == tool)
            .map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn push_and_view() {
        let mut m = AgentMemory::new("acopf", "be rigorous");
        m.push(Role::User, "solve 118", 0.0);
        m.push(Role::Agent, "done", 3.4);
        let v = m.view("now modify it");
        assert_eq!(v.messages.len(), 2);
        assert!(v.rendered_prompt().contains("be rigorous"));
        assert!(v.rendered_prompt().contains("now modify it"));
    }

    #[test]
    fn context_round_trip() {
        let mut m = AgentMemory::new("a", "p");
        m.put_context("acopf_solution", json!({"objective_cost": 129704.74}));
        assert_eq!(
            m.get_context("acopf_solution").unwrap()["objective_cost"],
            json!(129704.74)
        );
        assert!(m.remove_context("acopf_solution").is_some());
        assert!(m.get_context("acopf_solution").is_none());
    }

    #[test]
    fn serialization_round_trip() {
        let mut m = AgentMemory::new("ca", "check things");
        m.push(Role::User, "run n-1", 1.0);
        m.put_context("active_case", json!("case118"));
        let blob = m.to_json();
        let restored = AgentMemory::from_json(&blob).unwrap();
        assert_eq!(restored.agent, "ca");
        assert_eq!(restored.messages.len(), 1);
        assert_eq!(
            restored.get_context("active_case").unwrap(),
            &json!("case118")
        );
    }

    #[test]
    fn pruning_respects_budget_and_keeps_artifacts() {
        let mut m = AgentMemory::new("a", "short system prompt");
        m.put_context("acopf_solution", json!({"objective_cost": 123.0}));
        for i in 0..200 {
            m.push(
                Role::User,
                format!("message number {i} with some padding text"),
                i as f64,
            );
        }
        let before = m.prompt_tokens();
        assert!(before > 1500);
        let dropped = m.prune_to(500);
        assert!(dropped > 100, "only dropped {dropped}");
        assert!(
            m.prompt_tokens() <= 520,
            "still {} tokens",
            m.prompt_tokens()
        );
        // The summary stub marks the elision…
        assert!(m.messages[0].content.contains("summarized away"));
        // …and the typed artifact survived.
        assert!(m.get_context("acopf_solution").is_some());
        // Recent messages survive in order.
        assert!(m.messages.last().unwrap().content.contains("199"));
    }

    #[test]
    fn pruning_is_noop_under_budget() {
        let mut m = AgentMemory::new("a", "p");
        m.push(Role::User, "hello", 0.0);
        assert_eq!(m.prune_to(10_000), 0);
        assert_eq!(m.messages.len(), 1);
    }

    #[test]
    fn pending_results_lookup() {
        let m = AgentMemory::new("a", "p");
        let mut v = m.view("x");
        v.pending_results
            .push(("solve".into(), json!({"ok": true})));
        v.pending_results
            .push(("solve".into(), json!({"ok": false})));
        // Latest wins.
        assert_eq!(v.result_of("solve").unwrap()["ok"], json!(false));
        assert!(v.result_of("other").is_none());
    }
}
