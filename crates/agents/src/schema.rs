//! Typed value schemas and validation — the "Pydantic" role.
//!
//! Every tool input and output in GridMind is validated against an
//! explicit schema before the agent is allowed to reason about it (§3.3:
//! "malformed or incomplete tool returns trigger automatic recovery paths
//! instead of silently corrupting downstream reasoning"). Values are
//! `serde_json::Value`; schemas are a compact structural language with
//! numeric ranges, enums, required fields, and nested objects/arrays.

use serde::{Deserialize, Serialize};
use serde_json::Value;

/// A structural schema for JSON-like values.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Schema {
    /// Any value accepted.
    Any,
    /// Boolean.
    Bool,
    /// Double-precision number with optional inclusive range.
    Number {
        /// Lower bound.
        min: Option<f64>,
        /// Upper bound.
        max: Option<f64>,
    },
    /// Integer with optional inclusive range.
    Integer {
        /// Lower bound.
        min: Option<i64>,
        /// Upper bound.
        max: Option<i64>,
    },
    /// String, optionally restricted to an enumeration.
    Str {
        /// Allowed values (empty = unrestricted).
        one_of: Vec<String>,
    },
    /// Homogeneous array.
    Array {
        /// Element schema.
        item: Box<Schema>,
    },
    /// Object with named fields; unknown fields are rejected when
    /// `closed`.
    Object {
        /// Field definitions.
        fields: Vec<Field>,
        /// Reject fields not listed.
        closed: bool,
    },
}

/// One object field.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field schema.
    pub schema: Schema,
    /// Whether the field must be present.
    pub required: bool,
    /// Human/planner-readable description (the "semantic anchor" of
    /// §3.3).
    pub description: String,
}

impl Field {
    /// Required field shorthand.
    pub fn required(name: &str, schema: Schema, description: &str) -> Field {
        Field {
            name: name.into(),
            schema,
            required: true,
            description: description.into(),
        }
    }

    /// Optional field shorthand.
    pub fn optional(name: &str, schema: Schema, description: &str) -> Field {
        Field {
            name: name.into(),
            schema,
            required: false,
            description: description.into(),
        }
    }
}

impl Schema {
    /// Unbounded number.
    pub fn number() -> Schema {
        Schema::Number {
            min: None,
            max: None,
        }
    }

    /// Number within `[min, max]`.
    pub fn number_range(min: f64, max: f64) -> Schema {
        Schema::Number {
            min: Some(min),
            max: Some(max),
        }
    }

    /// Unbounded integer.
    pub fn integer() -> Schema {
        Schema::Integer {
            min: None,
            max: None,
        }
    }

    /// Free string.
    pub fn string() -> Schema {
        Schema::Str { one_of: vec![] }
    }

    /// String restricted to the given values.
    pub fn string_enum(values: &[&str]) -> Schema {
        Schema::Str {
            one_of: values.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Closed object.
    pub fn object(fields: Vec<Field>) -> Schema {
        Schema::Object {
            fields,
            closed: true,
        }
    }

    /// Array of `item`.
    pub fn array(item: Schema) -> Schema {
        Schema::Array {
            item: Box::new(item),
        }
    }

    /// Validates a value, collecting every violation with its JSON path.
    pub fn validate(&self, value: &Value) -> Result<(), Vec<SchemaViolation>> {
        let mut violations = Vec::new();
        self.check(value, "$", &mut violations);
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }

    fn check(&self, value: &Value, path: &str, out: &mut Vec<SchemaViolation>) {
        match self {
            Schema::Any => {}
            Schema::Bool => {
                if !value.is_boolean() {
                    out.push(SchemaViolation::wrong_type(path, "boolean", value));
                }
            }
            Schema::Number { min, max } => match value.as_f64() {
                None => out.push(SchemaViolation::wrong_type(path, "number", value)),
                Some(x) => {
                    if let Some(lo) = min {
                        if x < *lo {
                            out.push(SchemaViolation::out_of_range(path, x, *lo, *max));
                        }
                    }
                    if let Some(hi) = max {
                        if x > *hi {
                            out.push(SchemaViolation::out_of_range(
                                path,
                                x,
                                min.unwrap_or(f64::NEG_INFINITY),
                                Some(*hi),
                            ));
                        }
                    }
                }
            },
            Schema::Integer { min, max } => match value.as_i64() {
                None => out.push(SchemaViolation::wrong_type(path, "integer", value)),
                Some(x) => {
                    if min.map(|lo| x < lo).unwrap_or(false)
                        || max.map(|hi| x > hi).unwrap_or(false)
                    {
                        out.push(SchemaViolation::out_of_range(
                            path,
                            x as f64,
                            min.map(|v| v as f64).unwrap_or(f64::NEG_INFINITY),
                            max.map(|v| v as f64),
                        ));
                    }
                }
            },
            Schema::Str { one_of } => match value.as_str() {
                None => out.push(SchemaViolation::wrong_type(path, "string", value)),
                Some(s) => {
                    if !one_of.is_empty() && !one_of.iter().any(|v| v == s) {
                        out.push(SchemaViolation {
                            path: path.to_string(),
                            message: format!("value {s:?} not in enum {one_of:?}"),
                        });
                    }
                }
            },
            Schema::Array { item } => match value.as_array() {
                None => out.push(SchemaViolation::wrong_type(path, "array", value)),
                Some(items) => {
                    for (i, v) in items.iter().enumerate() {
                        item.check(v, &format!("{path}[{i}]"), out);
                    }
                }
            },
            Schema::Object { fields, closed } => match value.as_object() {
                None => out.push(SchemaViolation::wrong_type(path, "object", value)),
                Some(map) => {
                    for f in fields {
                        match map.get(&f.name) {
                            Some(v) => f.schema.check(v, &format!("{path}.{}", f.name), out),
                            None if f.required => out.push(SchemaViolation {
                                path: format!("{path}.{}", f.name),
                                message: "required field missing".to_string(),
                            }),
                            None => {}
                        }
                    }
                    if *closed {
                        for key in map.keys() {
                            if !fields.iter().any(|f| &f.name == key) {
                                out.push(SchemaViolation {
                                    path: format!("{path}.{key}"),
                                    message: "unexpected field".to_string(),
                                });
                            }
                        }
                    }
                }
            },
        }
    }
}

/// One schema violation with its JSON path.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SchemaViolation {
    /// JSON path, e.g. `$.bus_id`.
    pub path: String,
    /// What went wrong.
    pub message: String,
}

impl SchemaViolation {
    fn wrong_type(path: &str, expected: &str, got: &Value) -> SchemaViolation {
        SchemaViolation {
            path: path.to_string(),
            message: format!("expected {expected}, got {}", type_name(got)),
        }
    }

    fn out_of_range(path: &str, x: f64, lo: f64, hi: Option<f64>) -> SchemaViolation {
        SchemaViolation {
            path: path.to_string(),
            message: match hi {
                Some(hi) => format!("value {x} outside [{lo}, {hi}]"),
                None => format!("value {x} below minimum {lo}"),
            },
        }
    }
}

impl std::fmt::Display for SchemaViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path, self.message)
    }
}

fn type_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "boolean",
        Value::Number(_) => "number",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn load_schema() -> Schema {
        Schema::object(vec![
            Field::required("bus_id", Schema::integer(), "external bus id"),
            Field::required(
                "p_mw",
                Schema::number_range(0.0, 10_000.0),
                "new load in MW",
            ),
            Field::optional("q_mvar", Schema::number(), "reactive demand"),
        ])
    }

    #[test]
    fn accepts_valid_object() {
        assert!(load_schema()
            .validate(&json!({"bus_id": 10, "p_mw": 50.0}))
            .is_ok());
    }

    #[test]
    fn missing_required_field() {
        let errs = load_schema().validate(&json!({"p_mw": 50.0})).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].path, "$.bus_id");
        assert!(errs[0].message.contains("missing"));
    }

    #[test]
    fn wrong_type_reported_with_path() {
        let errs = load_schema()
            .validate(&json!({"bus_id": "ten", "p_mw": 50.0}))
            .unwrap_err();
        assert!(errs[0].message.contains("expected integer"));
        assert_eq!(errs[0].path, "$.bus_id");
    }

    #[test]
    fn range_enforced() {
        let errs = load_schema()
            .validate(&json!({"bus_id": 10, "p_mw": -5.0}))
            .unwrap_err();
        assert!(errs[0].message.contains("outside"));
    }

    #[test]
    fn unexpected_field_rejected_when_closed() {
        let errs = load_schema()
            .validate(&json!({"bus_id": 1, "p_mw": 1.0, "bogus": true}))
            .unwrap_err();
        assert!(errs.iter().any(|e| e.path == "$.bogus"));
    }

    #[test]
    fn enum_strings() {
        let s = Schema::string_enum(&["line", "trafo"]);
        assert!(s.validate(&json!("line")).is_ok());
        assert!(s.validate(&json!("bus")).is_err());
    }

    #[test]
    fn nested_arrays_with_paths() {
        let s = Schema::array(Schema::object(vec![Field::required(
            "v",
            Schema::number(),
            "",
        )]));
        let errs = s.validate(&json!([{"v": 1.0}, {"v": "x"}])).unwrap_err();
        assert_eq!(errs[0].path, "$[1].v");
    }

    #[test]
    fn multiple_violations_collected() {
        let errs = load_schema()
            .validate(&json!({"bus_id": "x", "p_mw": -1.0, "junk": 0}))
            .unwrap_err();
        assert_eq!(errs.len(), 3);
    }

    #[test]
    fn optional_field_validated_when_present() {
        let errs = load_schema()
            .validate(&json!({"bus_id": 1, "p_mw": 1.0, "q_mvar": "lots"}))
            .unwrap_err();
        assert_eq!(errs[0].path, "$.q_mvar");
    }
}
