//! Language-model abstraction and the simulated backends.
//!
//! The paper drives GridMind with six remote LLMs (GPT-5 family, o3,
//! o4-mini, Claude 4 Sonnet). This reproduction replaces the remote APIs
//! with [`SimulatedLlm`]: a deterministic planner (supplied by the domain
//! layer) wrapped in a **model profile** that reproduces each backend's
//! observable characteristics — reasoning latency distribution, token
//! rate, verbosity, and analytical style. Latency is charged to the
//! session's [`VirtualClock`](crate::clock::VirtualClock) rather than
//! slept, so experiments reproduce the paper's seconds-scale timings while
//! running in milliseconds.
//!
//! The substitution is sound for this paper's claims because GridMind's
//! architecture pins every numerical result to deterministic tools: the
//! LLM contributes intent parsing, planning, and narration, all of which
//! the deterministic planner implements, plus latency — which the profile
//! models explicitly (calibrated against Table 1 and Figure 3).

use crate::memory::ConversationView;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::sync::Mutex;

/// One requested tool call.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ToolCall {
    /// Tool name.
    pub tool: String,
    /// JSON arguments.
    pub args: Value,
}

/// What the model wants to do next.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TurnAction {
    /// Invoke tools and return for another round.
    Calls(Vec<ToolCall>),
    /// Finish the turn with a narrated answer.
    Respond(String),
}

/// A model turn: visible reasoning steps plus an action.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelTurn {
    /// Chain-of-thought style step descriptions (the paper's numbered
    /// "(understand the case…) -> reasoning" lines).
    pub reasoning: Vec<String>,
    /// The action.
    pub action: TurnAction,
}

/// Token usage accounting (the paper logs "LLM backend latency, token
/// usage").
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TokenUsage {
    /// Prompt-side tokens.
    pub prompt: u64,
    /// Completion-side tokens.
    pub completion: u64,
}

impl TokenUsage {
    /// Total tokens.
    pub fn total(&self) -> u64 {
        self.prompt + self.completion
    }

    /// Adds another usage record.
    pub fn add(&mut self, other: TokenUsage) {
        self.prompt += other.prompt;
        self.completion += other.completion;
    }
}

/// A language model backend.
pub trait LanguageModel: Send + Sync {
    /// Backend name ("GPT-5", "Claude 4 Sonnet", …).
    fn name(&self) -> &str;
    /// Produces the next turn for a conversation. Returns the turn, the
    /// virtual latency the call costs (seconds), and token usage.
    fn next_turn(&self, view: &ConversationView) -> (ModelTurn, f64, TokenUsage);
    /// The analysis style quirk this backend exhibits (drives the Table 1
    /// ranking divergence).
    fn analysis_style(&self) -> AnalysisStyle {
        AnalysisStyle::Composite
    }
}

/// Analytical style a backend applies when asked to rank contingencies —
/// the paper attributes GPT-5-Mini's divergent Table 1 row to "a different
/// analytical approach".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnalysisStyle {
    /// Blend thermal/voltage/shedding evidence (most backends).
    Composite,
    /// Rank purely by worst overload (the GPT-5-Mini quirk).
    OverloadFirst,
}

/// Observable characteristics of a simulated backend, calibrated against
/// the paper's Table 1 and Figure 3.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Display name.
    pub name: String,
    /// Mean per-turn reasoning latency (seconds, lognormal median).
    pub reasoning_latency_s: f64,
    /// Latency spread (lognormal sigma).
    pub latency_sigma: f64,
    /// Completion token rate (tokens/second) — adds length-dependent
    /// latency.
    pub tokens_per_s: f64,
    /// Verbosity multiplier on narration length.
    pub verbosity: f64,
    /// Analytical style quirk.
    pub style: AnalysisStyle,
    /// RNG seed so every run of a profile is reproducible.
    pub seed: u64,
}

impl ModelProfile {
    /// The six backends evaluated in the paper, with latency parameters
    /// calibrated so that the end-to-end conversation timings land in the
    /// ranges of Table 1 and Figure 3 (middle).
    pub fn paper_models() -> Vec<ModelProfile> {
        vec![
            ModelProfile {
                name: "GPT-5".into(),
                reasoning_latency_s: 17.5,
                latency_sigma: 0.25,
                tokens_per_s: 40.0,
                verbosity: 1.3,
                style: AnalysisStyle::Composite,
                seed: 0x6705,
            },
            ModelProfile {
                name: "GPT-5 Mini".into(),
                reasoning_latency_s: 4.3,
                latency_sigma: 0.20,
                tokens_per_s: 90.0,
                verbosity: 0.9,
                style: AnalysisStyle::OverloadFirst,
                seed: 0x6706,
            },
            ModelProfile {
                name: "GPT-5 Nano".into(),
                reasoning_latency_s: 4.6,
                latency_sigma: 0.22,
                tokens_per_s: 110.0,
                verbosity: 0.7,
                style: AnalysisStyle::Composite,
                seed: 0x6707,
            },
            ModelProfile {
                name: "GPT-o3".into(),
                reasoning_latency_s: 4.4,
                latency_sigma: 0.18,
                tokens_per_s: 70.0,
                verbosity: 1.0,
                style: AnalysisStyle::Composite,
                seed: 0x6708,
            },
            ModelProfile {
                name: "GPT-o4 Mini".into(),
                reasoning_latency_s: 1.4,
                latency_sigma: 0.55,
                tokens_per_s: 95.0,
                verbosity: 0.8,
                style: AnalysisStyle::Composite,
                seed: 0x6709,
            },
            ModelProfile {
                name: "Claude 4 Sonnet".into(),
                reasoning_latency_s: 11.8,
                latency_sigma: 0.22,
                tokens_per_s: 55.0,
                verbosity: 1.2,
                style: AnalysisStyle::Composite,
                seed: 0x670a,
            },
        ]
    }

    /// Looks a paper model up by (case-insensitive, fuzzy) name.
    pub fn by_name(name: &str) -> Option<ModelProfile> {
        let norm = name.to_ascii_lowercase().replace([' ', '-', '_'], "");
        Self::paper_models()
            .into_iter()
            .find(|p| p.name.to_ascii_lowercase().replace([' ', '-', '_'], "") == norm)
    }
}

/// The deterministic planner a [`SimulatedLlm`] delegates domain reasoning
/// to. Domain crates (gridmind-core) implement this per agent.
pub trait Planner: Send + Sync {
    /// Produces the next turn given the conversation view.
    fn plan(&self, view: &ConversationView, style: AnalysisStyle) -> ModelTurn;
}

/// A simulated LLM backend: deterministic planner + stochastic-but-seeded
/// latency/token model.
pub struct SimulatedLlm {
    profile: ModelProfile,
    planner: Box<dyn Planner>,
    rng: Mutex<SmallRng>,
}

impl SimulatedLlm {
    /// Wraps a planner in a model profile.
    pub fn new(profile: ModelProfile, planner: impl Planner + 'static) -> SimulatedLlm {
        let rng = SmallRng::seed_from_u64(profile.seed);
        SimulatedLlm {
            profile,
            planner: Box::new(planner),
            rng: Mutex::new(rng),
        }
    }

    /// The profile in use.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    fn sample_latency(&self, completion_tokens: u64) -> f64 {
        let mut rng = self.rng.lock().unwrap();
        // Lognormal around the profile median.
        let z: f64 = {
            // Box-Muller from two uniforms.
            let u1: f64 = rng.random_range(1e-12..1.0);
            let u2: f64 = rng.random_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        let reasoning = self.profile.reasoning_latency_s * (self.profile.latency_sigma * z).exp();
        let decode = completion_tokens as f64 / self.profile.tokens_per_s;
        reasoning + decode
    }
}

/// Crude token estimate: ~4 characters per token.
pub fn estimate_tokens(text: &str) -> u64 {
    (text.len() as u64).div_ceil(4)
}

impl LanguageModel for SimulatedLlm {
    fn name(&self) -> &str {
        &self.profile.name
    }

    fn next_turn(&self, view: &ConversationView) -> (ModelTurn, f64, TokenUsage) {
        let turn = self.planner.plan(view, self.profile.style);
        let completion_text: String = match &turn.action {
            TurnAction::Respond(text) => {
                format!("{}{}", turn.reasoning.join(" "), text)
            }
            TurnAction::Calls(calls) => {
                let call_text: String = calls
                    .iter()
                    .map(|c| format!("{}{}", c.tool, c.args))
                    .collect();
                format!("{}{}", turn.reasoning.join(" "), call_text)
            }
        };
        let completion = (estimate_tokens(&completion_text) as f64 * self.profile.verbosity) as u64;
        let prompt = estimate_tokens(&view.rendered_prompt());
        let latency = self.sample_latency(completion);
        (turn, latency, TokenUsage { prompt, completion })
    }

    fn analysis_style(&self) -> AnalysisStyle {
        self.profile.style
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::AgentMemory;

    struct EchoPlanner;
    impl Planner for EchoPlanner {
        fn plan(&self, view: &ConversationView, _style: AnalysisStyle) -> ModelTurn {
            ModelTurn {
                reasoning: vec!["(understand the task)".into()],
                action: TurnAction::Respond(format!("echo: {}", view.user_input)),
            }
        }
    }

    fn view_for(input: &str) -> (AgentMemory, String) {
        (
            AgentMemory::new("test-agent", "system prompt"),
            input.to_string(),
        )
    }

    #[test]
    fn paper_models_present() {
        let models = ModelProfile::paper_models();
        assert_eq!(models.len(), 6);
        let names: Vec<&str> = models.iter().map(|m| m.name.as_str()).collect();
        assert!(names.contains(&"GPT-5"));
        assert!(names.contains(&"Claude 4 Sonnet"));
        // Exactly one divergent style (the paper's GPT-5-Mini anomaly).
        assert_eq!(
            models
                .iter()
                .filter(|m| m.style == AnalysisStyle::OverloadFirst)
                .count(),
            1
        );
    }

    #[test]
    fn by_name_is_fuzzy() {
        assert!(ModelProfile::by_name("gpt-5").is_some());
        assert!(ModelProfile::by_name("GPT 5 MINI").is_some());
        assert!(ModelProfile::by_name("claude4sonnet").is_some());
        assert!(ModelProfile::by_name("gemini").is_none());
    }

    #[test]
    fn simulated_llm_charges_latency_and_tokens() {
        let (memory, input) = view_for("solve case118");
        let view = memory.view(&input);
        let llm = SimulatedLlm::new(ModelProfile::paper_models()[0].clone(), EchoPlanner);
        let (turn, latency, tokens) = llm.next_turn(&view);
        assert!(matches!(turn.action, TurnAction::Respond(_)));
        assert!(latency > 1.0, "GPT-5 profile latency {latency} too small");
        assert!(tokens.completion > 0);
        assert!(tokens.prompt > 0);
    }

    #[test]
    fn latency_is_reproducible_per_seed() {
        let (memory, input) = view_for("x");
        let view = memory.view(&input);
        let a = SimulatedLlm::new(ModelProfile::paper_models()[0].clone(), EchoPlanner);
        let b = SimulatedLlm::new(ModelProfile::paper_models()[0].clone(), EchoPlanner);
        let (_, la1, _) = a.next_turn(&view);
        let (_, lb1, _) = b.next_turn(&view);
        assert_eq!(la1, lb1);
    }

    #[test]
    fn faster_profile_is_faster_on_average() {
        let (memory, input) = view_for("x");
        let view = memory.view(&input);
        let slow = SimulatedLlm::new(ModelProfile::by_name("GPT-5").unwrap(), EchoPlanner);
        let fast = SimulatedLlm::new(ModelProfile::by_name("GPT-o4 Mini").unwrap(), EchoPlanner);
        let mut slow_total = 0.0;
        let mut fast_total = 0.0;
        for _ in 0..20 {
            slow_total += slow.next_turn(&view).1;
            fast_total += fast.next_turn(&view).1;
        }
        assert!(
            slow_total > 2.0 * fast_total,
            "GPT-5 {slow_total:.1}s should dwarf o4-mini {fast_total:.1}s"
        );
    }

    #[test]
    fn token_estimate_scales_with_text() {
        assert_eq!(estimate_tokens(""), 0);
        assert_eq!(estimate_tokens("abcd"), 1);
        assert!(estimate_tokens(&"x".repeat(400)) >= 100);
    }

    #[test]
    fn usage_addition() {
        let mut u = TokenUsage {
            prompt: 10,
            completion: 5,
        };
        u.add(TokenUsage {
            prompt: 1,
            completion: 2,
        });
        assert_eq!(u.total(), 18);
    }
}
