//! Natural-language understanding: tokenizing, entity extraction, and a
//! configurable keyword intent classifier.
//!
//! This is the deterministic core of the simulated language model: it does
//! the job the paper delegates to the LLM's intent/entity extraction
//! (§3.1: "case id, buses, MW changes, outage scope"). Domain crates
//! define their intents as keyword rules; the classifier scores each rule
//! against the utterance and returns the best match with a confidence.

use serde::{Deserialize, Serialize};

/// A lowercased word token with its original position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Lowercased text.
    pub text: String,
    /// Index in the token stream.
    pub index: usize,
}

/// Splits an utterance into lowercase alphanumeric tokens.
pub fn tokenize(utterance: &str) -> Vec<Token> {
    utterance
        .split(|c: char| !c.is_ascii_alphanumeric() && c != '.' && c != '-')
        .filter(|s| !s.is_empty())
        .enumerate()
        .map(|(index, s)| Token {
            text: s.to_ascii_lowercase(),
            index,
        })
        .collect()
}

/// Entities extracted from an utterance.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Entities {
    /// Case reference (e.g. "case118", "ieee 30", "118").
    pub case: Option<String>,
    /// Bus numbers mentioned ("bus 10", "buses 37 and 40").
    pub buses: Vec<u32>,
    /// Power quantities in MW.
    pub mw: Vec<f64>,
    /// Power quantities in MVAr.
    pub mvar: Vec<f64>,
    /// Element references like ("line", 171) or ("trafo", 0).
    pub elements: Vec<(String, usize)>,
    /// Counts like "top 5".
    pub top_k: Option<usize>,
    /// Bare numbers not claimed by any unit.
    pub numbers: Vec<f64>,
    /// Scale factors like "by 10%" or "1.2x".
    pub percent: Vec<f64>,
    /// Scenario counts like "in 8 steps" or "12 scenarios".
    pub steps: Option<usize>,
}

/// Extracts entities from an utterance.
pub fn extract_entities(utterance: &str) -> Entities {
    let tokens = tokenize(utterance);
    let mut e = Entities::default();
    let mut claimed = vec![false; tokens.len()];

    // "%"-suffixed quantities like "80%" survive only in the raw
    // utterance — the tokenizer treats '%' as a separator and drops it.
    // Collect them here; the bare-number pass below reroutes matching
    // values into `percent` instead of `numbers`.
    let mut percent_raw: Vec<f64> = utterance
        .split_whitespace()
        .filter_map(|w| {
            w.trim_end_matches([',', ';', '.', ')'])
                .strip_suffix('%')
                .and_then(|s| s.parse::<f64>().ok())
        })
        .collect();

    // Strict numeric parse: unit-suffixed tokens like "50mw" are handled
    // by the dedicated quantity pass below, not here.
    let parse_num = |s: &str| -> Option<f64> { s.parse::<f64>().ok() };

    for (i, tok) in tokens.iter().enumerate() {
        let next = tokens.get(i + 1);
        match tok.text.as_str() {
            "case" | "ieee" => {
                if let Some(n) = next.and_then(|t| parse_num(&t.text)) {
                    e.case = Some(format!("case{}", n as u64));
                    claimed[i + 1] = true;
                } else if tok.text.starts_with("case") {
                }
            }
            "bus" | "buses" => {
                // Collect following integers joined by "and"/commas.
                let mut j = i + 1;
                while let Some(t) = tokens.get(j) {
                    if let Some(n) = parse_num(&t.text) {
                        e.buses.push(n as u32);
                        claimed[j] = true;
                        j += 1;
                    } else if t.text == "and" {
                        j += 1;
                    } else {
                        break;
                    }
                }
            }
            "line" | "lines" => {
                if let Some(n) = next.and_then(|t| parse_num(&t.text)) {
                    e.elements.push(("line".into(), n as usize));
                    claimed[i + 1] = true;
                }
            }
            "trafo" | "transformer" | "transformers" => {
                if let Some(n) = next.and_then(|t| parse_num(&t.text)) {
                    e.elements.push(("trafo".into(), n as usize));
                    claimed[i + 1] = true;
                }
            }
            "top" => {
                if let Some(n) = next.and_then(|t| parse_num(&t.text)) {
                    e.top_k = Some(n as usize);
                    claimed[i + 1] = true;
                }
            }
            "steps" | "scenarios" | "intervals" => {
                // The count precedes the word: "in 8 steps".
                if let Some(p) = i.checked_sub(1) {
                    if let Some(n) = parse_num(&tokens[p].text).filter(|n| *n >= 1.0) {
                        e.steps = Some(n as usize);
                        claimed[p] = true;
                    }
                }
            }
            _ => {}
        }
        // "top-5" style compound token.
        if let Some(rest) = tok.text.strip_prefix("top-") {
            if let Ok(n) = rest.parse::<usize>() {
                e.top_k = Some(n);
            }
        }
        // caseNNN compound token.
        if let Some(rest) = tok.text.strip_prefix("case") {
            if !rest.is_empty() && rest.chars().all(|c| c.is_ascii_digit()) {
                e.case = Some(tok.text.clone());
            }
        }
    }

    // Unit-suffixed quantities: "50mw", "50 mw", "12.5 mvar", "10%".
    for (i, tok) in tokens.iter().enumerate() {
        let t = &tok.text;
        if let Some(v) = t.strip_suffix("mw").and_then(|s| s.parse::<f64>().ok()) {
            e.mw.push(v);
            claimed[i] = true;
        } else if let Some(v) = t.strip_suffix("mvar").and_then(|s| s.parse::<f64>().ok()) {
            e.mvar.push(v);
            claimed[i] = true;
        } else if t == "mw" {
            if let Some(v) = i
                .checked_sub(1)
                .and_then(|p| tokens[p].text.parse::<f64>().ok())
            {
                e.mw.push(v);
                claimed[i - 1] = true;
            }
        } else if t == "mvar" {
            if let Some(v) = i
                .checked_sub(1)
                .and_then(|p| tokens[p].text.parse::<f64>().ok())
            {
                e.mvar.push(v);
                claimed[i - 1] = true;
            }
        }
    }
    for (i, tok) in tokens.iter().enumerate() {
        if claimed[i] {
            continue;
        }
        if let Some(v) = tok
            .text
            .strip_suffix('%')
            .and_then(|s| s.parse::<f64>().ok())
        {
            e.percent.push(v);
        } else if let Ok(v) = tok.text.parse::<f64>() {
            if let Some(pos) = percent_raw.iter().position(|&p| p == v) {
                percent_raw.remove(pos);
                e.percent.push(v);
            } else {
                e.numbers.push(v);
            }
        }
    }
    // Percent written as "... 10 percent".
    for (i, tok) in tokens.iter().enumerate() {
        if tok.text == "percent" {
            if let Some(v) = i
                .checked_sub(1)
                .and_then(|p| tokens[p].text.parse::<f64>().ok())
            {
                e.percent.push(v);
                e.numbers.retain(|&x| x != v);
            }
        }
    }
    // Fallback case reference: a bare known case size.
    if e.case.is_none() {
        for n in &e.numbers {
            if [14.0, 30.0, 57.0, 118.0, 300.0].contains(n) {
                e.case = Some(format!("case{}", *n as u64));
                break;
            }
        }
    }
    e
}

/// A keyword intent rule.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IntentRule {
    /// Intent name.
    pub name: String,
    /// Keywords: any match contributes score; more matches = higher.
    pub keywords: Vec<String>,
    /// Strong keywords that double-weight.
    pub strong: Vec<String>,
    /// Base score offset (to bias common intents).
    pub bias: f64,
}

impl IntentRule {
    /// Builds a rule.
    pub fn new(name: &str, keywords: &[&str], strong: &[&str], bias: f64) -> IntentRule {
        IntentRule {
            name: name.into(),
            keywords: keywords.iter().map(|s| s.to_string()).collect(),
            strong: strong.iter().map(|s| s.to_string()).collect(),
            bias,
        }
    }

    fn score(&self, tokens: &[Token]) -> f64 {
        let mut s = self.bias;
        for t in tokens {
            if self.strong.iter().any(|k| t.text.contains(k.as_str())) {
                s += 2.0;
            } else if self.keywords.iter().any(|k| t.text.contains(k.as_str())) {
                s += 1.0;
            }
        }
        s
    }
}

/// Result of intent classification.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IntentMatch {
    /// Winning intent name.
    pub intent: String,
    /// Confidence in `(0, 1]` (softmax-ish over rule scores).
    pub confidence: f64,
}

/// Classifies an utterance against a rule set. Returns `None` when no rule
/// scores above zero.
pub fn classify(utterance: &str, rules: &[IntentRule]) -> Option<IntentMatch> {
    gm_telemetry::counter_add("nlu.classifications", 1);
    let tokens = tokenize(utterance);
    let scores: Vec<f64> = rules.iter().map(|r| r.score(&tokens)).collect();
    let matched = (|| {
        let (best_idx, &best) = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))?;
        if best <= 0.0 {
            return None;
        }
        let total: f64 = scores.iter().map(|s| s.max(0.0)).sum();
        Some(IntentMatch {
            intent: rules[best_idx].name.clone(),
            confidence: (best / total.max(best)).clamp(0.0, 1.0),
        })
    })();
    match &matched {
        Some(m) => gm_telemetry::counter_add(&format!("nlu.intent.{}", m.intent), 1),
        None => gm_telemetry::counter_add("nlu.intent.none", 1),
    }
    matched
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_lowercases_and_splits() {
        let toks = tokenize("Solve IEEE 118, then re-solve!");
        let words: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(words, vec!["solve", "ieee", "118", "then", "re-solve"]);
    }

    #[test]
    fn case_extraction_variants() {
        assert_eq!(
            extract_entities("solve case118").case.as_deref(),
            Some("case118")
        );
        assert_eq!(
            extract_entities("solve IEEE 30").case.as_deref(),
            Some("case30")
        );
        assert_eq!(
            extract_entities("solve 118").case.as_deref(),
            Some("case118")
        );
        assert_eq!(extract_entities("what now").case, None);
    }

    #[test]
    fn bus_and_mw_extraction() {
        let e = extract_entities("Increase the load for bus 10 to 50MW");
        assert_eq!(e.buses, vec![10]);
        assert_eq!(e.mw, vec![50.0]);
    }

    #[test]
    fn bus_pair_extraction() {
        let e = extract_entities("removing the line between buses 37 and 40");
        assert_eq!(e.buses, vec![37, 40]);
    }

    #[test]
    fn element_references() {
        let e = extract_entities("analyze line 171 and trafo 0");
        assert_eq!(
            e.elements,
            vec![("line".to_string(), 171), ("trafo".to_string(), 0)]
        );
    }

    #[test]
    fn top_k_extraction() {
        assert_eq!(extract_entities("top 5 critical lines").top_k, Some(5));
        assert_eq!(extract_entities("the top-3 outages").top_k, Some(3));
    }

    #[test]
    fn spaced_mw_and_percent() {
        let e = extract_entities("set it to 42 MW and raise loads by 10 percent");
        assert_eq!(e.mw, vec![42.0]);
        assert_eq!(e.percent, vec![10.0]);
    }

    #[test]
    fn steps_extraction() {
        let e = extract_entities("sweep the load from 80% to 120% in 8 steps");
        assert_eq!(e.percent, vec![80.0, 120.0]);
        assert_eq!(e.steps, Some(8));
        // The step count never leaks into the bare-number pool (it
        // would otherwise be misread as a case or bus reference).
        assert!(e.numbers.is_empty());
        assert_eq!(
            extract_entities("study 12 scenarios across the day").steps,
            Some(12)
        );
        assert_eq!(extract_entities("sweep the load").steps, None);
    }

    #[test]
    fn classify_picks_best_rule() {
        let rules = vec![
            IntentRule::new(
                "solve_case",
                &["solve", "run", "load"],
                &["acopf", "opf"],
                0.0,
            ),
            IntentRule::new(
                "contingency",
                &["contingency", "n-1", "outage", "reliability"],
                &["critical"],
                0.0,
            ),
        ];
        let m = classify("run the n-1 contingency analysis", &rules).unwrap();
        assert_eq!(m.intent, "contingency");
        assert!(m.confidence > 0.5);
        let m = classify("solve the acopf please", &rules).unwrap();
        assert_eq!(m.intent, "solve_case");
    }

    #[test]
    fn classify_none_when_nothing_matches() {
        let rules = vec![IntentRule::new("x", &["xyzzy"], &[], 0.0)];
        assert_eq!(classify("hello world", &rules), None);
    }

    #[test]
    fn strong_keywords_dominate() {
        let rules = vec![
            IntentRule::new("a", &["analysis", "grid", "power"], &[], 0.0),
            IntentRule::new("b", &[], &["contingency"], 0.0),
        ];
        let m = classify("power grid contingency analysis", &rules).unwrap();
        // 2.0 strong beats 3 × 1.0? No: a scores 3, b scores 2 — a wins.
        assert_eq!(m.intent, "a");
        let m = classify("grid contingency", &rules).unwrap();
        assert_eq!(m.intent, "b");
    }
}
