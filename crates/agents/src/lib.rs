//! # gm-agents
//!
//! The typed agent framework behind GridMind-RS — the role PydanticAI
//! plays in the paper, plus the simulated language-model layer that
//! replaces the remote LLM APIs.
//!
//! - [`schema`] — structural schemas with path-precise validation (the
//!   "Pydantic" role, §3.3).
//! - [`tool`] — typed tools, the registry with input/output validation,
//!   and the provenance log (§3.2.1 "Trust and auditability").
//! - [`nlu`] — deterministic intent classification and entity extraction
//!   (case ids, buses, MW changes, outage scope; §3.1).
//! - [`llm`] — the `LanguageModel` abstraction, [`llm::SimulatedLlm`],
//!   and the six calibrated paper-model profiles.
//! - [`memory`] — structured conversational memory and session
//!   persistence (§3.2.1, §3.4).
//! - [`agent`] — the runtime loop: parse, plan, invoke, validate,
//!   narrate, persist (§3.1), with automatic recovery paths.
//! - [`clock`] — the virtual session clock that charges simulated LLM
//!   latency without sleeping.
//!
//! ```
//! use gm_agents::{extract_entities, Schema, Field};
//! use serde_json::json;
//!
//! // Deterministic NLU: the paper's entity extraction.
//! let e = extract_entities("Increase the load for bus 10 to 50MW");
//! assert_eq!(e.buses, vec![10]);
//! assert_eq!(e.mw, vec![50.0]);
//!
//! // Pydantic-style validation: malformed tool payloads are rejected.
//! let schema = Schema::object(vec![Field::required("p_mw", Schema::number(), "demand")]);
//! assert!(schema.validate(&json!({"p_mw": 50.0})).is_ok());
//! assert!(schema.validate(&json!({"p_mw": "fifty"})).is_err());
//! ```

pub mod agent;
pub mod clock;
pub mod envelope;
pub mod llm;
pub mod memory;
pub mod nlu;
pub mod schema;
pub mod tool;

pub use agent::{Agent, AgentResponse, Severity, TurnToolCall, ValidationIssue, Validator};
pub use clock::VirtualClock;
pub use envelope::{ServeRequest, ServeResponse, ServeStatus};
pub use llm::{
    estimate_tokens, AnalysisStyle, LanguageModel, ModelProfile, ModelTurn, Planner, SimulatedLlm,
    TokenUsage, ToolCall, TurnAction,
};
pub use memory::{AgentMemory, ConversationView, Message, Role};
pub use nlu::{classify, extract_entities, tokenize, Entities, IntentMatch, IntentRule};
pub use schema::{Field, Schema, SchemaViolation};
pub use tool::{FnTool, InvocationRecord, Tool, ToolError, ToolRegistry, ToolSpec};
