//! Service request/response envelopes.
//!
//! The wire shapes gm-serve moves through its queue: a [`ServeRequest`]
//! names a session and a natural-language query; the matching
//! [`ServeResponse`] carries the coordinator's answer plus the queueing
//! and execution timings the soak harness asserts on. They live here —
//! not in gm-serve — so clients (the workload driver, future REPL
//! front ends) can speak the protocol without linking the server.

use serde::{Deserialize, Serialize};

/// One queued unit of work: a query addressed to a session.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServeRequest {
    /// Target session id; requests to the same id are serialized.
    pub session: String,
    /// Client-chosen sequence number, echoed back for correlation.
    pub seq: u64,
    /// The natural-language query for the coordinator.
    pub query: String,
    /// Optional deadline budget in virtual milliseconds of queue wait;
    /// a request still queued past its deadline is answered
    /// [`ServeStatus::TimedOut`] instead of being executed.
    pub deadline_ms: Option<u64>,
}

/// Terminal status of a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServeStatus {
    /// Executed; `text` holds the coordinator's answer.
    Done,
    /// Rejected at submission: the bounded queue was full.
    Busy,
    /// Expired in the queue before a worker picked it up.
    TimedOut,
    /// Executed but the coordinator reported a failure.
    Failed,
}

/// The answer to one [`ServeRequest`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServeResponse {
    /// Echo of the request's session id.
    pub session: String,
    /// Echo of the request's sequence number.
    pub seq: u64,
    /// Terminal status.
    pub status: ServeStatus,
    /// Coordinator answer text (empty unless `Done`/`Failed`).
    pub text: String,
    /// Wall-clock seconds from submission to worker pickup.
    pub queue_wait_s: f64,
    /// Wall-clock seconds the coordinator spent executing.
    pub exec_s: f64,
    /// Worker index that executed the request (`None` when never
    /// picked up, i.e. `Busy`).
    pub worker: Option<usize>,
}

impl ServeResponse {
    /// A rejection synthesized at submission time (never queued).
    pub fn busy(req: &ServeRequest) -> ServeResponse {
        ServeResponse {
            session: req.session.clone(),
            seq: req.seq,
            status: ServeStatus::Busy,
            text: String::new(),
            queue_wait_s: 0.0,
            exec_s: 0.0,
            worker: None,
        }
    }

    /// A deadline expiry synthesized at dequeue time.
    pub fn timed_out(req: &ServeRequest, queue_wait_s: f64, worker: usize) -> ServeResponse {
        ServeResponse {
            session: req.session.clone(),
            seq: req.seq,
            status: ServeStatus::TimedOut,
            text: String::new(),
            queue_wait_s,
            exec_s: 0.0,
            worker: Some(worker),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelopes_round_trip_through_json() {
        let req = ServeRequest {
            session: "s-07".into(),
            seq: 3,
            query: "solve case14".into(),
            deadline_ms: Some(5_000),
        };
        let back: ServeRequest =
            serde_json::from_str(&serde_json::to_string(&req).unwrap()).unwrap();
        assert_eq!(req, back);

        let resp = ServeResponse {
            session: "s-07".into(),
            seq: 3,
            status: ServeStatus::Done,
            text: "Solved ACOPF for case14.".into(),
            queue_wait_s: 0.012,
            exec_s: 0.34,
            worker: Some(5),
        };
        let back: ServeResponse =
            serde_json::from_str(&serde_json::to_string(&resp).unwrap()).unwrap();
        assert_eq!(resp, back);
    }

    #[test]
    fn synthesized_rejections_echo_correlation_ids() {
        let req = ServeRequest {
            session: "a".into(),
            seq: 9,
            query: "q".into(),
            deadline_ms: None,
        };
        let busy = ServeResponse::busy(&req);
        assert_eq!(busy.status, ServeStatus::Busy);
        assert_eq!((busy.session.as_str(), busy.seq), ("a", 9));
        assert_eq!(busy.worker, None);
        let late = ServeResponse::timed_out(&req, 1.5, 2);
        assert_eq!(late.status, ServeStatus::TimedOut);
        assert!((late.queue_wait_s - 1.5).abs() < f64::EPSILON);
        assert_eq!(late.worker, Some(2));
    }
}
