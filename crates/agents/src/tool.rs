//! Typed tools and the tool registry.
//!
//! Tools are the only path from agent reasoning to numbers (§3.2.1: "Never
//! fabricate solver outputs; always call tools for numerical data"). Each
//! tool declares input and output schemas; the registry validates both
//! directions on every invocation and appends an [`InvocationRecord`] to
//! the provenance log, so every figure an agent reports is traceable to a
//! validated tool output.

use crate::clock::VirtualClock;
use crate::schema::{Schema, SchemaViolation};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Static description of a tool (the capability descriptor the planner
/// matches subtasks against).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ToolSpec {
    /// Unique tool name, e.g. `solve_acopf_case`.
    pub name: String,
    /// What the tool does, for planner capability matching.
    pub description: String,
    /// Input schema.
    pub input: Schema,
    /// Output schema.
    pub output: Schema,
}

/// Tool invocation failure.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum ToolError {
    /// No tool by that name.
    UnknownTool {
        /// Requested name.
        name: String,
    },
    /// Arguments rejected by the input schema.
    InvalidArgs {
        /// Violations.
        violations: Vec<SchemaViolation>,
    },
    /// The tool's own result failed its output schema — the §3.3 safety
    /// net against silently corrupted downstream reasoning.
    InvalidOutput {
        /// Violations.
        violations: Vec<SchemaViolation>,
    },
    /// Domain failure inside the tool (solver divergence, unknown case…).
    Execution {
        /// Tool-reported message.
        message: String,
        /// Whether the agent may retry with adjusted arguments.
        recoverable: bool,
    },
}

impl std::fmt::Display for ToolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ToolError::UnknownTool { name } => write!(f, "unknown tool {name:?}"),
            ToolError::InvalidArgs { violations } => write!(
                f,
                "invalid arguments: {}",
                violations
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            ),
            ToolError::InvalidOutput { violations } => write!(
                f,
                "tool output failed validation: {}",
                violations
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            ),
            ToolError::Execution { message, .. } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for ToolError {}

/// A callable tool.
pub trait Tool: Send + Sync {
    /// The tool's static spec.
    fn spec(&self) -> &ToolSpec;
    /// Executes with already-validated arguments.
    fn call(&self, args: &Value) -> Result<Value, ToolError>;
}

/// Boxed tool body signature.
type ToolBody = Box<dyn Fn(&Value) -> Result<Value, ToolError> + Send + Sync>;

/// A tool built from a closure (the common case).
pub struct FnTool {
    spec: ToolSpec,
    f: ToolBody,
}

impl FnTool {
    /// Wraps a closure with a spec.
    pub fn new(
        spec: ToolSpec,
        f: impl Fn(&Value) -> Result<Value, ToolError> + Send + Sync + 'static,
    ) -> FnTool {
        FnTool {
            spec,
            f: Box::new(f),
        }
    }
}

impl Tool for FnTool {
    fn spec(&self) -> &ToolSpec {
        &self.spec
    }
    fn call(&self, args: &Value) -> Result<Value, ToolError> {
        (self.f)(args)
    }
}

/// Full audit record of one tool invocation (the provenance trail of
/// §3.2.1 "Trust and auditability").
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InvocationRecord {
    /// Monotonic invocation id within the registry.
    pub seq: u64,
    /// Tool name.
    pub tool: String,
    /// Arguments as passed.
    pub args: Value,
    /// Result value (present on success).
    pub result: Option<Value>,
    /// Error text (present on failure).
    pub error: Option<String>,
    /// Virtual timestamp when the call started (s).
    pub started_at_s: f64,
    /// Wall-clock duration of the tool body (s).
    pub duration_s: f64,
}

/// Registry of tools with validation, invocation, and provenance.
pub struct ToolRegistry {
    tools: HashMap<String, Arc<dyn Tool>>,
    log: RwLock<Vec<InvocationRecord>>,
    seq: RwLock<u64>,
    clock: VirtualClock,
}

impl ToolRegistry {
    /// Empty registry sharing the given clock.
    pub fn new(clock: VirtualClock) -> Self {
        ToolRegistry {
            tools: HashMap::new(),
            log: RwLock::new(Vec::new()),
            seq: RwLock::new(0),
            clock,
        }
    }

    /// Registers a tool. New analytical tools can be added without
    /// refactoring core logic (§3.1); the planner discovers them through
    /// [`ToolRegistry::specs`].
    pub fn register(&mut self, tool: impl Tool + 'static) {
        self.tools.insert(tool.spec().name.clone(), Arc::new(tool));
    }

    /// Names of all registered tools.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tools.keys().cloned().collect();
        v.sort();
        v
    }

    /// All tool specs (capability descriptors).
    pub fn specs(&self) -> Vec<ToolSpec> {
        let mut v: Vec<ToolSpec> = self.tools.values().map(|t| t.spec().clone()).collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Invokes a tool with full input/output validation and provenance
    /// logging.
    pub fn invoke(&self, name: &str, args: &Value) -> Result<Value, ToolError> {
        let tool = self
            .tools
            .get(name)
            .ok_or_else(|| ToolError::UnknownTool { name: name.into() })?
            .clone();
        if let Err(violations) = tool.spec().input.validate(args) {
            return Err(ToolError::InvalidArgs { violations });
        }
        let _span = gm_telemetry::span!(format!("tool.{name}"));
        gm_telemetry::counter_add("tool.invocations", 1);
        let started_at_s = self.clock.now();
        let (result, duration_s) = self.clock.measure(|| tool.call(args));
        gm_telemetry::histogram_record("tool.duration_s", duration_s);
        if result.is_err() {
            gm_telemetry::counter_add("tool.errors", 1);
        }
        let seq = {
            let mut s = self.seq.write();
            *s += 1;
            *s
        };
        let record = |result: Option<Value>, error: Option<String>| InvocationRecord {
            seq,
            tool: name.to_string(),
            args: args.clone(),
            result,
            error,
            started_at_s,
            duration_s,
        };
        match result {
            Ok(value) => {
                if let Err(violations) = tool.spec().output.validate(&value) {
                    let err = ToolError::InvalidOutput { violations };
                    self.log.write().push(record(None, Some(err.to_string())));
                    return Err(err);
                }
                self.log.write().push(record(Some(value.clone()), None));
                Ok(value)
            }
            Err(e) => {
                self.log.write().push(record(None, Some(e.to_string())));
                Err(e)
            }
        }
    }

    /// Snapshot of the provenance log.
    pub fn provenance(&self) -> Vec<InvocationRecord> {
        self.log.read().clone()
    }

    /// Number of invocations so far.
    pub fn invocation_count(&self) -> u64 {
        *self.seq.read()
    }

    /// The shared clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use serde_json::json;

    fn adder() -> FnTool {
        FnTool::new(
            ToolSpec {
                name: "add".into(),
                description: "adds two numbers".into(),
                input: Schema::object(vec![
                    Field::required("a", Schema::number(), "lhs"),
                    Field::required("b", Schema::number(), "rhs"),
                ]),
                output: Schema::object(vec![Field::required("sum", Schema::number(), "a+b")]),
            },
            |args| {
                let a = args["a"].as_f64().unwrap();
                let b = args["b"].as_f64().unwrap();
                Ok(json!({"sum": a + b}))
            },
        )
    }

    fn registry() -> ToolRegistry {
        let mut r = ToolRegistry::new(VirtualClock::new());
        r.register(adder());
        r
    }

    #[test]
    fn invoke_happy_path() {
        let r = registry();
        let out = r.invoke("add", &json!({"a": 2.0, "b": 3.0})).unwrap();
        assert_eq!(out["sum"], json!(5.0));
        let log = r.provenance();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].tool, "add");
        assert!(log[0].result.is_some());
        assert_eq!(log[0].seq, 1);
    }

    #[test]
    fn unknown_tool() {
        let r = registry();
        assert!(matches!(
            r.invoke("nope", &json!({})),
            Err(ToolError::UnknownTool { .. })
        ));
    }

    #[test]
    fn invalid_args_rejected_before_execution() {
        let r = registry();
        let err = r.invoke("add", &json!({"a": 2.0})).unwrap_err();
        assert!(matches!(err, ToolError::InvalidArgs { .. }));
        // Not logged as an invocation (never started).
        assert_eq!(r.provenance().len(), 0);
    }

    #[test]
    fn invalid_output_caught() {
        let mut r = ToolRegistry::new(VirtualClock::new());
        r.register(FnTool::new(
            ToolSpec {
                name: "bad".into(),
                description: "returns garbage".into(),
                input: Schema::Any,
                output: Schema::object(vec![Field::required("x", Schema::number(), "")]),
            },
            |_| Ok(json!({"y": "oops"})),
        ));
        let err = r.invoke("bad", &json!({})).unwrap_err();
        assert!(matches!(err, ToolError::InvalidOutput { .. }));
        // The failed attempt IS in the provenance log.
        let log = r.provenance();
        assert_eq!(log.len(), 1);
        assert!(log[0].error.is_some());
    }

    #[test]
    fn execution_errors_logged() {
        let mut r = ToolRegistry::new(VirtualClock::new());
        r.register(FnTool::new(
            ToolSpec {
                name: "fail".into(),
                description: "always fails".into(),
                input: Schema::Any,
                output: Schema::Any,
            },
            |_| {
                Err(ToolError::Execution {
                    message: "solver diverged".into(),
                    recoverable: true,
                })
            },
        ));
        let err = r.invoke("fail", &json!({})).unwrap_err();
        assert!(err.to_string().contains("diverged"));
        assert_eq!(r.provenance().len(), 1);
    }

    #[test]
    fn specs_sorted_and_discoverable() {
        let mut r = registry();
        r.register(FnTool::new(
            ToolSpec {
                name: "aardvark".into(),
                description: "first alphabetically".into(),
                input: Schema::Any,
                output: Schema::Any,
            },
            |_| Ok(json!(null)),
        ));
        assert_eq!(r.names(), vec!["aardvark".to_string(), "add".to_string()]);
        assert_eq!(r.specs()[0].name, "aardvark");
    }

    #[test]
    fn clock_advances_with_invocations() {
        let r = registry();
        let before = r.clock().now();
        r.invoke("add", &json!({"a": 1.0, "b": 1.0})).unwrap();
        assert!(r.clock().now() >= before);
        assert_eq!(r.invocation_count(), 1);
    }
}
