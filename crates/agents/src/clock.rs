//! Virtual session clock (re-export).
//!
//! The clock implementation moved to `gm-telemetry` so that
//! [`VirtualClock::measure`] can record into an installed metrics
//! collector — real solver time and virtual LLM latency land in one
//! unified timeline. This module keeps the historical `gm_agents::clock`
//! path working.

pub use gm_telemetry::VirtualClock;
