//! Property tests for Woodbury compensation.
//!
//! The contract under test: whenever [`CompensatedLu::new`] accepts an
//! update, its solves are indistinguishable (to tight tolerance) from a
//! fresh factorization of the explicitly modified matrix — and whenever
//! it rejects one, the rejection is `IllConditioned`, the explicit signal
//! that callers must refactor instead of compensate. There is no third
//! outcome: compensation never silently degrades.

use gm_sparse::{CompensateError, CompensatedLu, CsMat, SparseLu, Triplets};
use proptest::prelude::*;

/// Random diagonally dominant matrix (same generator family as
/// `refactor_props.rs`).
fn sparse_from(n: usize, entries: &[(usize, usize, f64)]) -> CsMat<f64> {
    let mut t = Triplets::new(n, n);
    for i in 0..n {
        t.push(i, i, 8.0 + (i as f64) * 0.1);
    }
    for &(i, j, v) in entries {
        let (i, j) = (i % n, j % n);
        if i != j {
            t.push(i, j, v);
        }
    }
    t.to_csr()
}

/// The base matrix with the dense `rows × cols` block added on top.
fn with_delta(a: &CsMat<f64>, rows: &[usize], cols: &[usize], block: &[f64]) -> CsMat<f64> {
    let n = a.rows();
    let mut t = Triplets::new(n, n);
    for i in 0..n {
        let (js, vs) = a.row(i);
        for (&j, &v) in js.iter().zip(vs) {
            t.push(i, j, v);
        }
    }
    for (ai, &r) in rows.iter().enumerate() {
        for (bi, &c) in cols.iter().enumerate() {
            t.push(r, c, block[ai * cols.len() + bi]);
        }
    }
    t.to_csr()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// An accepted compensated solve matches the fresh factorization of
    /// the modified matrix within 1e-9 across random "outage-shaped"
    /// updates (a dense block on up to four row/column pairs — the same
    /// footprint a branch outage leaves on a Jacobian).
    #[test]
    fn compensated_solve_matches_fresh_factorization(
        n in 4usize..24,
        entries in prop::collection::vec(
            (0usize..32, 0usize..32, -2.0f64..2.0), 0..64),
        idx in prop::collection::vec(0usize..32, 1..5),
        block_vals in prop::collection::vec(-3.0f64..3.0, 16..17),
    ) {
        let a = sparse_from(n, &entries);
        let base = SparseLu::factor(&a).unwrap();
        // Distinct in-range indices; symmetric footprint (rows == cols)
        // like a branch-outage delta.
        let mut rc: Vec<usize> = idx.iter().map(|&i| i % n).collect();
        rc.sort_unstable();
        rc.dedup();
        let p = rc.len();
        let block: Vec<f64> = block_vals[..p * p].to_vec();

        let modified = with_delta(&a, &rc, &rc, &block);
        let rhs: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.9 - 1.0).sin()).collect();

        match CompensatedLu::new(&base, &rc, &rc, &block) {
            Ok(comp) => {
                let fresh = SparseLu::factor(&modified).unwrap();
                let xc = comp.solve(&rhs);
                let xf = fresh.solve(&rhs);
                for (c, f) in xc.iter().zip(&xf) {
                    prop_assert!((c - f).abs() < 1e-9, "{c} vs {f}");
                }
            }
            // A conservative reject is legitimate; anything else is not.
            Err(CompensateError::IllConditioned { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    /// Updates that exactly cancel a decoupled diagonal make the modified
    /// matrix singular; compensation must reject them as ill-conditioned
    /// rather than produce a finite-looking answer. This is the algebraic
    /// shadow of an islanding outage (the post-outage system loses rank).
    #[test]
    fn singularizing_update_always_rejected(
        n in 2usize..16,
        which in 0usize..32,
    ) {
        // Diagonal-only base: removing one diagonal entry islands that
        // row from the rest of the system.
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0 + (i as f64));
        }
        let a = t.to_csr();
        let base = SparseLu::factor(&a).unwrap();
        let r = which % n;
        let cancel = -(4.0 + (r as f64));
        match CompensatedLu::rank1(&base, r, r, cancel) {
            Err(CompensateError::IllConditioned { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error {e}"),
            Ok(_) => prop_assert!(false, "singularizing update accepted"),
        }
    }
}
