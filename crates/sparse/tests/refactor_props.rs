//! Property tests for the symbolic/numeric LU split.
//!
//! The contract under test: a successful [`SymbolicLu::refactor`] on a
//! same-pattern matrix is indistinguishable from a fresh
//! [`SparseLu::factor_with`] — same pivot sequence, same numbers — and
//! any perturbation that would change the pivot sequence is rejected
//! with `RefactorUnstable` so the engine falls back to a full
//! re-analysis instead of silently degrading.

use gm_sparse::{CsMat, LuEngine, Ordering, SparseLu, SparseLuError, SymbolicLu, Triplets};
use proptest::prelude::*;

/// Random diagonally dominant matrix (same generator family as
/// `tests/properties.rs`): dominance keeps the diagonal-preference
/// pivoting stable under the value perturbations below.
fn sparse_from(n: usize, entries: &[(usize, usize, f64)]) -> CsMat<f64> {
    let mut t = Triplets::new(n, n);
    for i in 0..n {
        t.push(i, i, 8.0 + (i as f64) * 0.1);
    }
    for &(i, j, v) in entries {
        let (i, j) = (i % n, j % n);
        if i != j {
            t.push(i, j, v);
        }
    }
    t.to_csr()
}

/// Scales every stored value by a factor derived from `seed` — the
/// pattern is untouched, so the symbolic analysis stays applicable.
fn perturb(a: &CsMat<f64>, seed: f64) -> CsMat<f64> {
    let mut b = a.clone();
    for (k, v) in b.values_mut().iter_mut().enumerate() {
        *v *= 1.0 + 0.05 * seed * ((k as f64) * 0.7).sin();
    }
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Refactorization on a perturbed same-pattern matrix reproduces the
    /// fresh factorization exactly: identical solve results (the design
    /// guarantees bit-identity, asserted here well inside the 1e-12
    /// contract), with the pivot-change guard allowed to force a full
    /// re-analysis instead.
    #[test]
    fn refactor_matches_fresh_factor_on_perturbed_values(
        n in 2usize..24,
        entries in prop::collection::vec(
            (0usize..32, 0usize..32, -2.0f64..2.0), 0..80),
        seed in -1.0f64..1.0,
    ) {
        let a = sparse_from(n, &entries);
        let (sym, first) = SymbolicLu::analyze(&a, Ordering::MinDegree, 0.1).unwrap();
        let fresh_a = SparseLu::factor_with(&a, Ordering::MinDegree, 0.1).unwrap();
        let b: Vec<f64> = (0..n).map(|i| ((i as f64) + 1.0).cos()).collect();
        prop_assert_eq!(first.solve(&b), fresh_a.solve(&b));

        let a2 = perturb(&a, seed);
        let fresh = SparseLu::factor_with(&a2, Ordering::MinDegree, 0.1).unwrap();
        match sym.refactor(&a2) {
            Ok(re) => {
                let xr = re.solve(&b);
                let xf = fresh.solve(&b);
                for (r, f) in xr.iter().zip(&xf) {
                    prop_assert!((r - f).abs() < 1e-12, "{r} vs {f}");
                }
                // The stronger invariant the solvers rely on.
                prop_assert_eq!(xr, xf);
            }
            // Pivot-order change: legitimate only as an explicit
            // fallback signal, never a wrong answer.
            Err(SparseLuError::RefactorUnstable { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    /// Adversarial perturbation: zeroing a dominant diagonal and boosting
    /// an off-diagonal in the same column attacks the captured pivot
    /// order. Whatever happens — guard trips, or the pivot sequence
    /// happens to survive — the engine answer must equal a fresh
    /// factorization exactly. The guaranteed-trip case is pinned by
    /// `adversarial_pivot_swap_trips_guard_and_recovers` below.
    #[test]
    fn adversarial_values_never_produce_a_wrong_factor(
        n in 3usize..16,
        entries in prop::collection::vec(
            (0usize..32, 0usize..32, -2.0f64..2.0), 0..40),
        col in 0usize..32,
    ) {
        let col = col % n;
        let other = (col + 1) % n;
        // Same pattern as `a` plus a large off-diagonal in `col`: build
        // both matrices from identical triplet sequences.
        let build = |diag_col: f64, off: f64| {
            let mut t = Triplets::new(n, n);
            for i in 0..n {
                t.push(i, i, if i == col { diag_col } else { 8.0 + (i as f64) * 0.1 });
            }
            t.push(other, col, off);
            for &(i, j, v) in &entries {
                let (i, j) = (i % n, j % n);
                if i != j && !(i == other && j == col) {
                    t.push(i, j, v);
                }
            }
            t.to_csr()
        };
        let good = build(8.0 + (col as f64) * 0.1, 0.5);
        let bad = build(1e-9, 1e6);

        let rhs: Vec<f64> = (0..n).map(|i| ((i as f64) - 2.0).sin()).collect();
        let x_fresh = SparseLu::factor_with(&bad, Ordering::MinDegree, 0.1)
            .unwrap()
            .solve(&rhs);

        let (sym, _) = SymbolicLu::analyze(&good, Ordering::MinDegree, 0.1).unwrap();
        match sym.refactor(&bad) {
            Ok(re) => prop_assert_eq!(re.solve(&rhs), x_fresh.clone()),
            Err(SparseLuError::RefactorUnstable { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }

        // The engine path is always safe: fallback or not, the answer
        // matches the fresh factorization bit for bit.
        let mut engine = LuEngine::new();
        engine.factorize_with(&good, Ordering::MinDegree, 0.1).unwrap();
        let x_engine = engine
            .factorize_with(&bad, Ordering::MinDegree, 0.1)
            .unwrap()
            .solve(&rhs);
        prop_assert_eq!(x_engine, x_fresh);
    }
}

/// Deterministic adversarial pattern where the pivot-order guard *must*
/// trip: with natural ordering the first elimination step captures the
/// diagonal pivot, and the degraded matrix makes the sub-diagonal entry
/// six orders of magnitude larger — threshold pivoting has to leave the
/// diagonal, the refactor must refuse, and the engine must recover via
/// full re-analysis (counted as `sparse.symbolic.fallback`) with the
/// exact fresh-factor answer.
#[test]
fn adversarial_pivot_swap_trips_guard_and_recovers() {
    let build = |a00: f64, a10: f64| {
        let mut t = Triplets::new(3, 3);
        t.push(0, 0, a00);
        t.push(0, 2, 1.0);
        t.push(1, 0, a10);
        t.push(1, 1, 5.0);
        t.push(2, 1, 1.0);
        t.push(2, 2, 3.0);
        t.to_csr()
    };
    let good = build(4.0, 1.0);
    let bad = build(1e-9, 1e6);

    let (sym, _) = SymbolicLu::analyze(&good, Ordering::Natural, 0.1).unwrap();
    match sym.refactor(&bad) {
        Err(SparseLuError::RefactorUnstable { step }) => assert_eq!(step, 0),
        other => panic!("guard must trip at step 0, got {other:?}"),
    }

    let reg = gm_telemetry::Registry::new();
    let _g = reg.install();
    let mut engine = LuEngine::new();
    engine
        .factorize_with(&good, Ordering::Natural, 0.1)
        .unwrap();
    let rhs = [1.0, -2.0, 0.5];
    let x_engine = engine
        .factorize_with(&bad, Ordering::Natural, 0.1)
        .unwrap()
        .solve(&rhs);
    assert_eq!(reg.counter_value("sparse.symbolic.fallback"), 1);
    assert_eq!(reg.counter_value("sparse.symbolic.build"), 2);
    let x_fresh = SparseLu::factor_with(&bad, Ordering::Natural, 0.1)
        .unwrap()
        .solve(&rhs);
    assert_eq!(x_engine, x_fresh);
}
