//! Property tests for the multi-RHS panel solve.
//!
//! The contract under test: [`SparseLu::solve_many_in_place`] on an
//! interleaved structure-of-arrays panel is bit-for-bit identical to
//! `nrhs` independent [`SparseLu::solve_in_place`] calls on the
//! de-interleaved columns — including `±0.0` lanes, which exercise the
//! skip-on-zero branches of the triangular sweeps.

use gm_sparse::{CsMat, Ordering, SparseLu, Triplets};
use proptest::prelude::*;

/// Random diagonally dominant matrix (same generator family as
/// `tests/refactor_props.rs`): dominance keeps the factorization
/// well-defined for arbitrary off-diagonal draws.
fn sparse_from(n: usize, entries: &[(usize, usize, f64)]) -> CsMat<f64> {
    let mut t = Triplets::new(n, n);
    for i in 0..n {
        t.push(i, i, 8.0 + (i as f64) * 0.1);
    }
    for &(i, j, v) in entries {
        let (i, j) = (i % n, j % n);
        if i != j {
            t.push(i, j, v);
        }
    }
    t.to_csr()
}

/// Lane value classes: ordinary values plus the signed-zero edge cases
/// the skip-on-zero sweeps must preserve.
fn lane_value(raw: f64, class: u8) -> f64 {
    match class {
        0 => 0.0,
        1 => -0.0,
        _ => raw,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The panel solve equals per-lane single solves bit for bit.
    #[test]
    fn panel_solve_matches_per_lane_single_solves(
        n in 2usize..24,
        nrhs in 1usize..9,
        entries in prop::collection::vec(
            (0usize..32, 0usize..32, -2.0f64..2.0), 0..80),
        raws in prop::collection::vec(-3.0f64..3.0, 216..217),
        classes in prop::collection::vec(0u8..5, 216..217),
    ) {
        let a = sparse_from(n, &entries);
        let lu = SparseLu::factor_with(&a, Ordering::MinDegree, 0.1).unwrap();

        // Interleaved panel: entry i of lane s at panel[i*nrhs + s].
        let mut panel = vec![0.0f64; n * nrhs];
        for i in 0..n {
            for s in 0..nrhs {
                let k = i * nrhs + s;
                panel[k] = lane_value(raws[k], classes[k]);
            }
        }

        // Reference: de-interleave and solve each lane independently.
        let mut expect = vec![0.0f64; n * nrhs];
        let mut b = vec![0.0f64; n];
        let mut ws = vec![0.0f64; n];
        for s in 0..nrhs {
            for i in 0..n {
                b[i] = panel[i * nrhs + s];
            }
            lu.solve_in_place(&mut b, &mut ws);
            for i in 0..n {
                expect[i * nrhs + s] = b[i];
            }
        }

        let mut scratch = vec![0.0f64; n * nrhs + nrhs];
        lu.solve_many_in_place(&mut panel, nrhs, &mut scratch);

        for (k, (got, want)) in panel.iter().zip(&expect).enumerate() {
            prop_assert_eq!(
                got.to_bits(), want.to_bits(),
                "lane entry {} differs: {} vs {}", k, got, want
            );
        }
    }
}
