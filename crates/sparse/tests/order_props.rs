//! Property tests for the fill-reducing orderings.
//!
//! Contracts under test on random power-grid-like patterns (2D grid
//! graphs — ring/mesh structure — plus random long-range chords, the
//! shape of every Ybus/Jacobian in the stack):
//!
//! 1. Both [`Ordering::Amd`] and [`Ordering::MinDegree`] always return a
//!    valid permutation of `0..n`.
//! 2. AMD's fill never exceeds 1.1x the greedy min-degree fill — the
//!    supervariable/quotient-graph approximation must not buy its speed
//!    with fill on the matrices the solvers actually factor.
//! 3. AMD is deterministic: the same pattern orders identically on
//!    repeated calls.

use gm_sparse::{CsMat, Ordering, SparseLu, Triplets};
use proptest::prelude::*;

/// Grid graph (nx x ny Laplacian-style pattern) with extra symmetric
/// chords, diagonally dominant so elimination stays on the diagonal and
/// fill reflects the ordering rather than pivoting churn.
fn grid_with_chords(nx: usize, ny: usize, chords: &[(usize, usize)]) -> CsMat<f64> {
    let n = nx * ny;
    let mut t = Triplets::new(n, n);
    for i in 0..n {
        t.push(i, i, 16.0 + (i % 7) as f64);
    }
    let mut couple = |a: usize, b: usize| {
        t.push(a, b, -1.0);
        t.push(b, a, -1.0);
    };
    for y in 0..ny {
        for x in 0..nx {
            let a = y * nx + x;
            if x + 1 < nx {
                couple(a, a + 1);
            }
            if y + 1 < ny {
                couple(a, a + nx);
            }
        }
    }
    for &(a, b) in chords {
        let (a, b) = (a % n, b % n);
        if a != b {
            couple(a, b);
        }
    }
    t.to_csr()
}

fn assert_valid_permutation(p: &[usize], n: usize) {
    assert_eq!(p.len(), n);
    let mut seen = vec![false; n];
    for &v in p {
        assert!(v < n && !seen[v], "invalid permutation entry {v}");
        seen[v] = true;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn both_orderings_yield_valid_permutations(
        nx in 2usize..14,
        ny in 2usize..14,
        chords in proptest::collection::vec((0usize..200, 0usize..200), 0..24),
    ) {
        let a = grid_with_chords(nx, ny, &chords);
        let n = a.rows();
        let amd = Ordering::Amd.permutation(&a).unwrap();
        let greedy = Ordering::MinDegree.permutation(&a).unwrap();
        assert_valid_permutation(&amd, n);
        assert_valid_permutation(&greedy, n);
    }

    #[test]
    fn amd_fill_within_ten_percent_of_greedy(
        nx in 3usize..14,
        ny in 3usize..14,
        chords in proptest::collection::vec((0usize..200, 0usize..200), 0..16),
    ) {
        let a = grid_with_chords(nx, ny, &chords);
        let amd = SparseLu::factor_with(&a, Ordering::Amd, 0.1).unwrap();
        let greedy = SparseLu::factor_with(&a, Ordering::MinDegree, 0.1).unwrap();
        let (fa, fg) = (amd.factor_nnz() as f64, greedy.factor_nnz() as f64);
        prop_assert!(
            fa <= fg * 1.1,
            "AMD fill {fa} exceeds 1.1x greedy fill {fg} on {nx}x{ny} + {} chords",
            chords.len()
        );
    }

    #[test]
    fn amd_is_deterministic(
        nx in 2usize..12,
        ny in 2usize..12,
        chords in proptest::collection::vec((0usize..150, 0usize..150), 0..16),
    ) {
        let a = grid_with_chords(nx, ny, &chords);
        let p1 = Ordering::Amd.permutation(&a).unwrap();
        let p2 = Ordering::Amd.permutation(&a).unwrap();
        prop_assert_eq!(p1, p2);
    }
}

/// Non-square patterns surface as typed errors from both orderings, not
/// panics (the serve workers route arbitrary matrices here).
#[test]
fn rectangular_pattern_is_a_typed_error() {
    let mut t = Triplets::new(3, 4);
    t.push(0, 0, 1.0);
    t.push(2, 3, 1.0);
    let a = t.to_csr();
    for ordering in [Ordering::Natural, Ordering::MinDegree, Ordering::Amd] {
        let err = ordering.permutation(&a).unwrap_err();
        assert_eq!(err, gm_sparse::OrderingError::NotSquare { shape: (3, 4) });
    }
}
