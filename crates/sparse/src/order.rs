//! Fill-reducing orderings.
//!
//! Two fill-reducing strategies are offered on the symmetrized pattern
//! `A + Aᵀ`:
//!
//! * [`Ordering::MinDegree`] — the textbook greedy algorithm (eliminate
//!   the minimum-degree vertex, form the clique of its neighbours).
//!   Quadratic worst case: fine at a few hundred buses, painful at ten
//!   thousand. Kept as a variant so benches can A/B against it.
//! * [`Ordering::Amd`] (default) — approximate minimum degree in the
//!   quotient-graph formulation: eliminated vertices become *elements*
//!   whose boundaries stand in for their cliques, adjacent elements are
//!   absorbed on elimination, external degrees are maintained as the
//!   Amestoy–Davis–Duff upper bound (one `|Le \ Lp|` workspace pass per
//!   pivot instead of a set union), indistinguishable variables are
//!   merged into supervariables, and candidate pivots sit in lazy degree
//!   buckets. Near-linear in practice on power-grid patterns.
//!
//! Both orderings are fully deterministic: a pure function of the input
//! pattern, with ties broken by bucket insertion order (which itself is
//! index order for the initial population) for AMD and by vertex index
//! for greedy min-degree.

use crate::csmat::CsMat;
use crate::scalar::Scalar;
use std::fmt;

/// Typed failure from [`Ordering::permutation`]: orderings are defined
/// on square patterns only. A malformed pattern surfaces as an error the
/// caller can route (e.g. into [`crate::SparseLuError`]) instead of
/// panicking a serve worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrderingError {
    /// The matrix is not square.
    NotSquare {
        /// Offending `(rows, cols)`.
        shape: (usize, usize),
    },
}

impl fmt::Display for OrderingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrderingError::NotSquare { shape } => {
                write!(
                    f,
                    "ordering requires a square matrix, got {}x{}",
                    shape.0, shape.1
                )
            }
        }
    }
}

impl std::error::Error for OrderingError {}

/// Column-ordering strategy for [`crate::SparseLu`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Ordering {
    /// Factor in natural column order.
    Natural,
    /// Greedy minimum-degree on the pattern of `A + Aᵀ`.
    MinDegree,
    /// Approximate minimum degree (quotient graph, element absorption,
    /// supervariables) on the pattern of `A + Aᵀ`.
    #[default]
    Amd,
}

impl Ordering {
    /// Computes the column permutation `q` for a square matrix: column
    /// `q[k]` of `A` is eliminated at step `k`.
    pub fn permutation<T: Scalar>(self, a: &CsMat<T>) -> Result<Vec<usize>, OrderingError> {
        if a.rows() != a.cols() {
            return Err(OrderingError::NotSquare { shape: a.shape() });
        }
        Ok(match self {
            Ordering::Natural => (0..a.rows()).collect(),
            Ordering::MinDegree => min_degree(a),
            Ordering::Amd => amd(a),
        })
    }
}

/// Symmetric adjacency of `A + Aᵀ` (sorted vecs per node, no self loops).
fn symmetric_adjacency<T: Scalar>(a: &CsMat<T>) -> Vec<Vec<usize>> {
    let n = a.rows();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        let (cols, _) = a.row(i);
        for &j in cols {
            if i != j {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    for nbrs in &mut adj {
        nbrs.sort_unstable();
        nbrs.dedup();
    }
    adj
}

fn min_degree<T: Scalar>(a: &CsMat<T>) -> Vec<usize> {
    let n = a.rows();
    let mut adj = symmetric_adjacency(a);

    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        // Select the live vertex of minimum degree.
        let mut best = usize::MAX;
        let mut best_deg = usize::MAX;
        for v in 0..n {
            if !eliminated[v] && adj[v].len() < best_deg {
                best_deg = adj[v].len();
                best = v;
            }
        }
        let v = best;
        eliminated[v] = true;
        order.push(v);
        // Form the elimination clique among v's live neighbours.
        let nbrs: Vec<usize> = adj[v].iter().copied().filter(|&u| !eliminated[u]).collect();
        for &u in &nbrs {
            // Remove v from u's list, then merge the clique.
            let au = &mut adj[u];
            if let Ok(p) = au.binary_search(&v) {
                au.remove(p);
            }
            for &w in &nbrs {
                if w != u {
                    if let Err(p) = adj[u].binary_search(&w) {
                        adj[u].insert(p, w);
                    }
                }
            }
        }
        adj[v].clear();
        adj[v].shrink_to_fit();
    }
    order
}

/// Approximate minimum degree on the quotient graph.
///
/// State per node index (variables and elements share the index space —
/// an eliminated pivot's index is reused as its element's id):
///
/// * `adj[i]` — live variable neighbours of variable `i` *not* already
///   covered by a shared element (pruned lazily, then exactly whenever
///   `i` sits on an elimination boundary).
/// * `adj_el[i]` — elements whose boundary contains variable `i`.
/// * `el_vars[e]` / `el_w[e]` — boundary `Le` of element `e` and its
///   total supervariable weight (constant over the element's lifetime:
///   weights only move between variables of the same boundary).
/// * `nv[i]` — supervariable weight; `0` marks a variable absorbed into
///   another supervariable.
fn amd<T: Scalar>(a: &CsMat<T>) -> Vec<usize> {
    let n = a.rows();
    if n == 0 {
        gm_telemetry::counter_add("sparse.amd.orders", 1);
        return Vec::new();
    }
    let mut adj = symmetric_adjacency(a);
    let mut adj_el: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut el_vars: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut el_w: Vec<usize> = vec![0; n];
    let mut alive_el = vec![false; n];
    let mut eliminated = vec![false; n];
    let mut nv: Vec<usize> = vec![1; n];
    // Original columns folded into each supervariable, emitted together
    // (in index order) when the representative is eliminated.
    let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();

    // Lazy degree buckets: an entry is valid only while the stored degree
    // still matches; stale entries are skipped on pop. `bucket_pos` never
    // rewinds — re-pushed entries land past it and are found when
    // `mindeg` drops back to that bucket.
    let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut bucket_pos: Vec<usize> = vec![0; n];
    for i in 0..n {
        buckets[degree[i].min(n - 1)].push(i);
    }
    let mut mindeg = 0usize;

    // Stamped workspaces (stamp bumps once per pivot; no clearing).
    let mut mark: Vec<u64> = vec![0; n]; // Lp ∪ {p} membership
    let mut wstamp: Vec<u64> = vec![0; n];
    let mut w: Vec<usize> = vec![0; n]; // |Le \ Lp| in supervariable weight
    let mut stamp: u64 = 0;

    let mut order = Vec::with_capacity(n);
    let mut remaining = n;
    let mut absorbed: u64 = 0;
    let mut merged: u64 = 0;
    let mut lp: Vec<usize> = Vec::new();
    let mut touched: Vec<usize> = Vec::new();

    while remaining > 0 {
        // Pick the live supervariable of (approximately) minimum degree.
        let p = loop {
            debug_assert!(
                mindeg < n,
                "degree buckets exhausted with {remaining} columns left"
            );
            let mut found = usize::MAX;
            while bucket_pos[mindeg] < buckets[mindeg].len() {
                let v = buckets[mindeg][bucket_pos[mindeg]];
                bucket_pos[mindeg] += 1;
                if !eliminated[v] && nv[v] > 0 && degree[v].min(n - 1) == mindeg {
                    found = v;
                    break;
                }
            }
            if found != usize::MAX {
                break found;
            }
            mindeg += 1;
        };

        stamp += 1;
        eliminated[p] = true;
        mark[p] = stamp;
        remaining -= nv[p];

        // Lp: live boundary of the new element — direct neighbours plus
        // the boundaries of every adjacent element (all absorbed by p).
        lp.clear();
        for &u in &adj[p] {
            if nv[u] > 0 && !eliminated[u] && mark[u] != stamp {
                mark[u] = stamp;
                lp.push(u);
            }
        }
        let els = std::mem::take(&mut adj_el[p]);
        for &e in &els {
            if !alive_el[e] {
                continue;
            }
            for &u in &el_vars[e] {
                if nv[u] > 0 && !eliminated[u] && mark[u] != stamp {
                    mark[u] = stamp;
                    lp.push(u);
                }
            }
            alive_el[e] = false;
            el_vars[e] = Vec::new();
            absorbed += 1;
        }
        adj[p] = Vec::new();
        lp.sort_unstable();
        let lp_weight: usize = lp.iter().map(|&u| nv[u]).sum();

        // Emit the pivot's supervariable in index order.
        let mut mem = std::mem::take(&mut members[p]);
        mem.sort_unstable();
        order.extend_from_slice(&mem);

        if lp.is_empty() {
            continue;
        }

        // Prune each boundary variable's lists: variable edges inside
        // Lp ∪ {p} are now represented by element p; dead elements drop.
        for &i in &lp {
            adj[i].retain(|&u| nv[u] > 0 && !eliminated[u] && mark[u] != stamp);
            adj_el[i].retain(|&e| alive_el[e]);
        }

        // One-pass |Le \ Lp| workspace trick (Amestoy–Davis–Duff): seed
        // w[e] with the element weight on first touch, subtract nv[i]
        // for every boundary variable i ∈ Le ∩ Lp.
        touched.clear();
        for &i in &lp {
            for &e in &adj_el[i] {
                if wstamp[e] != stamp {
                    wstamp[e] = stamp;
                    w[e] = el_w[e];
                    touched.push(e);
                }
                w[e] -= nv[i];
            }
        }
        // Aggressive absorption: Le ⊆ Lp makes e redundant next to p.
        for &e in &touched {
            if w[e] == 0 {
                alive_el[e] = false;
                el_vars[e] = Vec::new();
                absorbed += 1;
            }
        }

        // Approximate external degrees, then register p on each boundary
        // variable. Lists are re-sorted so supervariable detection can
        // compare them exactly.
        for &i in &lp {
            if !touched.is_empty() {
                adj_el[i].retain(|&e| alive_el[e]);
            }
            adj_el[i].push(p);
            adj_el[i].sort_unstable();
            let var_deg: usize = adj[i].iter().map(|&u| nv[u]).sum();
            let el_deg: usize = adj_el[i]
                .iter()
                .filter(|&&e| e != p)
                .map(|&e| if wstamp[e] == stamp { w[e] } else { el_w[e] })
                .sum();
            let d = (var_deg + (lp_weight - nv[i]) + el_deg).min(remaining - nv[i]);
            degree[i] = d;
        }

        // Supervariable detection: hash boundary variables by their
        // pruned adjacency, confirm with an exact list compare, fold
        // duplicates into the lowest-indexed representative.
        let hashes: Vec<usize> = lp
            .iter()
            .map(|&i| {
                let mut h = 0usize;
                for &u in &adj[i] {
                    h = h.wrapping_add(u);
                }
                for &e in &adj_el[i] {
                    h = h.wrapping_add(e);
                }
                h % n
            })
            .collect();
        for a_idx in 0..lp.len() {
            let i = lp[a_idx];
            if nv[i] == 0 {
                continue;
            }
            for b_idx in (a_idx + 1)..lp.len() {
                let j = lp[b_idx];
                if nv[j] == 0 || hashes[b_idx] != hashes[a_idx] {
                    continue;
                }
                if adj[i] == adj[j] && adj_el[i] == adj_el[j] {
                    // j is indistinguishable from i: fold it in.
                    let wj = nv[j];
                    nv[i] += wj;
                    nv[j] = 0;
                    degree[i] -= wj;
                    let mem_j = std::mem::take(&mut members[j]);
                    members[i].extend_from_slice(&mem_j);
                    adj[j] = Vec::new();
                    adj_el[j] = Vec::new();
                    merged += 1;
                }
            }
        }

        // Surviving boundary becomes the element; re-bucket survivors.
        let boundary: Vec<usize> = lp.iter().copied().filter(|&i| nv[i] > 0).collect();
        for &i in &boundary {
            let d = degree[i].min(remaining.saturating_sub(nv[i]));
            degree[i] = d;
            let b = d.min(n - 1);
            buckets[b].push(i);
            if b < mindeg {
                mindeg = b;
            }
        }
        el_w[p] = lp_weight;
        el_vars[p] = boundary;
        alive_el[p] = true;
    }

    gm_telemetry::counter_add("sparse.amd.orders", 1);
    gm_telemetry::counter_add("sparse.amd.supervars", merged);
    gm_telemetry::counter_add("sparse.amd.absorbed", absorbed);
    debug_assert_eq!(order.len(), n);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::SparseLu;
    use crate::triplets::Triplets;

    fn arrow_matrix(n: usize) -> CsMat<f64> {
        // Dense first row/column + diagonal: natural order fills completely,
        // min-degree should eliminate the dense hub last.
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0);
            if i > 0 {
                t.push(0, i, 1.0);
                t.push(i, 0, 1.0);
            }
        }
        t.to_csr()
    }

    /// 2D grid Laplacian-like pattern: the canonical power-grid stand-in.
    fn grid_matrix(nx: usize, ny: usize) -> CsMat<f64> {
        let n = nx * ny;
        let mut t = Triplets::new(n, n);
        for x in 0..nx {
            for y in 0..ny {
                let i = x * ny + y;
                t.push(i, i, 8.0);
                if x + 1 < nx {
                    let j = (x + 1) * ny + y;
                    t.push(i, j, -1.0);
                    t.push(j, i, -1.0);
                }
                if y + 1 < ny {
                    let j = x * ny + y + 1;
                    t.push(i, j, -1.0);
                    t.push(j, i, -1.0);
                }
            }
        }
        t.to_csr()
    }

    fn assert_is_permutation(q: &[usize], n: usize) {
        let mut sorted = q.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn natural_is_identity() {
        let a = arrow_matrix(5);
        assert_eq!(
            Ordering::Natural.permutation(&a).unwrap(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn non_square_is_typed_error() {
        let mut t = Triplets::new(2, 3);
        t.push(0, 0, 1.0);
        t.push(1, 2, 1.0);
        let a = t.to_csr();
        for ord in [Ordering::Natural, Ordering::MinDegree, Ordering::Amd] {
            assert_eq!(
                ord.permutation(&a),
                Err(OrderingError::NotSquare { shape: (2, 3) })
            );
        }
    }

    #[test]
    fn min_degree_defers_hub() {
        let a = arrow_matrix(6);
        let q = Ordering::MinDegree.permutation(&a).unwrap();
        assert_eq!(q.len(), 6);
        // The hub (vertex 0, degree 5) must be deferred until only it and at
        // most one leaf remain (it ties at degree 1 with the final leaf).
        let hub_pos = q.iter().position(|&v| v == 0).unwrap();
        assert!(hub_pos >= 4, "hub eliminated too early: order {q:?}");
        assert_is_permutation(&q, 6);
    }

    #[test]
    fn amd_defers_hub() {
        let a = arrow_matrix(6);
        let q = Ordering::Amd.permutation(&a).unwrap();
        // The leaves are mutually indistinguishable after the first
        // elimination; whatever the merge order, the dense hub must not
        // lead the ordering.
        assert_ne!(q[0], 0, "hub eliminated first: order {q:?}");
        assert_is_permutation(&q, 6);
    }

    #[test]
    fn min_degree_handles_diagonal_matrix() {
        let mut t = Triplets::new(4, 4);
        for i in 0..4 {
            t.push(i, i, 1.0);
        }
        let a = t.to_csr();
        assert_eq!(
            Ordering::MinDegree.permutation(&a).unwrap(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(Ordering::Amd.permutation(&a).unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn deterministic() {
        let a = arrow_matrix(8);
        for ord in [Ordering::MinDegree, Ordering::Amd] {
            assert_eq!(ord.permutation(&a).unwrap(), ord.permutation(&a).unwrap());
        }
    }

    #[test]
    fn amd_valid_permutation_on_grid() {
        let a = grid_matrix(13, 17);
        let q = Ordering::Amd.permutation(&a).unwrap();
        assert_is_permutation(&q, 13 * 17);
    }

    #[test]
    fn amd_fill_parity_with_greedy_on_grids() {
        // Fill-count parity or better (within the 10% AMD approximation
        // slack) against greedy min-degree on grid-like patterns.
        for (nx, ny) in [(8, 8), (12, 9), (20, 15)] {
            let a = grid_matrix(nx, ny);
            let amd_nnz = SparseLu::factor_with(&a, Ordering::Amd, 0.1)
                .unwrap()
                .factor_nnz();
            let greedy_nnz = SparseLu::factor_with(&a, Ordering::MinDegree, 0.1)
                .unwrap()
                .factor_nnz();
            assert!(
                (amd_nnz as f64) <= 1.1 * (greedy_nnz as f64),
                "{nx}x{ny} grid: AMD fill {amd_nnz} vs greedy {greedy_nnz}"
            );
        }
    }

    #[test]
    fn amd_merges_supervariables_on_dense_block() {
        // A fully dense 6x6 block: after the first elimination the five
        // remaining variables are indistinguishable and must merge.
        let n = 6;
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            for j in 0..n {
                t.push(i, j, if i == j { 4.0 } else { 1.0 });
            }
        }
        let q = Ordering::Amd.permutation(&t.to_csr()).unwrap();
        assert_eq!(q, (0..n).collect::<Vec<_>>());
    }
}
