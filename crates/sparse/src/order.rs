//! Fill-reducing orderings.
//!
//! A greedy minimum-degree ordering on the symmetrized pattern `A + Aᵀ`
//! dramatically reduces fill-in for power system matrices, whose graphs are
//! near-planar meshes. The implementation is the textbook greedy algorithm
//! (eliminate the minimum-degree vertex, form the clique of its neighbours)
//! — quadratic worst case but fast at the sizes GridMind handles (≤ a few
//! thousand buses), and fully deterministic (ties break on vertex index).

use crate::csmat::CsMat;
use crate::scalar::Scalar;

/// Column-ordering strategy for [`crate::SparseLu`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Ordering {
    /// Factor in natural column order.
    Natural,
    /// Greedy minimum-degree on the pattern of `A + Aᵀ`.
    #[default]
    MinDegree,
}

impl Ordering {
    /// Computes the column permutation `q` for a square matrix: column
    /// `q[k]` of `A` is eliminated at step `k`.
    pub fn permutation<T: Scalar>(self, a: &CsMat<T>) -> Vec<usize> {
        match self {
            Ordering::Natural => (0..a.rows()).collect(),
            Ordering::MinDegree => min_degree(a),
        }
    }
}

fn min_degree<T: Scalar>(a: &CsMat<T>) -> Vec<usize> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "ordering requires a square matrix");
    // Build symmetric adjacency (sorted vecs per node, no self loops).
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        let (cols, _) = a.row(i);
        for &j in cols {
            if i != j {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    for nbrs in &mut adj {
        nbrs.sort_unstable();
        nbrs.dedup();
    }

    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        // Select the live vertex of minimum degree.
        let mut best = usize::MAX;
        let mut best_deg = usize::MAX;
        for v in 0..n {
            if !eliminated[v] && adj[v].len() < best_deg {
                best_deg = adj[v].len();
                best = v;
            }
        }
        let v = best;
        eliminated[v] = true;
        order.push(v);
        // Form the elimination clique among v's live neighbours.
        let nbrs: Vec<usize> = adj[v].iter().copied().filter(|&u| !eliminated[u]).collect();
        for &u in &nbrs {
            // Remove v from u's list, then merge the clique.
            let au = &mut adj[u];
            if let Ok(p) = au.binary_search(&v) {
                au.remove(p);
            }
            for &w in &nbrs {
                if w != u {
                    if let Err(p) = adj[u].binary_search(&w) {
                        adj[u].insert(p, w);
                    }
                }
            }
        }
        adj[v].clear();
        adj[v].shrink_to_fit();
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplets::Triplets;

    fn arrow_matrix(n: usize) -> CsMat<f64> {
        // Dense first row/column + diagonal: natural order fills completely,
        // min-degree should eliminate the dense hub last.
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0);
            if i > 0 {
                t.push(0, i, 1.0);
                t.push(i, 0, 1.0);
            }
        }
        t.to_csr()
    }

    #[test]
    fn natural_is_identity() {
        let a = arrow_matrix(5);
        assert_eq!(Ordering::Natural.permutation(&a), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn min_degree_defers_hub() {
        let a = arrow_matrix(6);
        let q = Ordering::MinDegree.permutation(&a);
        assert_eq!(q.len(), 6);
        // The hub (vertex 0, degree 5) must be deferred until only it and at
        // most one leaf remain (it ties at degree 1 with the final leaf).
        let hub_pos = q.iter().position(|&v| v == 0).unwrap();
        assert!(hub_pos >= 4, "hub eliminated too early: order {q:?}");
        // Permutation property.
        let mut sorted = q.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn min_degree_handles_diagonal_matrix() {
        let mut t = Triplets::new(4, 4);
        for i in 0..4 {
            t.push(i, i, 1.0);
        }
        let q = Ordering::MinDegree.permutation(&t.to_csr());
        assert_eq!(q, vec![0, 1, 2, 3]);
    }

    #[test]
    fn deterministic() {
        let a = arrow_matrix(8);
        assert_eq!(
            Ordering::MinDegree.permutation(&a),
            Ordering::MinDegree.permutation(&a)
        );
    }
}
