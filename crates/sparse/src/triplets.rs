//! Coordinate-format (COO) assembly buffer.
//!
//! Ybus and Jacobian construction naturally "stamp" contributions per
//! branch/bus; duplicates are summed when converting to compressed storage,
//! exactly like MATPOWER's `sparse(i, j, v)` idiom.

use crate::csmat::CsMat;
use crate::scalar::Scalar;

/// A growable list of `(row, col, value)` entries.
#[derive(Clone, Debug)]
pub struct Triplets<T: Scalar> {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, T)>,
}

impl<T: Scalar> Triplets<T> {
    /// Creates an empty buffer for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Triplets {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        Triplets {
            rows,
            cols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Removes all entries, keeping the allocation. Hot assembly loops
    /// clear and re-stamp the same buffer instead of allocating a new
    /// one per iteration.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Adds `value` at `(row, col)`. Duplicates accumulate on conversion.
    ///
    /// # Panics
    /// Panics if the position is out of bounds.
    #[inline]
    pub fn push(&mut self, row: usize, col: usize, value: T) {
        assert!(
            row < self.rows && col < self.cols,
            "triplet ({row},{col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.entries.push((row, col, value));
    }

    /// The raw (pre-deduplication) entries, in push order.
    pub fn entries(&self) -> &[(usize, usize, T)] {
        &self.entries
    }

    /// Number of raw (pre-deduplication) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Declared shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Converts to CSR, summing duplicate positions and dropping exact
    /// zeros that result from cancellation.
    pub fn to_csr(&self) -> CsMat<T> {
        // Counting sort by row, then sort-merge within each row.
        let mut counts = vec![0usize; self.rows + 1];
        for &(r, _, _) in &self.entries {
            counts[r + 1] += 1;
        }
        for i in 0..self.rows {
            counts[i + 1] += counts[i];
        }
        let mut slots = counts.clone();
        let mut cols = vec![0usize; self.entries.len()];
        let mut vals = vec![T::zero(); self.entries.len()];
        for &(r, c, v) in &self.entries {
            let p = slots[r];
            cols[p] = c;
            vals[p] = v;
            slots[r] += 1;
        }

        let mut indptr = Vec::with_capacity(self.rows + 1);
        let mut out_cols = Vec::with_capacity(self.entries.len());
        let mut out_vals = Vec::with_capacity(self.entries.len());
        indptr.push(0);
        let mut order: Vec<usize> = Vec::new();
        for r in 0..self.rows {
            let (lo, hi) = (counts[r], counts[r + 1]);
            order.clear();
            order.extend(lo..hi);
            // Tie-break equal columns on slot index: slots within a row
            // are in push order, so duplicate accumulation order is the
            // push order — the same order [`ScatterMap::scatter`] replays
            // with its single sequential pass over the entries.
            order.sort_unstable_by_key(|&p| (cols[p], p));
            let mut k = 0;
            while k < order.len() {
                let c = cols[order[k]];
                let mut acc = T::zero();
                while k < order.len() && cols[order[k]] == c {
                    acc += vals[order[k]];
                    k += 1;
                }
                if !acc.is_zero() {
                    out_cols.push(c);
                    out_vals.push(acc);
                }
            }
            indptr.push(out_cols.len());
        }
        CsMat::from_raw(self.rows, self.cols, indptr, out_cols, out_vals)
    }

    /// Converts to CSR like [`Triplets::to_csr`] — the returned matrix is
    /// bit-identical, including the dropping of exact-zero cancellations —
    /// and additionally returns a [`ScatterMap`] that can re-run the
    /// numeric part of the conversion in place on a later stamping of the
    /// same position sequence.
    pub fn to_csr_with_map(&self) -> (CsMat<T>, ScatterMap) {
        // Counting sort by row, tracking the raw entry index of each slot.
        let mut counts = vec![0usize; self.rows + 1];
        for &(r, _, _) in &self.entries {
            counts[r + 1] += 1;
        }
        for i in 0..self.rows {
            counts[i + 1] += counts[i];
        }
        let mut slots = counts.clone();
        let mut cols = vec![0usize; self.entries.len()];
        let mut vals = vec![T::zero(); self.entries.len()];
        let mut raw = vec![0usize; self.entries.len()];
        for (idx, &(r, c, v)) in self.entries.iter().enumerate() {
            let p = slots[r];
            cols[p] = c;
            vals[p] = v;
            raw[p] = idx;
            slots[r] += 1;
        }

        let mut indptr = Vec::with_capacity(self.rows + 1);
        let mut out_cols = Vec::with_capacity(self.entries.len());
        let mut out_vals = Vec::with_capacity(self.entries.len());
        indptr.push(0);
        let mut dst_of_raw = vec![usize::MAX; self.entries.len()];
        let mut dropped_raw: Vec<usize> = Vec::new();
        let mut dropped_ptr = vec![0usize];
        let mut order: Vec<usize> = Vec::new();
        for r in 0..self.rows {
            let (lo, hi) = (counts[r], counts[r + 1]);
            order.clear();
            order.extend(lo..hi);
            // Same stable (column, push-order) key as [`Triplets::to_csr`]:
            // duplicate accumulation order is the push order, which is what
            // lets `scatter` replay it with one forward pass over the raw
            // entries instead of a gather through an index array.
            order.sort_unstable_by_key(|&p| (cols[p], p));
            let mut k = 0;
            while k < order.len() {
                let c = cols[order[k]];
                let start = k;
                let mut acc = T::zero();
                while k < order.len() && cols[order[k]] == c {
                    acc += vals[order[k]];
                    k += 1;
                }
                if !acc.is_zero() {
                    let slot = out_cols.len();
                    for &p in &order[start..k] {
                        dst_of_raw[raw[p]] = slot;
                    }
                    out_cols.push(c);
                    out_vals.push(acc);
                } else {
                    for &p in &order[start..k] {
                        dropped_raw.push(raw[p]);
                    }
                    dropped_ptr.push(dropped_raw.len());
                }
            }
            indptr.push(out_cols.len());
        }
        let nnz = out_cols.len();
        let mat = CsMat::from_raw(self.rows, self.cols, indptr, out_cols, out_vals);
        let map = ScatterMap {
            rows: self.rows,
            cols: self.cols,
            nnz,
            raw_len: self.entries.len(),
            pos_fp: position_fingerprint(&self.entries),
            dst_of_raw,
            dropped_raw,
            dropped_ptr,
        };
        (mat, map)
    }
}

/// FNV-1a over the `(row, col)` push sequence, values ignored.
fn position_fingerprint<T: Scalar>(entries: &[(usize, usize, T)]) -> u64 {
    fn mix(mut h: u64, x: usize) -> u64 {
        for b in (x as u64).to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &(r, c, _) in entries {
        h = mix(h, r);
        h = mix(h, c);
    }
    h
}

/// Precomputed triplet → CSR scatter plan.
///
/// Built once by [`Triplets::to_csr_with_map`]; [`ScatterMap::scatter`]
/// then refreshes only the values of an existing matrix for each later
/// stamping of the *same* position sequence, with zero allocation. The
/// plan is a raw-entry → value-slot map, so the refresh is one forward
/// streaming pass over the freshly stamped entries — no index gather, no
/// per-row sorting — which is what keeps Jacobian assembly from
/// thrashing the cache at 10k-bus sizes. Duplicate accumulation lands in
/// push order, the exact order [`Triplets::to_csr`] sums (its column
/// sort tie-breaks on push order), so the refreshed values are
/// bit-identical to what a fresh `to_csr()` would produce — or `scatter`
/// reports `false` and the caller rebuilds, whenever the push sequence
/// or the cancellation structure changed (a dropped position became
/// nonzero, or a kept one cancelled to exact zero).
#[derive(Clone, Debug)]
pub struct ScatterMap {
    rows: usize,
    cols: usize,
    nnz: usize,
    raw_len: usize,
    pos_fp: u64,
    /// Per raw entry (push order): destination slot in the CSR value
    /// array, or `usize::MAX` when the entry belongs to a position that
    /// cancelled to exact zero and was dropped from the pattern.
    dst_of_raw: Vec<usize>,
    /// Raw entry indices of the dropped positions, grouped by position
    /// (`dropped_ptr` bounds), so `scatter` can verify each still
    /// cancels.
    dropped_raw: Vec<usize>,
    dropped_ptr: Vec<usize>,
}

impl ScatterMap {
    /// Scatters a re-stamped triplet buffer into the values of `dst`.
    ///
    /// Returns `true` when `dst` now holds exactly `t.to_csr()`. Returns
    /// `false` — leaving `dst`'s values unspecified; rebuild with
    /// [`Triplets::to_csr_with_map`] — when the map does not apply: the
    /// push sequence (length or positions) differs from the one the map
    /// was built for, or an exact-zero cancellation appeared or
    /// disappeared, which changes the output pattern.
    #[must_use]
    pub fn scatter<T: Scalar>(&self, t: &Triplets<T>, dst: &mut CsMat<T>) -> bool {
        if t.shape() != (self.rows, self.cols)
            || t.entries.len() != self.raw_len
            || dst.shape() != (self.rows, self.cols)
            || dst.nnz() != self.nnz
            || position_fingerprint(&t.entries) != self.pos_fp
        {
            return false;
        }
        // One forward pass: each slot accumulates its duplicates in push
        // order, starting from zero — the same operation sequence as the
        // conversion, so the values come out bit-identical.
        let vals = dst.values_mut();
        for v in vals.iter_mut() {
            *v = T::zero();
        }
        for (&d, e) in self.dst_of_raw.iter().zip(&t.entries) {
            if d != usize::MAX {
                vals[d] += e.2;
            }
        }
        // A kept position that now cancels to exact zero would have been
        // dropped by `to_csr` — pattern change, rebuild.
        if vals.iter().any(|v| v.is_zero()) {
            return false;
        }
        // Dropped positions must still cancel exactly.
        for g in 0..self.dropped_ptr.len() - 1 {
            let mut acc = T::zero();
            for &raw in &self.dropped_raw[self.dropped_ptr[g]..self.dropped_ptr[g + 1]] {
                acc += t.entries[raw].2;
            }
            if !acc.is_zero() {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_triplets_make_empty_matrix() {
        let t: Triplets<f64> = Triplets::new(3, 3);
        assert!(t.is_empty());
        let m = t.to_csr();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.shape(), (3, 3));
    }

    #[test]
    fn duplicates_are_summed() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 0, 2.5);
        t.push(1, 1, -1.0);
        let m = t.to_csr();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 0), 3.5);
        assert_eq!(m.get(1, 1), -1.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn exact_cancellation_is_dropped() {
        let mut t = Triplets::new(1, 1);
        t.push(0, 0, 2.0);
        t.push(0, 0, -2.0);
        assert_eq!(t.to_csr().nnz(), 0);
    }

    #[test]
    fn columns_sorted_within_rows() {
        let mut t = Triplets::new(1, 4);
        t.push(0, 3, 3.0);
        t.push(0, 1, 1.0);
        t.push(0, 2, 2.0);
        let m = t.to_csr();
        let (cols, vals) = m.row(0);
        assert_eq!(cols, &[1, 2, 3]);
        assert_eq!(vals, &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_checked() {
        let mut t: Triplets<f64> = Triplets::new(2, 2);
        t.push(2, 0, 1.0);
    }
}
