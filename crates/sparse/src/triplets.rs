//! Coordinate-format (COO) assembly buffer.
//!
//! Ybus and Jacobian construction naturally "stamp" contributions per
//! branch/bus; duplicates are summed when converting to compressed storage,
//! exactly like MATPOWER's `sparse(i, j, v)` idiom.

use crate::csmat::CsMat;
use crate::scalar::Scalar;

/// A growable list of `(row, col, value)` entries.
#[derive(Clone, Debug)]
pub struct Triplets<T: Scalar> {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, T)>,
}

impl<T: Scalar> Triplets<T> {
    /// Creates an empty buffer for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Triplets {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        Triplets {
            rows,
            cols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Adds `value` at `(row, col)`. Duplicates accumulate on conversion.
    ///
    /// # Panics
    /// Panics if the position is out of bounds.
    #[inline]
    pub fn push(&mut self, row: usize, col: usize, value: T) {
        assert!(
            row < self.rows && col < self.cols,
            "triplet ({row},{col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.entries.push((row, col, value));
    }

    /// Number of raw (pre-deduplication) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Declared shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Converts to CSR, summing duplicate positions and dropping exact
    /// zeros that result from cancellation.
    pub fn to_csr(&self) -> CsMat<T> {
        // Counting sort by row, then sort-merge within each row.
        let mut counts = vec![0usize; self.rows + 1];
        for &(r, _, _) in &self.entries {
            counts[r + 1] += 1;
        }
        for i in 0..self.rows {
            counts[i + 1] += counts[i];
        }
        let mut slots = counts.clone();
        let mut cols = vec![0usize; self.entries.len()];
        let mut vals = vec![T::zero(); self.entries.len()];
        for &(r, c, v) in &self.entries {
            let p = slots[r];
            cols[p] = c;
            vals[p] = v;
            slots[r] += 1;
        }

        let mut indptr = Vec::with_capacity(self.rows + 1);
        let mut out_cols = Vec::with_capacity(self.entries.len());
        let mut out_vals = Vec::with_capacity(self.entries.len());
        indptr.push(0);
        let mut order: Vec<usize> = Vec::new();
        for r in 0..self.rows {
            let (lo, hi) = (counts[r], counts[r + 1]);
            order.clear();
            order.extend(lo..hi);
            order.sort_unstable_by_key(|&p| cols[p]);
            let mut k = 0;
            while k < order.len() {
                let c = cols[order[k]];
                let mut acc = T::zero();
                while k < order.len() && cols[order[k]] == c {
                    acc += vals[order[k]];
                    k += 1;
                }
                if !acc.is_zero() {
                    out_cols.push(c);
                    out_vals.push(acc);
                }
            }
            indptr.push(out_cols.len());
        }
        CsMat::from_raw(self.rows, self.cols, indptr, out_cols, out_vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_triplets_make_empty_matrix() {
        let t: Triplets<f64> = Triplets::new(3, 3);
        assert!(t.is_empty());
        let m = t.to_csr();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.shape(), (3, 3));
    }

    #[test]
    fn duplicates_are_summed() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 0, 2.5);
        t.push(1, 1, -1.0);
        let m = t.to_csr();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 0), 3.5);
        assert_eq!(m.get(1, 1), -1.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn exact_cancellation_is_dropped() {
        let mut t = Triplets::new(1, 1);
        t.push(0, 0, 2.0);
        t.push(0, 0, -2.0);
        assert_eq!(t.to_csr().nnz(), 0);
    }

    #[test]
    fn columns_sorted_within_rows() {
        let mut t = Triplets::new(1, 4);
        t.push(0, 3, 3.0);
        t.push(0, 1, 1.0);
        t.push(0, 2, 2.0);
        let m = t.to_csr();
        let (cols, vals) = m.row(0);
        assert_eq!(cols, &[1, 2, 3]);
        assert_eq!(vals, &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_checked() {
        let mut t: Triplets<f64> = Triplets::new(2, 2);
        t.push(2, 0, 1.0);
    }
}
