//! Symbolic/numeric split for the sparse LU factorization.
//!
//! Newton, fast-decoupled, and interior-point iterations factor a long
//! sequence of matrices that share one sparsity pattern — only the values
//! change. The one-shot [`SparseLu::factor_with`] path pays for the
//! fill-reducing ordering (quadratic greedy minimum degree) and the
//! reach-pattern DFS on every call. [`SymbolicLu`] runs that analysis
//! once and captures everything the numeric loop needs — column order,
//! pivot sequence, per-step reach patterns, fill structure, and a
//! column-access plan into the CSR values — so later factorizations of
//! the same pattern are a cheap numeric replay
//! ([`SymbolicLu::refactor_into`]).
//!
//! The replay is *verified*, not trusted: at every elimination step the
//! threshold-partial-pivoting selection is re-run on the fresh values,
//! and any deviation from the captured pivot choice aborts the
//! refactorization with [`SparseLuError::RefactorUnstable`] so the
//! caller falls back to a full re-analysis. The fill structure needs no
//! such check — stored factors keep explicit zeros (see
//! [`crate::lu`]), so the structure is a pure function of the pattern
//! and the pivot sequence. The payoff of the pivot strictness: **a
//! successful refactorization is bit-identical to a fresh
//! [`SparseLu::factor_with`] on the same matrix**, so pattern caches can
//! never change a solver's answer, only its speed.
//!
//! [`LuEngine`] packages the policy: a small MRU cache of symbolic
//! objects keyed by [`CsMat::pattern_fingerprint`], automatic fallback,
//! reusable numeric buffers, and telemetry
//! (`sparse.symbolic.{build,reuse,fallback}` counters,
//! `sparse.analyze_s`/`sparse.refactor_s` timings).

use crate::csmat::CsMat;
use crate::lu::{factor_core, ColAccess, PatternCapture, SparseLu, SparseLuError};
use crate::order::Ordering;
use std::time::Instant;

/// Reusable symbolic analysis of one sparsity pattern: fill-reducing
/// column order, captured pivot sequence, and per-step reach patterns of
/// the analysis factorization. Stored factors keep explicit zeros, so
/// these three fully determine the `L`/`U` fill structure.
#[derive(Clone, Debug)]
pub struct SymbolicLu {
    n: usize,
    nnz: usize,
    fingerprint: u64,
    ordering: Ordering,
    pivot_tol: f64,
    /// Column order: column `q[k]` eliminated at step `k`.
    q: Vec<usize>,
    /// Captured pivot permutation: `pinv[original_row] = pivot position`.
    pinv: Vec<usize>,
    /// Per-step reach pattern (`pat_rows` spans indexed by `pat_ptr`),
    /// re-ordered from the captured DFS postorder into two runs per
    /// step: rows already pivoted before step `k` (`pinv[i] < k`, the
    /// elimination sources, still in postorder among themselves) up to
    /// `pat_split[k]`, then the not-yet-pivoted rows. The numeric replay
    /// then runs branch-free: the same operations in the same order as
    /// the analysis loop, minus the per-entry `pinv` comparisons.
    pat_ptr: Vec<usize>,
    pat_split: Vec<usize>,
    pat_rows: Vec<usize>,
    /// Exact entry counts of the analysis factors, for reservation.
    l_nnz: usize,
    u_nnz: usize,
    /// Final factor structure — a pure function of pattern + pivot
    /// sequence, so a refactorization only writes values into it:
    /// `l_rows_orig` holds L's row indices as original rows (what the
    /// elimination scatter indexes), `l_rows_piv` the same entries
    /// rewritten into pivot order (what the finished factor stores).
    l_colptr: Vec<usize>,
    l_rows_orig: Vec<usize>,
    l_rows_piv: Vec<usize>,
    u_colptr: Vec<usize>,
    u_rows: Vec<usize>,
    /// Column-access plan: step `k` reads `A(:, q[k])` values straight
    /// out of the CSR data array.
    acc: ColAccess,
}

impl SymbolicLu {
    /// Runs a full analysis factorization of `a`, returning the captured
    /// symbolic structure together with the numeric factors. The numeric
    /// result is bit-identical to
    /// [`SparseLu::factor_with`]`(a, ordering, pivot_tol)`.
    pub fn analyze(
        a: &CsMat<f64>,
        ordering: Ordering,
        pivot_tol: f64,
    ) -> Result<(SymbolicLu, SparseLu), SparseLuError> {
        if a.rows() != a.cols() {
            return Err(SparseLuError::NotSquare { shape: a.shape() });
        }
        let q = ordering.permutation(a).map_err(
            |crate::order::OrderingError::NotSquare { shape }| SparseLuError::NotSquare { shape },
        )?;
        let acc = ColAccess::build(a, &q);
        let mut cap = PatternCapture::default();
        let numeric = factor_core(
            a.rows(),
            a.nnz(),
            &acc,
            a.values(),
            q.clone(),
            pivot_tol,
            Some(&mut cap),
        )?;
        let n = a.rows();
        let pinv = numeric.pinv.clone();
        // Split each step's postorder pattern into eliminated-before-k /
        // not-yet-pivoted runs (see the `pat_split` field docs). Both
        // runs preserve their relative postorder, so the replay executes
        // the exact same floating-point sequence as the analysis.
        let mut pat_split = vec![0usize; n];
        let mut pat_rows = Vec::with_capacity(cap.pat_rows.len());
        for k in 0..n {
            let span = &cap.pat_rows[cap.pat_ptr[k]..cap.pat_ptr[k + 1]];
            for &i in span {
                if pinv[i] < k {
                    pat_rows.push(i);
                }
            }
            pat_split[k] = pat_rows.len();
            for &i in span {
                if pinv[i] >= k {
                    pat_rows.push(i);
                }
            }
        }
        // Capture the final factor structure. L's stored rows are in
        // pivot order; the elimination reads them as original rows, so
        // keep both images of the same index sequence.
        let mut pivot_row = vec![0usize; n];
        for (orig, &pk) in pinv.iter().enumerate() {
            pivot_row[pk] = orig;
        }
        let l_rows_piv = numeric.l.rows.clone();
        let l_rows_orig: Vec<usize> = l_rows_piv.iter().map(|&r| pivot_row[r]).collect();
        let sym = SymbolicLu {
            n,
            nnz: a.nnz(),
            fingerprint: a.pattern_fingerprint(),
            ordering,
            pivot_tol,
            q,
            pinv,
            pat_ptr: cap.pat_ptr,
            pat_split,
            pat_rows,
            l_nnz: numeric.l.rows.len(),
            u_nnz: numeric.u.rows.len(),
            l_colptr: numeric.l.colptr.clone(),
            l_rows_orig,
            l_rows_piv,
            u_colptr: numeric.u.colptr.clone(),
            u_rows: numeric.u.rows.clone(),
            acc,
        };
        Ok((sym, numeric))
    }

    /// Matrix dimension this analysis applies to.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Nonzero count of the analyzed pattern.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Pattern fingerprint of the analyzed matrix
    /// (see [`CsMat::pattern_fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Ordering the analysis was built with.
    pub fn ordering(&self) -> Ordering {
        self.ordering
    }

    /// Pivot threshold the analysis was built with.
    pub fn pivot_tol(&self) -> f64 {
        self.pivot_tol
    }

    /// Numeric refactorization of `a` (same pattern as the analyzed
    /// matrix) into a fresh factor. Convenience wrapper over
    /// [`SymbolicLu::refactor_into`].
    pub fn refactor(&self, a: &CsMat<f64>) -> Result<SparseLu, SparseLuError> {
        let mut out = SparseLu::empty();
        let mut scratch = Vec::new();
        self.refactor_into(a, &mut out, &mut scratch)?;
        Ok(out)
    }

    /// Numeric refactorization: replays the captured elimination on
    /// `a`'s values, reusing `out`'s buffers and `scratch` (resized to
    /// `n`; contents irrelevant) so the steady state allocates nothing.
    ///
    /// On `Ok`, `out` is bit-identical to what a fresh
    /// [`SparseLu::factor_with`]`(a, ordering, pivot_tol)` would
    /// produce. On `Err` — the pivot sequence no longer reproduces
    /// ([`SparseLuError::RefactorUnstable`]), the matrix went singular,
    /// or the pattern differs from the analyzed one
    /// ([`SparseLuError::NotSquare`] / unstable at step 0) — `out` is
    /// left in an unspecified state and must be rebuilt via
    /// [`SymbolicLu::analyze`].
    /// Fresh numeric factorization of `a` reusing only the cached
    /// fill-reducing ordering and column-access plan — pivoting is
    /// re-run from scratch, so this succeeds where
    /// [`SymbolicLu::refactor`] reports instability. Bit-identical to
    /// [`SparseLu::factor_with`]`(a, ordering, pivot_tol)` (the
    /// ordering is a pure function of the pattern), while skipping the
    /// ordering and transpose work that dominates a cold factorization.
    pub fn factor_fresh(&self, a: &CsMat<f64>) -> Result<SparseLu, SparseLuError> {
        if a.rows() != a.cols() {
            return Err(SparseLuError::NotSquare { shape: a.shape() });
        }
        if a.rows() != self.n || a.nnz() != self.nnz || a.pattern_fingerprint() != self.fingerprint
        {
            return Err(SparseLuError::RefactorUnstable { step: 0 });
        }
        factor_core(
            self.n,
            self.nnz,
            &self.acc,
            a.values(),
            self.q.clone(),
            self.pivot_tol,
            None,
        )
    }

    pub fn refactor_into(
        &self,
        a: &CsMat<f64>,
        out: &mut SparseLu,
        scratch: &mut Vec<f64>,
    ) -> Result<(), SparseLuError> {
        if a.rows() != a.cols() {
            return Err(SparseLuError::NotSquare { shape: a.shape() });
        }
        if a.rows() != self.n || a.nnz() != self.nnz || a.pattern_fingerprint() != self.fingerprint
        {
            return Err(SparseLuError::RefactorUnstable { step: 0 });
        }
        gm_telemetry::counter_add("sparse.lu.factorizations", 1);
        let n = self.n;
        let avals = a.values();
        let pinv = &self.pinv;

        // The fill structure is a pure function of pattern + verified
        // pivot sequence, so the captured colptr/rows ARE the output
        // structure: the replay below only writes values, through a
        // cursor per factor, with no per-push capacity checks and no
        // final row-rewrite pass. Elimination reads L's in-progress
        // columns through the captured original-row image
        // (`l_rows_orig`) — only values change between refactorizations.
        out.n = n;
        out.q.clone_from(&self.q);
        out.pinv.clone_from(pinv);
        out.l.colptr.clone_from(&self.l_colptr);
        out.l.rows.clone_from(&self.l_rows_piv);
        out.l.vals.resize(self.l_nnz, 0.0);
        out.u.colptr.clone_from(&self.u_colptr);
        out.u.rows.clone_from(&self.u_rows);
        out.u.vals.resize(self.u_nnz, 0.0);
        scratch.resize(n, 0.0);
        let x = &mut scratch[..];
        let mut lpos = 0usize;
        let mut upos = 0usize;

        for k in 0..n {
            // Pattern runs for step k: rows pivoted before k (the
            // elimination sources, in the captured postorder), then the
            // not-yet-pivoted rest. Same index sets the analysis loop
            // partitioned per entry — pre-split, so the hot loops are
            // branch-free.
            let elim = &self.pat_rows[self.pat_ptr[k]..self.pat_split[k]];
            let rest = &self.pat_rows[self.pat_split[k]..self.pat_ptr[k + 1]];

            // --- Numeric: scatter A(:, q[k]), then eliminate in the
            // captured topological order (reverse postorder). ---
            for &i in elim {
                x[i] = 0.0;
            }
            for &i in rest {
                x[i] = 0.0;
            }
            let (bcols, bsrc) = self.acc.col(k);
            for (&i, &p) in bcols.iter().zip(bsrc) {
                x[i] = avals[p];
            }
            for idx in (0..elim.len()).rev() {
                let i = elim[idx];
                let jcol = pinv[i];
                let lrows = &self.l_rows_orig[self.l_colptr[jcol]..self.l_colptr[jcol + 1]];
                let lvals = &out.l.vals[self.l_colptr[jcol]..self.l_colptr[jcol + 1]];
                let xi = x[i];
                if xi != 0.0 {
                    for (&r, &lv) in lrows.iter().zip(lvals).skip(1) {
                        x[r] -= lv * xi;
                    }
                }
            }

            // --- Re-run threshold partial pivoting on the fresh values;
            // any deviation from the captured choice is instability. ---
            let mut ipiv = usize::MAX;
            let mut amax = 0.0f64;
            for &i in rest {
                let t = x[i].abs();
                if t > amax {
                    amax = t;
                    ipiv = i;
                }
            }
            if ipiv == usize::MAX || amax <= 0.0 {
                return Err(SparseLuError::Singular { step: k });
            }
            let col = self.q[k];
            if pinv[col] >= k && x[col].abs() >= self.pivot_tol * amax && x[col] != 0.0 {
                ipiv = col;
            }
            if pinv[ipiv] != k {
                return Err(SparseLuError::RefactorUnstable { step: k });
            }
            let pivot = x[ipiv];

            // --- Write U and L values for column k straight into the
            // captured structure (explicit zeros included). ---
            for &i in elim {
                out.u.vals[upos] = x[i];
                upos += 1;
            }
            out.u.vals[upos] = pivot;
            upos += 1;

            out.l.vals[lpos] = 1.0;
            lpos += 1;
            for &i in rest {
                if pinv[i] > k {
                    out.l.vals[lpos] = x[i] / pivot;
                    lpos += 1;
                }
            }
        }
        debug_assert_eq!(lpos, self.l_nnz);
        debug_assert_eq!(upos, self.u_nnz);
        Ok(())
    }
}

impl SparseLu {
    /// An empty placeholder factor for [`SymbolicLu::refactor_into`] /
    /// [`LuEngine`] buffer reuse. Not usable for solves until filled.
    pub fn empty() -> SparseLu {
        SparseLu {
            n: 0,
            l: crate::lu::CscFactor {
                colptr: vec![0],
                rows: Vec::new(),
                vals: Vec::new(),
            },
            u: crate::lu::CscFactor {
                colptr: vec![0],
                rows: Vec::new(),
                vals: Vec::new(),
            },
            pinv: Vec::new(),
            q: Vec::new(),
        }
    }
}

struct Slot {
    fingerprint: u64,
    sym: SymbolicLu,
    numeric: SparseLu,
    /// Consecutive refactorizations that degraded into a re-analysis.
    /// At [`DIRECT_DEMOTION_STREAK`] the slot stops attempting replays
    /// and switches to [`SymbolicLu::factor_fresh`] permanently.
    fallback_streak: u32,
}

/// Consecutive fallbacks after which a slot is demoted to direct
/// factorization. Iterating solvers whose pivot sequence is stable
/// (Newton Jacobians, FDLF B matrices) never reach it; indefinite
/// systems whose pivots churn every iteration (IPM KKT) hit it
/// immediately and stop paying for doomed replay attempts.
const DIRECT_DEMOTION_STREAK: u32 = 2;

/// Pattern-reuse factorization engine: the one-stop API the solvers use
/// instead of calling [`SparseLu::factor`] per iteration.
///
/// Keeps a small MRU cache of symbolic analyses keyed by pattern
/// fingerprint. [`LuEngine::factorize`] refactors numerically on a
/// pattern hit (falling back to a fresh analysis whenever the replay
/// reports instability, so results never depend on cache state) and
/// analyzes on a miss. Numeric factors and scratch space are owned by
/// the engine and reused across calls.
///
/// A slot whose replays keep failing ([`DIRECT_DEMOTION_STREAK`]
/// consecutive fallbacks) is demoted: further hits skip the replay and
/// run [`SymbolicLu::factor_fresh`] — cached ordering, fresh pivots —
/// which is still well below cold-factorization cost.
///
/// Telemetry: `sparse.symbolic.build` counts full analyses,
/// `sparse.symbolic.reuse` successful refactorizations,
/// `sparse.symbolic.fallback` refactorizations that degraded into a
/// re-analysis (also counted as a build), `sparse.symbolic.direct`
/// demoted-slot factorizations; `sparse.analyze_s` /
/// `sparse.refactor_s` / `sparse.direct_s` record the respective wall
/// times. The `sparse.refactor` fault site (gm-faults, kind
/// `LuSingular`) forces the fallback path for chaos testing.
pub struct LuEngine {
    capacity: usize,
    /// MRU-first.
    slots: Vec<Slot>,
    scratch: Vec<f64>,
    /// Ordering used by [`LuEngine::factorize`] (the no-arguments path
    /// every solver loop calls). Defaults to [`Ordering::default`];
    /// benches pin it to A/B orderings end to end.
    ordering: Ordering,
}

impl Default for LuEngine {
    fn default() -> Self {
        LuEngine::new()
    }
}

impl LuEngine {
    /// Engine holding up to 4 analyzed patterns — plenty for the
    /// iterate-on-one-pattern solvers (Newton, FDLF, IPM).
    pub fn new() -> LuEngine {
        LuEngine::with_capacity(4)
    }

    /// Engine holding up to `capacity` analyzed patterns. The N-1 sweep
    /// uses a slightly larger cache so base-pattern and post-outage
    /// patterns can coexist per worker.
    pub fn with_capacity(capacity: usize) -> LuEngine {
        LuEngine {
            capacity: capacity.max(1),
            slots: Vec::new(),
            scratch: Vec::new(),
            ordering: Ordering::default(),
        }
    }

    /// Same engine, but [`LuEngine::factorize`] uses `ordering` instead
    /// of the default. Lets a caller A/B a whole solver loop (Newton,
    /// the N-1 sweep) under a pinned ordering without threading an
    /// argument through every layer.
    pub fn with_ordering(mut self, ordering: Ordering) -> LuEngine {
        self.ordering = ordering;
        self
    }

    /// Factors `a` with the default ordering and pivot threshold (the
    /// same defaults as [`SparseLu::factor`]), reusing a cached symbolic
    /// analysis when `a`'s pattern has been seen before.
    pub fn factorize(&mut self, a: &CsMat<f64>) -> Result<&SparseLu, SparseLuError> {
        self.factorize_with(a, self.ordering, 0.1)
    }

    /// Factors `a` with explicit ordering and pivot threshold. The
    /// returned factor is bit-identical to
    /// [`SparseLu::factor_with`]`(a, ordering, pivot_tol)` regardless of
    /// cache state: refactorizations that cannot reproduce the fresh
    /// result fall back to a full analysis.
    pub fn factorize_with(
        &mut self,
        a: &CsMat<f64>,
        ordering: Ordering,
        pivot_tol: f64,
    ) -> Result<&SparseLu, SparseLuError> {
        if a.rows() != a.cols() {
            return Err(SparseLuError::NotSquare { shape: a.shape() });
        }
        let fingerprint = a.pattern_fingerprint();
        let hit = self.slots.iter().position(|s| {
            s.fingerprint == fingerprint
                && s.sym.dim() == a.rows()
                && s.sym.nnz() == a.nnz()
                && s.sym.ordering() == ordering
                // Cache-key identity: bitwise compare so the slot only
                // matches the exact threshold it was analyzed with
                // (NaN-safe, unlike `==`).
                && s.sym.pivot_tol().to_bits() == pivot_tol.to_bits()
        });

        if let Some(idx) = hit {
            // Move to MRU position.
            self.slots[..=idx].rotate_right(1);
            if self.slots[0].fallback_streak >= DIRECT_DEMOTION_STREAK {
                // This pattern's pivots churn between factorizations:
                // skip the doomed replay, reuse the cached ordering and
                // column plan, pivot fresh. Same bits as a cold
                // factorization at a fraction of its cost.
                gm_telemetry::counter_add("sparse.symbolic.direct", 1);
                let t0 = Instant::now();
                let numeric = self.slots[0].sym.factor_fresh(a)?;
                self.slots[0].numeric = numeric;
                gm_telemetry::histogram_record("sparse.direct_s", t0.elapsed().as_secs_f64());
                return Ok(&self.slots[0].numeric);
            }
            let injected = matches!(
                gm_faults::inject("sparse.refactor"),
                Some(gm_faults::FaultKind::LuSingular)
            );
            let slot = &mut self.slots[0];
            let t0 = Instant::now();
            let refactored = if injected {
                Err(SparseLuError::RefactorUnstable { step: 0 })
            } else {
                slot.sym
                    .refactor_into(a, &mut slot.numeric, &mut self.scratch)
            };
            match refactored {
                Ok(()) => {
                    gm_telemetry::counter_add("sparse.symbolic.reuse", 1);
                    gm_telemetry::histogram_record("sparse.refactor_s", t0.elapsed().as_secs_f64());
                    self.slots[0].fallback_streak = 0;
                    return Ok(&self.slots[0].numeric);
                }
                Err(SparseLuError::RefactorUnstable { .. })
                | Err(SparseLuError::Singular { .. }) => {
                    // Degraded pivot or an injected fault: re-analyze
                    // from scratch. A truly singular matrix fails the
                    // re-analysis too, with an authoritative step index.
                    gm_telemetry::counter_add("sparse.symbolic.fallback", 1);
                    let (sym, numeric) = self.analyze_timed(a, ordering, pivot_tol)?;
                    let slot = &mut self.slots[0];
                    slot.sym = sym;
                    slot.numeric = numeric;
                    slot.fallback_streak += 1;
                    return Ok(&self.slots[0].numeric);
                }
                Err(e) => return Err(e),
            }
        }

        let (sym, numeric) = self.analyze_timed(a, ordering, pivot_tol)?;
        self.slots.insert(
            0,
            Slot {
                fingerprint,
                sym,
                numeric,
                fallback_streak: 0,
            },
        );
        self.slots.truncate(self.capacity);
        Ok(&self.slots[0].numeric)
    }

    fn analyze_timed(
        &self,
        a: &CsMat<f64>,
        ordering: Ordering,
        pivot_tol: f64,
    ) -> Result<(SymbolicLu, SparseLu), SparseLuError> {
        let t0 = Instant::now();
        let pair = SymbolicLu::analyze(a, ordering, pivot_tol)?;
        gm_telemetry::counter_add("sparse.symbolic.build", 1);
        gm_telemetry::histogram_record("sparse.analyze_s", t0.elapsed().as_secs_f64());
        Ok(pair)
    }

    /// Number of analyzed patterns currently cached.
    pub fn cached_patterns(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplets::Triplets;

    fn tridiag(n: usize, f: impl Fn(usize) -> f64) -> CsMat<f64> {
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0 + f(i));
            if i + 1 < n {
                t.push(i, i + 1, -1.0 - f(i) * 0.1);
                t.push(i + 1, i, -1.0 + f(i) * 0.1);
            }
        }
        t.to_csr()
    }

    fn factors_equal(a: &SparseLu, b: &SparseLu) -> bool {
        a.n == b.n
            && a.pinv == b.pinv
            && a.q == b.q
            && a.l.colptr == b.l.colptr
            && a.l.rows == b.l.rows
            && a.l.vals == b.l.vals
            && a.u.colptr == b.u.colptr
            && a.u.rows == b.u.rows
            && a.u.vals == b.u.vals
    }

    #[test]
    fn analyze_matches_one_shot_factor() {
        let a = tridiag(25, |i| (i as f64 * 0.7).sin());
        let (sym, numeric) = SymbolicLu::analyze(&a, Ordering::MinDegree, 0.1).unwrap();
        let oneshot = SparseLu::factor_with(&a, Ordering::MinDegree, 0.1).unwrap();
        assert!(factors_equal(&numeric, &oneshot));
        assert_eq!(sym.fingerprint(), a.pattern_fingerprint());
    }

    #[test]
    fn refactor_bit_identical_to_fresh_factor() {
        let a = tridiag(25, |i| (i as f64 * 0.7).sin());
        let (sym, _) = SymbolicLu::analyze(&a, Ordering::MinDegree, 0.1).unwrap();
        // Perturb values only.
        let b = tridiag(25, |i| (i as f64 * 0.7).sin() * 1.25 + 0.01);
        let re = sym.refactor(&b).unwrap();
        let fresh = SparseLu::factor_with(&b, Ordering::MinDegree, 0.1).unwrap();
        assert!(
            factors_equal(&re, &fresh),
            "refactor diverged from fresh factor"
        );
    }

    #[test]
    fn refactor_rejects_different_pattern() {
        let a = tridiag(10, |_| 0.0);
        let (sym, _) = SymbolicLu::analyze(&a, Ordering::MinDegree, 0.1).unwrap();
        let b = CsMat::identity(10);
        assert!(matches!(
            sym.refactor(&b),
            Err(SparseLuError::RefactorUnstable { .. })
        ));
    }

    #[test]
    fn refactor_detects_pivot_degradation() {
        // Analysis on a diagonally dominant matrix keeps the diagonal
        // pivots; swinging an off-diagonal far above the diagonal forces
        // a different pivot choice, which the replay must refuse.
        let mut t = Triplets::new(3, 3);
        t.push(0, 0, 10.0);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        t.push(1, 1, 10.0);
        t.push(2, 2, 10.0);
        t.push(1, 2, 1.0);
        t.push(2, 1, 1.0);
        let a = t.to_csr();
        let (sym, _) = SymbolicLu::analyze(&a, Ordering::Natural, 0.5).unwrap();

        let mut t = Triplets::new(3, 3);
        t.push(0, 0, 1e-9);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        t.push(1, 1, 10.0);
        t.push(2, 2, 10.0);
        t.push(1, 2, 1.0);
        t.push(2, 1, 1.0);
        let bad = t.to_csr();
        assert!(matches!(
            sym.refactor(&bad),
            Err(SparseLuError::RefactorUnstable { .. })
        ));
    }

    #[test]
    fn engine_reuses_and_falls_back() {
        let reg = gm_telemetry::Registry::new();
        let _g = reg.install();
        let mut eng = LuEngine::new();
        let a = tridiag(20, |_| 0.0);
        let b = tridiag(20, |i| 0.3 * (i as f64).cos());
        let fa = eng.factorize(&a).unwrap().solve(&[1.0; 20]);
        let fb = eng.factorize(&b).unwrap().solve(&[1.0; 20]);
        assert_eq!(fa.len(), 20);
        assert_eq!(fb.len(), 20);
        let c = reg.counters();
        assert_eq!(c["sparse.symbolic.build"], 1);
        assert_eq!(c["sparse.symbolic.reuse"], 1);
        assert!(!c.contains_key("sparse.symbolic.fallback"));
        // Same answers as the one-shot path.
        let fresh = SparseLu::factor(&b).unwrap().solve(&[1.0; 20]);
        assert_eq!(fb, fresh);
    }

    #[test]
    fn engine_fallback_result_matches_fresh_factor() {
        let reg = gm_telemetry::Registry::new();
        let _g = reg.install();
        let mut eng = LuEngine::new();
        // Diagonally dominant analysis, then adversarial values that
        // break the captured pivot order: the engine must fall back and
        // still return the fresh-factor answer.
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 10.0);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        t.push(1, 1, 10.0);
        let a = t.to_csr();
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1e-12);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        t.push(1, 1, 1e-12);
        let bad = t.to_csr();
        eng.factorize(&a).unwrap();
        let x = eng.factorize(&bad).unwrap().solve(&[1.0, 2.0]);
        let fresh = SparseLu::factor(&bad).unwrap().solve(&[1.0, 2.0]);
        assert_eq!(x, fresh);
        let c = reg.counters();
        assert_eq!(c["sparse.symbolic.fallback"], 1);
        assert_eq!(c["sparse.symbolic.build"], 2);
    }

    #[test]
    fn persistent_fallbacks_demote_slot_to_direct_factorization() {
        let reg = gm_telemetry::Registry::new();
        let _g = reg.install();
        let mut eng = LuEngine::new();
        // Two-state pattern whose pivot flips between the states: every
        // replay against the opposite state's captured pivots fails.
        let mat = |flip: bool| {
            let (d, o) = if flip { (1e-9, 1e3) } else { (10.0, 1.0) };
            let mut t = Triplets::new(2, 2);
            t.push(0, 0, d);
            t.push(0, 1, 1.0);
            t.push(1, 0, o);
            t.push(1, 1, 10.0);
            t.to_csr()
        };
        for round in 0..6 {
            let a = mat(round % 2 == 1);
            let x = eng.factorize(&a).unwrap().solve(&[1.0, 2.0]);
            let fresh = SparseLu::factor(&a).unwrap().solve(&[1.0, 2.0]);
            assert_eq!(x, fresh, "round {round} diverged from fresh factor");
        }
        let c = reg.counters();
        // Round 0 builds, rounds 1-2 fall back, rounds 3+ run direct.
        assert_eq!(c["sparse.symbolic.fallback"], 2);
        assert_eq!(c["sparse.symbolic.direct"], 3);
        assert!(!c.contains_key("sparse.symbolic.reuse"));
    }

    #[test]
    fn engine_evicts_least_recently_used() {
        let mut eng = LuEngine::with_capacity(2);
        let mats: Vec<CsMat<f64>> = (3..6).map(|n| tridiag(n, |_| 0.0)).collect();
        for m in &mats {
            eng.factorize(m).unwrap();
        }
        assert_eq!(eng.cached_patterns(), 2);
    }

    #[test]
    fn engine_propagates_singularity() {
        let mut eng = LuEngine::new();
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 1, 2.0);
        t.push(1, 0, 2.0);
        t.push(1, 1, 4.0);
        let a = t.to_csr();
        assert!(matches!(
            eng.factorize(&a),
            Err(SparseLuError::Singular { .. })
        ));
    }
}
