//! Compressed sparse row (CSR) matrix.

use crate::scalar::Scalar;
use crate::triplets::Triplets;
use gm_numeric::DMat;

/// A sparse matrix in compressed sparse row format.
///
/// `indptr` has `rows + 1` entries; row `i` occupies
/// `indices[indptr[i]..indptr[i+1]]` / `data[...]`, with column indices
/// sorted ascending and unique within each row.
#[derive(Clone, Debug, PartialEq)]
pub struct CsMat<T: Scalar> {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<T>,
}

impl<T: Scalar> CsMat<T> {
    /// Builds from raw CSR arrays.
    ///
    /// # Panics
    /// Panics when the arrays are inconsistent (wrong `indptr` length,
    /// unsorted or out-of-range column indices).
    pub fn from_raw(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        data: Vec<T>,
    ) -> Self {
        assert_eq!(indptr.len(), rows + 1, "indptr length mismatch");
        assert_eq!(indices.len(), data.len(), "indices/data length mismatch");
        assert_eq!(*indptr.last().unwrap_or(&0), indices.len());
        for r in 0..rows {
            let row = &indices[indptr[r]..indptr[r + 1]];
            for w in row.windows(2) {
                assert!(w[0] < w[1], "row {r} columns not strictly ascending");
            }
            if let Some(&last) = row.last() {
                assert!(last < cols, "row {r} column out of range");
            }
        }
        CsMat {
            rows,
            cols,
            indptr,
            indices,
            data,
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        CsMat {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            data: vec![T::one(); n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Column indices and values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[usize], &[T]) {
        let span = self.indptr[i]..self.indptr[i + 1];
        (&self.indices[span.clone()], &self.data[span])
    }

    /// Raw `indptr` array.
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Raw column-index array (all rows concatenated).
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Raw value array, aligned with [`CsMat::indices`].
    pub fn values(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the stored values only. The sparsity pattern is
    /// untouched, so the CSR invariants cannot be violated; this is the
    /// hook for in-place numeric re-assembly of a fixed-pattern matrix.
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// FNV-1a fingerprint of the sparsity pattern — shape, `indptr` and
    /// `indices`, values excluded. Equal fingerprints are used to key
    /// symbolic-factorization caches; callers should still cross-check
    /// shape and nnz, which the factorization layer does.
    pub fn pattern_fingerprint(&self) -> u64 {
        fn mix(mut h: u64, x: usize) -> u64 {
            for b in (x as u64).to_le_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
            h
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        h = mix(h, self.rows);
        h = mix(h, self.cols);
        for &p in &self.indptr {
            h = mix(h, p);
        }
        for &j in &self.indices {
            h = mix(h, j);
        }
        h
    }

    /// Value at `(i, j)`, `zero()` if not stored. Binary-searches the row.
    pub fn get(&self, i: usize, j: usize) -> T {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(p) => vals[p],
            Err(_) => T::zero(),
        }
    }

    /// Matrix-vector product `y = A·x`.
    pub fn mul_vec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.cols, "mul_vec dimension mismatch");
        let mut y = vec![T::zero(); self.rows];
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            let mut acc = T::zero();
            for (&j, &v) in cols.iter().zip(vals) {
                acc += v * x[j];
            }
            y[i] = acc;
        }
        y
    }

    /// Transposed product `y = Aᵀ·x`.
    pub fn mul_vec_t(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.rows, "mul_vec_t dimension mismatch");
        let mut y = vec![T::zero(); self.cols];
        for i in 0..self.rows {
            let xi = x[i];
            if xi.is_zero() {
                continue;
            }
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                y[j] += v * xi;
            }
        }
        y
    }

    /// Returns the transpose as a new CSR matrix (equivalently: this matrix
    /// reinterpreted in CSC).
    pub fn transpose(&self) -> CsMat<T> {
        let mut counts = vec![0usize; self.cols + 1];
        for &j in &self.indices {
            counts[j + 1] += 1;
        }
        for j in 0..self.cols {
            counts[j + 1] += counts[j];
        }
        let mut indptr = counts.clone();
        let mut indices = vec![0usize; self.nnz()];
        let mut data = vec![T::zero(); self.nnz()];
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                let p = indptr[j];
                indices[p] = i;
                data[p] = v;
                indptr[j] += 1;
            }
        }
        // Shift back to get the real indptr.
        let mut real = vec![0usize; self.cols + 1];
        real[1..].copy_from_slice(&indptr[..self.cols]);
        CsMat {
            rows: self.cols,
            cols: self.rows,
            indptr: real,
            indices,
            data,
        }
    }

    /// Scales every entry by `k`.
    pub fn scale(&mut self, k: T) {
        for v in &mut self.data {
            *v = *v * k;
        }
    }

    /// Sum `A + B` (same shape).
    pub fn add(&self, other: &CsMat<T>) -> CsMat<T> {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let mut t = Triplets::with_capacity(self.rows, self.cols, self.nnz() + other.nnz());
        for m in [self, other] {
            for i in 0..m.rows {
                let (cols, vals) = m.row(i);
                for (&j, &v) in cols.iter().zip(vals) {
                    t.push(i, j, v);
                }
            }
        }
        t.to_csr()
    }

    /// Densifies (test/diagnostic helper).
    pub fn to_dense_with(&self, mut put: impl FnMut(usize, usize, T)) {
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                put(i, j, v);
            }
        }
    }

    /// Vertically stacks `self` on top of `other` (column counts must
    /// match).
    pub fn vstack(&self, other: &CsMat<T>) -> CsMat<T> {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut indptr = Vec::with_capacity(self.rows + other.rows + 1);
        indptr.extend_from_slice(&self.indptr);
        let offset = self.nnz();
        indptr.extend(other.indptr[1..].iter().map(|p| p + offset));
        let mut indices = Vec::with_capacity(self.nnz() + other.nnz());
        indices.extend_from_slice(&self.indices);
        indices.extend_from_slice(&other.indices);
        let mut data = Vec::with_capacity(self.nnz() + other.nnz());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        CsMat {
            rows: self.rows + other.rows,
            cols: self.cols,
            indptr,
            indices,
            data,
        }
    }

    /// Iterates over all stored `(row, col, value)` entries in row order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        (0..self.rows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter().zip(vals).map(move |(&j, &v)| (i, j, v))
        })
    }
}

impl CsMat<f64> {
    /// Conversion to the dense type for cross-checking against dense kernels.
    pub fn to_dense(&self) -> DMat {
        let mut m = DMat::zeros(self.rows, self.cols);
        self.to_dense_with(|i, j, v| m[(i, j)] = v);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_numeric::Complex;

    fn sample() -> CsMat<f64> {
        // [1 0 2]
        // [0 3 0]
        // [4 0 5]
        let mut t = Triplets::new(3, 3);
        for &(i, j, v) in &[
            (0, 0, 1.0),
            (0, 2, 2.0),
            (1, 1, 3.0),
            (2, 0, 4.0),
            (2, 2, 5.0),
        ] {
            t.push(i, j, v);
        }
        t.to_csr()
    }

    #[test]
    fn structure_queries() {
        let m = sample();
        assert_eq!(m.shape(), (3, 3));
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.get(2, 0), 4.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn mat_vec() {
        let m = sample();
        assert_eq!(m.mul_vec(&[1.0, 1.0, 1.0]), vec![3.0, 3.0, 9.0]);
        assert_eq!(m.mul_vec_t(&[1.0, 1.0, 1.0]), vec![5.0, 3.0, 7.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = sample();
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
        assert_eq!(m.transpose().get(0, 2), 4.0);
    }

    #[test]
    fn transpose_matches_mul_vec_t() {
        let m = sample();
        let x = [0.5, -1.0, 2.0];
        assert_eq!(m.transpose().mul_vec(&x), m.mul_vec_t(&x));
    }

    #[test]
    fn add_matrices() {
        let m = sample();
        let s = m.add(&m);
        assert_eq!(s.get(0, 0), 2.0);
        assert_eq!(s.get(2, 2), 10.0);
        assert_eq!(s.nnz(), 5);
    }

    #[test]
    fn identity_mul_is_identity_map() {
        let i: CsMat<f64> = CsMat::identity(4);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.mul_vec(&x), x.to_vec());
    }

    #[test]
    fn complex_matrix_works() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, Complex::new(1.0, 1.0));
        t.push(1, 0, Complex::J);
        let m = t.to_csr();
        let y = m.mul_vec(&[Complex::ONE, Complex::ZERO]);
        assert_eq!(y[0], Complex::new(1.0, 1.0));
        assert_eq!(y[1], Complex::J);
    }

    #[test]
    fn to_dense_matches() {
        let m = sample();
        let d = m.to_dense();
        assert_eq!(d[(2, 2)], 5.0);
        assert_eq!(d[(1, 0)], 0.0);
    }

    #[test]
    fn scale_in_place() {
        let mut m = sample();
        m.scale(2.0);
        assert_eq!(m.get(1, 1), 6.0);
    }

    #[test]
    fn vstack_stacks_rows() {
        let m = sample();
        let s = m.vstack(&m);
        assert_eq!(s.shape(), (6, 3));
        assert_eq!(s.nnz(), 10);
        assert_eq!(s.get(0, 0), 1.0);
        assert_eq!(s.get(3, 0), 1.0);
        assert_eq!(s.get(5, 2), 5.0);
        // Stacking with an empty matrix is identity-like.
        let empty = Triplets::<f64>::new(0, 3).to_csr();
        assert_eq!(m.vstack(&empty), m);
    }

    #[test]
    #[should_panic(expected = "columns not strictly ascending")]
    fn from_raw_validates_sorting() {
        CsMat::from_raw(1, 3, vec![0, 2], vec![2, 1], vec![1.0, 2.0]);
    }
}
