//! Scalar abstraction so sparse containers work for both real Jacobians and
//! complex admittance matrices.

use gm_numeric::Complex;
use std::fmt::Debug;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// Field-like scalar usable as a sparse matrix entry.
///
/// Implemented for `f64` (Jacobians, KKT systems) and [`Complex`]
/// (admittance matrices, phasor vectors).
pub trait Scalar:
    Copy
    + Debug
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + 'static
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Magnitude, used for pivot selection and norm computations.
    fn modulus(self) -> f64;
    /// True when the value equals the additive identity exactly.
    fn is_zero(self) -> bool {
        self == Self::zero()
    }
}

impl Scalar for f64 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn modulus(self) -> f64 {
        self.abs()
    }
}

impl Scalar for Complex {
    #[inline]
    fn zero() -> Self {
        Complex::ZERO
    }
    #[inline]
    fn one() -> Self {
        Complex::ONE
    }
    #[inline]
    fn modulus(self) -> f64 {
        self.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_scalar_contract() {
        assert_eq!(<f64 as Scalar>::zero(), 0.0);
        assert_eq!(<f64 as Scalar>::one(), 1.0);
        assert_eq!((-3.0f64).modulus(), 3.0);
        assert!(0.0f64.is_zero());
        assert!(!1.0f64.is_zero());
    }

    #[test]
    fn complex_scalar_contract() {
        assert_eq!(Complex::zero(), Complex::ZERO);
        assert_eq!(Complex::one(), Complex::ONE);
        assert_eq!(Complex::new(3.0, 4.0).modulus(), 5.0);
        assert!(Complex::ZERO.is_zero());
    }
}
