//! Sparse LU factorization (left-looking Gilbert–Peierls with partial
//! pivoting).
//!
//! The algorithm follows the structure of Davis' CSparse `cs_lu`: for each
//! column (in a fill-reducing order) a sparse triangular solve
//! `x = L \ A(:,q[k])` is performed, where the nonzero pattern of `x` is
//! discovered by depth-first search over the graph of the partially built
//! `L`. The pivot row is chosen by threshold partial pivoting: the diagonal
//! candidate is kept when it is within `pivot_tol` of the largest-magnitude
//! candidate, preserving sparsity on the diagonally dominant matrices power
//! systems produce.

use crate::csmat::CsMat;
use crate::order::Ordering;

/// Failure modes of the sparse factorization.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseLuError {
    /// No usable pivot in some column: the matrix is singular to working
    /// precision.
    Singular {
        /// Elimination step at which factorization failed.
        step: usize,
    },
    /// The matrix is not square.
    NotSquare {
        /// Actual shape.
        shape: (usize, usize),
    },
    /// A pattern-reuse refactorization could not reproduce the captured
    /// pivot sequence on the new values: the pivot quality degraded past
    /// the threshold-partial-pivoting criterion. Recover by running a
    /// fresh full analysis — [`crate::LuEngine`] does this
    /// automatically.
    RefactorUnstable {
        /// Elimination step at which the replay diverged.
        step: usize,
    },
}

impl std::fmt::Display for SparseLuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparseLuError::Singular { step } => {
                write!(f, "sparse matrix numerically singular at step {step}")
            }
            SparseLuError::NotSquare { shape } => {
                write!(f, "sparse LU requires a square matrix, got {shape:?}")
            }
            SparseLuError::RefactorUnstable { step } => {
                write!(
                    f,
                    "pattern-reuse refactorization unstable at step {step}; full re-analysis required"
                )
            }
        }
    }
}

impl std::error::Error for SparseLuError {}

/// Column-compressed factor storage (diagonal-first for `L`,
/// diagonal-last for `U`).
#[derive(Clone, Debug)]
pub(crate) struct CscFactor {
    pub(crate) colptr: Vec<usize>,
    pub(crate) rows: Vec<usize>,
    pub(crate) vals: Vec<f64>,
}

impl CscFactor {
    fn with_capacity(n: usize, cap: usize) -> Self {
        let mut colptr = Vec::with_capacity(n + 1);
        colptr.push(0);
        CscFactor {
            colptr,
            rows: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    pub(crate) fn close_col(&mut self) {
        self.colptr.push(self.rows.len());
    }

    pub(crate) fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let span = self.colptr[j]..self.colptr[j + 1];
        (&self.rows[span.clone()], &self.vals[span])
    }
}

/// Column-major access plan into a CSR matrix: for elimination step `k`
/// (column `q[k]`), `rows/src[colptr[k]..colptr[k+1]]` list the original
/// row indices, ascending, and the offsets of their values in the CSR
/// `data` array. Replaces the per-factorization transpose allocation and
/// lets a refactorization read fresh values straight out of the matrix.
#[derive(Clone, Debug)]
pub(crate) struct ColAccess {
    pub(crate) colptr: Vec<usize>,
    pub(crate) rows: Vec<usize>,
    pub(crate) src: Vec<usize>,
}

impl ColAccess {
    /// Builds the access plan for `a`'s columns taken in order `q`.
    /// Row indices within each column come out ascending — the same
    /// order `CsMat::transpose` produces — so factorizations driven by
    /// this plan are bit-identical to the transpose-based path.
    pub(crate) fn build(a: &CsMat<f64>, q: &[usize]) -> ColAccess {
        let n = a.rows();
        let nnz = a.nnz();
        // Count per original column, prefix-sum, then fill row-by-row so
        // each column's rows stay ascending.
        let mut head = vec![0usize; n + 1];
        for &j in a.indices() {
            head[j + 1] += 1;
        }
        for j in 0..n {
            head[j + 1] += head[j];
        }
        let col_of = head.clone();
        let mut next = head;
        let mut rows = vec![0usize; nnz];
        let mut src = vec![0usize; nnz];
        let indptr = a.indptr();
        let indices = a.indices();
        for i in 0..n {
            for p in indptr[i]..indptr[i + 1] {
                let j = indices[p];
                rows[next[j]] = i;
                src[next[j]] = p;
                next[j] += 1;
            }
        }
        // Re-order columns into elimination order `q` so step `k` reads
        // a contiguous span.
        let mut colptr = Vec::with_capacity(n + 1);
        let mut qrows = Vec::with_capacity(nnz);
        let mut qsrc = Vec::with_capacity(nnz);
        colptr.push(0);
        for &col in q {
            let span = col_of[col]..col_of[col + 1];
            qrows.extend_from_slice(&rows[span.clone()]);
            qsrc.extend_from_slice(&src[span]);
            colptr.push(qrows.len());
        }
        ColAccess {
            colptr,
            rows: qrows,
            src: qsrc,
        }
    }

    pub(crate) fn col(&self, k: usize) -> (&[usize], &[usize]) {
        let span = self.colptr[k]..self.colptr[k + 1];
        (&self.rows[span.clone()], &self.src[span])
    }
}

/// Structure captured during an analysis factorization, consumed by
/// [`crate::SymbolicLu`]: the per-step reach patterns in DFS postorder,
/// exactly as the numeric loop iterates them. Because the stored factors
/// keep explicit zeros (see [`factor_core`]), the pattern together with
/// the pivot permutation fully determines the `L`/`U` fill structure.
#[derive(Clone, Debug, Default)]
pub(crate) struct PatternCapture {
    pub(crate) pat_ptr: Vec<usize>,
    pub(crate) pat_rows: Vec<usize>,
}

/// A sparse LU factorization `A[:, q] = P⁻¹ L U` usable for repeated solves.
#[derive(Clone, Debug)]
pub struct SparseLu {
    pub(crate) n: usize,
    pub(crate) l: CscFactor,
    pub(crate) u: CscFactor,
    /// `pinv[original_row] = pivot position`.
    pub(crate) pinv: Vec<usize>,
    /// Column order: column `q[k]` eliminated at step `k`.
    pub(crate) q: Vec<usize>,
}

impl SparseLu {
    /// Factors with the default ordering ([`Ordering::Amd`]) and
    /// pivot threshold 0.1.
    pub fn factor(a: &CsMat<f64>) -> Result<Self, SparseLuError> {
        Self::factor_with(a, Ordering::default(), 0.1)
    }

    /// Factors with explicit ordering and threshold-partial-pivoting
    /// tolerance in `(0, 1]` (1.0 = strict partial pivoting).
    pub fn factor_with(
        a: &CsMat<f64>,
        ordering: Ordering,
        pivot_tol: f64,
    ) -> Result<Self, SparseLuError> {
        if a.rows() != a.cols() {
            return Err(SparseLuError::NotSquare { shape: a.shape() });
        }
        let q = ordering.permutation(a).map_err(
            |crate::order::OrderingError::NotSquare { shape }| SparseLuError::NotSquare { shape },
        )?;
        let acc = ColAccess::build(a, &q);
        factor_core(a.rows(), a.nnz(), &acc, a.values(), q, pivot_tol, None)
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of nonzeros in `L` plus `U` (fill metric).
    pub fn factor_nnz(&self) -> usize {
        self.l.rows.len() + self.u.rows.len()
    }

    /// Solves `A·x = b`, allocating the result. Thin wrapper over
    /// [`SparseLu::solve_in_place`]; hot loops should own their buffers
    /// and call that directly.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut out = b.to_vec();
        let mut scratch = vec![0.0f64; self.n];
        self.solve_in_place(&mut out, &mut scratch);
        out
    }

    /// Solves `A·x = b` in place: `b` holds the right-hand side on entry
    /// and the solution on return. `scratch` is caller-owned workspace of
    /// length `n` (contents ignored on entry, clobbered on return), so
    /// repeated solves allocate nothing.
    ///
    /// # Panics
    /// Panics when `b` or `scratch` is not of length `n`.
    pub fn solve_in_place(&self, b: &mut [f64], scratch: &mut [f64]) {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        assert_eq!(scratch.len(), self.n, "scratch length mismatch");
        gm_telemetry::counter_add("sparse.lu.solves", 1);
        // x = P b
        let x = scratch;
        for (orig, &pk) in self.pinv.iter().enumerate() {
            x[pk] = b[orig];
        }
        // L solve (unit diagonal first entry per column).
        for j in 0..self.n {
            let (rows, vals) = self.l.col(j);
            let xj = x[j];
            if xj != 0.0 {
                for (&r, &v) in rows.iter().zip(vals).skip(1) {
                    x[r] -= v * xj;
                }
            }
        }
        // U solve (diagonal last entry per column).
        for j in (0..self.n).rev() {
            let (rows, vals) = self.u.col(j);
            let last = rows.len() - 1;
            debug_assert_eq!(rows[last], j);
            x[j] /= vals[last];
            let xj = x[j];
            if xj != 0.0 {
                for (&r, &v) in rows[..last].iter().zip(&vals[..last]) {
                    x[r] -= v * xj;
                }
            }
        }
        // Undo the column permutation: out[q[k]] = x[k].
        for (k, &qk) in self.q.iter().enumerate() {
            b[qk] = x[k];
        }
    }

    /// Solves `A·X = B` for `nrhs` right-hand sides in place. `panel` is a
    /// structure-of-arrays layout over the right-hand sides: entry `i` of
    /// side `s` lives at `panel[i * nrhs + s]`, so all lanes of one row
    /// are contiguous and the triangular sweeps stream a dense AXPY over
    /// the lane block per factor nonzero (SIMD-friendly, one pass over
    /// `L`/`U` regardless of `nrhs`). `scratch` is caller-owned workspace
    /// of length `n * nrhs + nrhs` (contents ignored on entry).
    ///
    /// Bitwise contract: the result equals `nrhs` independent
    /// [`SparseLu::solve_in_place`] calls on the de-interleaved columns —
    /// including the `±0.0` edge cases, which is why the mixed-lane path
    /// below keeps the per-lane skip-on-zero of the single-RHS sweep
    /// (an unconditional `x -= v·0.0` could flip a `-0.0` to `+0.0`).
    /// Property-tested in `tests/solve_many_props.rs`.
    ///
    /// # Panics
    /// Panics when `nrhs` is zero or the slice lengths disagree with
    /// `n * nrhs` / `n * nrhs + nrhs`.
    pub fn solve_many_in_place(&self, panel: &mut [f64], nrhs: usize, scratch: &mut [f64]) {
        assert!(nrhs > 0, "at least one right-hand side");
        assert_eq!(panel.len(), self.n * nrhs, "panel length mismatch");
        assert_eq!(
            scratch.len(),
            self.n * nrhs + nrhs,
            "scratch length mismatch"
        );
        gm_telemetry::counter_add("sparse.lu.solves", nrhs as u64);
        let (x, lanes) = scratch.split_at_mut(self.n * nrhs);
        // X = P B, lane blocks move wholesale.
        for (orig, &pk) in self.pinv.iter().enumerate() {
            x[pk * nrhs..(pk + 1) * nrhs].copy_from_slice(&panel[orig * nrhs..(orig + 1) * nrhs]);
        }
        // L solve (unit diagonal first entry per column).
        for j in 0..self.n {
            let (rows, vals) = self.l.col(j);
            lanes.copy_from_slice(&x[j * nrhs..(j + 1) * nrhs]);
            let live = lanes.iter().filter(|v| **v != 0.0).count();
            if live == 0 {
                continue;
            }
            if live == nrhs {
                // Every lane active: blocked dense AXPY over the lane block.
                for (&r, &v) in rows.iter().zip(vals).skip(1) {
                    axpy_lane_blocked(&mut x[r * nrhs..(r + 1) * nrhs], lanes, v);
                }
            } else {
                // Mixed lanes: keep the single-RHS skip-on-zero per lane.
                for (&r, &v) in rows.iter().zip(vals).skip(1) {
                    for (xr, &xj) in x[r * nrhs..(r + 1) * nrhs].iter_mut().zip(lanes.iter()) {
                        if xj != 0.0 {
                            *xr -= v * xj;
                        }
                    }
                }
            }
        }
        // U solve (diagonal last entry per column).
        for j in (0..self.n).rev() {
            let (rows, vals) = self.u.col(j);
            let last = rows.len() - 1;
            debug_assert_eq!(rows[last], j);
            let d = vals[last];
            for (xj, lane) in x[j * nrhs..(j + 1) * nrhs].iter_mut().zip(lanes.iter_mut()) {
                *xj /= d;
                *lane = *xj;
            }
            let live = lanes.iter().filter(|v| **v != 0.0).count();
            if live == 0 {
                continue;
            }
            if live == nrhs {
                for (&r, &v) in rows[..last].iter().zip(&vals[..last]) {
                    axpy_lane_blocked(&mut x[r * nrhs..(r + 1) * nrhs], lanes, v);
                }
            } else {
                for (&r, &v) in rows[..last].iter().zip(&vals[..last]) {
                    for (xr, &xj) in x[r * nrhs..(r + 1) * nrhs].iter_mut().zip(lanes.iter()) {
                        if xj != 0.0 {
                            *xr -= v * xj;
                        }
                    }
                }
            }
        }
        // Undo the column permutation: out[q[k]] = x[k], lane blocks.
        for (k, &qk) in self.q.iter().enumerate() {
            panel[qk * nrhs..(qk + 1) * nrhs].copy_from_slice(&x[k * nrhs..(k + 1) * nrhs]);
        }
    }
}

/// Lane width for the blocked panel AXPY: two 256-bit `f64x4` vectors'
/// worth, fixed at compile time so the inner loop is fully unrolled and
/// auto-vectorized without per-iteration slice-length checks.
const PANEL_LANE: usize = 8;

/// `xrow -= v * lanes`, elementwise over the lane block, in fixed-width
/// chunks plus a scalar remainder. Each lane's update is an independent
/// fused-order `mul`/`sub` pair, so the result is bit-identical to the
/// straight-line scalar loop it replaces.
#[inline(always)]
fn axpy_lane_blocked(xrow: &mut [f64], lanes: &[f64], v: f64) {
    let mut xb = xrow.chunks_exact_mut(PANEL_LANE);
    let mut lb = lanes.chunks_exact(PANEL_LANE);
    for (xc, lc) in (&mut xb).zip(&mut lb) {
        for s in 0..PANEL_LANE {
            xc[s] -= v * lc[s];
        }
    }
    for (xr, &xj) in xb.into_remainder().iter_mut().zip(lb.remainder()) {
        *xr -= v * xj;
    }
}

/// The left-looking Gilbert–Peierls elimination loop shared by the
/// one-shot [`SparseLu::factor_with`] path and the symbolic-capturing
/// [`crate::SymbolicLu::analyze`] path. When `capture` is provided, the
/// per-step reach patterns are recorded for later pattern-reuse
/// refactorizations; the numeric result is bit-identical either way.
///
/// Every reached pattern entry is stored, including exact zeros — the
/// fill structure depends only on the sparsity pattern and the pivot
/// sequence, never on value cancellations, which is what lets a
/// refactorization replay the structure without re-running the DFS.
pub(crate) fn factor_core(
    n: usize,
    nnz: usize,
    acc: &ColAccess,
    avals: &[f64],
    q: Vec<usize>,
    pivot_tol: f64,
    mut capture: Option<&mut PatternCapture>,
) -> Result<SparseLu, SparseLuError> {
    gm_telemetry::counter_add("sparse.lu.factorizations", 1);
    let mut l = CscFactor::with_capacity(n, 4 * nnz.max(n));
    let mut u = CscFactor::with_capacity(n, 4 * nnz.max(n));
    let mut pinv = vec![usize::MAX; n];

    // Workspaces.
    let mut x = vec![0.0f64; n];
    let mut marked = vec![false; n];
    let mut pattern: Vec<usize> = Vec::with_capacity(n); // topological order (reverse)
    let mut dfs_stack: Vec<(usize, usize)> = Vec::with_capacity(n);

    if let Some(cap) = capture.as_deref_mut() {
        cap.pat_ptr.clear();
        cap.pat_ptr.push(0);
        cap.pat_rows.clear();
    }

    for k in 0..n {
        let col = q[k];
        let (bcols, bsrc) = acc.col(k); // A(:, col), rows ascending

        // --- Symbolic: pattern of x = L \ A(:,col) via DFS. ---
        pattern.clear();
        for &i in bcols {
            if !marked[i] {
                dfs_stack.push((i, 0));
                marked[i] = true;
                while let Some(top) = dfs_stack.last_mut() {
                    let node = top.0;
                    let jcol = pinv[node];
                    let mut next_child = None;
                    if jcol != usize::MAX {
                        let (lrows, _) = l.col(jcol);
                        while top.1 < lrows.len() {
                            let r = lrows[top.1];
                            top.1 += 1;
                            if !marked[r] {
                                next_child = Some(r);
                                break;
                            }
                        }
                    }
                    match next_child {
                        Some(r) => {
                            marked[r] = true;
                            dfs_stack.push((r, 0));
                        }
                        None => {
                            // Leaf or children exhausted: emit postorder.
                            dfs_stack.pop();
                            pattern.push(node);
                        }
                    }
                }
            }
        }
        // `pattern` is now in topological order for the numeric solve
        // when traversed in reverse.
        if let Some(cap) = capture.as_deref_mut() {
            cap.pat_rows.extend_from_slice(&pattern);
            cap.pat_ptr.push(cap.pat_rows.len());
        }

        // --- Numeric: scatter b, then eliminate. ---
        for &i in &pattern {
            x[i] = 0.0;
        }
        for (&i, &p) in bcols.iter().zip(bsrc) {
            x[i] = avals[p];
        }
        for idx in (0..pattern.len()).rev() {
            let i = pattern[idx];
            let jcol = pinv[i];
            if jcol == usize::MAX {
                continue;
            }
            // L column jcol is diagonal-first with unit diagonal.
            let (lrows, lvals) = l.col(jcol);
            let xi = x[i]; // already fully updated (topological order)
            if xi != 0.0 {
                for (&r, &lv) in lrows.iter().zip(lvals).skip(1) {
                    x[r] -= lv * xi;
                }
            }
        }

        // --- Pivot selection (threshold partial pivoting). ---
        let mut ipiv = usize::MAX;
        let mut amax = 0.0f64;
        for &i in &pattern {
            if pinv[i] == usize::MAX {
                let t = x[i].abs();
                if t > amax {
                    amax = t;
                    ipiv = i;
                }
            }
        }
        if ipiv == usize::MAX || amax <= 0.0 {
            // Clean up marks before returning.
            for &i in &pattern {
                marked[i] = false;
            }
            return Err(SparseLuError::Singular { step: k });
        }
        // Prefer the diagonal candidate when acceptable.
        if pinv[col] == usize::MAX && x[col].abs() >= pivot_tol * amax && x[col] != 0.0 {
            ipiv = col;
        }
        let pivot = x[ipiv];

        // --- Store U column k (rows already pivoted), diagonal last.
        // Exact zeros are kept: structure must not depend on values. ---
        for &i in &pattern {
            if pinv[i] != usize::MAX {
                u.rows.push(pinv[i]);
                u.vals.push(x[i]);
            }
        }
        u.rows.push(k);
        u.vals.push(pivot);
        u.close_col();

        // --- Store L column k (unpivoted rows), unit diagonal first. ---
        pinv[ipiv] = k;
        l.rows.push(ipiv);
        l.vals.push(1.0);
        for &i in &pattern {
            if pinv[i] == usize::MAX {
                l.rows.push(i);
                l.vals.push(x[i] / pivot);
            }
        }
        l.close_col();

        for &i in &pattern {
            marked[i] = false;
        }
    }

    // Rewrite L's row indices into pivot order so solves are plain
    // triangular sweeps.
    for r in &mut l.rows {
        *r = pinv[*r];
    }
    Ok(SparseLu { n, l, u, pinv, q })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplets::Triplets;
    use gm_numeric::{DMat, DenseLu};

    fn residual_inf(a: &CsMat<f64>, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.mul_vec(x);
        ax.iter()
            .zip(b)
            .fold(0.0f64, |m, (axi, bi)| m.max((axi - bi).abs()))
    }

    fn dense_random(n: usize, density: f64, seed: u64) -> CsMat<f64> {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64, s)
        };
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            for j in 0..n {
                let (u, _) = next();
                if i == j {
                    t.push(i, j, 10.0 + u);
                } else if u < density {
                    let (v, _) = next();
                    t.push(i, j, v - 0.5);
                }
            }
        }
        t.to_csr()
    }

    #[test]
    fn identity_solve() {
        let a: CsMat<f64> = CsMat::identity(5);
        let lu = SparseLu::factor(&a).unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(lu.solve(&b), b);
    }

    #[test]
    fn small_known_system() {
        // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 2.0);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        t.push(1, 1, 3.0);
        let a = t.to_csr();
        let lu = SparseLu::factor(&a).unwrap();
        let x = lu.solve(&[5.0, 10.0]);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn permutation_required_zero_diagonal() {
        // Anti-diagonal matrix forces row pivoting.
        let mut t = Triplets::new(3, 3);
        t.push(0, 2, 1.0);
        t.push(1, 1, 2.0);
        t.push(2, 0, 3.0);
        let a = t.to_csr();
        let lu = SparseLu::factor_with(&a, Ordering::Natural, 1.0).unwrap();
        let x = lu.solve(&[3.0, 4.0, 6.0]);
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!((x[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 1, 2.0);
        t.push(1, 0, 2.0);
        t.push(1, 1, 4.0);
        let a = t.to_csr();
        assert!(matches!(
            SparseLu::factor(&a),
            Err(SparseLuError::Singular { .. })
        ));
    }

    #[test]
    fn structurally_singular_detected() {
        let mut t = Triplets::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        // Row/col 2 empty.
        let a = t.to_csr();
        assert!(SparseLu::factor(&a).is_err());
    }

    #[test]
    fn not_square_rejected() {
        let t: Triplets<f64> = Triplets::new(2, 3);
        assert!(matches!(
            SparseLu::factor(&t.to_csr()),
            Err(SparseLuError::NotSquare { .. })
        ));
    }

    #[test]
    fn matches_dense_lu_on_random_matrices() {
        for seed in 1..6u64 {
            let n = 30;
            let a = dense_random(n, 0.2, seed * 7919);
            let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
            let xs = SparseLu::factor(&a).unwrap().solve(&b);
            let mut d = DMat::zeros(n, n);
            a.to_dense_with(|i, j, v| d[(i, j)] = v);
            let xd = DenseLu::factor(&d).unwrap().solve(&b);
            for (s, dv) in xs.iter().zip(&xd) {
                assert!((s - dv).abs() < 1e-9, "seed {seed}: {s} vs {dv}");
            }
            assert!(residual_inf(&a, &xs, &b) < 1e-9);
        }
    }

    #[test]
    fn orderings_agree() {
        let a = dense_random(40, 0.15, 42);
        let b: Vec<f64> = (0..40).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let x_nat = SparseLu::factor_with(&a, Ordering::Natural, 0.1)
            .unwrap()
            .solve(&b);
        let x_md = SparseLu::factor_with(&a, Ordering::MinDegree, 0.1)
            .unwrap()
            .solve(&b);
        for (u, v) in x_nat.iter().zip(&x_md) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn min_degree_reduces_fill_on_grid_like_matrix() {
        // 2D 9-point-ish mesh gives meaningful fill differences.
        let m = 12usize;
        let n = m * m;
        let mut t = Triplets::new(n, n);
        for r in 0..m {
            for c in 0..m {
                let i = r * m + c;
                t.push(i, i, 8.0);
                if c + 1 < m {
                    t.push(i, i + 1, -1.0);
                    t.push(i + 1, i, -1.0);
                }
                if r + 1 < m {
                    t.push(i, i + m, -1.0);
                    t.push(i + m, i, -1.0);
                }
            }
        }
        let a = t.to_csr();
        let nat = SparseLu::factor_with(&a, Ordering::Natural, 0.1).unwrap();
        let md = SparseLu::factor_with(&a, Ordering::MinDegree, 0.1).unwrap();
        assert!(
            md.factor_nnz() < nat.factor_nnz(),
            "min-degree fill {} !< natural fill {}",
            md.factor_nnz(),
            nat.factor_nnz()
        );
        // Both must still solve correctly.
        let b = vec![1.0; n];
        assert!(residual_inf(&a, &md.solve(&b), &b) < 1e-9);
        assert!(residual_inf(&a, &nat.solve(&b), &b) < 1e-9);
    }

    #[test]
    fn solve_many_matches_repeated_single_solves_bitwise() {
        let n = 30;
        let a = dense_random(n, 0.25, 4242);
        let lu = SparseLu::factor(&a).unwrap();
        for nrhs in [1usize, 2, 3, 7] {
            // Interleaved panel with some exact-zero and negative-zero
            // lanes to exercise the skip-on-zero paths.
            let mut panel = vec![0.0f64; n * nrhs];
            let mut singles: Vec<Vec<f64>> = vec![vec![0.0; n]; nrhs];
            for i in 0..n {
                for s in 0..nrhs {
                    let v = match (i + s) % 4 {
                        0 => ((i * 7 + s * 3) as f64).sin(),
                        1 => 0.0,
                        2 => -0.0,
                        _ => -((i + 2 * s) as f64).cos(),
                    };
                    panel[i * nrhs + s] = v;
                    singles[s][i] = v;
                }
            }
            let mut scratch = vec![0.0f64; n * nrhs + nrhs];
            lu.solve_many_in_place(&mut panel, nrhs, &mut scratch);
            let mut ws = vec![0.0f64; n];
            for (s, b) in singles.iter_mut().enumerate() {
                lu.solve_in_place(b, &mut ws);
                for i in 0..n {
                    assert_eq!(
                        panel[i * nrhs + s].to_bits(),
                        b[i].to_bits(),
                        "nrhs {nrhs}, lane {s}, row {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn solve_many_counts_one_solve_per_lane() {
        let reg = gm_telemetry::Registry::new();
        let _g = reg.install();
        let a: CsMat<f64> = CsMat::identity(4);
        let lu = SparseLu::factor(&a).unwrap();
        let mut panel = vec![1.0f64; 4 * 3];
        let mut scratch = vec![0.0f64; 4 * 3 + 3];
        lu.solve_many_in_place(&mut panel, 3, &mut scratch);
        assert_eq!(reg.counter_value("sparse.lu.solves"), 3);
        assert_eq!(panel, vec![1.0; 12]);
    }

    #[test]
    fn repeated_solves_reuse_factorization() {
        let a = dense_random(20, 0.3, 99);
        let lu = SparseLu::factor(&a).unwrap();
        for k in 0..5 {
            let b: Vec<f64> = (0..20).map(|i| ((i + k) as f64).cos()).collect();
            let x = lu.solve(&b);
            assert!(residual_inf(&a, &x, &b) < 1e-9);
        }
    }
}
