//! Low-rank compensation of a factored sparse system (Sherman–Morrison /
//! Woodbury).
//!
//! A branch outage changes the admittance matrix — and the power-flow
//! Jacobian evaluated at a fixed state — only in the rows and columns of
//! the two endpoint buses: a rank ≤ 4 update. Rather than refactoring the
//! modified matrix per outage, the classic compensation method (Alsac,
//! Stott, Tinney) solves against the *base* factorization plus a small
//! dense correction:
//!
//! ```text
//! A' = A + U·C·Vᵀ           U = e-columns of `rows`, V = e-columns of `cols`
//! A'⁻¹·b = y − W·M⁻¹·C·Vᵀ·y  with  y = A⁻¹·b,  W = A⁻¹·U,
//!                                 M = I + C·Vᵀ·W   (p×p, p = rows.len())
//! ```
//!
//! Construction pays `p` sparse solves (the `W` columns) and one dense
//! `p×p` factorization; every subsequent solve costs one base solve plus
//! `O(n·p)` for the correction — no refactorization, no new pattern.
//!
//! The capacitance matrix `M` is where ill-conditioning shows up: an
//! update that (nearly) singularizes `A'` — e.g. removing a bridge branch
//! that islands the network — drives `M` (nearly) singular. Construction
//! detects that and returns [`CompensateError::IllConditioned`] so the
//! caller can fall back to a fresh factorization instead of propagating
//! garbage.

use crate::lu::SparseLu;
use gm_numeric::{DMat, DenseLu};

/// Reciprocal-condition floor for the capacitance matrix: below this the
/// compensated solve is numerically untrustworthy and the caller must
/// refactor. The floor is deliberately conservative — a false reject
/// costs one fresh factorization, a false accept corrupts a study.
const RCOND_MIN: f64 = 1e-10;

/// Why a compensated solver could not be built.
#[derive(Clone, Debug, PartialEq)]
pub enum CompensateError {
    /// No update entries were supplied.
    EmptyUpdate,
    /// A row/column index lies outside the factored dimension.
    OutOfBounds { index: usize, dim: usize },
    /// `block` is not `rows.len() × cols.len()`.
    ShapeMismatch { expected: usize, got: usize },
    /// The capacitance matrix is singular or near-singular: the update
    /// (nearly) singularizes the modified system (e.g. an islanding
    /// outage). Fall back to a fresh factorization path.
    IllConditioned { rcond: f64 },
}

impl std::fmt::Display for CompensateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompensateError::EmptyUpdate => write!(f, "empty low-rank update"),
            CompensateError::OutOfBounds { index, dim } => {
                write!(f, "update index {index} out of bounds for dimension {dim}")
            }
            CompensateError::ShapeMismatch { expected, got } => {
                write!(f, "update block has {got} entries, expected {expected}")
            }
            CompensateError::IllConditioned { rcond } => {
                write!(
                    f,
                    "capacitance matrix ill-conditioned (rcond ≈ {rcond:.2e})"
                )
            }
        }
    }
}

impl std::error::Error for CompensateError {}

/// A factored system `A` composed with a low-rank update `U·C·Vᵀ`,
/// solvable without refactoring `A`.
///
/// Borrows the base factorization immutably, so one base factor can back
/// many concurrent compensated solvers (e.g. parallel sweep workers each
/// compensating a different outage).
pub struct CompensatedLu<'a> {
    base: &'a SparseLu,
    /// Row indices carrying update entries (the columns of `U`).
    rows: Vec<usize>,
    /// Column indices carrying update entries (the columns of `V`).
    cols: Vec<usize>,
    /// Dense update block `C`, `rows.len() × cols.len()`, row-major.
    block: Vec<f64>,
    /// `W = A⁻¹·U`, one length-`n` column per entry of `rows`.
    w: DMat,
    /// Factored capacitance matrix `M = I + C·Vᵀ·W`.
    m: DenseLu,
}

impl<'a> CompensatedLu<'a> {
    /// Builds a compensated solver for `A + Δ` where `Δ` is dense only on
    /// `rows × cols`: `Δ[rows[a]][cols[b]] = block[a·cols.len() + b]`.
    ///
    /// Returns [`CompensateError::IllConditioned`] when the capacitance
    /// matrix is (near-)singular — the signal that the update cannot be
    /// compensated and the caller must refactor from scratch.
    pub fn new(
        base: &'a SparseLu,
        rows: &[usize],
        cols: &[usize],
        block: &[f64],
    ) -> Result<Self, CompensateError> {
        let n = base.dim();
        let (p, q) = (rows.len(), cols.len());
        if p == 0 || q == 0 {
            return Err(CompensateError::EmptyUpdate);
        }
        if block.len() != p * q {
            return Err(CompensateError::ShapeMismatch {
                expected: p * q,
                got: block.len(),
            });
        }
        if let Some(&bad) = rows.iter().chain(cols).find(|&&i| i >= n) {
            return Err(CompensateError::OutOfBounds { index: bad, dim: n });
        }
        gm_telemetry::counter_add("sparse.compensate.builds", 1);

        // W = A⁻¹·U: one sparse solve per update row.
        let mut w = DMat::zeros(n, p);
        let mut scratch = vec![0.0f64; n];
        for (a, &r) in rows.iter().enumerate() {
            let col = w.col_mut(a);
            col[r] = 1.0;
            base.solve_in_place(col, &mut scratch);
        }

        // M = I_p + C·(Vᵀ·W);  (Vᵀ·W)[b][a] = W[cols[b]][a].
        let mut m = DMat::identity(p);
        for a in 0..p {
            for i in 0..p {
                let mut acc = 0.0;
                for (b, &c) in cols.iter().enumerate() {
                    acc += block[a * q + b] * w.col(i)[c];
                }
                m.col_mut(i)[a] += acc;
            }
        }
        let m = match DenseLu::factor(&m) {
            Ok(f) => f,
            Err(_) => {
                gm_telemetry::counter_add("sparse.compensate.rejected", 1);
                return Err(CompensateError::IllConditioned { rcond: 0.0 });
            }
        };
        let rcond = m.rcond_estimate();
        if !rcond.is_finite() || rcond < RCOND_MIN {
            gm_telemetry::counter_add("sparse.compensate.rejected", 1);
            return Err(CompensateError::IllConditioned { rcond });
        }

        Ok(CompensatedLu {
            base,
            rows: rows.to_vec(),
            cols: cols.to_vec(),
            block: block.to_vec(),
            w,
            m,
        })
    }

    /// Rank-1 convenience: `A' = A + delta·e_row·e_colᵀ` (a single changed
    /// entry), the textbook Sherman–Morrison case.
    pub fn rank1(
        base: &'a SparseLu,
        row: usize,
        col: usize,
        delta: f64,
    ) -> Result<Self, CompensateError> {
        Self::new(base, &[row], &[col], &[delta])
    }

    /// Rank of the update (number of compensated rows).
    pub fn update_rank(&self) -> usize {
        self.rows.len()
    }

    /// Solves `(A + U·C·Vᵀ)·x = b` in place against the base
    /// factorization. `scratch` is caller-owned workspace of length `n`
    /// (clobbered), as in [`SparseLu::solve_in_place`].
    pub fn solve_in_place(&self, b: &mut [f64], scratch: &mut [f64]) {
        gm_telemetry::counter_add("sparse.compensate.solves", 1);
        let (p, q) = (self.rows.len(), self.cols.len());
        // y = A⁻¹·b (in place).
        self.base.solve_in_place(b, scratch);
        // t = C·Vᵀ·y.
        let mut t = vec![0.0f64; p];
        for (a, ta) in t.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (bi, &c) in self.cols.iter().enumerate() {
                acc += self.block[a * q + bi] * b[c];
            }
            *ta = acc;
        }
        // z = M⁻¹·t, then x = y − W·z.
        let z = self.m.solve(&t);
        for (a, &za) in z.iter().enumerate() {
            if za != 0.0 {
                let col = self.w.col(a);
                for (xi, &wi) in b.iter_mut().zip(col) {
                    *xi -= wi * za;
                }
            }
        }
    }

    /// Allocating wrapper over [`CompensatedLu::solve_in_place`].
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut out = b.to_vec();
        let mut scratch = vec![0.0f64; self.base.dim()];
        self.solve_in_place(&mut out, &mut scratch);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Triplets;

    fn dense_5x5() -> crate::CsMat<f64> {
        let mut t = Triplets::new(5, 5);
        for i in 0..5 {
            t.push(i, i, 6.0 + i as f64);
        }
        t.push(0, 1, 1.5);
        t.push(1, 0, -0.5);
        t.push(1, 3, 2.0);
        t.push(2, 4, -1.0);
        t.push(3, 2, 0.7);
        t.push(4, 0, 0.3);
        t.to_csr()
    }

    fn with_delta(
        a: &crate::CsMat<f64>,
        rows: &[usize],
        cols: &[usize],
        block: &[f64],
    ) -> crate::CsMat<f64> {
        let n = a.rows();
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            let (js, vs) = a.row(i);
            for (&j, &v) in js.iter().zip(vs) {
                t.push(i, j, v);
            }
        }
        for (ai, &r) in rows.iter().enumerate() {
            for (bi, &c) in cols.iter().enumerate() {
                t.push(r, c, block[ai * cols.len() + bi]);
            }
        }
        t.to_csr()
    }

    #[test]
    fn rank1_matches_fresh_factorization() {
        let a = dense_5x5();
        let base = SparseLu::factor(&a).unwrap();
        let comp = CompensatedLu::rank1(&base, 1, 3, -1.2).unwrap();
        let fresh = SparseLu::factor(&with_delta(&a, &[1], &[3], &[-1.2])).unwrap();
        let b = [1.0, -2.0, 0.5, 3.0, -0.25];
        let xc = comp.solve(&b);
        let xf = fresh.solve(&b);
        for (c, f) in xc.iter().zip(&xf) {
            assert!((c - f).abs() < 1e-12, "{c} vs {f}");
        }
    }

    #[test]
    fn block_update_matches_fresh_factorization() {
        let a = dense_5x5();
        let base = SparseLu::factor(&a).unwrap();
        let rows = [0, 2, 4];
        let cols = [0, 2, 4];
        // A symmetric-ish bordered block like an outage delta.
        let block = [-1.0, 0.4, 0.0, 0.4, -2.0, 0.6, 0.0, 0.6, -0.8];
        let comp = CompensatedLu::new(&base, &rows, &cols, &block).unwrap();
        assert_eq!(comp.update_rank(), 3);
        let fresh = SparseLu::factor(&with_delta(&a, &rows, &cols, &block)).unwrap();
        let b = [0.5, 1.0, -1.0, 2.0, 0.1];
        let xc = comp.solve(&b);
        let xf = fresh.solve(&b);
        for (c, f) in xc.iter().zip(&xf) {
            assert!((c - f).abs() < 1e-12, "{c} vs {f}");
        }
    }

    #[test]
    fn singularizing_update_is_rejected() {
        // A = I₂; removing the (0,0) entry makes A' singular, which must
        // surface as an ill-conditioned capacitance matrix.
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        let a = t.to_csr();
        let base = SparseLu::factor(&a).unwrap();
        match CompensatedLu::rank1(&base, 0, 0, -1.0) {
            Err(CompensateError::IllConditioned { .. }) => {}
            Err(e) => panic!("expected IllConditioned, got {e:?}"),
            Ok(_) => panic!("expected IllConditioned, got a factor"),
        }
    }

    #[test]
    fn near_singular_update_is_rejected() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        let a = t.to_csr();
        let base = SparseLu::factor(&a).unwrap();
        match CompensatedLu::rank1(&base, 0, 0, -1.0 + 1e-14) {
            Err(CompensateError::IllConditioned { .. }) => {}
            Err(e) => panic!("expected IllConditioned, got {e:?}"),
            Ok(_) => panic!("expected IllConditioned, got a factor"),
        }
    }

    #[test]
    fn shape_and_bounds_are_validated() {
        let a = dense_5x5();
        let base = SparseLu::factor(&a).unwrap();
        assert_eq!(
            CompensatedLu::new(&base, &[], &[], &[]).err(),
            Some(CompensateError::EmptyUpdate)
        );
        assert_eq!(
            CompensatedLu::new(&base, &[0], &[9], &[1.0]).err(),
            Some(CompensateError::OutOfBounds { index: 9, dim: 5 })
        );
        assert_eq!(
            CompensatedLu::new(&base, &[0, 1], &[0], &[1.0]).err(),
            Some(CompensateError::ShapeMismatch {
                expected: 2,
                got: 1
            })
        );
    }
}
