//! # gm-sparse
//!
//! Sparse matrix storage and factorization for GridMind-RS.
//!
//! Power system matrices are famously sparse: a bus admittance matrix has a
//! handful of nonzeros per row regardless of system size, and the Newton
//! power-flow Jacobian inherits that structure. This crate provides:
//!
//! - [`Triplets`] — coordinate-format assembly with duplicate summing, the
//!   natural target for Ybus/Jacobian stamping;
//! - [`CsMat`] — compressed sparse row storage, generic over [`Scalar`]
//!   (real `f64` or [`gm_numeric::Complex`]), with mat-vec products,
//!   transposition, and structural queries;
//! - [`SparseLu`] — a left-looking Gilbert–Peierls LU factorization with
//!   partial pivoting and an optional greedy minimum-degree column
//!   preordering ([`order`]), property-tested against the dense
//!   factorization in `gm-numeric`.
//!
//! Everything here is deterministic: given the same matrix, assembly,
//! ordering, and factorization produce bit-identical results, which the
//! agent layer relies on for reproducible audits.
//!
//! ```
//! use gm_sparse::{SparseLu, Triplets};
//!
//! // Assemble [[4, 1], [1, 3]] and solve A·x = [1, 2].
//! let mut t = Triplets::new(2, 2);
//! t.push(0, 0, 4.0);
//! t.push(0, 1, 1.0);
//! t.push(1, 0, 1.0);
//! t.push(1, 1, 3.0);
//! let lu = SparseLu::factor(&t.to_csr()).unwrap();
//! let x = lu.solve(&[1.0, 2.0]);
//! assert!((x[0] - 1.0 / 11.0).abs() < 1e-12);
//! assert!((x[1] - 7.0 / 11.0).abs() < 1e-12);
//! ```
// Solver crates are panic-free outside tests: every fallible path
// returns a typed error. Enforced by clippy here and by the regex
// pass of `gm-audit lint-src` (with its allowlist) in CI.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
// Numeric kernels iterate several parallel arrays by index; the
// index-based loops are the clearer form here.
#![allow(clippy::needless_range_loop)]

pub mod compensate;
pub mod csmat;
pub mod lu;
pub mod order;
pub mod scalar;
pub mod symbolic;
pub mod triplets;

pub use compensate::{CompensateError, CompensatedLu};
pub use csmat::CsMat;
pub use lu::{SparseLu, SparseLuError};
pub use order::{Ordering, OrderingError};
pub use scalar::Scalar;
pub use symbolic::{LuEngine, SymbolicLu};
pub use triplets::{ScatterMap, Triplets};
