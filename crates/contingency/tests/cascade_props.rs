//! Property tests for the screening cascade's safety invariants.
//!
//! The cascade is only allowed to be fast, never wrong about topology:
//! islanding (bridge) outages must be detected before any solver runs and
//! routed to the islanding outcome — a Woodbury compensation of a bridge
//! outage would try to invert a singular post-outage system.

use gm_contingency::{run_n1, CaOptions, SweepMode};
use gm_network::{cases, topology, CaseId};
use proptest::prelude::*;

fn opts(mode: SweepMode) -> CaOptions {
    CaOptions {
        mode,
        parallel: false,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every bridge outage is flagged `islands` by the cascade with no AC
    /// solve, exactly as the brute sweep flags it; every non-bridge
    /// outage screened out by the cascade was genuinely below the cutoff
    /// in the brute sweep (no critical outage hides behind a screen).
    #[test]
    fn cascade_handles_bridges_like_brute(case_pick in 0usize..2) {
        let net = cases::load(if case_pick == 0 { CaseId::Ieee30 } else { CaseId::Ieee57 });
        let brute = run_n1(&net, &opts(SweepMode::Brute), None).unwrap();
        let cascade = run_n1(&net, &opts(SweepMode::Cascade), None).unwrap();
        prop_assert_eq!(brute.n_contingencies, cascade.n_contingencies);
        for (b, c) in brute.outcomes.iter().zip(&cascade.outcomes) {
            // Topology ground truth, recomputed independently.
            let bridges = topology::stranded_buses(&net, b.outage.branch);
            prop_assert_eq!(c.islands, !bridges.is_empty());
            prop_assert_eq!(b.islands, c.islands);
            if c.islands {
                // Never compensated, never solved: the islanding outcome
                // comes straight from topology.
                prop_assert!(!c.ac_solved);
                prop_assert_eq!(c.stranded_buses, bridges.len());
                prop_assert!((b.load_shed_mw - c.load_shed_mw).abs() < 1e-9);
            }
            if c.ac_solved && b.ac_solved && b.converged && c.converged {
                // AC-verified outages agree with brute to solver tolerance.
                prop_assert!(
                    (b.max_loading_pct - c.max_loading_pct).abs() < 1e-3,
                    "branch {} loading diverges: brute {} cascade {}",
                    b.outage.branch, b.max_loading_pct, c.max_loading_pct
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomly de-rating branches (shrinking ratings) can only grow the
    /// suspect set; whatever the screen still skips must be genuinely
    /// below the cutoff in the brute sweep's AC answer, within the
    /// screening band's tolerance budget.
    #[test]
    fn screened_out_outages_are_truly_quiet(seed in 0u64..1000) {
        let net = cases::load(CaseId::Ieee118);
        let o = opts(SweepMode::Cascade);
        let cascade = run_n1(&net, &o, None).unwrap();
        let brute = run_n1(&net, &opts(SweepMode::Brute), None).unwrap();
        // Use the seed only to pick which screened-out outcomes to audit,
        // so the property samples differently across cases.
        let screened: Vec<usize> = cascade
            .outcomes
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.ac_solved && !c.islands)
            .map(|(i, _)| i)
            .collect();
        if screened.is_empty() {
            return Ok(());
        }
        let pick = screened[(seed as usize) % screened.len()];
        let b = &brute.outcomes[pick];
        // The brute AC answer for a screened-out outage must sit below
        // the alarm threshold: the DC screen plus its safety band did not
        // hide a thermal violation.
        prop_assert!(
            b.n_thermal() == 0,
            "screened-out branch {} actually overloads in the AC sweep",
            b.outage.branch
        );
    }
}
