//! Generator outage (T-1) analysis.
//!
//! The paper defines contingency analysis over "T-1 outages of system
//! assets" (§2); transmission elements dominate its evaluation, but the
//! asset set includes generating units. This module evaluates single-unit
//! outages: the lost injection is absorbed by the slack (the standard
//! primary-response abstraction), and the post-outage power flow is
//! scanned with the same violation rules as the branch sweep.

use crate::engine::CaOptions;
use crate::types::Violation;
use gm_network::Network;
use gm_numeric::Complex;
use gm_powerflow::{solve_from, PfReport};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Post-contingency outcome for one generator outage.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GenOutageOutcome {
    /// Generator index into `Network::gens`.
    pub gen: usize,
    /// External id of the connection bus.
    pub bus_id: u32,
    /// Lost active injection (MW, the unit's pre-outage dispatch).
    pub lost_mw: f64,
    /// Whether the post-outage power flow converged.
    pub converged: bool,
    /// Whether the outage removes the only slack unit (loss of the
    /// reference machine) — categorically critical.
    pub loses_reference: bool,
    /// Violations found.
    pub violations: Vec<Violation>,
    /// Worst branch loading (%).
    pub max_loading_pct: f64,
    /// Lowest voltage (p.u., bus id).
    pub min_vm: (f64, u32),
    /// Slack response required (MW): how much the reference had to pick
    /// up, a proxy for spinning-reserve adequacy.
    pub slack_pickup_mw: f64,
}

/// Runs the generator T-1 sweep over all in-service units.
pub fn run_gen_n1(
    net: &Network,
    opts: &CaOptions,
    base: Option<&PfReport>,
) -> Result<Vec<GenOutageOutcome>, gm_powerflow::PfError> {
    let owned;
    let base = match base {
        Some(b) => b,
        None => {
            owned = gm_powerflow::solve(net, &opts.pf)?;
            &owned
        }
    };
    let v0: Vec<Complex> = base
        .buses
        .iter()
        .map(|b| Complex::from_polar(b.vm_pu, b.va_deg.to_radians()))
        .collect();
    let Some(slack) = net.slack() else {
        return Err(gm_powerflow::PfError::InvalidNetwork {
            problems: vec!["network has no slack bus".into()],
        });
    };
    let base_slack_p: f64 = base
        .gens
        .iter()
        .zip(&net.gens)
        .filter(|(_, g)| g.bus == slack)
        .map(|(r, _)| r.p_mw)
        .sum();

    let targets: Vec<usize> = net
        .gens
        .iter()
        .enumerate()
        .filter(|(_, g)| g.in_service)
        .map(|(i, _)| i)
        .collect();

    let eval = |&gi: &usize| -> GenOutageOutcome {
        let g = &net.gens[gi];
        let bus_id = net.buses[g.bus].id;
        let lost_mw = base.gens[gi].p_mw;

        // Losing the only unit at the slack bus removes the reference.
        if g.bus == slack {
            let others_at_slack = net.gens_at(slack).any(|(other, _)| other != gi);
            if !others_at_slack {
                return GenOutageOutcome {
                    gen: gi,
                    bus_id,
                    lost_mw,
                    converged: false,
                    loses_reference: true,
                    violations: Vec::new(),
                    max_loading_pct: 0.0,
                    min_vm: (0.0, 0),
                    slack_pickup_mw: 0.0,
                };
            }
        }

        let mut work = net.clone();
        work.gens[gi].in_service = false;
        // If the outaged unit was the sole PV support at its bus, the bus
        // reverts to PQ automatically (the solver checks for in-service
        // units).
        let report = solve_from(&work, &opts.pf, Some(&v0))
            .or_else(|_| gm_powerflow::solve(&work, &opts.pf));
        match report {
            Err(_) => GenOutageOutcome {
                gen: gi,
                bus_id,
                lost_mw,
                converged: false,
                loses_reference: false,
                violations: Vec::new(),
                max_loading_pct: 0.0,
                min_vm: (0.0, 0),
                slack_pickup_mw: 0.0,
            },
            Ok(rep) => {
                let mut violations = Vec::new();
                for bf in &rep.branches {
                    if bf.loading_pct > opts.thermal_threshold_pct {
                        violations.push(Violation::ThermalOverload {
                            branch: bf.index,
                            loading_pct: bf.loading_pct,
                        });
                    }
                }
                for b in &rep.buses {
                    if b.vm_pu < opts.vmin_pu {
                        violations.push(Violation::LowVoltage {
                            bus_id: b.id,
                            vm_pu: b.vm_pu,
                        });
                    } else if b.vm_pu > opts.vmax_pu {
                        violations.push(Violation::HighVoltage {
                            bus_id: b.id,
                            vm_pu: b.vm_pu,
                        });
                    }
                }
                let new_slack_p: f64 = rep
                    .gens
                    .iter()
                    .zip(&work.gens)
                    .filter(|(_, g)| g.bus == slack && g.in_service)
                    .map(|(r, _)| r.p_mw)
                    .sum();
                GenOutageOutcome {
                    gen: gi,
                    bus_id,
                    lost_mw,
                    converged: true,
                    loses_reference: false,
                    violations,
                    max_loading_pct: rep.max_loading.0,
                    min_vm: rep.min_vm,
                    slack_pickup_mw: new_slack_p - base_slack_p,
                }
            }
        }
    };

    Ok(if opts.parallel {
        targets.par_iter().map(eval).collect()
    } else {
        targets.iter().map(eval).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_network::{cases, CaseId};

    #[test]
    fn case14_gen_sweep() {
        let net = cases::load(CaseId::Ieee14);
        let outcomes = run_gen_n1(&net, &CaOptions::default(), None).unwrap();
        assert_eq!(outcomes.len(), 5);
        // The slack hosts a single unit: its outage loses the reference.
        let slack = net.slack().unwrap();
        let slack_outcome = outcomes
            .iter()
            .find(|o| net.gens[o.gen].bus == slack)
            .unwrap();
        assert!(slack_outcome.loses_reference);
        assert!(!slack_outcome.converged);
        // Non-slack unit outages converge; slack picks up the lost MW
        // plus the loss delta.
        for o in outcomes.iter().filter(|o| !o.loses_reference) {
            assert!(o.converged, "gen {} failed", o.gen);
            if o.lost_mw > 1.0 {
                assert!(
                    o.slack_pickup_mw > 0.8 * o.lost_mw,
                    "gen {}: slack picked up {:.1} of {:.1} MW",
                    o.gen,
                    o.slack_pickup_mw,
                    o.lost_mw
                );
            }
        }
    }

    #[test]
    fn big_unit_outage_stresses_more_than_small() {
        let net = cases::load(CaseId::Ieee118);
        let outcomes = run_gen_n1(&net, &CaOptions::default(), None).unwrap();
        let converged: Vec<_> = outcomes.iter().filter(|o| o.converged).collect();
        assert!(converged.len() > 40);
        // The largest lost unit should produce at least as low a minimum
        // voltage as the median case (heuristic sanity, not a theorem —
        // allow slack).
        let biggest = converged
            .iter()
            .max_by(|a, b| a.lost_mw.total_cmp(&b.lost_mw))
            .unwrap();
        assert!(biggest.lost_mw > 100.0);
        assert!(biggest.slack_pickup_mw > 0.5 * biggest.lost_mw);
    }

    #[test]
    fn serial_matches_parallel() {
        let net = cases::load(CaseId::Ieee30);
        let par = run_gen_n1(&net, &CaOptions::default(), None).unwrap();
        let ser = run_gen_n1(
            &net,
            &CaOptions {
                parallel: false,
                ..Default::default()
            },
            None,
        )
        .unwrap();
        assert_eq!(par.len(), ser.len());
        for (a, b) in par.iter().zip(&ser) {
            assert_eq!(a.converged, b.converged);
            assert!((a.max_loading_pct - b.max_loading_pct).abs() < 1e-9);
        }
    }
}
