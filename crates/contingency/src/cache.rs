//! Contingency result cache.
//!
//! §3.4 of the paper: "Each outage evaluation is cached under a composite
//! key (case + outage + diff hash)". The cache lets compound agent
//! requests ("solve, assess T-1 risk, rank reinforcements") reuse every
//! per-outage power flow that is still fresh, and invalidates naturally
//! when the diff log changes the network.

use crate::types::{ContingencyOutcome, SweepMode};
use parking_lot::RwLock;
use std::collections::HashMap;

/// Composite cache key.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Case name.
    pub case: String,
    /// Branch index of the outage.
    pub outage_branch: usize,
    /// Hash of the applied modification log.
    pub diff_hash: u64,
    /// Sweep mode the outcome was produced under. Cascade outcomes
    /// (screened estimates, compensated solves) and brute outcomes agree
    /// to solver tolerance but not bit-for-bit, so they must never alias.
    pub mode: SweepMode,
}

/// Thread-safe per-outage result cache with hit/miss accounting.
#[derive(Debug, Default)]
pub struct ContingencyCache {
    map: RwLock<HashMap<CacheKey, ContingencyOutcome>>,
    hits: RwLock<u64>,
    misses: RwLock<u64>,
}

impl ContingencyCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetches a cached outcome, counting the hit/miss.
    pub fn get(&self, key: &CacheKey) -> Option<ContingencyOutcome> {
        let found = self.map.read().get(key).cloned();
        if found.is_some() {
            *self.hits.write() += 1;
            gm_telemetry::counter_add("ca.cache.hits", 1);
        } else {
            *self.misses.write() += 1;
            gm_telemetry::counter_add("ca.cache.misses", 1);
        }
        found
    }

    /// Stores an outcome.
    pub fn put(&self, key: CacheKey, outcome: ContingencyOutcome) {
        self.map.write().insert(key, outcome);
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (*self.hits.read(), *self.misses.read())
    }

    /// Number of cached outcomes.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Drops every entry for a case (e.g. after an irreversible edit).
    pub fn invalidate_case(&self, case: &str) {
        self.map.write().retain(|k, _| k.case != case);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Outage;
    use gm_network::BranchKind;

    fn outcome(branch: usize) -> ContingencyOutcome {
        ContingencyOutcome {
            outage: Outage {
                branch,
                kind: BranchKind::Line,
            },
            kind_index: branch,
            converged: true,
            islands: false,
            stranded_buses: 0,
            violations: vec![],
            max_loading_pct: 42.0,
            min_vm: (1.0, 1),
            load_shed_mw: 0.0,
            ac_solved: true,
        }
    }

    fn key(case: &str, branch: usize, diff: u64) -> CacheKey {
        CacheKey {
            case: case.into(),
            outage_branch: branch,
            diff_hash: diff,
            mode: SweepMode::Brute,
        }
    }

    #[test]
    fn mode_keys_do_not_alias() {
        let cache = ContingencyCache::new();
        cache.put(key("c14", 0, 1), outcome(0));
        let cascade = CacheKey {
            mode: SweepMode::Cascade,
            ..key("c14", 0, 1)
        };
        assert!(cache.get(&cascade).is_none());
    }

    #[test]
    fn hit_and_miss_accounting() {
        let cache = ContingencyCache::new();
        assert!(cache.get(&key("c14", 0, 1)).is_none());
        cache.put(key("c14", 0, 1), outcome(0));
        assert!(cache.get(&key("c14", 0, 1)).is_some());
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn diff_hash_invalidates() {
        let cache = ContingencyCache::new();
        cache.put(key("c14", 0, 1), outcome(0));
        // Same case and outage, different network state.
        assert!(cache.get(&key("c14", 0, 2)).is_none());
    }

    #[test]
    fn case_isolation_and_invalidation() {
        let cache = ContingencyCache::new();
        cache.put(key("c14", 0, 1), outcome(0));
        cache.put(key("c30", 0, 1), outcome(0));
        assert_eq!(cache.len(), 2);
        cache.invalidate_case("c14");
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key("c30", 0, 1)).is_some());
    }

    #[test]
    fn concurrent_access() {
        use std::sync::Arc;
        let cache = Arc::new(ContingencyCache::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let c = cache.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    c.put(key("x", t * 100 + i, 0), outcome(i));
                    c.get(&key("x", t * 100 + i, 0));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.len(), 400);
        assert_eq!(cache.stats().0, 400);
    }
}
