//! N-2 contingency preview behind the cascade API.
//!
//! A full N-2 sweep is quadratic in branch count — brute-forcing it with
//! AC solves is exactly what the screening cascade exists to avoid. The
//! preview screens every in-service branch pair with the LODF product
//! formula (post-first-outage flows redistributed by the second outage's
//! distribution factors, solved simultaneously for the pair), then
//! AC-verifies only the surviving pairs through the same
//! Woodbury-compensated base factorization the N-1 cascade uses — a pair
//! outage is a rank-≤-8 Jacobian correction, still far cheaper than a
//! fresh factorization per pair.

use crate::engine::{
    enumerate_targets, screening_inputs, screening_sensitivities, solve_base, CaOptions,
};
use crate::types::{Outage, Violation};
use gm_network::{topology, Network};
use gm_powerflow::{CompensationBase, PfReport};
use serde::{Deserialize, Serialize};

/// Outcome of one verified branch-pair outage.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PairOutcome {
    /// The two outaged elements.
    pub outages: (Outage, Outage),
    /// Kind-relative indices for labelling ("line 3 + trafo 0").
    pub kind_indices: (usize, usize),
    /// DC-estimated worst post-pair loading (fraction of rating).
    pub dc_estimate: f64,
    /// Whether the pair splits the network (joint islanding screen).
    pub islands: bool,
    /// Whether the AC verification converged.
    pub converged: bool,
    /// Whether the verification used the compensated base factorization
    /// (`false` = full-Newton fallback).
    pub compensated: bool,
    /// Violations found by the AC verification.
    pub violations: Vec<Violation>,
    /// Worst branch loading (%) post-pair.
    pub max_loading_pct: f64,
}

impl PairOutcome {
    /// "line 3 + trafo 0"-style label.
    pub fn label(&self) -> String {
        format!(
            "{} + {}",
            self.outages.0.label(self.kind_indices.0),
            self.outages.1.label(self.kind_indices.1)
        )
    }
}

/// N-2 preview report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct N2Preview {
    /// Case name.
    pub case_name: String,
    /// Branch pairs considered.
    pub pairs_screened: usize,
    /// Pairs the DC screen classified secure (no AC solve).
    pub screened_out: usize,
    /// Pairs whose LODF screen was undefined (joint islanding or
    /// near-singular pair interaction) — counted, not verified.
    pub unscreenable: usize,
    /// AC-verified suspect pairs, worst first.
    pub verified: Vec<PairOutcome>,
    /// Wall time (seconds).
    pub sweep_time_s: f64,
}

/// Screens every in-service branch pair with the LODF pair formula and
/// AC-verifies the suspects via the compensated base factorization.
///
/// `max_verify` bounds the AC work: only the `max_verify` worst
/// DC-ranked suspect pairs are verified (the preview is a ranking aid,
/// not an exhaustive N-2 certification — the report counts what was
/// screened out and what was unscreenable so the shortcut is explicit).
pub fn n_minus_2_preview(
    net: &Network,
    opts: &CaOptions,
    base: Option<&PfReport>,
    max_verify: usize,
) -> Result<N2Preview, gm_powerflow::PfError> {
    let _span = gm_telemetry::span!("ca.n2_preview", case = net.name);
    let started = std::time::Instant::now();
    let owned_base;
    let base = match base {
        Some(b) => b,
        None => {
            owned_base = solve_base(net, opts)?;
            &owned_base
        }
    };
    let sens = screening_sensitivities(net)?;
    let (base_p, base_q) = screening_inputs(base);
    let targets = enumerate_targets(net, opts);
    // Same unrated-network guard as the N-1 cascade: no ratings means no
    // thermal signal, so every pair becomes a suspect (the max_verify cap
    // still bounds the AC work).
    let rated = net
        .branches
        .iter()
        .any(|b| b.in_service && b.rating_mva > 0.0);
    let cutoff = if rated { opts.screen_cutoff() } else { -1.0 };

    // Phase 1: DC pair screen.
    let mut suspects: Vec<(usize, usize, f64)> = Vec::new();
    let mut screened_out = 0usize;
    let mut unscreenable = 0usize;
    let mut pairs = 0usize;
    for a in 0..targets.len() {
        for b in (a + 1)..targets.len() {
            pairs += 1;
            let (ka, kb) = (targets[a].0.branch, targets[b].0.branch);
            match sens.worst_pair_outage_loading_mva(net, &base_p, &base_q, ka, kb) {
                None => unscreenable += 1,
                Some(est) if est >= cutoff => suspects.push((a, b, est)),
                Some(_) => screened_out += 1,
            }
        }
    }
    gm_telemetry::counter_add("ca.n2.pairs_screened", pairs as u64);
    gm_telemetry::counter_add("ca.n2.screened_out", screened_out as u64);
    suspects.sort_by(|x, y| y.2.total_cmp(&x.2).then((x.0, x.1).cmp(&(y.0, y.1))));
    if suspects.len() > max_verify {
        gm_telemetry::counter_add("ca.n2.verify_capped", (suspects.len() - max_verify) as u64);
        suspects.truncate(max_verify);
    }

    // Phase 2: AC verification of surviving pairs through the shared
    // compensation base (rank-≤-8 corrections), full Newton as fallback.
    let comp_base = match CompensationBase::new(net, &opts.pf, base) {
        Ok(cb) => Some(cb),
        Err(e) => {
            gm_telemetry::warn_event("ca.n2", format!("compensation base unavailable: {e}"));
            None
        }
    };
    let mut verified = Vec::with_capacity(suspects.len());
    for (a, b, est) in suspects {
        let (outage_a, ki_a) = targets[a];
        let (outage_b, ki_b) = targets[b];
        let mut work = net.clone();
        work.branches[outage_a.branch].in_service = false;
        work.branches[outage_b.branch].in_service = false;
        // Joint islanding screen: the pair may split the network even
        // when the LODF pair formula stayed finite.
        if topology::connected_components(&work) > topology::connected_components(net) {
            verified.push(PairOutcome {
                outages: (outage_a, outage_b),
                kind_indices: (ki_a, ki_b),
                dc_estimate: est,
                islands: true,
                converged: false,
                compensated: false,
                violations: Vec::new(),
                max_loading_pct: 0.0,
            });
            continue;
        }
        let (rep, compensated) = match comp_base
            .as_ref()
            .map(|cb| cb.solve_outage(&work, &opts.pf, &[outage_a.branch, outage_b.branch]))
        {
            Some(Ok(rep)) => (Some(rep), true),
            _ => {
                gm_telemetry::counter_add("ca.n2.fallback", 1);
                (gm_powerflow::solve(&work, &opts.pf).ok(), false)
            }
        };
        let outcome = match rep {
            None => PairOutcome {
                outages: (outage_a, outage_b),
                kind_indices: (ki_a, ki_b),
                dc_estimate: est,
                islands: false,
                converged: false,
                compensated,
                violations: Vec::new(),
                max_loading_pct: 0.0,
            },
            Some(rep) => {
                let mut violations = Vec::new();
                for bf in &rep.branches {
                    if bf.loading_pct > opts.thermal_threshold_pct {
                        violations.push(Violation::ThermalOverload {
                            branch: bf.index,
                            loading_pct: bf.loading_pct,
                        });
                    }
                }
                for bus in &rep.buses {
                    if bus.vm_pu < opts.vmin_pu {
                        violations.push(Violation::LowVoltage {
                            bus_id: bus.id,
                            vm_pu: bus.vm_pu,
                        });
                    } else if bus.vm_pu > opts.vmax_pu {
                        violations.push(Violation::HighVoltage {
                            bus_id: bus.id,
                            vm_pu: bus.vm_pu,
                        });
                    }
                }
                PairOutcome {
                    outages: (outage_a, outage_b),
                    kind_indices: (ki_a, ki_b),
                    dc_estimate: est,
                    islands: false,
                    converged: true,
                    compensated,
                    violations,
                    max_loading_pct: rep.max_loading.0,
                }
            }
        };
        verified.push(outcome);
    }
    verified.sort_by(|x, y| y.max_loading_pct.total_cmp(&x.max_loading_pct));

    Ok(N2Preview {
        case_name: net.name.clone(),
        pairs_screened: pairs,
        screened_out,
        unscreenable,
        verified,
        sweep_time_s: started.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_network::{cases, CaseId};

    #[test]
    fn case14_preview_screens_and_verifies() {
        // case14 carries no branch ratings (MATPOWER "unlimited"), so the
        // thermal screen has no signal: every non-islanding pair becomes
        // a suspect and the max_verify cap bounds the AC work.
        let net = cases::load(CaseId::Ieee14);
        let rep = n_minus_2_preview(&net, &CaOptions::default(), None, 16).unwrap();
        // 20 in-service elements -> C(20, 2) pairs.
        assert_eq!(rep.pairs_screened, 190);
        assert_eq!(rep.screened_out, 0);
        // Every pair is accounted for: screened out, unscreenable, or a
        // suspect (verified list capped by max_verify).
        assert!(rep.screened_out + rep.unscreenable + rep.verified.len() <= rep.pairs_screened);
        assert_eq!(rep.verified.len(), 16);
        // The verification path must actually run, mostly compensated.
        assert!(
            rep.verified.iter().any(|p| p.compensated),
            "no pair verified via the compensated base"
        );
        // Worst-first ordering.
        for w in rep.verified.windows(2) {
            assert!(w[0].max_loading_pct >= w[1].max_loading_pct);
        }
    }

    #[test]
    fn case118_preview_finds_pair_overloads() {
        let net = cases::load(CaseId::Ieee118);
        let opts = CaOptions::default();
        let base = solve_base(&net, &opts).unwrap();
        let rep = n_minus_2_preview(&net, &opts, Some(&base), 24).unwrap();
        // 186 elements -> 17205 pairs, screened in one LODF pass.
        assert_eq!(rep.pairs_screened, 186 * 185 / 2);
        assert!(rep.verified.len() <= 24);
        // The N-1-stressed case must show at least one overloading pair.
        assert!(
            rep.verified
                .iter()
                .any(|p| p.converged && p.max_loading_pct > 100.0),
            "no overloading pair found"
        );
        // At least part of the verification must have used compensation
        // (the whole point of routing N-2 through the cascade machinery).
        assert!(
            rep.verified.iter().any(|p| p.compensated),
            "no pair verified via the compensated base"
        );
        // Labels render with both elements.
        let label = rep.verified[0].label();
        assert!(label.contains(" + "), "bad label {label}");
    }
}
