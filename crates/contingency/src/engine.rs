//! The N-1 sweep engine.
//!
//! Enumerates single-element outages (lines and transformers) and scans
//! each post-contingency state for thermal and voltage violations. Three
//! sweep modes share the enumeration, caching, and report machinery:
//!
//! - **Brute** — one full AC power flow per outage, warm-started from the
//!   base solution with a flat-start retry on divergence (the paper's
//!   reference sweep and automatic recovery path).
//! - **Cascade** (default) — the multi-fidelity screen-then-verify
//!   architecture: LODFs computed once rank every outage by DC-estimated
//!   post-outage loading; outages above the screening cutoff (plus a
//!   safety band of top-ranked ones) are AC-verified against the
//!   base-case Jacobian factorization via Woodbury compensation, with the
//!   full-Newton path as fallback when compensation is ill-conditioned,
//!   stalls, or the outage islands the network.
//! - **Screened** — the pure-DC ablation: flagged outages get a full AC
//!   solve, everything else is classified from the linear estimate alone.
//!
//! The sweep is embarrassingly parallel and runs on rayon by default; the
//! serial path is kept for the ablation benchmark.

use crate::ranking::rank;
use crate::types::{
    ContingencyOutcome, ContingencyReport, Outage, RankingStrategy, SweepMode, Violation,
};
use gm_network::{topology, BranchKind, Network};
use gm_numeric::Complex;
use gm_powerflow::{solve_from_with_engine, CompensationBase, PfOptions, PfReport, Sensitivities};
use gm_sparse::LuEngine;
use rayon::prelude::*;

/// Symbolic-LU cache depth for sweep workers. Within one outage
/// evaluation every Newton iteration (and the flat-start retry) shares a
/// post-outage Jacobian pattern; across outages, parallel branch pairs
/// collide onto the same pattern. A handful of slots per worker captures
/// both without unbounded growth.
const SWEEP_ENGINE_SLOTS: usize = 8;

/// Sweep options.
#[derive(Clone, Debug)]
pub struct CaOptions {
    /// Voltage band checked post-contingency (p.u.). The paper uses
    /// 0.95–1.05 in its Fig. 8 transcripts.
    pub vmin_pu: f64,
    /// Upper voltage band (p.u.).
    pub vmax_pu: f64,
    /// Loading threshold (%) above which a branch counts as overloaded.
    pub thermal_threshold_pct: f64,
    /// Include line outages.
    pub include_lines: bool,
    /// Include transformer outages.
    pub include_trafos: bool,
    /// Run the sweep on the rayon thread pool.
    pub parallel: bool,
    /// Ranking strategy for the criticality list.
    pub strategy: RankingStrategy,
    /// Sweep fidelity mode (default: the screening cascade).
    pub mode: SweepMode,
    /// Cascade/screened: an outage is a suspect when its DC-estimated
    /// worst post-outage loading reaches this fraction of any rating.
    pub screen_margin: f64,
    /// Cascade/screened: safety band subtracted from the margin — the
    /// effective cutoff is `screen_margin - screen_band`, absorbing the
    /// DC estimate's systematic underestimate of MVA loading.
    pub screen_band: f64,
    /// Cascade: this many top-DC-ranked outages are AC-verified even when
    /// they fall below the cutoff, so the head of the criticality ranking
    /// always rests on AC solutions.
    pub screen_top_k: usize,
    /// Power flow controls for the post-contingency solves.
    pub pf: PfOptions,
}

impl Default for CaOptions {
    fn default() -> Self {
        CaOptions {
            vmin_pu: 0.95,
            vmax_pu: 1.05,
            thermal_threshold_pct: 100.0,
            include_lines: true,
            include_trafos: true,
            parallel: true,
            strategy: RankingStrategy::Composite,
            mode: SweepMode::Cascade,
            screen_margin: 1.0,
            screen_band: 0.15,
            screen_top_k: 8,
            pf: PfOptions {
                enforce_q_limits: false,
                max_iter: 25,
                ..Default::default()
            },
        }
    }
}

impl CaOptions {
    /// Deterministic fingerprint of every sweep control that can affect
    /// the report (voltage band, thermal threshold, scope, ranking
    /// strategy, sweep mode and screening knobs, inner power-flow
    /// options), for cross-session solver-cache keys (gm-serve). FNV-1a
    /// over the canonical debug rendering; `parallel` is excluded because
    /// serial and parallel sweeps produce identical reports.
    pub fn fingerprint(&self) -> u64 {
        let scrubbed = CaOptions {
            parallel: true,
            ..self.clone()
        };
        let text = format!("{scrubbed:?}");
        let mut h: u64 = 0xcbf29ce484222325;
        for b in text.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Effective DC screening cutoff (fraction of rating).
    pub fn screen_cutoff(&self) -> f64 {
        (self.screen_margin - self.screen_band).max(0.0)
    }
}

/// Solves the base case (no outages) with the sweep's power flow options.
pub fn solve_base(net: &Network, opts: &CaOptions) -> Result<PfReport, gm_powerflow::PfError> {
    gm_powerflow::solve(net, &opts.pf)
}

/// Enumerates the outage targets with kind-relative indices
/// (PandaPower-style "line 6" / "trafo 0" labels).
pub(crate) fn enumerate_targets(net: &Network, opts: &CaOptions) -> Vec<(Outage, usize)> {
    let mut targets: Vec<(Outage, usize)> = Vec::new();
    let mut line_idx = 0usize;
    let mut trafo_idx = 0usize;
    for (bi, br) in net.branches.iter().enumerate() {
        let (kind_index, include) = match br.kind {
            BranchKind::Line => {
                let k = line_idx;
                line_idx += 1;
                (k, opts.include_lines)
            }
            BranchKind::Transformer => {
                let k = trafo_idx;
                trafo_idx += 1;
                (k, opts.include_trafos)
            }
        };
        if include && br.in_service {
            targets.push((
                Outage {
                    branch: bi,
                    kind: br.kind,
                },
                kind_index,
            ));
        }
    }
    targets
}

/// Assembles the sweep report from per-outage outcomes.
fn assemble_report(
    net: &Network,
    opts: &CaOptions,
    outcomes: Vec<ContingencyOutcome>,
    started: std::time::Instant,
    mode: SweepMode,
) -> ContingencyReport {
    let total_violations: usize = outcomes.iter().map(|o| o.violations.len()).sum();
    let outages_with_overloads = outcomes.iter().filter(|o| o.n_thermal() > 0).count();
    let outages_with_voltage_issues = outcomes.iter().filter(|o| o.n_voltage() > 0).count();
    let max_overload_pct = outcomes
        .iter()
        .enumerate()
        .map(|(i, o)| (o.max_loading_pct, i))
        .fold((0.0f64, 0usize), |acc, v| if v.0 > acc.0 { v } else { acc });
    let ranking = rank(&outcomes, opts.strategy);
    let ac_verified = outcomes.iter().filter(|o| o.ac_solved).count();
    let screened_out = outcomes
        .iter()
        .filter(|o| !o.ac_solved && !o.islands)
        .count();

    ContingencyReport {
        case_name: net.name.clone(),
        n_contingencies: outcomes.len(),
        n_lines: outcomes
            .iter()
            .filter(|o| o.outage.kind == BranchKind::Line)
            .count(),
        n_trafos: outcomes
            .iter()
            .filter(|o| o.outage.kind == BranchKind::Transformer)
            .count(),
        outcomes,
        total_violations,
        outages_with_overloads,
        outages_with_voltage_issues,
        max_overload_pct,
        ranking,
        voltage_band: (opts.vmin_pu, opts.vmax_pu),
        sweep_time_s: started.elapsed().as_secs_f64(),
        parallel: opts.parallel,
        mode,
        screened_out,
        ac_verified,
    }
}

/// Runs the N-1 study in the mode selected by `opts.mode`.
///
/// `base` may be a previously solved base-case report (its voltages warm
/// start each outage solve); when `None` the base case is solved first.
pub fn run_n1(
    net: &Network,
    opts: &CaOptions,
    base: Option<&PfReport>,
) -> Result<ContingencyReport, gm_powerflow::PfError> {
    run_n1_cached(net, opts, base, None)
}

/// Runs the N-1 study with a per-outage result cache (§3.4: "each
/// outage evaluation is cached under a composite key (case + outage +
/// diff hash)").
///
/// `cache` is `(cache, diff_hash)`: outcomes are looked up / stored under
/// the network's case name, branch index, the supplied hash, and the
/// sweep mode, so a repeated compound request recomputes only what the
/// diff log staled — and cascade results never alias brute ones.
pub fn run_n1_cached(
    net: &Network,
    opts: &CaOptions,
    base: Option<&PfReport>,
    cache: Option<(&crate::cache::ContingencyCache, u64)>,
) -> Result<ContingencyReport, gm_powerflow::PfError> {
    match opts.mode {
        SweepMode::Brute => run_brute(net, opts, base, cache),
        SweepMode::Cascade => run_cascade(net, opts, base, cache),
        SweepMode::Screened => run_n1_screened(net, opts, base, opts.screen_cutoff()),
    }
}

fn run_brute(
    net: &Network,
    opts: &CaOptions,
    base: Option<&PfReport>,
    cache: Option<(&crate::cache::ContingencyCache, u64)>,
) -> Result<ContingencyReport, gm_powerflow::PfError> {
    let sweep_span = gm_telemetry::span!("ca.sweep", case = net.name, mode = "full");
    let started = std::time::Instant::now();
    let owned_base;
    let base = match base {
        Some(b) => b,
        None => {
            owned_base = solve_base(net, opts)?;
            &owned_base
        }
    };
    let v0: Vec<Complex> = base
        .buses
        .iter()
        .map(|b| Complex::from_polar(b.vm_pu, b.va_deg.to_radians()))
        .collect();

    let targets = enumerate_targets(net, opts);

    let eval = |engine: &mut LuEngine,
                &(outage, kind_index): &(Outage, usize)|
     -> ContingencyOutcome {
        if let Some((cache, diff_hash)) = cache {
            let key = crate::cache::CacheKey {
                case: net.name.clone(),
                outage_branch: outage.branch,
                diff_hash,
                mode: SweepMode::Brute,
            };
            if let Some(hit) = cache.get(&key) {
                return hit;
            }
            let outcome = evaluate_outage_with_engine(net, opts, &v0, outage, kind_index, engine);
            cache.put(key, outcome.clone());
            return outcome;
        }
        evaluate_outage_with_engine(net, opts, &v0, outage, kind_index, engine)
    };
    let outcomes: Vec<ContingencyOutcome> = if opts.parallel {
        // Rayon workers have their own collector stacks: re-install the
        // sweep thread's registry per worker so worker-side metrics and
        // spans join this trace under the sweep span. The per-worker
        // state also carries a symbolic-LU cache keyed by post-outage
        // Jacobian pattern, so repeated patterns inside a worker's chunk
        // skip the fill-reducing analysis.
        let collector = gm_telemetry::current();
        let parent = sweep_span.id();
        targets
            .par_iter()
            .map_init(
                || {
                    (
                        collector.as_ref().map(|reg| reg.install_scoped(parent)),
                        LuEngine::with_capacity(SWEEP_ENGINE_SLOTS),
                    )
                },
                |(_worker, engine), t| eval(engine, t),
            )
            .collect()
    } else {
        let mut engine = LuEngine::with_capacity(SWEEP_ENGINE_SLOTS);
        targets.iter().map(|t| eval(&mut engine, t)).collect()
    };

    Ok(assemble_report(
        net,
        opts,
        outcomes,
        started,
        SweepMode::Brute,
    ))
}

/// The multi-fidelity screening cascade (default sweep mode).
///
/// Phase 1 — screen: compute LODFs once from the base-case PTDF
/// machinery and rank every outage by its DC-estimated worst post-outage
/// MVA loading against ratings. Phase 2 — verify: outages at or above
/// `opts.screen_cutoff()`, the `opts.screen_top_k` DC-ranked head, and
/// anything the linear model cannot screen (islanding columns) get an AC
/// verification. Each verified solve goes through the base-case Jacobian
/// factorization with a Woodbury outage-block correction
/// ([`gm_powerflow::CompensationBase`]); ill-conditioned or stalled
/// compensations fall back to the full-Newton [`LuEngine`] path, and
/// islanding outages never reach a solver at all. Screened-out outages
/// are classified secure from the DC estimate with `ac_solved = false`
/// and counted honestly in the report.
fn run_cascade(
    net: &Network,
    opts: &CaOptions,
    base: Option<&PfReport>,
    cache: Option<(&crate::cache::ContingencyCache, u64)>,
) -> Result<ContingencyReport, gm_powerflow::PfError> {
    let sweep_span = gm_telemetry::span!("ca.sweep", case = net.name, mode = "cascade");
    let started = std::time::Instant::now();
    let owned_base;
    let base = match base {
        Some(b) => b,
        None => {
            owned_base = solve_base(net, opts)?;
            &owned_base
        }
    };
    let v0: Vec<Complex> = base
        .buses
        .iter()
        .map(|b| Complex::from_polar(b.vm_pu, b.va_deg.to_radians()))
        .collect();

    // Phase 1: the DC screen. When the linear model itself is
    // unavailable (e.g. a degenerate network), the cascade degrades to
    // the brute sweep rather than guessing.
    let sens = match gm_powerflow::sensitivities_for_screening(net) {
        Ok(s) => s,
        Err(_) => {
            gm_telemetry::counter_add("ca.screen.unavailable", 1);
            return run_brute(net, opts, Some(base), cache);
        }
    };
    let base_p: Vec<f64> = base.branches.iter().map(|b| b.p_from_mw).collect();
    let base_q: Vec<f64> = base
        .branches
        .iter()
        .map(|b| b.q_from_mvar.abs().max(b.q_to_mvar.abs()))
        .collect();

    let targets = enumerate_targets(net, opts);
    let estimates: Vec<Option<f64>> = targets
        .iter()
        .map(|&(outage, _)| {
            sens.worst_post_outage_loading_mva(net, &base_p, &base_q, outage.branch)
        })
        .collect();

    // Suspect set: estimate at or above the cutoff, unscreenable
    // (islanding column), or within the top-k safety band of the DC
    // ranking. A network with no rated branches gives the thermal screen
    // no signal at all — drop the cutoff below zero so every outage is
    // verified (the compensated sweep still beats brute) instead of
    // silently classifying everything secure.
    let rated = net
        .branches
        .iter()
        .any(|b| b.in_service && b.rating_mva > 0.0);
    if !rated {
        gm_telemetry::counter_add("ca.screen.unrated", 1);
    }
    let cutoff = if rated { opts.screen_cutoff() } else { -1.0 };
    let mut order: Vec<usize> = (0..targets.len()).collect();
    order.sort_by(|&a, &b| {
        let ea = estimates[a].unwrap_or(f64::INFINITY);
        let eb = estimates[b].unwrap_or(f64::INFINITY);
        eb.total_cmp(&ea).then(a.cmp(&b))
    });
    let mut verify = vec![false; targets.len()];
    for (pos, &ti) in order.iter().enumerate() {
        verify[ti] = pos < opts.screen_top_k
            || match estimates[ti] {
                None => true,
                Some(e) => e >= cutoff,
            };
    }
    let n_screened_out = verify.iter().filter(|&&v| !v).count() as u64;
    let n_verified = verify.len() as u64 - n_screened_out;
    gm_telemetry::counter_add("ca.screen.screened_out", n_screened_out);
    gm_telemetry::counter_add("ca.screen.verified", n_verified);

    // Phase 2: AC verification of the suspect set against the base-case
    // factorization. A failed base build (e.g. Q-limit options) routes
    // every suspect through the full-Newton fallback.
    let comp_base = match CompensationBase::new(net, &opts.pf, base) {
        Ok(cb) => Some(cb),
        Err(e) => {
            gm_telemetry::warn_event("ca.screen", format!("compensation base unavailable: {e}"));
            None
        }
    };

    let eval = |engine: &mut LuEngine, idx: usize| -> ContingencyOutcome {
        let (outage, kind_index) = targets[idx];
        if !verify[idx] {
            return screened_out_outcome(base, outage, kind_index, estimates[idx].unwrap_or(0.0));
        }
        if let Some((cache, diff_hash)) = cache {
            let key = crate::cache::CacheKey {
                case: net.name.clone(),
                outage_branch: outage.branch,
                diff_hash,
                mode: SweepMode::Cascade,
            };
            if let Some(hit) = cache.get(&key) {
                return hit;
            }
            let outcome = evaluate_outage_cascade(
                net,
                opts,
                comp_base.as_ref(),
                &v0,
                outage,
                kind_index,
                estimates[idx],
                engine,
            );
            cache.put(key, outcome.clone());
            return outcome;
        }
        evaluate_outage_cascade(
            net,
            opts,
            comp_base.as_ref(),
            &v0,
            outage,
            kind_index,
            estimates[idx],
            engine,
        )
    };

    let indices: Vec<usize> = (0..targets.len()).collect();
    let outcomes: Vec<ContingencyOutcome> = if opts.parallel {
        let collector = gm_telemetry::current();
        let parent = sweep_span.id();
        indices
            .par_iter()
            .map_init(
                || {
                    (
                        collector.as_ref().map(|reg| reg.install_scoped(parent)),
                        LuEngine::with_capacity(SWEEP_ENGINE_SLOTS),
                    )
                },
                |(_worker, engine), &idx| eval(engine, idx),
            )
            .collect()
    } else {
        let mut engine = LuEngine::with_capacity(SWEEP_ENGINE_SLOTS);
        indices.iter().map(|&idx| eval(&mut engine, idx)).collect()
    };

    Ok(assemble_report(
        net,
        opts,
        outcomes,
        started,
        SweepMode::Cascade,
    ))
}

/// The DC-secure outcome for a screened-out outage: no AC solve, loading
/// carried from the linear estimate, voltage carried from the base case.
fn screened_out_outcome(
    base: &PfReport,
    outage: Outage,
    kind_index: usize,
    estimate: f64,
) -> ContingencyOutcome {
    ContingencyOutcome {
        outage,
        kind_index,
        converged: true,
        islands: false,
        stranded_buses: 0,
        violations: Vec::new(),
        max_loading_pct: 100.0 * estimate,
        min_vm: base.min_vm,
        load_shed_mw: 0.0,
        ac_solved: false,
    }
}

/// Runs the N-1 study with DC (LODF) screening: outages whose estimated
/// worst post-outage DC loading stays below `screen_threshold` (fraction
/// of rating, e.g. 0.9) are classified secure from the linear estimate
/// alone; only flagged outages get a full AC solve.
///
/// This is the fast screening mode real-time CA tools use (and this
/// library's speed-vs-completeness ablation): it can miss voltage
/// violations on screened-out outages, which the AC sweep would catch --
/// outcomes carry `ac_solved = false` so reports can count the shortcut.
pub fn run_n1_screened(
    net: &Network,
    opts: &CaOptions,
    base: Option<&PfReport>,
    screen_threshold: f64,
) -> Result<ContingencyReport, gm_powerflow::PfError> {
    let sweep_span = gm_telemetry::span!("ca.sweep", case = net.name, mode = "screened");
    let started = std::time::Instant::now();
    let owned_base;
    let base = match base {
        Some(b) => b,
        None => {
            owned_base = solve_base(net, opts)?;
            &owned_base
        }
    };
    let v0: Vec<Complex> = base
        .buses
        .iter()
        .map(|b| Complex::from_polar(b.vm_pu, b.va_deg.to_radians()))
        .collect();
    let sens = gm_powerflow::sensitivities_for_screening(net)?;
    let base_p: Vec<f64> = base.branches.iter().map(|b| b.p_from_mw).collect();
    let base_q: Vec<f64> = base
        .branches
        .iter()
        .map(|b| b.q_from_mvar.abs().max(b.q_to_mvar.abs()))
        .collect();

    let targets = enumerate_targets(net, opts);

    let eval =
        |engine: &mut LuEngine, &(outage, kind_index): &(Outage, usize)| -> ContingencyOutcome {
            match sens.worst_post_outage_loading_mva(net, &base_p, &base_q, outage.branch) {
                // Islanding (or unscreenable): always full evaluation.
                None => evaluate_outage_with_engine(net, opts, &v0, outage, kind_index, engine),
                Some(worst) if worst >= screen_threshold => {
                    evaluate_outage_with_engine(net, opts, &v0, outage, kind_index, engine)
                }
                Some(worst) => {
                    gm_telemetry::counter_add("ca.screen.skipped", 1);
                    screened_out_outcome(base, outage, kind_index, worst)
                }
            }
        };
    let outcomes: Vec<ContingencyOutcome> = if opts.parallel {
        let collector = gm_telemetry::current();
        let parent = sweep_span.id();
        targets
            .par_iter()
            .map_init(
                || {
                    (
                        collector.as_ref().map(|reg| reg.install_scoped(parent)),
                        LuEngine::with_capacity(SWEEP_ENGINE_SLOTS),
                    )
                },
                |(_worker, engine), t| eval(engine, t),
            )
            .collect()
    } else {
        let mut engine = LuEngine::with_capacity(SWEEP_ENGINE_SLOTS);
        targets.iter().map(|t| eval(&mut engine, t)).collect()
    };

    Ok(assemble_report(
        net,
        opts,
        outcomes,
        started,
        SweepMode::Screened,
    ))
}

/// Analyzes one specific outage (the `analyze_specific_contingency` tool).
pub fn evaluate_outage(
    net: &Network,
    opts: &CaOptions,
    v0: &[Complex],
    outage: Outage,
    kind_index: usize,
) -> ContingencyOutcome {
    evaluate_outage_with_engine(net, opts, v0, outage, kind_index, &mut LuEngine::new())
}

/// The islanding outcome shared by every evaluation path. Islanding is
/// detected from topology before any solver runs — compensation is never
/// attempted for a bridge outage.
fn islanding_outcome(
    net: &Network,
    outage: Outage,
    kind_index: usize,
    stranded: &[usize],
) -> ContingencyOutcome {
    gm_telemetry::counter_add("ca.islanded", 1);
    let load_shed: f64 = net
        .loads
        .iter()
        .filter(|l| l.in_service && stranded.contains(&l.bus))
        .map(|l| l.p_mw)
        .sum();
    ContingencyOutcome {
        outage,
        kind_index,
        converged: false,
        islands: true,
        stranded_buses: stranded.len(),
        violations: Vec::new(),
        max_loading_pct: 0.0,
        min_vm: (0.0, 0),
        load_shed_mw: load_shed,
        ac_solved: false,
    }
}

/// Scans a solved post-outage report for violations.
fn outcome_from_pf(
    rep: &PfReport,
    opts: &CaOptions,
    outage: Outage,
    kind_index: usize,
) -> ContingencyOutcome {
    let mut violations = Vec::new();
    for bf in &rep.branches {
        if bf.loading_pct > opts.thermal_threshold_pct {
            violations.push(Violation::ThermalOverload {
                branch: bf.index,
                loading_pct: bf.loading_pct,
            });
        }
    }
    for b in &rep.buses {
        if b.vm_pu < opts.vmin_pu {
            violations.push(Violation::LowVoltage {
                bus_id: b.id,
                vm_pu: b.vm_pu,
            });
        } else if b.vm_pu > opts.vmax_pu {
            violations.push(Violation::HighVoltage {
                bus_id: b.id,
                vm_pu: b.vm_pu,
            });
        }
    }
    ContingencyOutcome {
        outage,
        kind_index,
        converged: true,
        islands: false,
        stranded_buses: 0,
        violations,
        max_loading_pct: rep.max_loading.0,
        min_vm: rep.min_vm,
        load_shed_mw: 0.0,
        ac_solved: true,
    }
}

/// Like [`evaluate_outage`], but factoring through a caller-owned
/// [`LuEngine`]: the warm-started solve and its flat-start retry share
/// one symbolic analysis of the post-outage Jacobian, and sweep workers
/// keep the analysis across outages with the same pattern.
pub fn evaluate_outage_with_engine(
    net: &Network,
    opts: &CaOptions,
    v0: &[Complex],
    outage: Outage,
    kind_index: usize,
    engine: &mut LuEngine,
) -> ContingencyOutcome {
    gm_telemetry::counter_add("ca.outages_evaluated", 1);
    // Island screening before any solve.
    let stranded = topology::stranded_buses(net, outage.branch);
    if !stranded.is_empty() {
        return islanding_outcome(net, outage, kind_index, &stranded);
    }

    let mut work = net.clone();
    work.branches[outage.branch].in_service = false;

    // Warm start from the base voltages; fall back to a flat start if the
    // warm-started Newton fails (automatic recovery, §3.2.1).
    let report = solve_from_with_engine(&work, &opts.pf, Some(v0), engine).or_else(|_| {
        gm_telemetry::counter_add("ca.warm_start_retries", 1);
        let flat = PfOptions {
            init: gm_powerflow::InitStrategy::Flat,
            max_iter: opts.pf.max_iter + 15,
            ..opts.pf.clone()
        };
        solve_from_with_engine(&work, &flat, None, engine)
    });

    match report {
        Err(_) => ContingencyOutcome {
            outage,
            kind_index,
            converged: false,
            islands: false,
            stranded_buses: 0,
            violations: Vec::new(),
            max_loading_pct: 0.0,
            min_vm: (0.0, 0),
            load_shed_mw: 0.0,
            ac_solved: true,
        },
        Ok(rep) => outcome_from_pf(&rep, opts, outage, kind_index),
    }
}

/// Cascade verification of one suspect outage: Woodbury-compensated solve
/// against the base factorization, full-Newton fallback on any typed
/// compensation failure. Islanding is detected before either path.
#[allow(clippy::too_many_arguments)]
fn evaluate_outage_cascade(
    net: &Network,
    opts: &CaOptions,
    comp_base: Option<&CompensationBase>,
    v0: &[Complex],
    outage: Outage,
    kind_index: usize,
    estimate: Option<f64>,
    engine: &mut LuEngine,
) -> ContingencyOutcome {
    let stranded = topology::stranded_buses(net, outage.branch);
    if !stranded.is_empty() {
        gm_telemetry::counter_add("ca.outages_evaluated", 1);
        return islanding_outcome(net, outage, kind_index, &stranded);
    }
    if let Some(cb) = comp_base {
        let mut work = net.clone();
        work.branches[outage.branch].in_service = false;
        match cb.solve_outage(&work, &opts.pf, &[outage.branch]) {
            Ok(rep) => {
                gm_telemetry::counter_add("ca.outages_evaluated", 1);
                gm_telemetry::counter_add("ca.screen.compensated", 1);
                if let Some(est) = estimate {
                    // Screening error: how far the DC estimate missed the
                    // AC answer, in loading percentage points.
                    gm_telemetry::histogram_record(
                        "ca.screen.error_pct",
                        (100.0 * est - rep.max_loading.0).abs(),
                    );
                }
                return outcome_from_pf(&rep, opts, outage, kind_index);
            }
            Err(_) => {
                gm_telemetry::counter_add("ca.screen.fallback", 1);
            }
        }
    } else {
        gm_telemetry::counter_add("ca.screen.fallback", 1);
    }
    // Full-Newton fallback (counts its own evaluation).
    evaluate_outage_with_engine(net, opts, v0, outage, kind_index, engine)
}

/// Internal handle exposing screening machinery to the N-2 preview.
pub(crate) fn screening_inputs(base: &PfReport) -> (Vec<f64>, Vec<f64>) {
    let base_p: Vec<f64> = base.branches.iter().map(|b| b.p_from_mw).collect();
    let base_q: Vec<f64> = base
        .branches
        .iter()
        .map(|b| b.q_from_mvar.abs().max(b.q_to_mvar.abs()))
        .collect();
    (base_p, base_q)
}

/// Re-export for the N-2 preview module.
pub(crate) fn screening_sensitivities(
    net: &Network,
) -> Result<Sensitivities, gm_powerflow::PfError> {
    gm_powerflow::sensitivities_for_screening(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_network::{cases, CaseId};

    fn brute_opts() -> CaOptions {
        CaOptions {
            mode: SweepMode::Brute,
            ..Default::default()
        }
    }

    #[test]
    fn ieee14_full_sweep_counts() {
        let net = cases::load(CaseId::Ieee14);
        let rep = run_n1(&net, &brute_opts(), None).unwrap();
        assert_eq!(rep.n_contingencies, 20);
        assert_eq!(rep.n_lines, 17);
        assert_eq!(rep.n_trafos, 3);
        assert_eq!(rep.outcomes.len(), 20);
        assert!(!rep.ranking.is_empty());
        assert_eq!(rep.mode, SweepMode::Brute);
        // Brute solves everything except islanding outages; nothing is
        // screened out.
        let islanders = rep.outcomes.iter().filter(|o| o.islands).count();
        assert_eq!(rep.ac_verified + islanders, 20);
        assert_eq!(rep.screened_out, 0);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let net = cases::load(CaseId::Ieee30);
        let par = run_n1(&net, &brute_opts(), None).unwrap();
        let ser = run_n1(
            &net,
            &CaOptions {
                parallel: false,
                ..brute_opts()
            },
            None,
        )
        .unwrap();
        assert_eq!(par.n_contingencies, ser.n_contingencies);
        assert_eq!(par.total_violations, ser.total_violations);
        for (a, b) in par.outcomes.iter().zip(&ser.outcomes) {
            assert_eq!(a.converged, b.converged);
            assert!((a.max_loading_pct - b.max_loading_pct).abs() < 1e-9);
        }
        // Ranking order identical.
        let la: Vec<_> = par.ranking.iter().map(|r| r.label.clone()).collect();
        let lb: Vec<_> = ser.ranking.iter().map(|r| r.label.clone()).collect();
        assert_eq!(la, lb);
    }

    #[test]
    fn cascade_serial_and_parallel_agree() {
        let net = cases::load(CaseId::Ieee30);
        let par = run_n1(&net, &CaOptions::default(), None).unwrap();
        let ser = run_n1(
            &net,
            &CaOptions {
                parallel: false,
                ..Default::default()
            },
            None,
        )
        .unwrap();
        assert_eq!(par.n_contingencies, ser.n_contingencies);
        assert_eq!(par.screened_out, ser.screened_out);
        for (a, b) in par.outcomes.iter().zip(&ser.outcomes) {
            assert_eq!(a.ac_solved, b.ac_solved);
            assert!((a.max_loading_pct - b.max_loading_pct).abs() < 1e-9);
        }
        let la: Vec<_> = par.ranking.iter().map(|r| r.label.clone()).collect();
        let lb: Vec<_> = ser.ranking.iter().map(|r| r.label.clone()).collect();
        assert_eq!(la, lb);
    }

    #[test]
    fn islanding_outage_detected() {
        // case14 line 7-8 is the only path to bus 8.
        let net = cases::load(CaseId::Ieee14);
        let rep = run_n1(&net, &brute_opts(), None).unwrap();
        let islanders: Vec<_> = rep.outcomes.iter().filter(|o| o.islands).collect();
        assert!(
            !islanders.is_empty(),
            "case14 has a radial branch (7-8) that must island"
        );
        for o in islanders {
            assert!(!o.converged);
            assert!(o.stranded_buses > 0);
        }
    }

    #[test]
    fn line_only_sweep() {
        let net = cases::load(CaseId::Ieee14);
        let rep = run_n1(
            &net,
            &CaOptions {
                include_trafos: false,
                ..brute_opts()
            },
            None,
        )
        .unwrap();
        assert_eq!(rep.n_contingencies, 17);
        assert_eq!(rep.n_trafos, 0);
    }

    #[test]
    fn ieee118_sweep_matches_paper_inventory() {
        // The paper's Fig. 8 run: 186 contingencies (175 lines + 11
        // transformers in our reconstruction; the authors' pandapower
        // conversion shows 173 + 13).
        let net = cases::load(CaseId::Ieee118);
        let rep = run_n1(&net, &brute_opts(), None).unwrap();
        assert_eq!(rep.n_contingencies, 186);
        assert_eq!(rep.n_lines, 175);
        assert_eq!(rep.n_trafos, 11);
        // Every outage either converges or is explained.
        for o in &rep.outcomes {
            assert!(
                o.converged || o.islands || o.violations.is_empty(),
                "unexplained outcome for branch {}",
                o.outage.branch
            );
        }
        // The synthetic case is built to have some N-1 thermal stress.
        assert!(
            rep.max_overload_pct.0 > 100.0,
            "expected at least one overload, max {}",
            rep.max_overload_pct.0
        );
    }

    #[test]
    fn reuses_provided_base_solution() {
        let net = cases::load(CaseId::Ieee30);
        let opts = CaOptions::default();
        let base = solve_base(&net, &opts).unwrap();
        let rep = run_n1(&net, &opts, Some(&base)).unwrap();
        assert_eq!(rep.n_contingencies, 41);
    }

    #[test]
    fn cascade_matches_brute_on_criticals_and_top5() {
        // The Table 1 invariant on the paper's case: identical top-5
        // ranking, identical violation inventory on every AC-verified
        // outage, and a meaningful screened-out share.
        let net = cases::load(CaseId::Ieee118);
        let brute = run_n1(&net, &brute_opts(), None).unwrap();
        let cascade = run_n1(&net, &CaOptions::default(), None).unwrap();
        assert_eq!(cascade.n_contingencies, brute.n_contingencies);
        assert_eq!(cascade.mode, SweepMode::Cascade);
        assert_eq!(cascade.top_labels(5), brute.top_labels(5));
        for (b, c) in brute.outcomes.iter().zip(&cascade.outcomes) {
            if b.n_thermal() > 0 {
                assert!(
                    c.ac_solved,
                    "outage of branch {} missed by the cascade screen",
                    b.outage.branch
                );
                assert_eq!(b.n_thermal(), c.n_thermal());
            }
        }
        assert!(
            cascade.screened_out > cascade.n_contingencies / 4,
            "cascade only screened out {}",
            cascade.screened_out
        );
        assert_eq!(
            cascade.screened_out
                + cascade.ac_verified
                + cascade.outcomes.iter().filter(|o| o.islands).count(),
            cascade.n_contingencies
        );
    }

    #[test]
    fn cascade_faster_than_brute() {
        let net = cases::load(CaseId::Ieee118);
        let opts = CaOptions::default();
        let base = solve_base(&net, &opts).unwrap();
        let t0 = std::time::Instant::now();
        let _ = run_n1(&net, &brute_opts(), Some(&base)).unwrap();
        let brute_t = t0.elapsed();
        let t1 = std::time::Instant::now();
        let _ = run_n1(&net, &opts, Some(&base)).unwrap();
        let cascade_t = t1.elapsed();
        assert!(
            cascade_t < brute_t,
            "cascade {cascade_t:?} !< brute {brute_t:?}"
        );
    }

    #[test]
    fn screened_sweep_agrees_on_thermal_criticals() {
        let net = cases::load(CaseId::Ieee118);
        let full = run_n1(&net, &brute_opts(), None).unwrap();
        // DC screening underestimates MVA loading (no reactive flow), so
        // the guarantee threshold must be conservative.
        let screened = run_n1_screened(&net, &brute_opts(), None, 0.85).unwrap();
        assert_eq!(screened.n_contingencies, full.n_contingencies);
        // Every thermally overloading outage in the full sweep must have
        // been AC-solved by the screen and carry the same overload count.
        for (f, s) in full.outcomes.iter().zip(&screened.outcomes) {
            if f.n_thermal() > 0 {
                assert!(
                    s.ac_solved,
                    "outage of branch {} missed by the screen",
                    f.outage.branch
                );
                assert_eq!(f.n_thermal(), s.n_thermal());
            }
        }
        // And the screen must actually skip a meaningful share.
        let skipped = screened.outcomes.iter().filter(|o| !o.ac_solved).count();
        assert!(
            skipped > screened.n_contingencies / 4,
            "screen only skipped {skipped}"
        );
    }

    #[test]
    fn cached_sweep_hits_on_repeat() {
        let net = cases::load(CaseId::Ieee14);
        let cache = crate::cache::ContingencyCache::new();
        let opts = brute_opts();
        let r1 = run_n1_cached(&net, &opts, None, Some((&cache, 42))).unwrap();
        let (h1, m1) = cache.stats();
        assert_eq!(h1, 0);
        assert_eq!(m1 as usize, r1.n_contingencies);
        // Same diff hash: every outage served from the cache.
        let r2 = run_n1_cached(&net, &opts, None, Some((&cache, 42))).unwrap();
        let (h2, _) = cache.stats();
        assert_eq!(h2 as usize, r2.n_contingencies);
        assert_eq!(r1.total_violations, r2.total_violations);
        // Different hash (modified network state): cache misses again.
        let _ = run_n1_cached(&net, &opts, None, Some((&cache, 43))).unwrap();
        let (_, m3) = cache.stats();
        assert_eq!(m3 as usize, 2 * r1.n_contingencies);
    }

    #[test]
    fn cascade_cache_covers_only_verified_outages() {
        let net = cases::load(CaseId::Ieee118);
        let cache = crate::cache::ContingencyCache::new();
        let opts = CaOptions::default();
        let r1 = run_n1_cached(&net, &opts, None, Some((&cache, 7))).unwrap();
        let (h1, m1) = cache.stats();
        assert_eq!(h1, 0);
        // Screened-out outages never touch the cache.
        assert_eq!(m1 as usize, r1.n_contingencies - r1.screened_out);
        let r2 = run_n1_cached(&net, &opts, None, Some((&cache, 7))).unwrap();
        let (h2, _) = cache.stats();
        assert_eq!(h2 as usize, r2.n_contingencies - r2.screened_out);
        // Identical reports either way.
        assert_eq!(r1.top_labels(5), r2.top_labels(5));
        assert_eq!(r1.total_violations, r2.total_violations);
    }

    #[test]
    fn voltage_band_is_configurable() {
        let net = cases::load(CaseId::Ieee30);
        let tight = run_n1(
            &net,
            &CaOptions {
                vmin_pu: 1.00,
                vmax_pu: 1.02,
                ..brute_opts()
            },
            None,
        )
        .unwrap();
        let loose = run_n1(
            &net,
            &CaOptions {
                vmin_pu: 0.80,
                vmax_pu: 1.20,
                ..brute_opts()
            },
            None,
        )
        .unwrap();
        assert!(tight.total_violations > loose.total_violations);
        assert_eq!(loose.outages_with_voltage_issues, 0);
    }

    #[test]
    fn fingerprint_distinguishes_modes() {
        let brute = brute_opts();
        let cascade = CaOptions::default();
        let screened = CaOptions {
            mode: SweepMode::Screened,
            ..Default::default()
        };
        assert_ne!(brute.fingerprint(), cascade.fingerprint());
        assert_ne!(brute.fingerprint(), screened.fingerprint());
        assert_ne!(cascade.fingerprint(), screened.fingerprint());
        // Screening knobs are fingerprint-relevant too.
        let tighter = CaOptions {
            screen_band: 0.30,
            ..Default::default()
        };
        assert_ne!(cascade.fingerprint(), tighter.fingerprint());
    }
}
